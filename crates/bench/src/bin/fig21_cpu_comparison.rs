//! Fig. 21: CPU-only vs PIM-baseline vs PID-Comm across PE counts.
//!
//! The (app, PE count, opt level) cells are independent simulations and
//! run on the work-stealing sweep pool (`--threads N`, default auto);
//! results are byte-identical at every setting.

use pidcomm::OptLevel;
use pidcomm_bench::apps::AppCell;
use pidcomm_bench::sweep::{threads_flag, SweepBudget};
use pidcomm_bench::{apps, header};

/// Dataset-scale compensation applied to the CPU reference times.
///
/// The harness datasets are scaled 8-500x below the paper's; CPU work per
/// communication byte shrinks superlinearly with that scaling (GNN/MLP
/// compute is quadratic in the feature width while traffic is linear;
/// graph working sets that fit in LLC flatter the CPU). The factors below
/// restore the paper-scale compute-to-traffic ratio on the CPU side,
/// mirroring the KERNEL_SCALE compensation inside the PIM kernels; see
/// EXPERIMENTS.md for the derivations.
fn cpu_scale(app: &str) -> f64 {
    match app {
        "DLRM" => 8.0,                     // 26 Criteo tables vs 8, batch scale
        a if a.starts_with("GNN") => 45.0, // kernel x6 and (500/64)^2/(500/64) f-scaling
        "BFS" => 10.0,                     // kernel x4, LLC-resident visited arrays
        "CC" => 8.0,                       // kernel x1.5, LLC-resident labels
        "MLP" => 16.0,                     // (16k/2048)^2/(16k/2048) width scaling x mul width
        _ => 1.0,
    }
}

fn main() {
    header(
        "Fig. 21",
        "speedup over the CPU-only system vs PE count (harness-scale datasets, CPU scale-compensated)",
        "PIM base geomean 2.27x, PID-Comm 4.07x; compute-heavy apps scale with PEs, CC peaks early",
    );
    let cases = apps::all_cases();
    // One row per selected (app, dataset); one base/ours pair per PE count.
    let mut rows: Vec<(usize, &[usize])> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        if !matches!(
            (case.app, case.dataset),
            ("DLRM", "16")
                | ("GNN RS&AR", "PM")
                | ("GNN AR&AG", "PM")
                | ("BFS", "LJ")
                | ("CC", "LJ")
                | ("MLP", "16k")
        ) {
            continue;
        }
        let counts: &[usize] = match case.app {
            a if a.starts_with("GNN") => &[64, 256, 1024],
            "CC" => &[32, 64, 128, 256, 512, 1024],
            _ => &[64, 128, 256, 512, 1024],
        };
        rows.push((i, counts));
    }
    let cells: Vec<AppCell> = rows
        .iter()
        .flat_map(|&(case, counts)| {
            counts.iter().flat_map(move |&pes| {
                [OptLevel::Baseline, OptLevel::Full]
                    .into_iter()
                    .map(move |opt| AppCell { case, pes, opt })
            })
        })
        .collect();
    let budget = SweepBudget::split(threads_flag(), cells.len());
    let runs = apps::run_app_sweep(&cases, &cells, budget);

    let mut next = runs.chunks_exact(2);
    for &(case, counts) in &rows {
        let case = &cases[case];
        print!("{:<10} {:<4}", case.app, case.dataset);
        let scale = cpu_scale(case.app);
        for &p in counts {
            let pair = next.next().expect("one base/ours pair per PE count");
            let (base, ours) = (&pair[0], &pair[1]);
            print!(
                "  {p:>4}:{:>5.2}/{:<5.2}",
                scale * base.cpu_ns / base.profile.total_ns(),
                scale * ours.cpu_ns / ours.profile.total_ns()
            );
        }
        println!();
    }
    println!("(cells are PIM-base/PID-Comm speedup over CPU per PE count; >1 means PIM wins)");
}

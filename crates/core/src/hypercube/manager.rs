//! Mapping the virtual hypercube onto physical PEs.

use pim_sim::geometry::DimmGeometry;
use pim_sim::PeId;

use crate::error::{Error, Result};
use crate::hypercube::{DimMask, HypercubeShape};

/// The user-facing handle tying a [`HypercubeShape`] to a physical
/// [`DimmGeometry`] (the paper's `pidcomm_hypercube_manager`).
///
/// Nodes are mapped to PEs transparently (§IV-C): the linear node index —
/// x fastest — equals the linear PE index in chip → bank → rank → channel
/// order, so entangled groups fill the hypercube in order and every group
/// of 8 consecutive nodes along x-like dimensions shares a 64-byte burst.
///
/// # Examples
///
/// ```
/// use pidcomm::hypercube::{HypercubeManager, HypercubeShape};
/// use pim_sim::DimmGeometry;
///
/// // The paper's toy example: a [4, 2, 4] hypercube on 32 PEs.
/// let shape = HypercubeShape::new(vec![4, 2, 4])?;
/// let mgr = HypercubeManager::new(shape, DimmGeometry::new(2, 1, 2))?;
/// assert_eq!(mgr.num_nodes(), 32);
/// # Ok::<(), pidcomm::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct HypercubeManager {
    shape: HypercubeShape,
    geometry: DimmGeometry,
}

/// One communication group: the nodes of a hypercube slice along the
/// selected dimensions, ordered by their rank within the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommGroup {
    /// Dense group index (mixed radix over the unselected coordinates).
    pub id: usize,
    /// Member PEs, indexed by group rank.
    pub members: Vec<PeId>,
}

impl HypercubeManager {
    /// Creates a manager, checking that the hypercube exactly covers the
    /// system's PEs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeSystemMismatch`] when the node count differs
    /// from the PE count.
    pub fn new(shape: HypercubeShape, geometry: DimmGeometry) -> Result<Self> {
        if shape.num_nodes() != geometry.num_pes() {
            return Err(Error::ShapeSystemMismatch {
                nodes: shape.num_nodes(),
                pes: geometry.num_pes(),
            });
        }
        Ok(Self { shape, geometry })
    }

    /// The hypercube shape.
    pub fn shape(&self) -> &HypercubeShape {
        &self.shape
    }

    /// The physical geometry.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.shape.num_nodes()
    }

    /// Physical PE of a hypercube node.
    pub fn pe_of_node(&self, node: usize) -> PeId {
        debug_assert!(node < self.num_nodes());
        PeId(node as u32)
    }

    /// Hypercube node of a physical PE.
    pub fn node_of_pe(&self, pe: PeId) -> usize {
        pe.index()
    }

    /// Enumerates the communication groups of a collective call along
    /// `mask`, each with members ordered by rank (selected coordinates in
    /// mixed radix, x-like dimensions fastest).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMask`] if the mask rank differs from the
    /// shape rank.
    pub fn groups(&self, mask: &DimMask) -> Result<Vec<CommGroup>> {
        let group_size = mask.group_size(&self.shape)?;
        let num_groups = self.num_nodes() / group_size;
        let unselected = mask.unselected();

        let mut groups = vec![
            CommGroup {
                id: 0,
                members: Vec::with_capacity(group_size),
            };
            num_groups
        ];
        for (id, g) in groups.iter_mut().enumerate() {
            g.id = id;
        }

        for node in 0..self.num_nodes() {
            let coords = self.shape.coords_of(node);
            let mut gid = 0;
            let mut weight = 1;
            for &d in &unselected {
                gid += coords[d] * weight;
                weight *= self.shape.dim(d);
            }
            groups[gid].members.push(self.pe_of_node(node));
        }

        // Nodes were visited in increasing linear order, which is also
        // increasing rank order within each group because selected
        // coordinates advance lexicographically (x fastest). Verify in
        // debug builds.
        #[cfg(debug_assertions)]
        {
            let selected = mask.selected();
            for g in &groups {
                for (rank, &pe) in g.members.iter().enumerate() {
                    let coords = self.shape.coords_of(self.node_of_pe(pe));
                    let mut expect = 0;
                    let mut weight = 1;
                    for &d in &selected {
                        expect += coords[d] * weight;
                        weight *= self.shape.dim(d);
                    }
                    debug_assert_eq!(rank, expect, "rank order violated in group {}", g.id);
                }
            }
        }

        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_424() -> HypercubeManager {
        // 32 nodes on a 2-channel, 1-rank, 2-bank system (32 PEs, 4 EGs).
        let shape = HypercubeShape::new(vec![4, 2, 4]).unwrap();
        HypercubeManager::new(shape, DimmGeometry::new(2, 1, 2)).unwrap()
    }

    #[test]
    fn node_pe_mapping_is_linear() {
        let m = mgr_424();
        assert_eq!(m.pe_of_node(0), PeId(0));
        assert_eq!(m.pe_of_node(31), PeId(31));
        assert_eq!(m.node_of_pe(PeId(17)), 17);
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let shape = HypercubeShape::new(vec![4, 2, 4]).unwrap();
        let err = HypercubeManager::new(shape, DimmGeometry::single_rank()).unwrap_err();
        assert_eq!(err, Error::ShapeSystemMismatch { nodes: 32, pes: 64 });
    }

    #[test]
    fn x_axis_groups_match_figure5b() {
        let m = mgr_424();
        let groups = m.groups(&"100".parse().unwrap()).unwrap();
        assert_eq!(groups.len(), 8);
        for g in &groups {
            assert_eq!(g.members.len(), 4);
        }
        // Group 0 is x=0..4 at y=z=0 -> nodes 0..4.
        assert_eq!(groups[0].members, vec![PeId(0), PeId(1), PeId(2), PeId(3)]);
        // Group 1 is y=1, z=0 -> nodes 4..8.
        assert_eq!(groups[1].members, vec![PeId(4), PeId(5), PeId(6), PeId(7)]);
    }

    #[test]
    fn xz_groups_match_figure5c() {
        let m = mgr_424();
        let groups = m.groups(&"101".parse().unwrap()).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members.len(), 16);
        // Group 0 fixes y=0: nodes with coords (x, 0, z).
        let expected: Vec<PeId> = (0..4)
            .flat_map(|z| (0..4).map(move |x| PeId((x + 8 * z) as u32)))
            .collect();
        assert_eq!(groups[0].members, expected);
    }

    #[test]
    fn strided_y_groups() {
        let m = mgr_424();
        let groups = m.groups(&"010".parse().unwrap()).unwrap();
        assert_eq!(groups.len(), 16);
        // Group 0: x=0, z=0, y varies -> nodes 0 and 4.
        assert_eq!(groups[0].members, vec![PeId(0), PeId(4)]);
    }

    #[test]
    fn every_pe_in_exactly_one_group() {
        let m = mgr_424();
        for mask in ["100", "010", "001", "110", "101", "011", "111"] {
            let groups = m.groups(&mask.parse().unwrap()).unwrap();
            let mut seen = [false; 32];
            for g in &groups {
                for &pe in &g.members {
                    assert!(!seen[pe.index()], "{mask}: {pe} twice");
                    seen[pe.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{mask}: not all PEs covered");
        }
    }
}

//! Cross-crate integration tests: the whole stack — dataset generation,
//! applications, collectives, topologies and the multi-host extension —
//! exercised through public APIs only.

use pidcomm::{
    topology_all_reduce, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape,
    LinkModel, MultiHost, OptLevel, Primitive, Topology,
};
use pidcomm_apps::bfs::{default_source, run_bfs, BfsConfig};
use pidcomm_apps::cc::{run_cc, CcConfig};
use pidcomm_apps::dlrm::{run_dlrm, DlrmRunConfig};
use pidcomm_apps::gnn::{run_gnn, GnnConfig, GnnVariant};
use pidcomm_apps::mlp::{run_mlp, MlpConfig};
use pidcomm_data::dlrm::DlrmConfig;
use pidcomm_data::{rmat, GraphPreset, RmatParams};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

#[test]
fn all_five_applications_validate_on_64_pes() {
    let graph = rmat(10, 8, RmatParams::skewed(3)).to_undirected();

    let bfs = run_bfs(
        &BfsConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        },
        &graph,
        default_source(&graph),
    )
    .unwrap();
    assert!(bfs.validated);

    let cc = run_cc(
        &CcConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        },
        &graph,
    )
    .unwrap();
    assert!(cc.validated);

    let mlp = run_mlp(&MlpConfig {
        threads: 0,
        features: 512,
        layers: 2,
        pes: 64,
        opt: OptLevel::Full,
    })
    .unwrap();
    assert!(mlp.validated);

    let gnn = run_gnn(
        &GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 2,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        },
        &rmat(10, 4, RmatParams::uniform(5)),
    )
    .unwrap();
    assert!(gnn.validated);

    let mut workload = DlrmConfig::criteo_like(16);
    workload.batch_size = 512;
    let dlrm = run_dlrm(&DlrmRunConfig {
        threads: 0,
        workload,
        pes: 64,
        opt: OptLevel::Full,
    })
    .unwrap();
    assert!(dlrm.validated);
}

#[test]
fn report_breakdown_matches_system_meter() {
    // The CommReport's breakdown must equal the meter delta on the system.
    let geom = DimmGeometry::single_rank();
    let mut sys = PimSystem::new(geom);
    for pe in geom.pes() {
        sys.pe_mut(pe).write(0, &[7u8; 512]);
    }
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let before = sys.meter();
    let report = comm
        .all_reduce(
            &mut sys,
            &"10".parse().unwrap(),
            &BufferSpec::new(0, 1024, 512),
            ReduceKind::Sum,
        )
        .unwrap();
    let delta = sys.meter().since(&before);
    assert!((report.breakdown.total() - delta.total()).abs() < 1e-9);
    assert!((report.breakdown.pe_mem_access - delta.pe_mem_access).abs() < 1e-9);
}

#[test]
fn sequential_collectives_compose() {
    // The GNN communication skeleton of Algorithm 1, hand-rolled:
    // scatter -> [RS(dim) -> AR(dim)] x layers with alternating dims ->
    // gather, all on one system.
    let geom = DimmGeometry::single_rank();
    let mut sys = PimSystem::new(geom);
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let b = 8 * 8 * 8;

    let groups = comm.manager().groups(&"11".parse().unwrap()).unwrap();
    let host: Vec<Vec<u8>> = vec![(0..64 * b).map(|i| (i % 251) as u8).collect(); groups.len()];
    comm.scatter(
        &mut sys,
        &"11".parse().unwrap(),
        &BufferSpec::new(0, 0, b),
        &host,
    )
    .unwrap();

    for layer in 0..3 {
        let mask: DimMask = if layer % 2 == 0 { "10" } else { "01" }.parse().unwrap();
        comm.reduce_scatter(
            &mut sys,
            &mask,
            &BufferSpec::new(0, 4096, b),
            ReduceKind::Sum,
        )
        .unwrap();
        comm.all_reduce(
            &mut sys,
            &mask,
            &BufferSpec::new(4096, 8192, b / 8),
            ReduceKind::Sum,
        )
        .unwrap();
        // Feed the result forward.
        for pe in geom.pes() {
            let data = sys.pe_mut(pe).read(8192, b / 8).to_vec();
            let repeated: Vec<u8> = data.iter().cycle().take(b).copied().collect();
            sys.pe_mut(pe).write(0, &repeated);
        }
    }
    let (_, out) = comm
        .gather(&mut sys, &"11".parse().unwrap(), &BufferSpec::new(0, 0, b))
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].len(), 64 * b);
}

#[test]
fn topologies_agree_with_hypercube_result() {
    let geom = DimmGeometry::single_rank();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    let mask: DimMask = "01".parse().unwrap();
    let b = 128;

    let mut results: Vec<Vec<u8>> = Vec::new();
    for topo in [Topology::Hypercube, Topology::Ring, Topology::Tree] {
        let mut sys = PimSystem::new(geom);
        for pe in geom.pes() {
            let data: Vec<u8> = (0..b)
                .map(|i| ((pe.0 as usize * 31 + i) % 200) as u8)
                .collect();
            sys.pe_mut(pe).write(0, &data);
        }
        topology_all_reduce(
            &mut sys,
            &manager,
            topo,
            &mask,
            &BufferSpec::new(0, 1024, b),
            ReduceKind::Sum,
        )
        .unwrap();
        let snapshot: Vec<u8> = geom
            .pes()
            .flat_map(|pe| sys.pe_mut(pe).read(1024, b).to_vec())
            .collect();
        results.push(snapshot);
    }
    assert_eq!(results[0], results[1], "ring result differs");
    assert_eq!(results[0], results[2], "tree result differs");
}

#[test]
fn multi_host_extends_single_host_results() {
    let geom = DimmGeometry::single_rank();
    let mk = || {
        Communicator::new(
            HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap(),
        )
    };
    let mh = MultiHost::new(vec![mk(), mk()], LinkModel::ethernet_10g()).unwrap();
    let mut systems = vec![PimSystem::new(geom), PimSystem::new(geom)];
    let b = 64;
    for (h, sys) in systems.iter_mut().enumerate() {
        for pe in geom.pes() {
            sys.pe_mut(pe).write(0, &[(h as u8 + 1); 64]);
        }
    }
    let report = mh
        .all_reduce(
            &mut systems,
            &"10".parse().unwrap(),
            &BufferSpec::new(0, 1024, b),
            ReduceKind::Sum,
        )
        .unwrap();
    assert_eq!(report.hosts, 2);
    // Sum across 8 members per host on 2 hosts: 8*1 + 8*2 = 24 per byte
    // ... elementwise u64 sums of 0x0101..: check one word.
    let v = systems[0]
        .pe_mut(geom.pes().next().unwrap())
        .read(1024, 8)
        .to_vec();
    let got = u64::from_le_bytes(v.try_into().unwrap());
    let ones: u64 = u64::from_le_bytes([1; 8]);
    assert_eq!(got, ones * 8 + ones * 2 * 8);
}

#[test]
fn dataset_presets_are_usable() {
    let g = GraphPreset::GowallaLike.generate();
    assert!(g.num_edges() > 10_000);
    let run = run_bfs(
        &BfsConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        },
        &g.to_undirected(),
        default_source(&g),
    )
    .unwrap();
    assert!(run.validated);
}

#[test]
fn all_eight_primitives_round_trip_on_one_system() {
    let geom = DimmGeometry::upmem_256();
    let mut sys = PimSystem::new(geom);
    let manager = HypercubeManager::new(HypercubeShape::new(vec![16, 16]).unwrap(), geom).unwrap();
    let comm = Communicator::new(manager);
    let mask: DimMask = "10".parse().unwrap();
    let n = 16;
    let b = 8 * n;
    for pe in geom.pes() {
        sys.pe_mut(pe).write(0, &vec![(pe.0 % 256) as u8; b]);
    }
    let groups = comm.manager().groups(&mask).unwrap().len();

    let mut seen = vec![comm
        .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 4096, b))
        .unwrap()];
    seen.push(
        comm.reduce_scatter(
            &mut sys,
            &mask,
            &BufferSpec::new(0, 8192, b),
            ReduceKind::Sum,
        )
        .unwrap(),
    );
    seen.push(
        comm.all_reduce(
            &mut sys,
            &mask,
            &BufferSpec::new(0, 12288, b),
            ReduceKind::Max,
        )
        .unwrap(),
    );
    seen.push(
        comm.all_gather(&mut sys, &mask, &BufferSpec::new(0, 16384, 64))
            .unwrap(),
    );
    let host = vec![vec![9u8; n * 64]; groups];
    seen.push(
        comm.scatter(&mut sys, &mask, &BufferSpec::new(0, 32768, 64), &host)
            .unwrap(),
    );
    seen.push(
        comm.gather(&mut sys, &mask, &BufferSpec::new(0, 0, 64))
            .unwrap()
            .0,
    );
    seen.push(
        comm.reduce(&mut sys, &mask, &BufferSpec::new(0, 0, b), ReduceKind::Sum)
            .unwrap()
            .0,
    );
    let host = vec![vec![1u8; 64]; groups];
    seen.push(
        comm.broadcast(&mut sys, &mask, &BufferSpec::new(0, 40960, 64), &host)
            .unwrap(),
    );

    let kinds: Vec<Primitive> = seen.iter().map(|r| r.primitive).collect();
    assert_eq!(kinds, Primitive::ALL.to_vec());
    assert!(seen.iter().all(|r| r.time_ns() > 0.0));
}

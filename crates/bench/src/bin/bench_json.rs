//! Machine-readable performance trajectory of the simulator hot path.
//!
//! Two modes:
//!
//! * **Primitive sweep** (default): the fig14-style AlltoAll /
//!   ReduceScatter / AllReduce / AllGather sweep at the full optimization
//!   level on the paper's 1024-PE 2-D (32, 32) configuration, written to
//!   `BENCH_streaming.json`. Per primitive it records the *wall-clock*
//!   time of the functional simulation alongside the *modeled* device
//!   time — wall-clock is what the refactors optimize, modeled time is
//!   what must stay bit-identical.
//! * **App sweep** (`--apps`): the fig15 application sweep (every
//!   `AppCase` at baseline and full), written to `BENCH_apps.json`. Each
//!   cell runs once on the serial reference schedule (one worker, serial
//!   engine — the pre-sweep-pool path) with per-cell wall-clock, then the
//!   whole sweep re-runs on the work-stealing pool; the run aborts if any
//!   parallel `AppProfile` differs from its serial reference by a single
//!   bit, so the recorded speedup can never come at the cost of modeled
//!   accuracy.
//!
//! Usage: `bench_json [--apps] [--small] [OUTPUT] [--reference FILE]
//! [--check FILE]`
//!
//! * `OUTPUT` — path of the JSON report (default `BENCH_streaming.json`,
//!   or `BENCH_apps.json` with `--apps`).
//! * `--small` — reduced-size app sweep (the five `small_cases` on 64
//!   PEs); the CI smoke configuration.
//! * `--reference FILE` — a previous report to embed verbatim under
//!   `"reference"`, so before/after numbers live in one file.
//! * `--check FILE` — compare the modeled-time bit patterns against a
//!   previously written report and fail on any drift (the CI guard for
//!   unintended modeled-time changes).

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::sweep::SweepBudget;
use pidcomm_bench::{apps, run_primitive, time_primitive, PrimSetup};

const PRIMS: [Primitive; 4] = [
    Primitive::AlltoAll,
    Primitive::ReduceScatter,
    Primitive::AllReduce,
    Primitive::AllGather,
];

struct Args {
    output: String,
    reference: Option<String>,
    check: Option<String>,
    apps: bool,
    small: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        output: String::new(),
        reference: None,
        check: None,
        apps: false,
        small: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reference" => {
                parsed.reference = Some(args.next().expect("--reference needs a file path"));
            }
            "--check" => parsed.check = Some(args.next().expect("--check needs a file path")),
            "--apps" => parsed.apps = true,
            "--small" => parsed.small = true,
            _ if arg.starts_with("--") => panic!("unknown flag {arg}"),
            _ => parsed.output = arg,
        }
    }
    if (parsed.check.is_some() || parsed.small) && !parsed.apps {
        panic!("--check and --small only apply to the --apps sweep");
    }
    if parsed.output.is_empty() {
        parsed.output = if parsed.apps {
            "BENCH_apps.json".into()
        } else {
            "BENCH_streaming.json".into()
        };
    }
    parsed
}

fn read_reference(reference: Option<&str>) -> String {
    match reference {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read reference {path}: {e}")),
        None => "null".into(),
    }
}

/// Compares the `"modeled_bits"` sequences of `json` and the report at
/// `path`; exits non-zero on drift.
fn check_modeled_bits(json: &str, path: &str) {
    let extract = |s: &str| -> Vec<String> {
        // Only the report's own cells: an embedded `--reference` report
        // carries its own modeled_bits and must not count.
        let s = s.split("\"reference\":").next().unwrap_or(s);
        s.split("\"modeled_bits\": \"")
            .skip(1)
            .map(|rest| rest[..rest.find('"').expect("closing quote")].to_string())
            .collect()
    };
    let expect = extract(
        &std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read check {path}: {e}")),
    );
    let got = extract(json);
    if expect != got {
        eprintln!(
            "modeled-time drift against {path}: expected {} cells {:?}, got {} cells {:?}",
            expect.len(),
            expect,
            got.len(),
            got
        );
        std::process::exit(1);
    }
    eprintln!(
        "modeled times match {path} bit-for-bit ({} cells)",
        got.len()
    );
}

fn run_primitive_sweep(args: &Args) {
    let bytes_per_node = 32 * 1024;
    let setup = PrimSetup::default_2d(bytes_per_node);

    // Warm up allocator and page cache so the first primitive is not
    // charged for process start-up.
    let _ = run_primitive(&setup, Primitive::AlltoAll, OptLevel::Full);

    let mut rows = Vec::new();
    for prim in PRIMS {
        let (report, wall_ms) = time_primitive(&setup, prim, OptLevel::Full, 3);
        let modeled_us = report.time_ns() / 1e3;
        eprintln!(
            "{:<4} wall {wall_ms:>10.1} ms   modeled {modeled_us:>10.1} us   {:>8.2} GB/s modeled",
            prim.abbrev(),
            report.throughput_gbps()
        );
        rows.push(format!(
            "    {{ \"primitive\": \"{}\", \"wall_ms\": {wall_ms:.3}, \"modeled_us\": {modeled_us:.3}, \"modeled_gbps\": {:.4} }}",
            prim.abbrev(),
            report.throughput_gbps()
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"fig14 primitive sweep, 1024 PEs, (32,32), {} B/node, OptLevel::Full\",\n  \"threads\": \"{}\",\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        bytes_per_node,
        std::env::var("PIDCOMM_THREADS").unwrap_or_else(|_| "auto".into()),
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    std::fs::write(&args.output, json).expect("write output");
    eprintln!("wrote {}", args.output);
}

fn run_app_sweep(args: &Args) {
    let (cases, pes, label) = if args.small {
        (apps::small_cases(), 64, "small (CI smoke)")
    } else {
        (apps::all_cases(), 1024, "fig15")
    };
    let cells = apps::base_vs_full_cells(cases.len(), pes);

    // Untimed warm-up pass: builds the shared datasets, warms the page
    // cache and allocator arenas, so the serial-vs-parallel comparison
    // below measures scheduling, not first-touch effects.
    let _ = apps::run_app_sweep(&cases, &cells, SweepBudget::split(0, cells.len()));

    // Serial reference: every cell on one worker with the serial engine
    // schedule — the pre-sweep-pool wall-clock path — timed per cell.
    let mut serial_runs = Vec::new();
    let mut serial_cell_ms = Vec::new();
    let t0 = std::time::Instant::now();
    for cell in &cells {
        let c0 = std::time::Instant::now();
        serial_runs.push(cases[cell.case].run_threaded(cell.pes, cell.opt, 1));
        serial_cell_ms.push(c0.elapsed().as_secs_f64() * 1e3);
    }
    let wall_serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Parallel sweep: same cells on the work-stealing pool.
    let budget = SweepBudget::split(0, cells.len());
    let t0 = std::time::Instant::now();
    let parallel_runs = apps::run_app_sweep(&cases, &cells, budget);
    let wall_parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The sweep pool is purely an execution knob: any modeled divergence
    // from the serial reference is a correctness bug, not a trade-off.
    for ((cell, serial), parallel) in cells.iter().zip(&serial_runs).zip(&parallel_runs) {
        assert!(
            serial == parallel,
            "parallel sweep diverges from serial reference for {} {} {:?}",
            cases[cell.case].app,
            cases[cell.case].dataset,
            cell.opt
        );
    }

    let mut rows = Vec::new();
    for ((cell, run), cell_ms) in cells.iter().zip(&serial_runs).zip(&serial_cell_ms) {
        let case = &cases[cell.case];
        let modeled_ns = run.profile.total_ns();
        eprintln!(
            "{:<10} {:<4} {:<9}: wall {cell_ms:>9.1} ms   modeled {:>9.2} ms",
            case.app,
            case.dataset,
            format!("{:?}", cell.opt),
            modeled_ns / 1e6,
        );
        rows.push(format!(
            "    {{ \"app\": \"{}\", \"dataset\": \"{}\", \"opt\": \"{:?}\", \"pes\": {}, \"wall_serial_ms\": {cell_ms:.3}, \"modeled_ms\": {:.6}, \"modeled_bits\": \"{:016x}\", \"validated\": {} }}",
            case.app,
            case.dataset,
            cell.opt,
            cell.pes,
            modeled_ns / 1e6,
            modeled_ns.to_bits(),
            run.validated
        ));
    }

    let speedup = wall_serial_ms / wall_parallel_ms;
    eprintln!(
        "sweep wall-clock: serial {wall_serial_ms:.0} ms, parallel {wall_parallel_ms:.0} ms \
         ({speedup:.2}x, {} workers x {} engine threads); modeled times bit-identical",
        budget.workers, budget.engine_threads
    );
    let json = format!(
        "{{\n  \"benchmark\": \"{label} app sweep, {pes} PEs, Baseline+Full per case\",\n  \"threads\": \"{}\",\n  \"workers\": {},\n  \"engine_threads\": {},\n  \"wall_serial_ms\": {wall_serial_ms:.3},\n  \"wall_parallel_ms\": {wall_parallel_ms:.3},\n  \"parallel_speedup\": {speedup:.4},\n  \"modeled_bit_identical\": true,\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        std::env::var("PIDCOMM_THREADS").unwrap_or_else(|_| "auto".into()),
        budget.workers,
        budget.engine_threads,
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check);
    }
    std::fs::write(&args.output, json).expect("write output");
    eprintln!("wrote {}", args.output);
}

fn main() {
    let args = parse_args();
    if args.apps {
        run_app_sweep(&args);
    } else {
        run_primitive_sweep(&args);
    }
}

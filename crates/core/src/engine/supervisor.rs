//! Run-level resilience: health ledger, iteration checkpoints and
//! deadline budgets over the per-plan recovery tier.
//!
//! [`crate::engine::recovery`] makes a *single plan execution* survive
//! faults; the paper's applications run tens-to-hundreds of iterations,
//! and a mid-run fault previously either burned per-plan retries with no
//! memory of which PEs keep failing, or propagated and killed the run.
//! This module is the MPI-ULFM / checkpoint-restart shape of fault
//! tolerance lifted onto the deterministic chaos substrate:
//!
//! * A [`HealthLedger`] accumulates per-PE fault history across epochs —
//!   corruptions, retries, stuck detections, persistent failures — and
//!   **quarantines** PEs whose weighted score crosses the policy
//!   threshold. Later plans with quarantined members degrade around them
//!   up front ([`crate::engine::recovery::run_degraded`]) instead of
//!   rediscovering the bad PE through failed retries.
//! * **Iteration checkpoints**: apps snapshot only their live MRAM
//!   regions ([`PimSystem::checkpoint_regions`], pooled through
//!   [`SystemArena`]) at iteration boundaries, so recovery rolls back one
//!   iteration — not one plan attempt, and not the whole run.
//! * A [`RunPolicy`] carries a modeled-time deadline, a total retry
//!   budget and an exponential epoch backoff; runs finish with a typed
//!   [`RunOutcome`]. Every recovery action is charged to the dedicated
//!   [`CostSheet`] recovery counters, so resilience is visible in modeled
//!   time and the fault-free path stays bit-identical.
//!
//! Determinism: every decision here is a pure function of the fault
//! plan's seeded draws and the policy — no wall clock, no randomness —
//! so a resilient run's outcome, retry count, quarantine set and modeled
//! time are reproducible bit-for-bit under a fixed seed.

use std::collections::BTreeSet;

use pim_sim::{CorruptionEvent, PimSystem, SystemArena};

use crate::comm::Communicator;
use crate::engine::plan::CollectivePlan;
use crate::engine::prepared::{FusedPlan, PreparedScatter};
use crate::engine::recovery::{self, FusedVerifiedExecution, RecoveryPolicy, VerifiedExecution};
use crate::engine::sheet::CostSheet;
use crate::error::{Error, Result};

/// Per-PE fault tallies accumulated by the [`HealthLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeHealth {
    /// Detected write corruptions attributed to this PE.
    pub corruptions: u32,
    /// Retries burned recovering from this PE's faults.
    pub retries: u32,
    /// Transient stuck detections (pre-dispatch scan hits).
    pub stuck: u32,
    /// Persistent failure detections.
    pub failures: u32,
}

impl PeHealth {
    /// Weighted badness score compared against
    /// [`RunPolicy::quarantine_after`]. A persistent failure is
    /// conclusive, so it carries the full default threshold by itself;
    /// transient evidence accumulates one point per event.
    pub fn score(&self) -> u32 {
        self.corruptions + self.retries + self.stuck + self.failures * FAILURE_WEIGHT
    }
}

/// Score contribution of one persistent-failure detection: quarantines a
/// PE immediately at the default [`RunPolicy::quarantine_after`].
pub const FAILURE_WEIGHT: u32 = 4;

/// Accumulated per-PE fault history for one run, with quarantine.
///
/// The ledger is fed by the recovery tier (every typed fault error is
/// attributed to its PE) and consulted before each collective: once a
/// PE's [`PeHealth::score`] reaches the threshold it is quarantined —
/// subsequent plans degrade around it up front, and its residual write
/// corruptions are expected rather than fatal.
#[derive(Debug, Clone)]
pub struct HealthLedger {
    pes: Vec<PeHealth>,
    quarantined: BTreeSet<u32>,
    /// Score at which a PE is quarantined; `0` disables quarantine.
    threshold: u32,
}

impl HealthLedger {
    /// An empty ledger over `num_pes` PEs quarantining at `threshold`
    /// (`0` disables quarantine).
    pub fn new(num_pes: usize, threshold: u32) -> Self {
        Self {
            pes: vec![PeHealth::default(); num_pes],
            quarantined: BTreeSet::new(),
            threshold,
        }
    }

    fn bump(&mut self, pe: u32, f: impl FnOnce(&mut PeHealth)) {
        let Some(h) = self.pes.get_mut(pe as usize) else {
            return;
        };
        f(h);
        if self.threshold > 0 && h.score() >= self.threshold {
            self.quarantined.insert(pe);
        }
    }

    /// Records a detected write corruption on `pe`.
    pub fn record_corruption(&mut self, pe: u32) {
        self.bump(pe, |h| h.corruptions += 1);
    }

    /// Records a retry attributed to `pe`'s fault.
    pub fn record_retry(&mut self, pe: u32) {
        self.bump(pe, |h| h.retries += 1);
    }

    /// Records a transient stuck detection on `pe`.
    pub fn record_stuck(&mut self, pe: u32) {
        self.bump(pe, |h| h.stuck += 1);
    }

    /// Records a persistent failure detection on `pe`.
    pub fn record_failure(&mut self, pe: u32) {
        self.bump(pe, |h| h.failures += 1);
    }

    /// The accumulated tallies for `pe`.
    pub fn health(&self, pe: u32) -> PeHealth {
        self.pes.get(pe as usize).copied().unwrap_or_default()
    }

    /// Whether `pe` is quarantined.
    pub fn is_quarantined(&self, pe: u32) -> bool {
        self.quarantined.contains(&pe)
    }

    /// Whether any PE is quarantined.
    pub fn any_quarantined(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// The quarantined PEs, ascending.
    pub fn quarantined(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }
}

/// Policy of one resilient run: deadline, budgets, backoff, quarantine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPolicy {
    /// Modeled-time deadline in nanoseconds; an iteration boundary past
    /// it aborts the run with [`RunOutcome::DeadlineExceeded`].
    /// `f64::INFINITY` (the default) disables the deadline.
    pub deadline_ns: f64,
    /// Total retry budget for the whole run, shared by plan-level retries
    /// and iteration-level re-runs. Exhausting it aborts with
    /// [`RunOutcome::BudgetExhausted`].
    pub retry_budget: u32,
    /// Fault epochs skipped before the first iteration re-run; doubles on
    /// each consecutive failure (exponential backoff, re-rolling the
    /// seeded dice), capped at [`RunPolicy::backoff_cap`].
    pub backoff_base: u32,
    /// Upper bound on the per-retry backoff.
    pub backoff_cap: u32,
    /// [`PeHealth::score`] at which a PE is quarantined; `0` disables
    /// quarantine.
    pub quarantine_after: u32,
    /// Per-collective recovery policy (plan-level retries and
    /// degradation) applied inside each iteration.
    pub plan_attempt: RecoveryPolicy,
}

impl Default for RunPolicy {
    fn default() -> Self {
        Self {
            deadline_ns: f64::INFINITY,
            retry_budget: 8,
            backoff_base: 1,
            backoff_cap: 8,
            quarantine_after: FAILURE_WEIGHT,
            plan_attempt: RecoveryPolicy::default(),
        }
    }
}

impl RunPolicy {
    /// Disables quarantine (PEs are never excluded up front; every fault
    /// is rediscovered through the recovery tier).
    pub fn without_quarantine(mut self) -> Self {
        self.quarantine_after = 0;
        self
    }

    /// Sets the modeled-time deadline.
    pub fn with_deadline_ns(mut self, ns: f64) -> Self {
        self.deadline_ns = ns;
        self
    }

    /// Sets the total retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }
}

/// Typed outcome of a resilient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every iteration committed cleanly; results are bit-identical to
    /// the fault-free run.
    Completed,
    /// The run finished, but some results were produced by degraded
    /// host-side recompute and/or PEs were quarantined along the way.
    Degraded {
        /// PEs quarantined by the ledger, ascending.
        quarantined: Vec<u32>,
    },
    /// An iteration boundary fell past the modeled-time deadline.
    DeadlineExceeded,
    /// The total retry budget ran out before an iteration committed.
    BudgetExhausted,
}

impl RunOutcome {
    /// Short stable label for reports (`BENCH_chaos.json`).
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Degraded { .. } => "degraded",
            RunOutcome::DeadlineExceeded => "deadline_exceeded",
            RunOutcome::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// Result of one supervised iteration: either the body's value, or the
/// typed abort the caller must surface as the run's outcome.
#[derive(Debug)]
pub enum Iteration<T> {
    /// The iteration committed; checkpoint released.
    Done(T),
    /// The run aborted under policy (deadline or budget); the caller
    /// stops iterating and reports this outcome.
    Abort(RunOutcome),
}

/// Run-level supervisor: owns the ledger, budgets and backoff state of
/// one resilient application run.
///
/// Apps wrap each iteration (and their setup / teardown phases) in
/// [`Supervisor::iteration`], and issue collectives inside the body
/// through the passed [`Attempt`] — which routes them through the
/// quarantine-aware verified execution path. See the `run_*_resilient`
/// functions in `pidcomm-apps` for the canonical wiring.
#[derive(Debug)]
pub struct Supervisor {
    policy: RunPolicy,
    ledger: HealthLedger,
    retries_used: u32,
    /// Consecutive failed iteration attempts, driving the backoff.
    consecutive: u32,
    /// Whether any collective was produced by degraded recompute.
    degraded: bool,
    aborted: Option<RunOutcome>,
    backoff_epochs: u64,
    checkpoint_restores: u64,
    /// Scratch for draining per-PE corruption records.
    events: Vec<CorruptionEvent>,
}

impl Supervisor {
    /// A fresh supervisor for a system of `num_pes` PEs under `policy`.
    pub fn new(num_pes: usize, policy: RunPolicy) -> Self {
        Self {
            ledger: HealthLedger::new(num_pes, policy.quarantine_after),
            policy,
            retries_used: 0,
            consecutive: 0,
            degraded: false,
            aborted: None,
            backoff_epochs: 0,
            checkpoint_restores: 0,
            events: Vec::new(),
        }
    }

    /// The accumulated per-PE fault history.
    pub fn ledger(&self) -> &HealthLedger {
        &self.ledger
    }

    /// Total retries consumed so far (plan-level and iteration-level).
    pub fn retries(&self) -> u32 {
        self.retries_used
    }

    /// Total fault epochs skipped by backoff so far.
    pub fn backoff_epochs(&self) -> u64 {
        self.backoff_epochs
    }

    /// Number of iteration rollbacks performed so far.
    pub fn checkpoint_restores(&self) -> u64 {
        self.checkpoint_restores
    }

    /// The run's typed outcome given everything observed so far. Call
    /// after the iteration loop finishes (or an [`Iteration::Abort`]
    /// stopped it).
    pub fn outcome(&self) -> RunOutcome {
        if let Some(o) = &self.aborted {
            return o.clone();
        }
        if self.degraded || self.ledger.any_quarantined() {
            return RunOutcome::Degraded {
                quarantined: self.ledger.quarantined(),
            };
        }
        RunOutcome::Completed
    }

    /// Issues one collective outside an [`Supervisor::iteration`] body
    /// (setup scatters, final gathers), with the same quarantine-aware
    /// recovery as [`Attempt::collective`].
    pub fn collective(
        &mut self,
        comm: &Communicator,
        sys: &mut PimSystem,
        plan: &CollectivePlan,
        host_in: Option<&[Vec<u8>]>,
    ) -> Result<VerifiedExecution> {
        collective_impl(
            &self.policy,
            &mut self.ledger,
            &mut self.retries_used,
            &mut self.degraded,
            &mut self.events,
            comm,
            sys,
            plan,
            host_in,
        )
    }

    /// Runs one iteration resiliently: snapshots `regions` (the app's
    /// live MRAM state) into an arena-pooled checkpoint, runs `body`, and
    /// on a typed fault error rolls the regions back, applies exponential
    /// epoch backoff and re-runs the body under the run's retry budget.
    ///
    /// The body must derive everything it writes from committed host
    /// state plus the checkpointed regions (commit host-side mirrors only
    /// after the body returns `Ok`), so a re-run observes exactly the
    /// iteration-boundary state.
    ///
    /// # Errors
    ///
    /// Non-fault errors from the body propagate unchanged; typed fault
    /// errors are consumed by the retry loop and can only surface as an
    /// [`Iteration::Abort`].
    pub fn iteration<T>(
        &mut self,
        sys: &mut PimSystem,
        arena: &mut SystemArena,
        regions: &[(usize, usize)],
        mut body: impl FnMut(&mut PimSystem, &mut Attempt<'_>) -> Result<T>,
    ) -> Result<Iteration<T>> {
        if sys.meter().total() > self.policy.deadline_ns {
            self.aborted = Some(RunOutcome::DeadlineExceeded);
            return Ok(Iteration::Abort(RunOutcome::DeadlineExceeded));
        }
        let mut ckpt = arena.checkpoint();
        sys.checkpoint_regions(regions, &mut ckpt);
        let result = loop {
            let mut attempt = Attempt {
                policy: &self.policy,
                ledger: &mut self.ledger,
                retries_used: &mut self.retries_used,
                degraded: &mut self.degraded,
                events: &mut self.events,
            };
            let run = body(sys, &mut attempt).and_then(|t| {
                // Surface residual corruption from the body's own staging
                // writes (kernels, host encodes) that no collective
                // boundary checked — quarantined PEs' records are
                // expected and ignored, anything else is a real fault.
                match residual_fault(sys, &self.ledger, &mut self.events) {
                    Some(err) => Err(err),
                    None => Ok(t),
                }
            });
            match run {
                Ok(t) => {
                    self.consecutive = 0;
                    break Iteration::Done(t);
                }
                Err(err @ (Error::DataCorruption { .. } | Error::PeFailed { .. })) => {
                    record_fault(&mut self.ledger, sys, &err);
                    if self.retries_used >= self.policy.retry_budget {
                        self.aborted = Some(RunOutcome::BudgetExhausted);
                        break Iteration::Abort(RunOutcome::BudgetExhausted);
                    }
                    self.retries_used += 1;
                    sys.restore_regions(&ckpt);
                    self.checkpoint_restores += 1;
                    // Discard fault records the failed attempt left
                    // behind; the re-run starts from a clean slate.
                    self.events.clear();
                    sys.take_corruptions(&mut self.events);
                    self.events.clear();
                    // Exponential backoff: skip epochs so the re-run
                    // rolls fresh dice further from the fault burst.
                    let backoff = self
                        .policy
                        .backoff_base
                        .saturating_mul(1 << self.consecutive.min(16))
                        .min(self.policy.backoff_cap);
                    self.consecutive += 1;
                    if let Some(fp) = sys.fault_plan() {
                        for _ in 0..backoff {
                            fp.begin_epoch();
                        }
                    }
                    self.backoff_epochs += u64::from(backoff);
                    let mut sheet = CostSheet::new(sys.geometry().channels());
                    // simlint: allow(cost-sheet, reason = "run-level recovery surcharge outside the plan's cost model by design; cost-only execution models the fault-free run")
                    sheet.recovery_retries = 1;
                    // simlint: allow(cost-sheet, reason = "run-level backoff surcharge outside the plan's cost model by design; zero on the fault-free path")
                    sheet.recovery_backoff = u64::from(backoff);
                    // simlint: allow(cost-sheet, reason = "iteration-rollback byte tally outside the plan's cost model by design; zero on the fault-free path")
                    sheet.recovery_checkpoint_bytes = ckpt.bytes();
                    sheet.apply(sys);
                    if sys.meter().total() > self.policy.deadline_ns {
                        self.aborted = Some(RunOutcome::DeadlineExceeded);
                        break Iteration::Abort(RunOutcome::DeadlineExceeded);
                    }
                }
                Err(err) => {
                    arena.recycle_checkpoint(ckpt);
                    return Err(err);
                }
            }
        };
        arena.recycle_checkpoint(ckpt);
        Ok(result)
    }
}

/// Per-attempt handle passed to [`Supervisor::iteration`] bodies: issues
/// collectives through the quarantine-aware verified execution path and
/// exposes the ledger for read access.
#[derive(Debug)]
pub struct Attempt<'a> {
    policy: &'a RunPolicy,
    ledger: &'a mut HealthLedger,
    retries_used: &'a mut u32,
    degraded: &'a mut bool,
    events: &'a mut Vec<CorruptionEvent>,
}

impl Attempt<'_> {
    /// Executes `plan` with verification, ledger attribution and
    /// quarantine: plans whose groups include a quarantined PE degrade up
    /// front instead of burning retries rediscovering it; otherwise the
    /// plan runs under the per-collective recovery policy, clamped to the
    /// run's remaining retry budget.
    ///
    /// # Errors
    ///
    /// Surfaces the recovery tier's typed fault errors (for the
    /// supervisor's iteration retry loop to consume) and any validation
    /// error from the plan itself.
    pub fn collective(
        &mut self,
        comm: &Communicator,
        sys: &mut PimSystem,
        plan: &CollectivePlan,
        host_in: Option<&[Vec<u8>]>,
    ) -> Result<VerifiedExecution> {
        collective_impl(
            self.policy,
            self.ledger,
            self.retries_used,
            self.degraded,
            self.events,
            comm,
            sys,
            plan,
            host_in,
        )
    }

    /// Executes a fused chain with verification, ledger attribution and
    /// quarantine — the chain-level analogue of [`Attempt::collective`]:
    /// a chain whose steps touch a quarantined PE degrades step-by-step
    /// up front; otherwise the whole chain runs under the per-collective
    /// recovery policy (the retry unit is the chain), clamped to the
    /// run's remaining retry budget.
    ///
    /// # Errors
    ///
    /// As [`Attempt::collective`], plus the fused-plan validation errors
    /// (staged input mismatch).
    pub fn fused(
        &mut self,
        comm: &Communicator,
        sys: &mut PimSystem,
        fused: &FusedPlan,
        staged: Option<&PreparedScatter>,
        hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
    ) -> Result<FusedVerifiedExecution> {
        fused_impl(
            self.policy,
            self.ledger,
            self.retries_used,
            self.degraded,
            self.events,
            comm,
            sys,
            fused,
            staged,
            hook,
        )
    }

    /// Read access to the run's health ledger.
    pub fn ledger(&self) -> &HealthLedger {
        self.ledger
    }
}

/// Attributes a typed fault error to its PE in the ledger.
fn record_fault(ledger: &mut HealthLedger, sys: &PimSystem, err: &Error) {
    match err {
        Error::DataCorruption { pe, .. } => ledger.record_corruption(*pe),
        Error::PeFailed { pe, .. } => {
            if sys
                .fault_plan()
                .is_some_and(|fp| fp.pe_failed_persistent(*pe))
            {
                ledger.record_failure(*pe);
            } else {
                ledger.record_stuck(*pe);
            }
        }
        _ => {}
    }
}

/// Drains every PE's corruption record; returns an error for the first
/// event on a PE the ledger has *not* quarantined (quarantined PEs'
/// residual corruption is expected — their transport is known-bad).
fn residual_fault(
    sys: &mut PimSystem,
    ledger: &HealthLedger,
    events: &mut Vec<CorruptionEvent>,
) -> Option<Error> {
    events.clear();
    sys.take_corruptions(events);
    let err = events
        .iter()
        .find(|ev| !ledger.is_quarantined(ev.pe))
        .map(|ev| Error::DataCorruption {
            pe: ev.pe,
            offset: ev.offset,
            expected: ev.expected,
            found: ev.found,
            epoch: ev.epoch,
        });
    events.clear();
    err
}

#[allow(clippy::too_many_arguments)]
fn collective_impl(
    policy: &RunPolicy,
    ledger: &mut HealthLedger,
    retries_used: &mut u32,
    degraded: &mut bool,
    events: &mut Vec<CorruptionEvent>,
    comm: &Communicator,
    sys: &mut PimSystem,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
) -> Result<VerifiedExecution> {
    // Staging writes since the last boundary may have left corruption
    // records; surface healthy PEs' now (attributed, so the iteration
    // retry can roll back) rather than letting the plan blame them on
    // itself mid-flight.
    if let Some(err) = residual_fault(sys, ledger, events) {
        return Err(err);
    }
    // Quarantine: a plan touching a known-bad PE degrades up front.
    if ledger.any_quarantined() {
        let groups = comm.manager().groups(&plan.mask)?;
        let hit = groups.iter().any(|g| {
            g.members
                .iter()
                .any(|&pe| ledger.is_quarantined(pe.index() as u32))
        });
        if hit {
            *degraded = true;
            return recovery::run_degraded(sys, comm.manager(), plan, host_in, ledger);
        }
    }
    let attempt = RecoveryPolicy {
        max_retries: policy
            .plan_attempt
            .max_retries
            .min(policy.retry_budget.saturating_sub(*retries_used)),
        degrade: policy.plan_attempt.degrade,
    };
    let exec =
        recovery::run_verified_tracked(sys, comm.manager(), plan, host_in, &attempt, Some(ledger))?;
    *retries_used += exec.retries;
    if exec.degraded {
        *degraded = true;
    }
    Ok(exec)
}

#[allow(clippy::too_many_arguments)]
fn fused_impl(
    policy: &RunPolicy,
    ledger: &mut HealthLedger,
    retries_used: &mut u32,
    degraded: &mut bool,
    events: &mut Vec<CorruptionEvent>,
    comm: &Communicator,
    sys: &mut PimSystem,
    fused: &FusedPlan,
    staged: Option<&PreparedScatter>,
    hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
) -> Result<FusedVerifiedExecution> {
    if let Some(err) = residual_fault(sys, ledger, events) {
        return Err(err);
    }
    // Quarantine: a chain whose steps touch a known-bad PE degrades up
    // front, step by step, exactly as its unfused collectives would.
    if ledger.any_quarantined() {
        let mut hit = false;
        for step in fused.steps() {
            let groups = comm.manager().groups(&step.mask)?;
            if groups.iter().any(|g| {
                g.members
                    .iter()
                    .any(|&pe| ledger.is_quarantined(pe.index() as u32))
            }) {
                hit = true;
                break;
            }
        }
        if hit {
            *degraded = true;
            return recovery::run_degraded_fused(sys, comm.manager(), fused, staged, ledger, hook);
        }
    }
    let attempt = RecoveryPolicy {
        max_retries: policy
            .plan_attempt
            .max_retries
            .min(policy.retry_budget.saturating_sub(*retries_used)),
        degrade: policy.plan_attempt.degrade,
    };
    let exec = recovery::run_verified_fused(
        sys,
        comm.manager(),
        fused,
        staged,
        &attempt,
        Some(ledger),
        hook,
    )?;
    *retries_used += exec.retries;
    if exec.degraded {
        *degraded = true;
    }
    Ok(exec)
}

//! The cluster-parallel engine must be a pure execution knob: for random
//! shapes, masks, dtypes and payloads, every thread count must produce
//! buffers and reports byte-identical to the serial reference schedule,
//! and repeated runs must be bit-for-bit reproducible.
//!
//! Inputs come from a seeded, dependency-free generator (the container has
//! no proptest), so failures reproduce exactly.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{BufferSpec, CommReport, Communicator, DimMask, HypercubeShape};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

use pim_sim::testgen::{fill_byte, SplitMix64};

fn configs() -> Vec<(Vec<usize>, DimmGeometry)> {
    vec![
        (vec![8], DimmGeometry::single_group()),
        (vec![4, 2], DimmGeometry::single_group()),
        (vec![8, 8], DimmGeometry::single_rank()),
        (vec![16, 4], DimmGeometry::single_rank()),
        (vec![4, 2, 4], DimmGeometry::new(2, 1, 2)),
        (vec![2, 8, 2], DimmGeometry::new(1, 1, 4)),
    ]
}

fn fill(sys: &mut PimSystem, bytes: usize, seed: u64) {
    for pe in sys.geometry().pes() {
        let data: Vec<u8> = (0..bytes)
            .map(|i| fill_byte(seed, pe.0 as u64, i))
            .collect();
        sys.pe_mut(pe).write(0, &data);
    }
}

/// Snapshot of every byte the run could have touched, plus the report.
#[allow(clippy::too_many_arguments)]
fn run_once(
    dims: &[usize],
    geom: DimmGeometry,
    mask_bits: &[bool],
    seed: u64,
    dtype: DType,
    op: ReduceKind,
    prim: usize,
    threads: usize,
) -> (Vec<Vec<u8>>, CommReport) {
    let shape = HypercubeShape::new(dims.to_vec()).unwrap();
    let mask = DimMask::new(mask_bits.to_vec()).unwrap();
    let n = mask.group_size(&shape).unwrap();
    let manager = HypercubeManager::new(shape, geom).unwrap();
    let comm = Communicator::new(manager).with_threads(threads);
    let mut sys = PimSystem::new(geom);
    let b = 8 * n;
    fill(&mut sys, b, seed);
    let dst = 2 * b + 128;
    let spec = BufferSpec::new(0, dst, b).with_dtype(dtype);

    let report = match prim {
        0 => comm.all_to_all(&mut sys, &mask, &spec).unwrap(),
        1 => comm.reduce_scatter(&mut sys, &mask, &spec, op).unwrap(),
        2 => comm.all_reduce(&mut sys, &mask, &spec, op).unwrap(),
        _ => comm
            .all_gather(&mut sys, &mask, &BufferSpec::new(0, dst, 16))
            .unwrap(),
    };

    // Full MRAM image: src scratch, dst window, everything.
    let extent = dst + (n + 1) * b;
    let image = geom.pes().map(|pe| sys.pe(pe).peek(0, extent)).collect();
    (image, report)
}

#[test]
fn parallel_engine_is_deterministic_and_matches_serial() {
    let mut g = SplitMix64::new(0xde7e_2111);
    for case in 0..24 {
        let (dims, geom) = g.pick(&configs());
        let mask_bits: Vec<bool> = loop {
            let bits: Vec<bool> = (0..dims.len()).map(|_| g.next_u64() % 2 == 1).collect();
            if bits.iter().any(|&b| b) {
                break bits;
            }
        };
        let seed = g.next_u64();
        let dtype = g.pick(&[DType::U8, DType::U16, DType::U32, DType::U64, DType::I32]);
        let op = g.pick(&[
            ReduceKind::Sum,
            ReduceKind::Min,
            ReduceKind::Max,
            ReduceKind::Xor,
        ]);
        let prim = (g.next_u64() % 4) as usize;

        let run = |threads| run_once(&dims, geom, &mask_bits, seed, dtype, op, prim, threads);
        let (serial_img, serial_report) = run(1);
        for threads in [0, 2, 7] {
            let (img, report) = run(threads);
            assert_eq!(
                report, serial_report,
                "case {case}: report differs at threads={threads} ({dims:?} {mask_bits:?} prim {prim})"
            );
            assert_eq!(
                img, serial_img,
                "case {case}: MRAM image differs at threads={threads} ({dims:?} {mask_bits:?} prim {prim})"
            );
        }
        // Repeated parallel runs are bit-for-bit reproducible.
        let (img_a, rep_a) = run(0);
        let (img_b, rep_b) = run(0);
        assert_eq!(rep_a, rep_b, "case {case}: report not reproducible");
        assert_eq!(img_a, img_b, "case {case}: image not reproducible");
    }
}

#[test]
fn multihost_parallel_hosts_are_deterministic() {
    let geom = DimmGeometry::single_rank();
    let mk = || {
        Communicator::new(
            HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap(),
        )
    };
    let run = || {
        let mh =
            pidcomm::MultiHost::new(vec![mk(), mk(), mk()], pidcomm::LinkModel::ethernet_10g())
                .unwrap();
        let mut systems: Vec<PimSystem> = (0..3).map(|_| PimSystem::new(geom)).collect();
        for (h, sys) in systems.iter_mut().enumerate() {
            fill(sys, 64, h as u64 + 1);
        }
        let report = mh
            .all_reduce(
                &mut systems,
                &"10".parse().unwrap(),
                &BufferSpec::new(0, 1024, 64),
                ReduceKind::Sum,
            )
            .unwrap();
        let images: Vec<Vec<u8>> = systems
            .iter()
            .flat_map(|s| geom.pes().map(|pe| s.pe(pe).peek(1024, 64)))
            .collect();
        (report, images)
    };
    let (rep_a, img_a) = run();
    let (rep_b, img_b) = run();
    assert_eq!(rep_a.local, rep_b.local);
    assert_eq!(rep_a.mpi_ns, rep_b.mpi_ns);
    assert_eq!(img_a, img_b);
}

//! Property-style tests of the domain-transfer algebra and byte-level
//! reduction arithmetic — the foundations every collective builds on.
//!
//! Inputs are drawn from a seeded, dependency-free generator (the container
//! has no proptest), so every run exercises the same fixed sample of the
//! input space and failures reproduce exactly.

use pim_sim::domain::{
    compose, invert, is_permutation, permute_lanes_raw, permute_words_host, rotation_within,
    transpose8x8, LanePerm, IDENTITY_PERM,
};
use pim_sim::dtype::{fill_identity, identity_bytes, reduce_bytes, DType, ReduceKind};

use pim_sim::testgen::SplitMix64;

/// Domain-specific draws layered over the shared [`SplitMix64`] stream.
trait DomainGen {
    fn block(&mut self) -> Vec<u8>;
    fn perm(&mut self) -> LanePerm;
    fn dtype(&mut self) -> DType;
    fn op(&mut self) -> ReduceKind;
}

impl DomainGen for SplitMix64 {
    fn block(&mut self) -> Vec<u8> {
        self.bytes(64)
    }

    fn perm(&mut self) -> LanePerm {
        let mut p = IDENTITY_PERM;
        // Fisher-Yates.
        for i in (1..8).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        p
    }

    fn dtype(&mut self) -> DType {
        self.pick(&DType::ALL)
    }

    fn op(&mut self) -> ReduceKind {
        self.pick(&ReduceKind::ALL)
    }
}

const CASES: u64 = 256;

#[test]
fn transpose_is_involution() {
    let mut g = SplitMix64::new(0x7105);
    for _ in 0..CASES {
        let mut block = g.block();
        let orig = block.clone();
        transpose8x8(&mut block);
        transpose8x8(&mut block);
        assert_eq!(block, orig);
    }
}

#[test]
fn fusion_identity_for_arbitrary_permutations() {
    // The cross-domain modulation identity holds for *any* lane
    // permutation, not just rotations.
    let mut g = SplitMix64::new(0xf051);
    for _ in 0..CASES {
        let block = g.block();
        let perm = g.perm();

        let mut via_raw = block.clone();
        permute_lanes_raw(&mut via_raw, &perm);

        let mut via_host = block.clone();
        transpose8x8(&mut via_host);
        permute_words_host(&mut via_host, &perm);
        transpose8x8(&mut via_host);

        assert_eq!(via_raw, via_host, "perm {perm:?}");
    }
}

#[test]
fn permutation_inverse_roundtrips() {
    let mut g = SplitMix64::new(0x1417);
    for _ in 0..CASES {
        let block = g.block();
        let perm = g.perm();
        let mut b = block.clone();
        permute_words_host(&mut b, &perm);
        permute_words_host(&mut b, &invert(&perm));
        assert_eq!(b, block, "perm {perm:?}");
    }
}

#[test]
fn compose_matches_sequential_application() {
    let mut g = SplitMix64::new(0xc0135);
    for _ in 0..CASES {
        let block = g.block();
        let (a, b) = (g.perm(), g.perm());
        let mut seq = block.clone();
        permute_lanes_raw(&mut seq, &a);
        permute_lanes_raw(&mut seq, &b);
        let mut fused = block.clone();
        permute_lanes_raw(&mut fused, &compose(&a, &b));
        assert_eq!(seq, fused, "a {a:?} b {b:?}");
    }
}

#[test]
fn rotations_compose_and_invert() {
    let mut g = SplitMix64::new(0x5075);
    for _ in 0..CASES {
        // Non-empty random subsequence of the 8 lanes.
        let bits = 1 + (g.next_u64() % 255) as u8;
        let lanes: Vec<usize> = (0..8).filter(|&l| bits & (1 << l) != 0).collect();
        let l = lanes.len();
        let r = (g.next_u64() % 8) as usize;
        let fwd = rotation_within(&lanes, r % l);
        assert!(is_permutation(&fwd));
        let back = rotation_within(&lanes, (l - r % l) % l);
        assert_eq!(compose(&fwd, &back), IDENTITY_PERM, "lanes {lanes:?} r {r}");
    }
}

#[test]
fn reduction_is_commutative() {
    let mut g = SplitMix64::new(0xc033);
    for _ in 0..CASES {
        let (a, b) = (g.block(), g.block());
        let (op, dt) = (g.op(), g.dtype());
        let mut ab = a.clone();
        reduce_bytes(op, dt, &mut ab, &b);
        let mut ba = b.clone();
        reduce_bytes(op, dt, &mut ba, &a);
        assert_eq!(ab, ba, "{op} {dt}");
    }
}

#[test]
fn reduction_is_associative() {
    let mut g = SplitMix64::new(0xa550c);
    for _ in 0..CASES {
        let (a, b, c) = (g.block(), g.block(), g.block());
        let (op, dt) = (g.op(), g.dtype());
        // (a . b) . c == a . (b . c)
        let mut left = a.clone();
        reduce_bytes(op, dt, &mut left, &b);
        reduce_bytes(op, dt, &mut left, &c);

        let mut bc = b.clone();
        reduce_bytes(op, dt, &mut bc, &c);
        let mut right = a.clone();
        reduce_bytes(op, dt, &mut right, &bc);

        assert_eq!(left, right, "{op} {dt}");
    }
}

#[test]
fn identity_is_left_neutral() {
    let mut g = SplitMix64::new(0x1de47);
    for _ in 0..CASES {
        let a = g.block();
        let (op, dt) = (g.op(), g.dtype());
        let mut acc = vec![0u8; 64];
        fill_identity(op, dt, &mut acc);
        reduce_bytes(op, dt, &mut acc, &a);
        assert_eq!(acc, a, "{op} {dt}");
        assert_eq!(identity_bytes(op, dt).len(), dt.size_bytes());
    }
}

#[test]
fn reduction_order_of_many_operands_is_irrelevant() {
    let mut g = SplitMix64::new(0x0bde5);
    for _ in 0..CASES {
        let blocks: Vec<Vec<u8>> = (0..2 + (g.next_u64() % 4)).map(|_| g.block()).collect();
        let (op, dt) = (g.op(), g.dtype());
        let seed = g.next_u64();
        // Fold in natural order vs a shuffled order — collectives are free
        // to accumulate group members in any schedule.
        let mut fwd = vec![0u8; 64];
        fill_identity(op, dt, &mut fwd);
        for b in &blocks {
            reduce_bytes(op, dt, &mut fwd, b);
        }

        let mut order: Vec<usize> = (0..blocks.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (seed as usize).wrapping_mul(i + 7) % (i + 1));
        }
        let mut shuf = vec![0u8; 64];
        fill_identity(op, dt, &mut shuf);
        for &i in &order {
            reduce_bytes(op, dt, &mut shuf, &blocks[i]);
        }
        assert_eq!(fwd, shuf, "{op} {dt} order {order:?}");
    }
}

//! simlint CLI.
//!
//! ```text
//! simlint                      lint the workspace rooted at --root (default .)
//! simlint <file>...            lint specific files (fixture paths get the
//!                              policy their path suffix selects)
//! simlint --explain <lint>     print the contract a lint enforces
//! simlint --list               list the lints
//! ```
//!
//! Exit codes: 0 clean, 1 lint errors found, 2 usage/IO error.

use pidcomm_lint::lints::Lint;
use pidcomm_lint::{lint_files, lint_workspace, load_allowlist, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--root <dir>] [<file>...]\n\
         \x20      simlint --explain <lint>\n\
         \x20      simlint --list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(name) = args.next() else {
                    return usage();
                };
                match Lint::from_name(&name) {
                    Some(lint) => {
                        println!("{}", lint.explain());
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown lint `{name}`; known lints: {}",
                            Lint::ALL.map(|l| l.name()).join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--list" => {
                for lint in Lint::ALL {
                    let first = lint.explain().lines().next().unwrap_or("");
                    println!("{first}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    let report = if files.is_empty() {
        lint_workspace(&root)
    } else {
        let allowlist = load_allowlist(&root);
        lint_files(&root, &files, &allowlist)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    render(&report)
}

fn render(report: &Report) -> ExitCode {
    for diag in &report.diags {
        eprintln!("{diag}\n");
    }

    if !report.allows.is_empty() {
        eprintln!(
            "simlint: {} allow directive(s) in effect:",
            report.allows.len()
        );
        for a in &report.allows {
            eprintln!(
                "  {}:{} allow({}) x{} — {}",
                a.path,
                a.line,
                a.lint.name(),
                a.suppressed,
                a.reason
            );
        }
        eprintln!();
    }

    let errors = report.error_count();
    let warnings = report.warning_count();
    eprintln!(
        "simlint: {} file(s) checked, {errors} error(s), {warnings} warning(s), \
         {} allow(s) used",
        report.files_checked,
        report.allows.len()
    );

    if errors > 0 {
        eprintln!("simlint: run `simlint --explain <lint>` for the contract behind a diagnostic");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

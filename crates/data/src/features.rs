//! Dense integer feature matrices for GNN and MLP workloads.
//!
//! Integer features keep the simulated PIM arithmetic bit-exact against the
//! CPU references (the paper's INT8/16/32 sensitivity study, §VIII-F, is
//! integer as well).

/// A dense row-major `rows × cols` matrix of `i32` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatI32 {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl MatI32 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a deterministic pseudo-random matrix with entries in
    /// `[-bound, bound)`.
    pub fn random(rows: usize, cols: usize, bound: i32, seed: u64) -> Self {
        assert!(bound > 0, "bound must be positive");
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows * cols {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed.rotate_left(17))
                ^ seed;
            let mixed = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            data.push(((mixed >> 33) as i32).rem_euclid(2 * bound) - bound);
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[i32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [i32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> i32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: i32) {
        self.data[r * self.cols + c] = v;
    }

    /// The flat backing slice (row-major).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// The flat backing slice, mutably (row-major) — the entry point for
    /// chunked typed-lane decodes straight into the matrix.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Dense matrix multiply `self × rhs` with wrapping arithmetic (the
    /// same semantics the PE kernels use).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &MatI32) -> MatI32 {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = MatI32::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j).wrapping_add(a.wrapping_mul(rhs.get(k, j)));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Serializes the matrix to little-endian bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.data.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Deserializes a `rows × cols` matrix from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if the byte length does not match.
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), rows * cols * 4, "byte length mismatch");
        let data = bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Self { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = MatI32::random(8, 8, 10, 42);
        let b = MatI32::random(8, 8, 10, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-10..10).contains(&v)));
        assert_ne!(a, MatI32::random(8, 8, 10, 43));
    }

    #[test]
    fn matmul_identity() {
        let mut eye = MatI32::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1);
        }
        let m = MatI32::random(3, 3, 5, 1);
        assert_eq!(m.matmul(&eye), m);
    }

    #[test]
    fn matmul_small_case() {
        let mut a = MatI32::zeros(2, 2);
        a.set(0, 0, 1);
        a.set(0, 1, 2);
        a.set(1, 0, 3);
        a.set(1, 1, 4);
        let b = a.clone();
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 7);
        assert_eq!(c.get(0, 1), 10);
        assert_eq!(c.get(1, 0), 15);
        assert_eq!(c.get(1, 1), 22);
    }

    #[test]
    fn byte_roundtrip() {
        let m = MatI32::random(4, 6, 100, 9);
        let bytes = m.to_le_bytes();
        assert_eq!(MatI32::from_le_bytes(4, 6, &bytes), m);
    }

    #[test]
    fn row_access() {
        let mut m = MatI32::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[7, 8, 9]);
        assert_eq!(m.row(1), &[7, 8, 9]);
        assert_eq!(m.get(1, 2), 9);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}

//! Property-based tests: the streaming engine must match the functional
//! oracle for randomly drawn shapes, masks, payload sizes and data.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{oracle, BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};
use proptest::prelude::*;

/// Shape/geometry pairs covering sub-lane, strided, multi-EG and
/// straddling group structures (kept small so proptest stays fast).
fn arb_config() -> impl Strategy<Value = (Vec<usize>, DimmGeometry)> {
    prop::sample::select(vec![
        (vec![8], DimmGeometry::single_group()),
        (vec![4, 2], DimmGeometry::single_group()),
        (vec![2, 2, 2], DimmGeometry::single_group()),
        (vec![8, 8], DimmGeometry::single_rank()),
        (vec![16, 4], DimmGeometry::single_rank()),
        (vec![4, 2, 4], DimmGeometry::new(2, 1, 2)),
        (vec![2, 8, 2], DimmGeometry::new(1, 1, 4)),
    ])
}

fn fill(sys: &mut PimSystem, bytes: usize, seed: u64) {
    for pe in sys.geometry().pes() {
        let data: Vec<u8> = (0..bytes)
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((pe.0 as u64) << 32)
                    .wrapping_add(i as u64);
                (x ^ (x >> 29)).wrapping_mul(0xbf58476d1ce4e5b9) as u8
            })
            .collect();
        sys.pe_mut(pe).write(0, &data);
    }
}

fn setup(
    dims: &[usize],
    geom: DimmGeometry,
    mask_bits: &[bool],
) -> (PimSystem, Communicator, DimMask, usize) {
    let shape = HypercubeShape::new(dims.to_vec()).unwrap();
    let mask = DimMask::new(mask_bits.to_vec()).unwrap();
    let n = mask.group_size(&shape).unwrap();
    let manager = HypercubeManager::new(shape, geom).unwrap();
    (PimSystem::new(geom), Communicator::new(manager), mask, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alltoall_matches_oracle(
        (dims, geom) in arb_config(),
        bits in proptest::collection::vec(any::<bool>(), 3),
        mult in 1usize..3,
        seed in any::<u64>(),
        opt in prop::sample::select(vec![OptLevel::Baseline, OptLevel::PeReorder, OptLevel::Full]),
    ) {
        let rank = dims.len();
        let mask_bits: Vec<bool> = (0..rank).map(|d| bits.get(d).copied().unwrap_or(false)).collect();
        prop_assume!(mask_bits.iter().any(|&b| b));
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n * mult;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for g in &groups {
            let inputs: Vec<Vec<u8>> =
                g.members.iter().map(|&pe| sys.pe_mut(pe).read(0, b).to_vec()).collect();
            expected.push(oracle::alltoall(&inputs));
        }

        let dst = 2 * b + 128;
        comm.with_opt(opt)
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, dst, b))
            .unwrap();

        for (g, want) in groups.iter().zip(&expected) {
            for (&pe, w) in g.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                prop_assert_eq!(&got, w);
            }
        }
    }

    #[test]
    fn allreduce_matches_oracle(
        (dims, geom) in arb_config(),
        bits in proptest::collection::vec(any::<bool>(), 3),
        seed in any::<u64>(),
        dtype in prop::sample::select(vec![DType::U8, DType::U16, DType::U32, DType::U64, DType::I32]),
        op in prop::sample::select(vec![ReduceKind::Sum, ReduceKind::Min, ReduceKind::Max, ReduceKind::Or]),
    ) {
        let rank = dims.len();
        let mask_bits: Vec<bool> = (0..rank).map(|d| bits.get(d).copied().unwrap_or(false)).collect();
        prop_assume!(mask_bits.iter().any(|&b| b));
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for g in &groups {
            let inputs: Vec<Vec<u8>> =
                g.members.iter().map(|&pe| sys.pe_mut(pe).read(0, b).to_vec()).collect();
            expected.push(oracle::all_reduce(&inputs, op, dtype));
        }

        let dst = 2 * b + 128;
        comm.all_reduce(&mut sys, &mask, &BufferSpec::new(0, dst, b).with_dtype(dtype), op)
            .unwrap();

        for (g, want) in groups.iter().zip(&expected) {
            for (&pe, w) in g.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                prop_assert_eq!(&got, w);
            }
        }
    }

    #[test]
    fn allgather_matches_oracle(
        (dims, geom) in arb_config(),
        bits in proptest::collection::vec(any::<bool>(), 3),
        mult in 1usize..4,
        seed in any::<u64>(),
    ) {
        let rank = dims.len();
        let mask_bits: Vec<bool> = (0..rank).map(|d| bits.get(d).copied().unwrap_or(false)).collect();
        prop_assume!(mask_bits.iter().any(|&b| b));
        let (mut sys, comm, mask, _n) = setup(&dims, geom, &mask_bits);
        let b = 8 * mult;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for g in &groups {
            let inputs: Vec<Vec<u8>> =
                g.members.iter().map(|&pe| sys.pe_mut(pe).read(0, b).to_vec()).collect();
            expected.push(oracle::all_gather(&inputs));
        }

        let dst = 4096;
        comm.all_gather(&mut sys, &mask, &BufferSpec::new(0, dst, b)).unwrap();

        for (g, want) in groups.iter().zip(&expected) {
            for (&pe, w) in g.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, w.len()).to_vec();
                prop_assert_eq!(&got, w);
            }
        }
    }

    #[test]
    fn every_report_has_positive_time_and_bus_traffic(
        (dims, geom) in arb_config(),
        seed in any::<u64>(),
    ) {
        let rank = dims.len();
        let mask_bits = vec![true; rank];
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n;
        fill(&mut sys, b, seed);
        let report = comm
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 2 * b + 128, b))
            .unwrap();
        prop_assert!(report.time_ns() > 0.0);
        prop_assert!(report.breakdown.pe_mem_access > 0.0);
        prop_assert!(report.throughput_gbps() > 0.0);
        prop_assert_eq!(report.group_size, n);
    }
}

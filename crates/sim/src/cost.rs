//! Analytic timing model and execution-time breakdown accounting.
//!
//! The simulator executes collectives functionally (bytes really move) and
//! charges each step to one of the breakdown categories the paper reports
//! in Figures 4, 13 and 17. Absolute nanoseconds are calibrated against
//! published UPMEM measurements, not measured on hardware; what matters for
//! the reproduction is the *shape*: which component dominates, which
//! technique removes which component, and how the totals scale.

use core::fmt;
use core::ops::{Add, AddAssign};

use crate::geometry::{DimmGeometry, BURST_BYTES};

/// Execution-time breakdown, in nanoseconds, using the paper's categories.
///
/// `kernel` is used by applications for PE compute time (the "Kernel" bar of
/// Fig. 13); pure communication reports leave it at zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Host-side domain transfers (the 8×8 byte transposes).
    pub domain_transfer: f64,
    /// Host-side data modulation in vector registers (shifts, shuffles,
    /// vertical SIMD reductions).
    pub host_modulation: f64,
    /// Host DRAM traffic for staging/modulating data in host memory
    /// (the baseline's dominant cost; removed by in-register modulation).
    pub host_mem_access: f64,
    /// Host↔PIM bus transfers ("PE Mem Access" in the paper's figures).
    pub pe_mem_access: f64,
    /// PE-side reorder kernels (PE-assisted reordering).
    pub pe_modulation: f64,
    /// PE compute kernels of applications.
    pub kernel: f64,
    /// Kernel-launch and synchronization overheads.
    pub other: f64,
}

impl Breakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total time across all categories, in nanoseconds.
    pub fn total(&self) -> f64 {
        self.domain_transfer
            + self.host_modulation
            + self.host_mem_access
            + self.pe_mem_access
            + self.pe_modulation
            + self.kernel
            + self.other
    }

    /// Communication-only time (everything except `kernel`).
    pub fn comm_total(&self) -> f64 {
        self.total() - self.kernel
    }

    /// Adds `ns` nanoseconds to the given category.
    pub fn charge(&mut self, cat: Category, ns: f64) {
        debug_assert!(ns >= 0.0 && ns.is_finite(), "invalid charge {ns}");
        match cat {
            Category::DomainTransfer => self.domain_transfer += ns,
            Category::HostModulation => self.host_modulation += ns,
            Category::HostMemAccess => self.host_mem_access += ns,
            Category::PeMemAccess => self.pe_mem_access += ns,
            Category::PeModulation => self.pe_modulation += ns,
            Category::Kernel => self.kernel += ns,
            Category::Other => self.other += ns,
        }
    }

    /// Value of the given category.
    pub fn get(&self, cat: Category) -> f64 {
        match cat {
            Category::DomainTransfer => self.domain_transfer,
            Category::HostModulation => self.host_modulation,
            Category::HostMemAccess => self.host_mem_access,
            Category::PeMemAccess => self.pe_mem_access,
            Category::PeModulation => self.pe_modulation,
            Category::Kernel => self.kernel,
            Category::Other => self.other,
        }
    }

    /// The difference `self - earlier`, clamped at zero per category.
    /// Used to compute the cost of an interval from two meter snapshots.
    pub fn since(&self, earlier: &Breakdown) -> Breakdown {
        Breakdown {
            domain_transfer: (self.domain_transfer - earlier.domain_transfer).max(0.0),
            host_modulation: (self.host_modulation - earlier.host_modulation).max(0.0),
            host_mem_access: (self.host_mem_access - earlier.host_mem_access).max(0.0),
            pe_mem_access: (self.pe_mem_access - earlier.pe_mem_access).max(0.0),
            pe_modulation: (self.pe_modulation - earlier.pe_modulation).max(0.0),
            kernel: (self.kernel - earlier.kernel).max(0.0),
            other: (self.other - earlier.other).max(0.0),
        }
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(mut self, rhs: Breakdown) -> Breakdown {
        self += rhs;
        self
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        self.domain_transfer += rhs.domain_transfer;
        self.host_modulation += rhs.host_modulation;
        self.host_mem_access += rhs.host_mem_access;
        self.pe_mem_access += rhs.pe_mem_access;
        self.pe_modulation += rhs.pe_modulation;
        self.kernel += rhs.kernel;
        self.other += rhs.other;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} us (DT {:.1}, host-mod {:.1}, host-mem {:.1}, pe-mem {:.1}, pe-mod {:.1}, kernel {:.1}, other {:.1})",
            self.total() / 1e3,
            self.domain_transfer / 1e3,
            self.host_modulation / 1e3,
            self.host_mem_access / 1e3,
            self.pe_mem_access / 1e3,
            self.pe_modulation / 1e3,
            self.kernel / 1e3,
            self.other / 1e3,
        )
    }
}

/// Breakdown category, matching the paper's Fig. 17 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Host-side domain transfer.
    DomainTransfer,
    /// Host-side in-register modulation.
    HostModulation,
    /// Host DRAM staging traffic.
    HostMemAccess,
    /// Host↔PIM bus transfers.
    PeMemAccess,
    /// PE-side reorder kernels.
    PeModulation,
    /// PE compute kernels (applications only).
    Kernel,
    /// Launch/sync overheads.
    Other,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 7] = [
        Category::DomainTransfer,
        Category::HostModulation,
        Category::HostMemAccess,
        Category::PeMemAccess,
        Category::PeModulation,
        Category::Kernel,
        Category::Other,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::DomainTransfer => "domain-transfer",
            Category::HostModulation => "host-modulation",
            Category::HostMemAccess => "host-mem-access",
            Category::PeMemAccess => "pe-mem-access",
            Category::PeModulation => "pe-modulation",
            Category::Kernel => "kernel",
            Category::Other => "other",
        };
        f.write_str(s)
    }
}

/// Calibrated timing parameters of the simulated system.
///
/// All rates are bytes per nanosecond (= GB/s); all fixed costs are
/// nanoseconds. Defaults ([`TimeModel::upmem`]) approximate the paper's
/// testbed: an Intel Xeon Gold 5215 host with AVX-512 and four channels of
/// DDR4-2400 UPMEM DIMMs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeModel {
    /// Peak bandwidth of one memory channel (DDR4-2400: 19.2 GB/s).
    pub channel_bw: f64,
    /// Fraction of channel peak reachable by the driver's bulk rank-wide
    /// copies (the conventional path's transfers).
    pub bus_efficiency: f64,
    /// Fraction of channel peak reachable by the optimized engine's
    /// burst-granular streaming to scattered offsets. Lower than bulk —
    /// bursts hop between MRAM rows of different entangled groups.
    pub streamed_bus_efficiency: f64,
    /// Host clock in GHz; vector-register op costs are expressed in cycles
    /// and divided by this.
    pub host_clock_ghz: f64,
    /// Effective host cycles to domain-transfer one 64-byte block. This is
    /// a *pool* value: the UPMEM driver runs DT on several worker threads,
    /// so the per-block charge is the single-thread cost divided by the
    /// pool parallelism.
    pub dt_cycles_per_block: f64,
    /// Effective host cycles for one in-register permutation/shift of a
    /// 64-byte block (pool value).
    pub shuffle_cycles_per_block: f64,
    /// Effective host cycles for one vertical SIMD reduction of a 64-byte
    /// block (pool value).
    pub reduce_cycles_per_block: f64,
    /// Effective host-DRAM bandwidth for streaming copies.
    pub host_mem_stream_bw: f64,
    /// Effective host-DRAM bandwidth for the baseline's word-granular
    /// global modulation pass (reads + writes with poor locality).
    pub host_mem_scatter_bw: f64,
    /// Effective host-DRAM bandwidth for the baseline's in-memory reduction
    /// pass (dependent read-modify-write chains; §VIII-D notes host
    /// reduction is more computation-intensive than reordering).
    pub host_mem_reduce_bw: f64,
    /// Per-PE MRAM↔WRAM streaming bandwidth available to reorder kernels
    /// (tasklet-pipelined DMA).
    pub pe_mram_bw: f64,
    /// Extra PE cycles per byte spent shifting/permuting in WRAM.
    pub pe_reorder_cycles_per_byte: f64,
    /// PE clock in GHz (UPMEM DPUs run at ~350 MHz).
    pub pe_clock_ghz: f64,
    /// Fixed cost of launching a PIM kernel across the system.
    pub kernel_launch_ns: f64,
    /// Fixed cost of setting up one host↔PIM transfer phase.
    pub transfer_setup_ns: f64,
}

impl TimeModel {
    /// Parameters calibrated against the paper's UPMEM testbed (Intel Xeon
    /// Gold 5215, 4 channels of DDR4-2400 UPMEM DIMMs). Absolute rates are
    /// *effective* values fitted so the primitive throughputs and
    /// improvement factors of Figures 14, 16 and 17 are reproduced in
    /// shape; see EXPERIMENTS.md for the fit.
    pub fn upmem() -> Self {
        Self {
            channel_bw: 19.2,
            bus_efficiency: 0.88,
            streamed_bus_efficiency: 0.55,
            host_clock_ghz: 2.5,
            dt_cycles_per_block: 2.4,
            shuffle_cycles_per_block: 0.4,
            reduce_cycles_per_block: 1.28,
            host_mem_stream_bw: 40.0,
            host_mem_scatter_bw: 11.2,
            host_mem_reduce_bw: 9.8,
            pe_mram_bw: 2.8,
            pe_reorder_cycles_per_byte: 0.0,
            pe_clock_ghz: 0.35,
            kernel_launch_ns: 12_000.0,
            transfer_setup_ns: 2_000.0,
        }
    }

    /// Nanoseconds to move `bytes_per_channel[c]` bytes over each channel
    /// `c` in bulk mode; channels proceed in parallel, so the slowest
    /// channel defines the phase time.
    pub fn bus_time(&self, bytes_per_channel: &[u64]) -> f64 {
        let max = bytes_per_channel.iter().copied().max().unwrap_or(0);
        max as f64 / (self.channel_bw * self.bus_efficiency)
    }

    /// Nanoseconds to move `bytes_per_channel[c]` bytes over each channel
    /// in burst-granular streaming mode.
    pub fn streamed_bus_time(&self, bytes_per_channel: &[u64]) -> f64 {
        let max = bytes_per_channel.iter().copied().max().unwrap_or(0);
        max as f64 / (self.channel_bw * self.streamed_bus_efficiency)
    }

    /// Nanoseconds to move `total_bytes` spread evenly over all channels of
    /// `geom` in bulk mode.
    pub fn bus_time_even(&self, geom: &DimmGeometry, total_bytes: u64) -> f64 {
        let per = total_bytes.div_ceil(geom.channels() as u64);
        self.bus_time(&vec![per; geom.channels()])
    }

    /// Nanoseconds of host time to domain-transfer `blocks` 64-byte blocks.
    pub fn dt_time(&self, blocks: u64) -> f64 {
        blocks as f64 * self.dt_cycles_per_block / self.host_clock_ghz
    }

    /// Nanoseconds of host time for `blocks` in-register shuffles.
    pub fn shuffle_time(&self, blocks: u64) -> f64 {
        blocks as f64 * self.shuffle_cycles_per_block / self.host_clock_ghz
    }

    /// Nanoseconds of host time for `blocks` vertical SIMD reductions.
    pub fn reduce_time(&self, blocks: u64) -> f64 {
        blocks as f64 * self.reduce_cycles_per_block / self.host_clock_ghz
    }

    /// Nanoseconds for a streaming host-memory pass over `bytes`
    /// (`passes` = number of read+write traversals).
    pub fn host_stream_time(&self, bytes: u64, passes: f64) -> f64 {
        bytes as f64 * passes / self.host_mem_stream_bw
    }

    /// Nanoseconds for the baseline's word-granular modulation pass over
    /// `bytes` in host memory.
    pub fn host_scatter_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.host_mem_scatter_bw
    }

    /// Nanoseconds for the baseline's in-memory reduction pass over `bytes`.
    pub fn host_reduce_mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.host_mem_reduce_bw
    }

    /// Nanoseconds for a PE to stream `bytes` through WRAM and permute them
    /// locally. All PEs run in parallel, so callers pass the *maximum*
    /// per-PE byte count.
    pub fn pe_reorder_time(&self, bytes_per_pe: u64) -> f64 {
        // Read + write through MRAM plus register shifting work.
        let mram = 2.0 * bytes_per_pe as f64 / self.pe_mram_bw;
        let alu = bytes_per_pe as f64 * self.pe_reorder_cycles_per_byte / self.pe_clock_ghz;
        mram + alu
    }

    /// Convenience: number of 64-byte blocks covering `bytes`.
    pub fn blocks(bytes: u64) -> u64 {
        bytes.div_ceil(BURST_BYTES as u64)
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_charges() {
        let mut b = Breakdown::new();
        b.charge(Category::DomainTransfer, 10.0);
        b.charge(Category::PeMemAccess, 5.0);
        b.charge(Category::Kernel, 100.0);
        assert_eq!(b.total(), 115.0);
        assert_eq!(b.comm_total(), 15.0);
        assert_eq!(b.get(Category::DomainTransfer), 10.0);
    }

    #[test]
    fn breakdown_add_and_since() {
        let mut a = Breakdown::new();
        a.charge(Category::Other, 1.0);
        let mut b = a;
        b.charge(Category::Other, 2.0);
        b.charge(Category::HostModulation, 4.0);
        let delta = b.since(&a);
        assert_eq!(delta.other, 2.0);
        assert_eq!(delta.host_modulation, 4.0);
        let sum = a + delta;
        assert_eq!(sum.total(), b.total());
    }

    #[test]
    fn bus_time_takes_slowest_channel() {
        let m = TimeModel::upmem();
        let skewed = m.bus_time(&[1_000_000, 10, 10, 10]);
        let even = m.bus_time(&[1_000_000; 4]);
        assert!(
            (skewed - even).abs() < 1e-9,
            "parallel channels: max governs"
        );
        assert!(m.bus_time(&[2_000_000, 0, 0, 0]) > skewed);
    }

    #[test]
    fn bus_time_even_splits_across_channels() {
        let m = TimeModel::upmem();
        let g4 = DimmGeometry::upmem_1024();
        let g1 = DimmGeometry::upmem_256();
        let t4 = m.bus_time_even(&g4, 4_000_000);
        let t1 = m.bus_time_even(&g1, 4_000_000);
        assert!((t1 / t4 - 4.0).abs() < 0.01, "4 channels are 4x faster");
    }

    #[test]
    fn scatter_is_slower_than_stream() {
        let m = TimeModel::upmem();
        assert!(m.host_scatter_time(1 << 20) > m.host_stream_time(1 << 20, 1.0));
    }

    #[test]
    fn register_ops_are_cheaper_than_dt() {
        let m = TimeModel::upmem();
        assert!(m.shuffle_time(1000) < m.dt_time(1000));
    }

    #[test]
    fn blocks_round_up() {
        assert_eq!(TimeModel::blocks(0), 0);
        assert_eq!(TimeModel::blocks(1), 1);
        assert_eq!(TimeModel::blocks(64), 1);
        assert_eq!(TimeModel::blocks(65), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let b = Breakdown::new();
        assert!(!format!("{b}").is_empty());
        assert_eq!(format!("{}", Category::PeMemAccess), "pe-mem-access");
    }
}

//! Minimal deterministic fan-out over scoped threads.
//!
//! The container has no rayon; `std::thread::scope` is all the engine
//! needs. Work items are statically partitioned into contiguous chunks —
//! cluster workloads are homogeneous, so static splitting is both fair and
//! deterministic — and every item's results land in its own slot, so the
//! merge order never depends on scheduling.

/// The machine's automatic thread budget: the `PIDCOMM_THREADS`
/// environment variable if set, otherwise the available parallelism.
///
/// Exported (as `pidcomm::auto_threads`) so every layer that splits this
/// budget — the engine's cluster fan-out, the multi-host fan-out and the
/// benchmark sweep pool — resolves it by one set of rules.
pub fn auto_threads() -> usize {
    std::env::var("PIDCOMM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Resolves a thread-count request: `0` means auto ([`auto_threads`]),
/// and the result is clamped to the number of work items.
pub(crate) fn effective_threads(requested: usize, work_items: usize) -> usize {
    let t = if requested == 0 {
        auto_threads()
    } else {
        requested
    };
    t.clamp(1, work_items.max(1))
}

/// Runs `f` on every item, on up to `threads` scoped worker threads.
///
/// With `threads <= 1` the items run on the caller's thread in order — the
/// serial reference path. Parallel runs produce byte-identical outcomes
/// because items only mutate themselves (the engine gives each cluster a
/// disjoint [`pim_sim::system::EgView`] and a private cost sheet).
pub(crate) fn par_for_each<T: Send>(items: &mut [T], threads: usize, f: impl Fn(&mut T) + Sync) {
    if threads <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for part in items.chunks_mut(chunk) {
            s.spawn(|| {
                for item in part {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(8, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        for threads in [1, 2, 7, 64] {
            let mut items: Vec<usize> = vec![0; 33];
            par_for_each(&mut items, threads, |x| *x += 1);
            assert!(items.iter().all(|&x| x == 1), "threads={threads}");
        }
    }
}

//! Primitives, optimization techniques and their applicability (Table II).

use core::fmt;

/// The eight collective communication primitives supported by PID-Comm
/// (Fig. 2 / Fig. 10c of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Every node sends a distinct chunk to every other node.
    AlltoAll,
    /// Chunks are reduced element-wise; node `d` receives reduced chunk `d`.
    ReduceScatter,
    /// Every node ends with the element-wise reduction of all inputs.
    AllReduce,
    /// Every node ends with the concatenation of all inputs.
    AllGather,
    /// The host (root) distributes a distinct chunk to every node.
    Scatter,
    /// The host (root) collects every node's chunk.
    Gather,
    /// The host (root) receives the element-wise reduction of all inputs.
    Reduce,
    /// The host (root) sends the same data to every node.
    Broadcast,
}

impl Primitive {
    /// All primitives, in the paper's Table I column order.
    pub const ALL: [Primitive; 8] = [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
        Primitive::Scatter,
        Primitive::Gather,
        Primitive::Reduce,
        Primitive::Broadcast,
    ];

    /// Short name used in reports (matching the paper's abbreviations).
    pub fn abbrev(self) -> &'static str {
        match self {
            Primitive::AlltoAll => "AA",
            Primitive::ReduceScatter => "RS",
            Primitive::AllReduce => "AR",
            Primitive::AllGather => "AG",
            Primitive::Scatter => "Sc",
            Primitive::Gather => "Ga",
            Primitive::Reduce => "Re",
            Primitive::Broadcast => "Br",
        }
    }

    /// Whether the primitive performs arithmetic reduction (and therefore
    /// requires domain transfer for multi-byte element types).
    pub fn is_reducing(self) -> bool {
        matches!(
            self,
            Primitive::ReduceScatter | Primitive::AllReduce | Primitive::Reduce
        )
    }

    /// Whether the host acts as the root (Sc/Ga/Re/Br).
    pub fn is_rooted(self) -> bool {
        matches!(
            self,
            Primitive::Scatter | Primitive::Gather | Primitive::Reduce | Primitive::Broadcast
        )
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Primitive::AlltoAll => "AlltoAll",
            Primitive::ReduceScatter => "ReduceScatter",
            Primitive::AllReduce => "AllReduce",
            Primitive::AllGather => "AllGather",
            Primitive::Scatter => "Scatter",
            Primitive::Gather => "Gather",
            Primitive::Reduce => "Reduce",
            Primitive::Broadcast => "Broadcast",
        };
        f.write_str(s)
    }
}

/// The three optimization techniques of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// PE-assisted reordering: PEs pre-/post-permute their local data so
    /// host-side movement becomes register-local.
    PeReorder,
    /// In-register modulation: host-side modulation stays inside vector
    /// registers, eliminating host-memory staging.
    InRegister,
    /// Cross-domain modulation: fuses DT ∘ word-shift ∘ DT into one
    /// byte-level shuffle, eliminating domain transfer for non-arithmetic
    /// primitives.
    CrossDomain,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::PeReorder => "PE-assisted reordering",
            Technique::InRegister => "in-register modulation",
            Technique::CrossDomain => "cross-domain modulation",
        };
        f.write_str(s)
    }
}

/// Which techniques apply to which primitive — the paper's Table II.
///
/// Broadcast uses the native driver path and benefits from none; the rooted
/// halves inherit the applicable halves of RS/AG.
pub fn technique_applies(primitive: Primitive, technique: Technique) -> bool {
    use Primitive::*;
    use Technique::*;
    match technique {
        PeReorder => matches!(
            primitive,
            AlltoAll | ReduceScatter | AllReduce | AllGather | Reduce
        ),
        InRegister => matches!(
            primitive,
            AlltoAll | ReduceScatter | AllReduce | AllGather | Scatter | Gather | Reduce
        ),
        CrossDomain => matches!(primitive, AlltoAll | AllGather),
    }
}

/// Cumulative optimization level, mirroring the paper's ablation study
/// (Fig. 16): `Base → +PR → +IM → +CM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Conventional CPU-mediated path: full domain transfer and global data
    /// modulation in host memory (UPMEM SDK / SimplePIM style).
    Baseline,
    /// Adds PE-assisted reordering.
    PeReorder,
    /// Adds in-register modulation.
    InRegister,
    /// Adds cross-domain modulation — the full PID-Comm design.
    #[default]
    Full,
}

impl OptLevel {
    /// All levels in ablation order.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::Baseline,
        OptLevel::PeReorder,
        OptLevel::InRegister,
        OptLevel::Full,
    ];

    /// Whether `technique` is enabled at this level *and* applicable to
    /// `primitive`.
    pub fn enables(self, technique: Technique, primitive: Primitive) -> bool {
        let level_on = match technique {
            Technique::PeReorder => self >= OptLevel::PeReorder,
            Technique::InRegister => self >= OptLevel::InRegister,
            Technique::CrossDomain => self >= OptLevel::Full,
        };
        level_on && technique_applies(primitive, technique)
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::Baseline => "Base",
            OptLevel::PeReorder => "+PR",
            OptLevel::InRegister => "+IM",
            OptLevel::Full => "+CM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_counts() {
        let count = |t: Technique| {
            Primitive::ALL
                .iter()
                .filter(|&&p| technique_applies(p, t))
                .count()
        };
        assert_eq!(count(Technique::PeReorder), 5);
        assert_eq!(count(Technique::InRegister), 7);
        assert_eq!(count(Technique::CrossDomain), 2);
    }

    #[test]
    fn broadcast_gets_no_techniques() {
        for t in [
            Technique::PeReorder,
            Technique::InRegister,
            Technique::CrossDomain,
        ] {
            assert!(!technique_applies(Primitive::Broadcast, t));
        }
    }

    #[test]
    fn cross_domain_only_for_non_arithmetic() {
        for p in Primitive::ALL {
            if technique_applies(p, Technique::CrossDomain) {
                assert!(!p.is_reducing(), "{p} reduces but claims cross-domain");
            }
        }
    }

    #[test]
    fn levels_are_cumulative() {
        use Primitive::AlltoAll as AA;
        assert!(!OptLevel::Baseline.enables(Technique::PeReorder, AA));
        assert!(OptLevel::PeReorder.enables(Technique::PeReorder, AA));
        assert!(!OptLevel::PeReorder.enables(Technique::InRegister, AA));
        assert!(OptLevel::InRegister.enables(Technique::PeReorder, AA));
        assert!(OptLevel::InRegister.enables(Technique::InRegister, AA));
        assert!(!OptLevel::InRegister.enables(Technique::CrossDomain, AA));
        assert!(OptLevel::Full.enables(Technique::CrossDomain, AA));
    }

    #[test]
    fn full_level_respects_applicability() {
        // ReduceScatter performs arithmetic: even Full cannot enable CM.
        assert!(!OptLevel::Full.enables(Technique::CrossDomain, Primitive::ReduceScatter));
        // Broadcast: nothing applies at any level.
        assert!(!OptLevel::Full.enables(Technique::PeReorder, Primitive::Broadcast));
    }

    #[test]
    fn primitive_classification() {
        assert!(Primitive::Reduce.is_reducing() && Primitive::Reduce.is_rooted());
        assert!(Primitive::AllReduce.is_reducing() && !Primitive::AllReduce.is_rooted());
        assert!(!Primitive::AlltoAll.is_reducing() && !Primitive::AlltoAll.is_rooted());
        assert_eq!(Primitive::AlltoAll.abbrev(), "AA");
        assert_eq!(format!("{}", Primitive::ReduceScatter), "ReduceScatter");
    }
}

//! Alternative hierarchy-aware AllReduce topologies (§VIII-H, Fig. 23a).
//!
//! The paper compares its virtual-hypercube AllReduce against ring and tree
//! algorithmic topologies, both implemented *with* PID-Comm's register-level
//! optimizations but structured as multi-step neighbor exchanges. Both lose
//! badly (up to 2.05× for ring and 7.89× for tree) because:
//!
//! * every step is a separate host-mediated transfer phase with launch and
//!   setup overheads, and
//! * the bus always moves whole 64-byte bursts per entangled group, so a
//!   step in which only a subset of lanes carries useful data (the tree's
//!   upper levels) wastes the corresponding fraction of bandwidth.
//!
//! The implementations here are functionally complete (they produce exactly
//! the AllReduce result) and charge costs burst-accurately, so the wasted
//! bandwidth emerges from structure rather than from a fudge factor.

use std::collections::BTreeSet;

use pim_sim::dtype::{reduce_bytes, DType, ReduceKind};
use pim_sim::geometry::BURST_BYTES;
use pim_sim::{Category, PimSystem};

use crate::config::{OptLevel, Primitive};
use crate::engine::sheet::CostSheet;
use crate::engine::BufferSpec;
use crate::error::{Error, Result};
use crate::hypercube::{CommGroup, DimMask, HypercubeManager};
use crate::report::CommReport;

/// Which algorithmic topology to use for [`topology_all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// PID-Comm's native single-phase hypercube AllReduce.
    Hypercube,
    /// Ring reduce-scatter + ring all-gather: `2(N-1)` neighbor steps.
    Ring,
    /// Binary reduction tree up, binary broadcast tree down:
    /// `2·log2(N)` levels with shrinking lane utilization.
    Tree,
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Topology::Hypercube => "hypercube",
            Topology::Ring => "ring",
            Topology::Tree => "tree",
        };
        f.write_str(s)
    }
}

/// Runs AllReduce with the chosen topology and returns the report.
///
/// All variants leave every member PE with the element-wise reduction of
/// the group's `bytes_per_node`-byte buffers at `dst_offset`.
///
/// # Errors
///
/// Same validation as [`crate::Communicator::all_reduce`]; ring and tree
/// additionally require the group size to be a power of two.
pub fn topology_all_reduce(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    topology: Topology,
    mask: &DimMask,
    spec: &BufferSpec,
    op: ReduceKind,
) -> Result<CommReport> {
    match topology {
        Topology::Hypercube => {
            crate::comm::Communicator::new(manager.clone()).all_reduce(sys, mask, spec, op)
        }
        Topology::Ring => stepped_all_reduce(sys, manager, mask, spec, op, Stepped::Ring),
        Topology::Tree => stepped_all_reduce(sys, manager, mask, spec, op, Stepped::Tree),
    }
}

enum Stepped {
    Ring,
    Tree,
}

/// One host-mediated point-to-point move of `len` bytes between two PEs'
/// MRAMs, accumulated at the receiver if `reduce` is set.
struct Move {
    src_pe: pim_sim::PeId,
    dst_pe: pim_sim::PeId,
    src_off: usize,
    dst_off: usize,
    len: usize,
    reduce: bool,
}

/// Executes one synchronous step of point-to-point moves and charges its
/// costs: burst-granular bus traffic (whole entangled groups move even when
/// only some lanes are useful), one register shuffle per burst, a PE-side
/// accumulate kernel when reducing, and fixed phase overheads.
fn run_step(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    moves: &[Move],
    dtype: DType,
    op: ReduceKind,
) {
    let geom = *sys.geometry();

    // Functional data movement.
    let mut max_reduce_bytes = 0usize;
    for mv in moves {
        let data = sys.pe_mut(mv.src_pe).read(mv.src_off, mv.len).to_vec();
        if mv.reduce {
            // simlint: allow(pe-choke-point, reason = "fused reduce landing: the read-modify-write accumulates into dst in place; a Pe::write round-trip would double-buffer every reduce step and the chaos suite covers this path via the post-collective verify pass")
            let dst = sys.pe_mut(mv.dst_pe).slice_mut(mv.dst_off, mv.len);
            reduce_bytes(op, dtype, dst, &data);
            max_reduce_bytes = max_reduce_bytes.max(mv.len);
        } else {
            sys.pe_mut(mv.dst_pe).write(mv.dst_off, &data);
        }
    }

    // Burst-granular accounting: each (entangled group, side) touched by
    // this step moves ceil(len/8) whole bursts regardless of how many of
    // its lanes participate.
    let mut src_egs: BTreeSet<u32> = BTreeSet::new();
    let mut dst_egs: BTreeSet<u32> = BTreeSet::new();
    let len = moves.first().map_or(0, |m| m.len);
    for mv in moves {
        debug_assert_eq!(mv.len, len, "uniform step sizes expected");
        src_egs.insert(geom.group_of(mv.src_pe).0);
        dst_egs.insert(geom.group_of(mv.dst_pe).0);
    }
    let bursts_per_eg = len.div_ceil(8) as u64;
    for &eg in &src_egs {
        let ch = geom.channel_of_group(pim_sim::EgId(eg));
        sheet.streamed(ch, bursts_per_eg * BURST_BYTES as u64);
    }
    for &eg in &dst_egs {
        let ch = geom.channel_of_group(pim_sim::EgId(eg));
        sheet.streamed(ch, bursts_per_eg * BURST_BYTES as u64);
    }
    // Stepped collectives charge per executed step; cost-only replay charges
    // these same tallies because CollectivePlan captures the step list itself.
    sheet.shuffle_blocks += src_egs.len() as u64 * bursts_per_eg; // simlint: allow(cost-sheet, reason = "per-step charge captured by the plan; cost-only replay mirrors it")
    sheet.transfer_phases += 1;

    // Receiver-side accumulation runs on the PEs in parallel.
    if max_reduce_bytes > 0 {
        sys.charge_pe_reorder(max_reduce_bytes as u64);
    }
}

fn stepped_all_reduce(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    mask: &DimMask,
    spec: &BufferSpec,
    op: ReduceKind,
    kind: Stepped,
) -> Result<CommReport> {
    let n = mask.group_size(manager.shape())?;
    let b = spec.bytes_per_node;
    if b == 0 || !b.is_multiple_of(8 * n) {
        return Err(Error::InvalidBuffer(format!(
            "stepped AllReduce needs bytes_per_node divisible by 8 x group size ({}); got {b}",
            8 * n
        )));
    }
    if !n.is_power_of_two() {
        return Err(Error::InvalidBuffer(format!(
            "ring/tree AllReduce needs a power-of-two group size; got {n}"
        )));
    }
    let groups = manager.groups(mask)?;
    let num_groups = groups.len();
    let before = sys.meter();
    let mut sheet = CostSheet::new(sys.geometry().channels());

    // Work in a scratch copy at dst so the source buffer survives.
    for g in &groups {
        for &pe in &g.members {
            let data = sys.pe_mut(pe).read(spec.src_offset, b).to_vec();
            sys.pe_mut(pe).write(spec.dst_offset, &data);
        }
    }
    // simlint: allow(cost-sheet, reason = "the scratch-copy staging phase is part of the stepped-collective schedule the plan captures, so cost-only replay charges it identically")
    sheet.transfer_phases += 1;

    match kind {
        Stepped::Ring => ring_steps(sys, &mut sheet, &groups, spec, op, n),
        Stepped::Tree => tree_steps(sys, &mut sheet, &groups, spec, op, n),
    }

    sheet.apply(sys);
    let breakdown = sys.meter().since(&before);
    let p = manager.num_nodes() as u64;
    Ok(CommReport {
        primitive: Primitive::AllReduce,
        opt: OptLevel::Full,
        breakdown,
        bytes_in: p * b as u64,
        bytes_out: p * b as u64,
        group_size: n,
        num_groups,
    })
}

/// Classic ring AllReduce: N-1 reduce-scatter steps, then N-1 all-gather
/// steps, each moving one `b/N` chunk per PE to its ring successor.
fn ring_steps(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    groups: &[CommGroup],
    spec: &BufferSpec,
    op: ReduceKind,
    n: usize,
) {
    let b = spec.bytes_per_node;
    let c = b / n;
    let dst = spec.dst_offset;

    // Reduce-scatter phase: at step t, rank r sends chunk (r - t) mod n.
    for t in 0..n - 1 {
        let mut moves = Vec::new();
        for g in groups {
            for (r, &pe) in g.members.iter().enumerate() {
                let chunk = (r + n - (t % n)) % n;
                let next = g.members[(r + 1) % n];
                moves.push(Move {
                    src_pe: pe,
                    dst_pe: next,
                    src_off: dst + chunk * c,
                    dst_off: dst + chunk * c,
                    len: c,
                    reduce: true,
                });
            }
        }
        run_step(sys, sheet, &moves, spec.dtype, op);
    }

    // All-gather phase: at step t, rank r sends chunk (r + 1 - t) mod n.
    for t in 0..n - 1 {
        let mut moves = Vec::new();
        for g in groups {
            for (r, &pe) in g.members.iter().enumerate() {
                let chunk = (r + 1 + n - (t % n)) % n;
                let next = g.members[(r + 1) % n];
                moves.push(Move {
                    src_pe: pe,
                    dst_pe: next,
                    src_off: dst + chunk * c,
                    dst_off: dst + chunk * c,
                    len: c,
                    reduce: false,
                });
            }
        }
        run_step(sys, sheet, &moves, spec.dtype, op);
    }
}

/// Binary-tree AllReduce: log2(N) reduction levels toward rank 0 (full
/// vectors), then log2(N) broadcast levels back down. Upper levels involve
/// ever fewer lanes per entangled group, wasting bus bandwidth — the
/// effect behind the paper's 7.89× tree slowdown.
fn tree_steps(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    groups: &[CommGroup],
    spec: &BufferSpec,
    op: ReduceKind,
    n: usize,
) {
    let b = spec.bytes_per_node;
    let dst = spec.dst_offset;
    let levels = n.trailing_zeros() as usize;

    // Reduction up: at level l (stride s = 2^l), ranks r ≡ s (mod 2s) send
    // their whole buffer to r - s, which accumulates.
    for l in 0..levels {
        let s = 1 << l;
        let mut moves = Vec::new();
        for g in groups {
            for (r, &pe) in g.members.iter().enumerate() {
                if r % (2 * s) == s {
                    moves.push(Move {
                        src_pe: pe,
                        dst_pe: g.members[r - s],
                        src_off: dst,
                        dst_off: dst,
                        len: b,
                        reduce: true,
                    });
                }
            }
        }
        run_step(sys, sheet, &moves, spec.dtype, op);
    }

    // Broadcast down: reverse order.
    for l in (0..levels).rev() {
        let s = 1 << l;
        let mut moves = Vec::new();
        for g in groups {
            for (r, &pe) in g.members.iter().enumerate() {
                if r % (2 * s) == 0 && r + s < n {
                    moves.push(Move {
                        src_pe: pe,
                        dst_pe: g.members[r + s],
                        src_off: dst,
                        dst_off: dst,
                        len: b,
                        reduce: false,
                    });
                }
            }
        }
        run_step(sys, sheet, &moves, spec.dtype, op);
    }

    // The extra PE-side arithmetic shows up as kernel pressure on the
    // critical path; charge the final sync.
    sys.charge(Category::Other, sys.model().transfer_setup_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::HypercubeShape;
    use crate::oracle;
    use pim_sim::DimmGeometry;

    fn setup(dims: &[usize], geom: DimmGeometry) -> (PimSystem, HypercubeManager) {
        let manager =
            HypercubeManager::new(HypercubeShape::new(dims.to_vec()).unwrap(), geom).unwrap();
        (PimSystem::new(geom), manager)
    }

    fn fill(sys: &mut PimSystem, bytes: usize) {
        for pe in sys.geometry().pes() {
            let data: Vec<u8> = (0..bytes)
                .map(|i| ((pe.0 as usize * 131 + i * 7) % 127) as u8)
                .collect();
            sys.pe_mut(pe).write(0, &data);
        }
    }

    fn check_allreduce(
        sys: &mut PimSystem,
        manager: &HypercubeManager,
        mask: &DimMask,
        b: usize,
        dst: usize,
    ) {
        let groups = manager.groups(mask).unwrap();
        for g in &groups {
            let inputs: Vec<Vec<u8>> = g
                .members
                .iter()
                .map(|&pe| sys.pe_mut(pe).read(0, b).to_vec())
                .collect();
            let want = oracle::all_reduce(&inputs, ReduceKind::Sum, DType::U64);
            for (&pe, w) in g.members.iter().zip(&want) {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                assert_eq!(&got, w, "group {} {pe}", g.id);
            }
        }
    }

    #[test]
    fn ring_all_reduce_is_correct() {
        let (mut sys, manager) = setup(&[8, 8], DimmGeometry::single_rank());
        let mask: DimMask = "10".parse().unwrap();
        let b = 64;
        fill(&mut sys, b);
        let report = topology_all_reduce(
            &mut sys,
            &manager,
            Topology::Ring,
            &mask,
            &BufferSpec::new(0, 1024, b),
            ReduceKind::Sum,
        )
        .unwrap();
        check_allreduce(&mut sys, &manager, &mask, b, 1024);
        assert!(report.time_ns() > 0.0);
    }

    #[test]
    fn tree_all_reduce_is_correct() {
        let (mut sys, manager) = setup(&[8, 8], DimmGeometry::single_rank());
        let mask: DimMask = "10".parse().unwrap();
        let b = 64;
        fill(&mut sys, b);
        topology_all_reduce(
            &mut sys,
            &manager,
            Topology::Tree,
            &mask,
            &BufferSpec::new(0, 1024, b),
            ReduceKind::Sum,
        )
        .unwrap();
        check_allreduce(&mut sys, &manager, &mask, b, 1024);
    }

    #[test]
    fn ring_and_tree_are_correct_on_multi_eg_groups() {
        let (mut sys, manager) = setup(&[16, 4], DimmGeometry::single_rank());
        let mask: DimMask = "10".parse().unwrap();
        let b = 128;
        for topo in [Topology::Ring, Topology::Tree] {
            fill(&mut sys, b);
            topology_all_reduce(
                &mut sys,
                &manager,
                topo,
                &mask,
                &BufferSpec::new(0, 4096, b),
                ReduceKind::Sum,
            )
            .unwrap();
            check_allreduce(&mut sys, &manager, &mask, b, 4096);
        }
    }

    #[test]
    fn hypercube_beats_ring_beats_tree() {
        // The Fig. 23a ordering on a 2-D 16x16 AllReduce (scaled-down
        // version of the paper's 32x32).
        let geom = DimmGeometry::upmem_256();
        let (mut sys, manager) = setup(&[16, 16], geom);
        let mask: DimMask = "10".parse().unwrap();
        let b = 16 * 64;
        let mut times = Vec::new();
        for topo in [Topology::Hypercube, Topology::Ring, Topology::Tree] {
            fill(&mut sys, b);
            let report = topology_all_reduce(
                &mut sys,
                &manager,
                topo,
                &mask,
                &BufferSpec::new(0, 65536, b),
                ReduceKind::Sum,
            )
            .unwrap();
            times.push(report.time_ns());
        }
        assert!(
            times[0] < times[1],
            "hypercube {} < ring {}",
            times[0],
            times[1]
        );
        assert!(times[1] < times[2], "ring {} < tree {}", times[1], times[2]);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let (mut sys, manager) = setup(&[8, 2, 3], DimmGeometry::new(3, 1, 2));
        let err = topology_all_reduce(
            &mut sys,
            &manager,
            Topology::Ring,
            &"001".parse().unwrap(),
            &BufferSpec::new(0, 1024, 24),
            ReduceKind::Sum,
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidBuffer(_)));
    }
}

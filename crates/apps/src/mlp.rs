//! Multi-layer perceptron on the PID-Comm framework (§VII-E).
//!
//! The feature matrix is column-partitioned across the PEs (1-D
//! hypercube): PE `p` owns `f/P` columns of each weight matrix and the
//! matching slice of the activation vector. Each layer computes a
//! full-length *partial* output vector per PE (its columns' contribution),
//! which a ReduceScatter sums and redistributes so every PE ends with its
//! slice of the next activation — exactly the paper's structure
//! (Scatter → [kernel → ReduceScatter]×L → Gather). The per-layer
//! ReduceScatter plan is built once for the whole stack (pooled in the
//! worker's arena plan cache) and re-executed each layer.

use std::sync::Arc;

use pidcomm::{
    par_chunks, par_pes, par_pes_with, BufferSpec, Communicator, DimMask, HypercubeManager,
    HypercubeShape, Iteration, OptLevel, PlanCache, Primitive, RunPolicy, Supervisor,
};
use pidcomm_data::MatI32;
use pim_sim::{kernels, DType, DimmGeometry, FaultPlan, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::{AppRun, ResilientRun};

/// MLP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Feature width `f` (the paper uses 16k and 32k; scaled presets use
    /// 2048 and 4096 — the same 8× scaling as the datasets).
    pub features: usize,
    /// Number of layers (the paper uses 5).
    pub layers: usize,
    /// Number of PEs.
    pub pes: usize,
    /// Communication optimization level (Baseline vs PID-Comm).
    pub opt: OptLevel,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

impl MlpConfig {
    /// The paper's "16k" configuration, scaled 8×.
    pub fn feat16k(pes: usize, opt: OptLevel) -> Self {
        Self {
            features: 2048,
            layers: 5,
            pes,
            opt,
            threads: 0,
        }
    }

    /// The paper's "32k" configuration, scaled 8×.
    pub fn feat32k(pes: usize, opt: OptLevel) -> Self {
        Self {
            features: 4096,
            layers: 5,
            pes,
            opt,
            threads: 0,
        }
    }

    fn label(&self) -> String {
        format!("{}f", self.features)
    }
}

fn relu(v: i32) -> i32 {
    v.max(0)
}

/// CPU reference: `x <- relu(W_l x)` per layer, wrapping arithmetic.
fn cpu_reference(weights: &[MatI32], x0: &[i32]) -> (Vec<i32>, f64) {
    let cpu = CpuModel::xeon_5215();
    let f = x0.len();
    let mut x = x0.to_vec();
    let mut time = 0.0;
    for w in weights {
        let mut y = vec![0i32; f];
        for (c, &xv) in x.iter().enumerate() {
            if xv == 0 {
                continue;
            }
            for (r, yv) in y.iter_mut().enumerate() {
                *yv = yv.wrapping_add(w.get(r, c).wrapping_mul(xv));
            }
        }
        x = y.into_iter().map(relu).collect();
        // 2 ops per MAC; streams the whole weight matrix once.
        time += cpu.time_ns(2 * (f * f) as u64, (f * f * 4 + f * 8) as u64);
    }
    (x, time)
}

/// Runs the MLP benchmark and validates the PIM result against the CPU
/// reference.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics if `features` is not divisible by `8 × pes / 4` (the
/// ReduceScatter alignment) or if validation fails.
pub fn run_mlp(cfg: &MlpConfig) -> pidcomm::Result<AppRun> {
    run_mlp_in(cfg, &mut SystemArena::new())
}

/// As [`run_mlp`], but sourcing the `PimSystem` and staging buffers from
/// `arena` (and returning them to it), so repeated runs — e.g. consecutive
/// sweep cells on one worker — reuse allocations. Results are
/// byte-identical to [`run_mlp`].
///
/// # Errors
///
/// Propagates collective validation errors.
pub fn run_mlp_in(cfg: &MlpConfig, arena: &mut SystemArena) -> pidcomm::Result<AppRun> {
    let p = cfg.pes;
    let f = cfg.features;
    assert_eq!(f % p, 0, "features must divide evenly across PEs");
    assert_eq!((f * 4) % (8 * p), 0, "ReduceScatter alignment: 4f % 8P");
    let cols = f / p;

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("MLP", cfg.label());

    // Deterministic weights and input.
    let weights: Vec<MatI32> = (0..cfg.layers)
        .map(|l| MatI32::random(f, f, 4, 0x9a77 + l as u64))
        .collect();
    let x0: Vec<i32> = (0..f).map(|i| ((i * 37 + 11) % 9) as i32 - 4).collect();

    // Layout: activation slice at SLICE, partial vectors at PARTIAL,
    // reduced output at OUT.
    let slice_bytes = cols * 4;
    let partial_bytes = f * 4;
    const SLICE: usize = 0;
    let partial_off = slice_bytes.next_multiple_of(64);
    let out_off = partial_off + partial_bytes.next_multiple_of(64);

    // Scatter the initial activation slices.
    let host_x: Vec<Vec<u8>> = vec![x0.iter().flat_map(|v| v.to_le_bytes()).collect()];
    let x_scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, SLICE, slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    // One-shot sends: both setup scatters execute directly — staging a
    // prepared image only pays off when it executes more than once (the
    // resilient runner's retries, the multi-host shared stage).
    let report = x_scatter_plan.execute_with_host(&mut sys, &host_x)?;
    profile.record(&report);

    // Scatter the weight column slices (all layers at once): PE p receives
    // columns [p*cols, (p+1)*cols) of every W_l.
    let w_slice_bytes = cfg.layers * f * cols * 4;
    let mut w_host = arena.bytes(p * w_slice_bytes);
    par_chunks(&mut w_host, w_slice_bytes, cfg.threads, |dst_pe, chunk| {
        let mut off = 0;
        for w in &weights {
            for c in dst_pe * cols..(dst_pe + 1) * cols {
                for r in 0..f {
                    chunk[off..off + 4].copy_from_slice(&w.get(r, c).to_le_bytes());
                    off += 4;
                }
            }
        }
    });
    let w_off = out_off + slice_bytes.next_multiple_of(64);
    let w_scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, w_off, w_slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let report = w_scatter_plan.execute_with_host(&mut sys, core::slice::from_ref(&w_host))?;
    profile.record(&report);
    arena.recycle_bytes(w_host);

    // The per-layer reduction plan, built once for the whole stack (and
    // pooled across runs): every layer issues the identical
    // ReduceScatter, so planning per call was pure per-layer overhead.
    let rs_plan = comm.plan_cached(
        &mut plans,
        Primitive::ReduceScatter,
        &mask,
        &BufferSpec::new(partial_off, out_off, partial_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;

    // Layers.
    for l in 0..cfg.layers {
        // PE kernel: partial_p = sum over owned columns c of x[c] * W[:,c],
        // with ReLU applied to the incoming slice (except the first layer,
        // whose input is raw). One host-kernel work item per PE; the
        // activation slice and partial vector live in per-worker scratch,
        // and the gemv runs as fused decode+axpy over the weight columns
        // already staged *in PE MRAM* (each owned column is a contiguous
        // f-length typed lane there — the layout the scatter built).
        let kernels = par_pes_with(
            sys.pes_mut(),
            cfg.threads,
            || (vec![0i32; cols], vec![0i32; f]),
            |(xs, partial), _, pe| {
                // simlint: hot(begin, mlp gemv)
                pe.read_i32s(SLICE, xs);
                if l > 0 {
                    kernels::relu_i32(xs);
                }
                partial.fill(0);
                let layer_off = w_off + l * cols * f * 4;
                let wbytes = pe.read(layer_off, cols * f * 4);
                for (ci, &xv) in xs.iter().enumerate() {
                    if xv == 0 {
                        continue;
                    }
                    kernels::axpy_i32_bytes(partial, xv, &wbytes[ci * f * 4..(ci + 1) * f * 4]);
                }
                pe.write_i32s(partial_off, partial);
                pe_kernel_ns((f * cols * 4 + f * 8) as u64, (12 * f * cols) as u64)
                // simlint: hot(end)
            },
        );
        let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
        sys.run_kernel(max_kernel);
        profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

        // ReduceScatter the partials: PE p ends with elements
        // [p*cols, (p+1)*cols) of the summed output — the warm per-layer
        // plan.
        let report = rs_plan.execute(&mut sys)?;
        profile.record(&report);

        // The reduced slice becomes the next activation slice.
        par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
            // simlint: hot(begin, mlp slice rotate)
            pe.copy_within_region(out_off, SLICE, slice_bytes);
            // simlint: hot(end)
        });
    }

    // Gather the final activation (pre-ReLU of the last layer's output,
    // so apply ReLU on the host like the reference does).
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask,
        &BufferSpec::new(SLICE, 0, slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let (report, gathered) = gather_plan.execute_to_host(&mut sys)?;
    profile.record(&report);
    let result: Vec<i32> = gathered[0]
        .chunks_exact(4)
        .map(|c| relu(i32::from_le_bytes(c.try_into().unwrap())))
        .collect();

    let (expected, cpu_ns) = cpu_reference(&weights, &x0);
    let validated = result == expected;
    assert!(validated, "MLP PIM result diverges from CPU reference");
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(AppRun {
        profile,
        cpu_ns,
        validated,
    })
}

/// As [`run_mlp`], but under run-level supervision (see
/// [`Supervisor`]): collectives run verified with quarantine-aware
/// recovery, each layer commits through an iteration checkpoint of the
/// live activation slice, and unrecoverable faults end the run with a
/// typed outcome instead of a panic. With `fault = None` the profile and
/// outputs are bit-identical to [`run_mlp`].
///
/// # Errors
///
/// Propagates collective validation errors (never typed fault errors —
/// those are consumed by the supervisor).
pub fn run_mlp_resilient(
    cfg: &MlpConfig,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
) -> pidcomm::Result<ResilientRun> {
    run_mlp_resilient_in(cfg, fault, policy, &mut SystemArena::new())
}

/// As [`run_mlp_resilient`], sourcing allocations from `arena`.
///
/// # Errors
///
/// As [`run_mlp_resilient`].
pub fn run_mlp_resilient_in(
    cfg: &MlpConfig,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
    arena: &mut SystemArena,
) -> pidcomm::Result<ResilientRun> {
    let p = cfg.pes;
    let f = cfg.features;
    assert_eq!(f % p, 0, "features must divide evenly across PEs");
    assert_eq!((f * 4) % (8 * p), 0, "ReduceScatter alignment: 4f % 8P");
    let cols = f / p;

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    if let Some(fp) = &fault {
        sys.attach_fault_plan(fp.clone());
        sys.set_verify_writes(true);
    }
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("MLP", cfg.label());
    let mut sup = Supervisor::new(p, policy);

    let weights: Vec<MatI32> = (0..cfg.layers)
        .map(|l| MatI32::random(f, f, 4, 0x9a77 + l as u64))
        .collect();
    let x0: Vec<i32> = (0..f).map(|i| ((i * 37 + 11) % 9) as i32 - 4).collect();

    let slice_bytes = cols * 4;
    let partial_bytes = f * 4;
    const SLICE: usize = 0;
    let partial_off = slice_bytes.next_multiple_of(64);
    let out_off = partial_off + partial_bytes.next_multiple_of(64);
    let w_off = out_off + slice_bytes.next_multiple_of(64);
    let w_slice_bytes = cfg.layers * f * cols * 4;

    let host_x: Vec<Vec<u8>> = vec![x0.iter().flat_map(|v| v.to_le_bytes()).collect()];
    let mut w_host = arena.bytes(p * w_slice_bytes);
    par_chunks(&mut w_host, w_slice_bytes, cfg.threads, |dst_pe, chunk| {
        let mut off = 0;
        for w in &weights {
            for c in dst_pe * cols..(dst_pe + 1) * cols {
                for r in 0..f {
                    chunk[off..off + 4].copy_from_slice(&w.get(r, c).to_le_bytes());
                    off += 4;
                }
            }
        }
    });

    let x_scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, SLICE, slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let w_scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, w_off, w_slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let rs_plan = comm.plan_cached(
        &mut plans,
        Primitive::ReduceScatter,
        &mask,
        &BufferSpec::new(partial_off, out_off, partial_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask,
        &BufferSpec::new(SLICE, 0, slice_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;

    let mut result: Option<Vec<i32>> = None;
    'run: {
        // Setup: both scatters restage everything from host buffers, so a
        // re-run needs no checkpointed MRAM state.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            let a = at.collective(&comm, sys, &x_scatter_plan, Some(&host_x))?;
            let b = at.collective(
                &comm,
                sys,
                &w_scatter_plan,
                Some(core::slice::from_ref(&w_host)),
            )?;
            Ok([a.report, b.report])
        })? {
            Iteration::Done(reports) => {
                for r in &reports {
                    profile.record(r);
                }
            }
            Iteration::Abort(_) => break 'run,
        }

        for l in 0..cfg.layers {
            // The live state at a layer boundary is the activation slice
            // (everything else is rewritten from it or read-only).
            match sup.iteration(&mut sys, arena, &[(SLICE, slice_bytes)], |sys, at| {
                let kernels = par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || (vec![0i32; cols], vec![0i32; f]),
                    |(xs, partial), _, pe| {
                        // simlint: hot(begin, mlp gemv)
                        pe.read_i32s(SLICE, xs);
                        if l > 0 {
                            kernels::relu_i32(xs);
                        }
                        partial.fill(0);
                        let layer_off = w_off + l * cols * f * 4;
                        let wbytes = pe.read(layer_off, cols * f * 4);
                        for (ci, &xv) in xs.iter().enumerate() {
                            if xv == 0 {
                                continue;
                            }
                            kernels::axpy_i32_bytes(
                                partial,
                                xv,
                                &wbytes[ci * f * 4..(ci + 1) * f * 4],
                            );
                        }
                        pe.write_i32s(partial_off, partial);
                        pe_kernel_ns((f * cols * 4 + f * 8) as u64, (12 * f * cols) as u64)
                        // simlint: hot(end)
                    },
                );
                let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(max_kernel);
                let report = at.collective(&comm, sys, &rs_plan, None)?.report;
                par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                    // simlint: hot(begin, mlp slice rotate)
                    pe.copy_within_region(out_off, SLICE, slice_bytes);
                    // simlint: hot(end)
                });
                Ok((max_kernel, report))
            })? {
                Iteration::Done((max_kernel, report)) => {
                    profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);
                    profile.record(&report);
                }
                Iteration::Abort(_) => break 'run,
            }
        }

        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            let exec = at.collective(&comm, sys, &gather_plan, None)?;
            Ok((
                exec.report,
                exec.host_out.expect("gather produces host output"),
            ))
        })? {
            Iteration::Done((report, gathered)) => {
                profile.record(&report);
                result = Some(
                    gathered[0]
                        .chunks_exact(4)
                        .map(|c| relu(i32::from_le_bytes(c.try_into().unwrap())))
                        .collect(),
                );
            }
            Iteration::Abort(_) => {}
        }
    }
    arena.recycle_bytes(w_host);

    let (expected, cpu_ns) = cpu_reference(&weights, &x0);
    let (mismatched, validated) = match &result {
        Some(r) => {
            let mm = r.iter().zip(&expected).filter(|(a, b)| a != b).count()
                + r.len().abs_diff(expected.len());
            (mm as u64, mm == 0)
        }
        None => (expected.len() as u64, false),
    };
    let modeled_ns = sys.meter().total();
    sys.detach_fault_plan();
    sys.set_verify_writes(false);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(ResilientRun {
        run: AppRun {
            profile,
            cpu_ns,
            validated,
        },
        outcome: sup.outcome(),
        retries: sup.retries(),
        quarantined: sup.ledger().quarantined(),
        mismatched,
        modeled_ns,
        backoff_epochs: sup.backoff_epochs(),
        checkpoint_restores: sup.checkpoint_restores(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_validates_on_64_pes() {
        let cfg = MlpConfig {
            threads: 0,
            features: 512,
            layers: 3,
            pes: 64,
            opt: OptLevel::Full,
        };
        let run = run_mlp(&cfg).unwrap();
        assert!(run.validated);
        assert!(run.profile.total_ns() > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::ReduceScatter) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::Scatter) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::Gather) > 0.0);
        assert!(run.cpu_ns > 0.0);
    }

    #[test]
    fn baseline_is_slower_but_equal() {
        let full = run_mlp(&MlpConfig {
            threads: 0,
            features: 512,
            layers: 3,
            pes: 64,
            opt: OptLevel::Full,
        })
        .unwrap();
        let base = run_mlp(&MlpConfig {
            threads: 0,
            features: 512,
            layers: 3,
            pes: 64,
            opt: OptLevel::Baseline,
        })
        .unwrap();
        assert!(base.validated && full.validated);
        assert!(
            base.profile.comm_ns() > full.profile.comm_ns(),
            "baseline comm should be slower"
        );
        // Kernels are identical.
        assert!((base.profile.kernel_ns - full.profile.kernel_ns).abs() < 1e-6);
    }
}

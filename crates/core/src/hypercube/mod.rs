//! The virtual hypercube communication model (§IV of the paper).
//!
//! Users abstract the PEs as a multi-dimensional hypercube
//! ([`HypercubeShape`]), select communication dimensions per call with a
//! [`DimMask`], and the library maps hypercube nodes to physical PEs
//! ([`HypercubeManager`]) such that entangled groups are always exercised
//! as a whole — the precondition for drawing full bus bandwidth.

mod manager;
mod mask;
mod plan;
mod shape;

pub use manager::{CommGroup, HypercubeManager};
pub use mask::DimMask;
pub use plan::{build_clusters, build_clusters_from_groups, EgCluster, GroupPlan};
pub use shape::HypercubeShape;

//! Fig. 18: primitive throughput vs data size, 1-D (1024) and 2-D (32,32).

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{header, run_primitive, PrimSetup};

fn main() {
    header(
        "Fig. 18",
        "data-size sweep (bytes/node scaled /128 vs paper's 128K-8M)",
        "PID-Comm pulls ahead as size grows (2.89x at max, geomean); 1-D AG baseline already fast",
    );
    // Multiples of the minimum legal per-node size (8 x group size).
    let factors = [1usize, 2, 4, 8, 16];
    for (label, group, mk) in [
        (
            "1D",
            1024usize,
            (|b: usize| PrimSetup::default_1d(b)) as fn(usize) -> PrimSetup,
        ),
        ("2D", 32, |b: usize| PrimSetup::default_2d(b)),
    ] {
        for prim in [
            Primitive::AlltoAll,
            Primitive::ReduceScatter,
            Primitive::AllReduce,
            Primitive::AllGather,
        ] {
            print!("{label} {:<4}", prim.abbrev());
            for &k in &factors {
                let b = 8 * group * k;
                let setup = mk(b);
                let base = run_primitive(&setup, prim, OptLevel::Baseline).throughput_gbps();
                let ours = run_primitive(&setup, prim, OptLevel::Full).throughput_gbps();
                print!("  {:>5}B:{:>5.1}/{:<5.1}", b, base, ours);
            }
            println!();
        }
    }
    println!("(cells are base/ours GB/s per bytes-per-node size)");
}

//! A 3-layer GNN forward pass on 256 simulated PEs, in both of the paper's
//! communication strategies (RS&AR and AR&AG), with the dimension mask
//! alternating between layers as in Algorithm 1.
//!
//! Run with `cargo run --release --example gnn_training`.

use pidcomm::OptLevel;
use pidcomm_apps::gnn::{run_gnn, GnnConfig, GnnVariant};
use pidcomm_data::{rmat, RmatParams};
use pim_sim::DType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PubMed-like synthetic citation graph.
    let graph = rmat(11, 4, RmatParams::uniform(0x9d));
    println!(
        "graph: {} vertices, {} edges (PubMed-like substitute)",
        graph.num_vertices(),
        graph.num_edges()
    );

    for variant in [GnnVariant::RsAr, GnnVariant::ArAg] {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            let cfg = GnnConfig {
                threads: 0,
                pes: 256,
                feature_dim: 64,
                layers: 3,
                variant,
                opt,
                dtype: DType::I32,
            };
            let run = run_gnn(&cfg, &graph)?;
            println!(
                "GNN {} [{:?}]: total {:.2} ms (comm {:.2} ms, kernel {:.2} ms) validated={}",
                variant.label(),
                opt,
                run.profile.total_ns() / 1e6,
                run.profile.comm_ns() / 1e6,
                run.profile.kernel_ns / 1e6,
                run.validated
            );
        }
    }

    // The INT8 path: ReduceScatter/AllReduce skip domain transfer entirely.
    let cfg = GnnConfig {
        threads: 0,
        pes: 256,
        feature_dim: 64,
        layers: 3,
        variant: GnnVariant::RsAr,
        opt: OptLevel::Full,
        dtype: DType::I8,
    };
    let run = run_gnn(&cfg, &graph)?;
    println!(
        "GNN RS&AR int8: total {:.2} ms, domain-transfer time {:.3} ms (Scatter/Gather only)",
        run.profile.total_ns() / 1e6,
        run.profile.comm.domain_transfer / 1e6
    );
    Ok(())
}

//! simlint — the in-tree invariant linter.
//!
//! The workspace's tests can only check invariants pointwise, for the
//! configurations they enumerate. simlint checks the *source* instead:
//! it lexes every workspace `.rs` file with a hand-rolled lexer (no
//! `syn`; the workspace takes no external dependencies) and pattern-
//! matches the token stream against the repo's written contracts —
//! cost-sheet discipline, the PE-write choke point, determinism hygiene,
//! hot-loop allocation freedom, and the unsafe audit. See
//! [`lints::Lint::explain`] for each contract, or run
//! `simlint --explain <lint>`.
//!
//! The library half exists so the linter can lint itself: the fixture
//! tests and the workspace self-check call [`lint_source`] and
//! [`lint_workspace`] directly.

pub mod lexer;
pub mod lints;

use lints::{AllowUse, Diag, FileOutcome, Severity, UnsafeAllowlist};
use std::path::{Path, PathBuf};

/// Lints a single source text under the policy its (virtual) path
/// selects. The path is matched by suffix, so a fixture stored at
/// `tests/fixtures/bad/crates/apps/src/foo.rs` is linted exactly as a
/// real file under `crates/apps/src/` would be.
pub fn lint_source(virtual_path: &str, src: &str, allowlist: &UnsafeAllowlist) -> FileOutcome {
    lints::lint_file(virtual_path, src, allowlist)
}

/// The aggregate outcome of a workspace (or file-list) run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_checked: usize,
    pub diags: Vec<Diag>,
    pub allows: Vec<AllowUse>,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }
}

/// Directory names the walker never descends into. Test and bench code
/// deliberately violates invariants (bad fixtures, raw-sheet probes), and
/// `target/` is build output.
const SKIP_DIRS: [&str; 7] = [
    "target", ".git", "tests", "benches", "examples", "fixtures", ".github",
];

/// Walks `root` for workspace `.rs` files, sorted for deterministic
/// output, returning workspace-relative paths.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the committed unsafe allowlist from its canonical location
/// under `root`, or an empty one if the file does not exist.
pub fn load_allowlist(root: &Path) -> UnsafeAllowlist {
    let path = root.join("crates/lint/unsafe_allowlist.txt");
    match std::fs::read_to_string(&path) {
        Ok(text) => UnsafeAllowlist::parse(&text),
        Err(_) => UnsafeAllowlist::default(),
    }
}

/// Lints every workspace `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let allowlist = load_allowlist(root);
    lint_files(root, &files, &allowlist)
}

/// Lints an explicit file list. Paths are relativized against `root`
/// (when possible) so policy matching and diagnostics use workspace-
/// style forward-slash paths.
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    allowlist: &UnsafeAllowlist,
) -> std::io::Result<Report> {
    let mut report = Report::default();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(file);
        let virtual_path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(file)?;
        let outcome = lints::lint_file(&virtual_path, &src, allowlist);
        report.files_checked += 1;
        report.diags.extend(outcome.diags);
        report.allows.extend(outcome.allows);
    }
    Ok(report)
}

//! Fig. 20: PID-Comm throughput across 3-D hypercube shapes.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{header, run_primitive, PrimSetup};
use pim_sim::{DType, DimmGeometry};

fn main() {
    header(
        "Fig. 20",
        "3-D hypercube shape sweep, communication along x",
        "AA/AR roughly shape-insensitive (<=20.6 / 12.2 GB/s); RS/AG grow with x (<=17.8 / 36.1 GB/s)",
    );
    let shapes: [[usize; 3]; 10] = [
        [8, 64, 2],
        [16, 32, 2],
        [32, 16, 2],
        [64, 8, 2],
        [128, 4, 2],
        [8, 32, 4],
        [16, 16, 4],
        [32, 8, 4],
        [64, 4, 4],
        [128, 2, 4],
    ];
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "shape", "AA", "RS", "AR", "AG"
    );
    for dims in shapes {
        let n: usize = dims[0];
        let setup = PrimSetup {
            geom: DimmGeometry::upmem_1024(),
            dims: dims.to_vec(),
            mask: "100".into(),
            bytes_per_node: (8 * n * 32).max(4096),
            dtype: DType::U64,
            model: pim_sim::TimeModel::upmem(),
            threads: 0,
        };
        let vals: Vec<f64> = [
            Primitive::AlltoAll,
            Primitive::ReduceScatter,
            Primitive::AllReduce,
            Primitive::AllGather,
        ]
        .iter()
        .map(|&p| run_primitive(&setup, p, OptLevel::Full).throughput_gbps())
        .collect();
        println!(
            "[{:>3},{:>3},{:>2}] {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            dims[0], dims[1], dims[2], vals[0], vals[1], vals[2], vals[3]
        );
    }
}

//! Regenerates Tables I, II and III of the paper.

use pidcomm::{technique_applies, Primitive, Technique};
use pidcomm_bench::header;

fn main() {
    header(
        "Table I",
        "comparison against conventional approaches",
        "PID-Comm is the only framework with multi-instance + all 8 primitives",
    );
    println!(
        "{:<14} {:<16} {:<14} Primitives",
        "Framework", "Multi-instance", "Performance"
    );
    println!(
        "{:<14} {:<16} {:<14} Sc Ga Br",
        "UPMEM SDK", "not supported", "not optimized"
    );
    println!(
        "{:<14} {:<16} {:<14} AR AG Sc Ga Br",
        "SimplePIM", "not supported", "not optimized"
    );
    let all: Vec<&str> = Primitive::ALL.iter().map(|p| p.abbrev()).collect();
    println!(
        "{:<14} {:<16} {:<14} {}",
        "PID-Comm",
        "supported",
        "optimized",
        all.join(" ")
    );

    println!();
    header(
        "Table II",
        "applicability of the proposed techniques",
        "PR: 5 primitives, IM: 7, CM: 2 (AA, AG only)",
    );
    print!("{:<26}", "technique");
    for p in Primitive::ALL {
        print!(" {:>3}", p.abbrev());
    }
    println!();
    for (name, t) in [
        ("PIM-assisted reordering", Technique::PeReorder),
        ("in-register modulation", Technique::InRegister),
        ("cross-domain modulation", Technique::CrossDomain),
    ] {
        print!("{name:<26}");
        for p in Primitive::ALL {
            print!(" {:>3}", if technique_applies(p, t) { "v" } else { "" });
        }
        println!();
    }

    println!();
    header(
        "Table III",
        "benchmark applications (harness-scale substitutes)",
        "5 apps, hypercube dims 1-3, communication primitive mix",
    );
    println!(
        "{:<12} {:<6} {:<28} Datasets (scaled substitutes)",
        "App", "Dims", "Primitives"
    );
    println!(
        "{:<12} {:<6} {:<28} Criteo-like, emb dim 16/32",
        "DLRM", "3", "Sc Ga AA RS AG"
    );
    println!(
        "{:<12} {:<6} {:<28} PM-like, RD-like, 3 layers",
        "GNN RS&AR", "2", "Sc Ga RS AR"
    );
    println!(
        "{:<12} {:<6} {:<28} PM-like, RD-like, 3 layers",
        "GNN AR&AG", "2", "Sc Ga AR AG"
    );
    println!(
        "{:<12} {:<6} {:<28} LJ-like, LG-like",
        "BFS", "1", "Sc Ga AR(or)"
    );
    println!(
        "{:<12} {:<6} {:<28} LJ-like, LG-like",
        "CC", "1", "Sc Re AR(min)"
    );
    println!(
        "{:<12} {:<6} {:<28} features 2048/4096 (16k/32k scaled)",
        "MLP", "1", "Sc Ga RS"
    );
}

//! Dimension masks selecting the axes of a communication instance.

use core::fmt;
use core::str::FromStr;

use crate::error::{Error, Result};
use crate::hypercube::HypercubeShape;

/// A bitmap over hypercube dimensions choosing which axes form the
/// communication groups of a collective call (§IV-B2).
///
/// The paper represents masks as strings: character `i` corresponds to
/// dimension `i` (so `"100"` selects the x axis of a 3-D hypercube and
/// `"101"` selects x and z). Every *slice* of the hypercube along the
/// selected dimensions becomes one communication group, and all groups
/// communicate simultaneously (multi-instance invocation).
///
/// # Examples
///
/// ```
/// use pidcomm::hypercube::DimMask;
///
/// let xz: DimMask = "101".parse()?;
/// assert!(xz.is_selected(0) && !xz.is_selected(1) && xz.is_selected(2));
/// # Ok::<(), pidcomm::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimMask {
    bits: Vec<bool>,
}

impl DimMask {
    /// Creates a mask from booleans (index = dimension).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMask`] if no dimension is selected.
    pub fn new(bits: Vec<bool>) -> Result<Self> {
        if !bits.iter().any(|&b| b) {
            return Err(Error::InvalidMask("mask selects no dimension".into()));
        }
        Ok(Self { bits })
    }

    /// Parses a `"101"`-style mask string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMask`] on characters other than `0`/`1` or
    /// an all-zero mask.
    pub fn parse(s: &str) -> Result<Self> {
        let bits = s
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(Error::InvalidMask(format!(
                    "unexpected character {other:?} in {s:?}"
                ))),
            })
            .collect::<Result<Vec<bool>>>()?;
        Self::new(bits)
    }

    /// A mask selecting every dimension of `shape` (one global group).
    pub fn all(shape: &HypercubeShape) -> Self {
        Self {
            bits: vec![true; shape.rank()],
        }
    }

    /// A mask selecting only dimension `d` of a rank-`rank` shape.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank`.
    pub fn single(rank: usize, d: usize) -> Self {
        assert!(d < rank, "dimension {d} out of range for rank {rank}");
        let mut bits = vec![false; rank];
        bits[d] = true;
        Self { bits }
    }

    /// Number of dimensions the mask covers.
    pub fn rank(&self) -> usize {
        self.bits.len()
    }

    /// Whether dimension `d` is selected.
    pub fn is_selected(&self, d: usize) -> bool {
        self.bits.get(d).copied().unwrap_or(false)
    }

    /// Indices of selected dimensions, ascending.
    pub fn selected(&self) -> Vec<usize> {
        (0..self.bits.len()).filter(|&d| self.bits[d]).collect()
    }

    /// Indices of unselected dimensions, ascending.
    pub fn unselected(&self) -> Vec<usize> {
        (0..self.bits.len()).filter(|&d| !self.bits[d]).collect()
    }

    /// Validates the mask against a shape and returns the communication
    /// group size (product of selected dimension lengths).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMask`] if the ranks differ.
    pub fn group_size(&self, shape: &HypercubeShape) -> Result<usize> {
        if self.rank() != shape.rank() {
            return Err(Error::InvalidMask(format!(
                "mask {self} has rank {} but shape {shape} has rank {}",
                self.rank(),
                shape.rank()
            )));
        }
        Ok(self.selected().iter().map(|&d| shape.dim(d)).product())
    }

    /// Number of simultaneous communication groups for `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMask`] if the ranks differ.
    pub fn num_groups(&self, shape: &HypercubeShape) -> Result<usize> {
        Ok(shape.num_nodes() / self.group_size(shape)?)
    }
}

impl FromStr for DimMask {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        Self::parse(s)
    }
}

impl fmt::Display for DimMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape424() -> HypercubeShape {
        HypercubeShape::new(vec![4, 2, 4]).unwrap()
    }

    #[test]
    fn parse_paper_masks() {
        let x: DimMask = "100".parse().unwrap();
        assert_eq!(x.selected(), vec![0]);
        let xz: DimMask = "101".parse().unwrap();
        assert_eq!(xz.selected(), vec![0, 2]);
        assert_eq!(format!("{xz}"), "101");
    }

    #[test]
    fn rejects_garbage_and_empty_selection() {
        assert!(DimMask::parse("10a").is_err());
        assert!(DimMask::parse("000").is_err());
        assert!(DimMask::parse("").is_err());
    }

    #[test]
    fn group_counts_match_paper_figure5() {
        let shape = shape424();
        // Fig. 5(b): x only -> 4x2 = 8 groups of size 4.
        let x: DimMask = "100".parse().unwrap();
        assert_eq!(x.group_size(&shape).unwrap(), 4);
        assert_eq!(x.num_groups(&shape).unwrap(), 8);
        // Fig. 5(c): x and z -> 2 groups of size 16.
        let xz: DimMask = "101".parse().unwrap();
        assert_eq!(xz.group_size(&shape).unwrap(), 16);
        assert_eq!(xz.num_groups(&shape).unwrap(), 2);
    }

    #[test]
    fn rank_mismatch_is_error() {
        let shape = shape424();
        let m: DimMask = "10".parse().unwrap();
        assert!(m.group_size(&shape).is_err());
    }

    #[test]
    fn all_and_single_constructors() {
        let shape = shape424();
        let all = DimMask::all(&shape);
        assert_eq!(all.group_size(&shape).unwrap(), 32);
        assert_eq!(all.num_groups(&shape).unwrap(), 1);
        let y = DimMask::single(3, 1);
        assert_eq!(format!("{y}"), "010");
        assert_eq!(y.unselected(), vec![0, 2]);
    }
}

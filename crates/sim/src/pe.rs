//! Per-PE state: MRAM, WRAM bookkeeping and local reorder kernels.
//!
//! Each bank of a PIM-enabled DIMM has a processing element (UPMEM: DPU)
//! with direct access to its 64 MB bank (MRAM) through a small scratchpad
//! (WRAM). PEs cannot see each other's banks — all inter-PE traffic goes
//! through the host — but they *can* rearrange their own data, which is what
//! the paper's *PE-assisted reordering* exploits (§V-A1).

/// WRAM scratchpad size of an UPMEM DPU in bytes.
pub const WRAM_BYTES: usize = 64 * 1024;

/// MRAM capacity of an UPMEM DPU in bytes. The simulator allocates lazily,
/// but refuses accesses beyond this bound.
pub const MRAM_CAPACITY: usize = 64 * 1024 * 1024;

/// One processing element and its bank.
///
/// MRAM is grown on demand (reads of never-written regions observe zeros,
/// like freshly initialized DRAM in the functional model), so simulating
/// 1024 PEs only costs memory proportional to the bytes actually used.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    mram: Vec<u8>,
}

impl Pe {
    /// Creates a PE with empty (all-zero) MRAM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of MRAM bytes touched so far.
    pub fn mram_used(&self) -> usize {
        self.mram.len()
    }

    /// Ensures MRAM covers `end` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds [`MRAM_CAPACITY`].
    fn ensure(&mut self, end: usize) {
        assert!(
            end <= MRAM_CAPACITY,
            "MRAM access at {end} exceeds 64 MiB bank"
        );
        if self.mram.len() < end {
            self.mram.resize(end, 0);
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&mut self, offset: usize, len: usize) -> &[u8] {
        self.ensure(offset + len);
        &self.mram[offset..offset + len]
    }

    /// Copies `len` bytes at `offset` into `dst`.
    pub fn read_into(&mut self, offset: usize, dst: &mut [u8]) {
        self.ensure(offset + dst.len());
        dst.copy_from_slice(&self.mram[offset..offset + dst.len()]);
    }

    /// Writes `src` at `offset`.
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        self.ensure(offset + src.len());
        self.mram[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Mutable view of `len` bytes at `offset`.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        self.ensure(offset + len);
        &mut self.mram[offset..offset + len]
    }

    /// Local reorder kernel: treats `[offset, offset + count*block) ` as
    /// `count` blocks of `block` bytes and rearranges them so that the block
    /// at destination slot `d` is the block previously at slot `perm[d]`.
    ///
    /// This runs *inside* the PE (through WRAM), so the host never sees the
    /// data; callers charge [`crate::cost::Category::PeModulation`] time.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != count` or `perm` is not a permutation.
    pub fn permute_blocks(&mut self, offset: usize, block: usize, count: usize, perm: &[usize]) {
        assert_eq!(perm.len(), count, "permutation length mismatch");
        let len = block * count;
        self.ensure(offset + len);
        let region = &mut self.mram[offset..offset + len];
        let orig = region.to_vec();
        let mut seen = vec![false; count];
        for (dst, &src) in perm.iter().enumerate() {
            assert!(src < count, "permutation index {src} out of range");
            assert!(!seen[src], "duplicate permutation index {src}");
            seen[src] = true;
            region[dst * block..(dst + 1) * block]
                .copy_from_slice(&orig[src * block..(src + 1) * block]);
        }
    }

    /// Local rotation kernel: rotates `count` blocks of `block` bytes left
    /// by `rot` slots (the block at slot `(d + rot) % count` moves to slot
    /// `d`).
    pub fn rotate_blocks(&mut self, offset: usize, block: usize, count: usize, rot: usize) {
        if count == 0 {
            return;
        }
        let perm: Vec<usize> = (0..count).map(|d| (d + rot) % count).collect();
        self.permute_blocks(offset, block, count, &perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_of_untouched_mram_are_zero() {
        let mut pe = Pe::new();
        assert_eq!(pe.read(100, 4), &[0, 0, 0, 0]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut pe = Pe::new();
        pe.write(8, &[1, 2, 3]);
        assert_eq!(pe.read(8, 3), &[1, 2, 3]);
        assert_eq!(pe.mram_used(), 11);
    }

    #[test]
    fn rotate_blocks_left() {
        let mut pe = Pe::new();
        pe.write(0, &[0u8, 0, 1, 1, 2, 2, 3, 3]);
        pe.rotate_blocks(0, 2, 4, 1);
        // Slot d receives old slot (d+1)%4.
        assert_eq!(pe.read(0, 8), &[1, 1, 2, 2, 3, 3, 0, 0]);
    }

    #[test]
    fn rotate_by_count_is_identity() {
        let mut pe = Pe::new();
        let data: Vec<u8> = (0..24).collect();
        pe.write(0, &data);
        pe.rotate_blocks(0, 4, 6, 6);
        assert_eq!(pe.read(0, 24), &data[..]);
    }

    #[test]
    fn permute_blocks_applies_mapping() {
        let mut pe = Pe::new();
        pe.write(0, &[10, 20, 30]);
        pe.permute_blocks(0, 1, 3, &[2, 0, 1]);
        assert_eq!(pe.read(0, 3), &[30, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "duplicate permutation index")]
    fn permute_rejects_non_permutation() {
        let mut pe = Pe::new();
        pe.permute_blocks(0, 1, 2, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 MiB")]
    fn mram_capacity_enforced() {
        let mut pe = Pe::new();
        pe.write(MRAM_CAPACITY, &[1]);
    }
}

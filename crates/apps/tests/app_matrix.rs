//! Application matrix tests: every app at several PE counts, optimization
//! levels and (where applicable) element widths — all must validate
//! bit-exactly and produce structurally sane profiles.

use pidcomm::{OptLevel, Primitive};
use pidcomm_apps::bfs::{default_source, run_bfs, run_bfs_in, BfsConfig};
use pidcomm_apps::cc::{run_cc, run_cc_in, CcConfig};
use pidcomm_apps::dlrm::{run_dlrm, run_dlrm_in, DlrmRunConfig};
use pidcomm_apps::gnn::{run_gnn, run_gnn_in, GnnConfig, GnnVariant};
use pidcomm_apps::mlp::{run_mlp, run_mlp_in, MlpConfig};
use pidcomm_apps::AppRun;
use pidcomm_data::dlrm::DlrmConfig;
use pidcomm_data::{rmat, CsrGraph, RmatParams};
use pim_sim::{DType, SystemArena};

fn graph() -> CsrGraph {
    rmat(11, 6, RmatParams::skewed(77)).to_undirected()
}

#[test]
fn mlp_validates_across_pe_counts() {
    for pes in [8, 32, 64, 256] {
        let run = run_mlp(&MlpConfig {
            threads: 0,
            features: 1024,
            layers: 2,
            pes,
            opt: OptLevel::Full,
        })
        .unwrap();
        assert!(run.validated, "{pes} PEs");
        // More PEs -> no more kernel time per PE (work splits).
        assert!(run.profile.kernel_ns > 0.0);
    }
}

#[test]
fn mlp_presets_are_consistent() {
    let a = MlpConfig::feat16k(64, OptLevel::Full);
    assert_eq!(a.features, 2048);
    assert_eq!(a.layers, 5);
    let b = MlpConfig::feat32k(64, OptLevel::Baseline);
    assert_eq!(b.features, 4096);
    assert_eq!(b.opt, OptLevel::Baseline);
}

#[test]
fn mlp_kernel_time_shrinks_with_more_pes() {
    let small = run_mlp(&MlpConfig {
        threads: 0,
        features: 1024,
        layers: 2,
        pes: 16,
        opt: OptLevel::Full,
    })
    .unwrap();
    let large = run_mlp(&MlpConfig {
        threads: 0,
        features: 1024,
        layers: 2,
        pes: 256,
        opt: OptLevel::Full,
    })
    .unwrap();
    assert!(
        large.profile.kernel_ns < small.profile.kernel_ns,
        "parallel kernels must speed up: {} vs {}",
        large.profile.kernel_ns,
        small.profile.kernel_ns
    );
}

#[test]
fn bfs_validates_across_pe_counts_and_levels() {
    let g = graph();
    let src = default_source(&g);
    for pes in [16, 64, 128] {
        for opt in [OptLevel::Baseline, OptLevel::InRegister, OptLevel::Full] {
            let run = run_bfs(
                &BfsConfig {
                    threads: 0,
                    pes,
                    opt,
                },
                &g,
                src,
            )
            .unwrap();
            assert!(run.validated, "{pes} PEs {opt}");
        }
    }
}

#[test]
fn bfs_from_every_kind_of_source() {
    let g = graph();
    // Hub, vertex 0, and a likely low-degree vertex.
    for src in [default_source(&g), 0, (g.num_vertices() - 1) as u32] {
        let run = run_bfs(
            &BfsConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Full,
            },
            &g,
            src,
        )
        .unwrap();
        assert!(run.validated, "source {src}");
    }
}

#[test]
fn cc_handles_star_chain_and_isolated_graphs() {
    // Star.
    let star = CsrGraph::from_edges(64, (1..64).map(|v| (0u32, v as u32)).collect());
    let run = run_cc(
        &CcConfig {
            threads: 0,
            pes: 16,
            opt: OptLevel::Full,
        },
        &star,
    )
    .unwrap();
    assert!(run.validated);

    // Chain.
    let chain = CsrGraph::from_edges(64, (0..63).map(|v| (v as u32, v as u32 + 1)).collect());
    let run = run_cc(
        &CcConfig {
            threads: 0,
            pes: 16,
            opt: OptLevel::Full,
        },
        &chain,
    )
    .unwrap();
    assert!(run.validated);

    // Fully isolated vertices: every vertex is its own component.
    let isolated = CsrGraph::from_edges(64, vec![]);
    let run = run_cc(
        &CcConfig {
            threads: 0,
            pes: 16,
            opt: OptLevel::Full,
        },
        &isolated,
    )
    .unwrap();
    assert!(run.validated);
}

#[test]
fn gnn_all_variants_widths_and_levels() {
    let g = rmat(10, 4, RmatParams::uniform(9));
    for variant in [GnnVariant::RsAr, GnnVariant::ArAg] {
        for dtype in [DType::I8, DType::I16, DType::I32] {
            for opt in [OptLevel::Baseline, OptLevel::Full] {
                let run = run_gnn(
                    &GnnConfig {
                        threads: 0,
                        pes: 64,
                        feature_dim: 16,
                        layers: 2,
                        variant,
                        opt,
                        dtype,
                    },
                    &g,
                )
                .unwrap();
                assert!(run.validated, "{} {dtype} {opt}", variant.label());
            }
        }
    }
}

#[test]
fn gnn_single_layer_and_256_pes() {
    let g = rmat(12, 4, RmatParams::skewed(4)); // 4096 vertices % 256
    let run = run_gnn(
        &GnnConfig {
            threads: 0,
            pes: 256,
            feature_dim: 32,
            layers: 1,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        },
        &g,
    )
    .unwrap();
    assert!(run.validated);
}

#[test]
fn dlrm_validates_across_pe_counts_and_dims() {
    for pes in [64, 128, 256] {
        for dim in [16, 32] {
            let mut w = DlrmConfig::criteo_like(dim);
            w.batch_size = 1024;
            w.rows_per_table = 1 << 10;
            let run = run_dlrm(&DlrmRunConfig {
                threads: 0,
                workload: w,
                pes,
                opt: OptLevel::Full,
            })
            .unwrap();
            assert!(run.validated, "{pes} PEs dim {dim}");
            assert!(run.profile.primitive_ns(Primitive::AlltoAll) > 0.0);
            assert!(run.profile.primitive_ns(Primitive::Gather) > 0.0);
        }
    }
}

#[test]
fn profiles_only_contain_the_expected_primitives() {
    // Table III's primitive mix, checked mechanically.
    let g = graph();
    let bfs = run_bfs(
        &BfsConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        },
        &g,
        default_source(&g),
    )
    .unwrap();
    for p in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::Broadcast,
    ] {
        assert_eq!(bfs.profile.primitive_ns(p), 0.0, "BFS should not use {p}");
    }
    assert!(bfs.profile.primitive_ns(Primitive::AllReduce) > 0.0);
    assert!(bfs.profile.primitive_ns(Primitive::Scatter) > 0.0);

    let mlp = run_mlp(&MlpConfig {
        threads: 0,
        features: 512,
        layers: 2,
        pes: 64,
        opt: OptLevel::Full,
    })
    .unwrap();
    for p in [
        Primitive::AlltoAll,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        assert_eq!(mlp.profile.primitive_ns(p), 0.0, "MLP should not use {p}");
    }
    assert!(mlp.profile.primitive_ns(Primitive::ReduceScatter) > 0.0);
}

/// Runs all five apps at a given host-kernel/engine thread budget,
/// sourcing systems from `arena` — the pinning harness for the two tests
/// below.
fn run_all_apps(threads: usize, arena: &mut SystemArena) -> Vec<AppRun> {
    let g = graph();
    let src = default_source(&g);
    vec![
        run_mlp_in(
            &MlpConfig {
                threads,
                features: 512,
                layers: 3,
                pes: 64,
                opt: OptLevel::Full,
            },
            arena,
        )
        .unwrap(),
        run_bfs_in(
            &BfsConfig {
                threads,
                pes: 64,
                opt: OptLevel::Full,
            },
            &g,
            src,
            arena,
        )
        .unwrap(),
        run_cc_in(
            &CcConfig {
                threads,
                pes: 64,
                opt: OptLevel::Full,
            },
            &g,
            arena,
        )
        .unwrap(),
        run_gnn_in(
            &GnnConfig {
                threads,
                pes: 64,
                feature_dim: 16,
                layers: 2,
                variant: GnnVariant::RsAr,
                opt: OptLevel::Full,
                dtype: DType::I32,
            },
            &g,
            arena,
        )
        .unwrap(),
        run_dlrm_in(
            &DlrmRunConfig {
                threads,
                workload: DlrmConfig {
                    num_tables: 8,
                    rows_per_table: 1 << 10,
                    embedding_dim: 16,
                    batch_size: 1024,
                    seed: 7,
                },
                pes: 64,
                opt: OptLevel::Full,
            },
            arena,
        )
        .unwrap(),
    ]
}

#[test]
fn host_kernel_thread_counts_never_change_any_app_result() {
    // The host-kernel executor (`pidcomm::par_pes`) fans the apps' per-PE
    // functional loops over the `threads` budget; outputs, profiles and
    // modeled times must stay byte-identical at {1, 2, auto}.
    let reference = run_all_apps(1, &mut SystemArena::new());
    assert!(reference.iter().all(|r| r.validated));
    for threads in [2usize, 0] {
        let runs = run_all_apps(threads, &mut SystemArena::new());
        for (i, (a, b)) in reference.iter().zip(&runs).enumerate() {
            assert!(a == b, "app #{i} diverges at host-kernel threads={threads}");
        }
    }
}

#[test]
fn arena_reuse_between_runs_never_leaks_state() {
    // Two consecutive passes over all apps on one arena: the second pass
    // runs entirely on recycled systems/buffers and must be byte-identical
    // to the fresh-allocation reference, at serial and parallel host
    // kernels alike.
    let reference = run_all_apps(1, &mut SystemArena::new());
    let mut arena = SystemArena::new();
    for pass in 0..2 {
        for threads in [1usize, 0] {
            let runs = run_all_apps(threads, &mut arena);
            for (i, (a, b)) in reference.iter().zip(&runs).enumerate() {
                assert!(
                    a == b,
                    "app #{i} diverges on arena pass {pass} at threads={threads}"
                );
            }
        }
    }
    assert!(
        arena.pooled_systems() >= 1,
        "apps must recycle their systems"
    );
}

#[test]
fn optimization_level_never_changes_results_only_time() {
    // Same seed, all four levels: identical kernels, different comm time.
    let g = graph();
    let src = default_source(&g);
    let runs: Vec<_> = OptLevel::ALL
        .iter()
        .map(|&opt| {
            run_bfs(
                &BfsConfig {
                    threads: 0,
                    pes: 64,
                    opt,
                },
                &g,
                src,
            )
            .unwrap()
        })
        .collect();
    for r in &runs {
        assert!(r.validated);
        assert!((r.profile.kernel_ns - runs[0].profile.kernel_ns).abs() < 1e-6);
    }
    // Full must beat Baseline on communication.
    assert!(runs[3].profile.comm_ns() < runs[0].profile.comm_ns());
}

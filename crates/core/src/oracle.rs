//! Functional reference semantics for the eight collectives.
//!
//! These are deliberately naive, obviously-correct implementations on plain
//! byte vectors; the engine's byte-accurate streaming paths are tested
//! against them, and the baseline (host-memory) path executes them
//! directly — which is faithful, since the conventional flow really does
//! materialize all data in host memory and rearrange it there.

use pim_sim::dtype::{fill_identity, reduce_bytes, DType, ReduceKind};

/// AlltoAll: `out[d]` is the concatenation over sources `s` of chunk `d`
/// of `inputs[s]`.
///
/// # Panics
///
/// Panics if inputs have unequal lengths or are not divisible into
/// `inputs.len()` chunks.
#[allow(clippy::needless_range_loop)]
pub fn alltoall(inputs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let n = inputs.len();
    let b = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == b), "ragged inputs");
    assert_eq!(b % n, 0, "input not divisible into {n} chunks");
    let c = b / n;
    (0..n)
        .map(|d| {
            let mut out = Vec::with_capacity(b);
            for src in inputs {
                out.extend_from_slice(&src[d * c..(d + 1) * c]);
            }
            out
        })
        .collect()
}

/// ReduceScatter: `out[d]` is the element-wise reduction over sources of
/// chunk `d`.
///
/// # Panics
///
/// Panics on ragged or indivisible inputs.
pub fn reduce_scatter(inputs: &[Vec<u8>], op: ReduceKind, dtype: DType) -> Vec<Vec<u8>> {
    let n = inputs.len();
    let b = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == b), "ragged inputs");
    assert_eq!(b % n, 0, "input not divisible into {n} chunks");
    let c = b / n;
    (0..n)
        .map(|d| {
            let mut acc = vec![0u8; c];
            fill_identity(op, dtype, &mut acc);
            for src in inputs {
                reduce_bytes(op, dtype, &mut acc, &src[d * c..(d + 1) * c]);
            }
            acc
        })
        .collect()
}

/// AllReduce: every output is the element-wise reduction of all inputs.
///
/// # Panics
///
/// Panics on ragged inputs.
pub fn all_reduce(inputs: &[Vec<u8>], op: ReduceKind, dtype: DType) -> Vec<Vec<u8>> {
    let reduced = reduce(inputs, op, dtype);
    vec![reduced; inputs.len()]
}

/// AllGather: every output is the concatenation of all inputs.
///
/// # Panics
///
/// Panics on ragged inputs.
pub fn all_gather(inputs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let b = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == b), "ragged inputs");
    let cat: Vec<u8> = inputs.iter().flatten().copied().collect();
    vec![cat; inputs.len()]
}

/// Scatter: splits `host` into `n` equal chunks.
///
/// # Panics
///
/// Panics if `host.len()` is not divisible by `n`.
pub fn scatter(host: &[u8], n: usize) -> Vec<Vec<u8>> {
    assert_eq!(host.len() % n, 0, "host data not divisible into {n} chunks");
    let c = host.len() / n;
    (0..n).map(|d| host[d * c..(d + 1) * c].to_vec()).collect()
}

/// Gather: concatenates all inputs on the host.
pub fn gather(inputs: &[Vec<u8>]) -> Vec<u8> {
    inputs.iter().flatten().copied().collect()
}

/// Reduce: the element-wise reduction of all inputs, on the host.
///
/// # Panics
///
/// Panics on ragged inputs.
pub fn reduce(inputs: &[Vec<u8>], op: ReduceKind, dtype: DType) -> Vec<u8> {
    let b = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == b), "ragged inputs");
    let mut acc = vec![0u8; b];
    fill_identity(op, dtype, &mut acc);
    for src in inputs {
        reduce_bytes(op, dtype, &mut acc, src);
    }
    acc
}

/// Broadcast: every node receives a copy of `host`.
pub fn broadcast(host: &[u8], n: usize) -> Vec<Vec<u8>> {
    vec![host.to_vec(); n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u32v(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn alltoall_matches_figure2() {
        // Fig. 2 AA: node s holds [A_s B_s C_s D_s]; node d ends with
        // [A..D chunk d from every source].
        let inputs: Vec<Vec<u8>> = (0..4)
            .map(|s| u32v(&[s * 10, s * 10 + 1, s * 10 + 2, s * 10 + 3]))
            .collect();
        let out = alltoall(&inputs);
        assert_eq!(out[0], u32v(&[0, 10, 20, 30]));
        assert_eq!(out[3], u32v(&[3, 13, 23, 33]));
    }

    #[test]
    fn alltoall_is_involution() {
        let inputs: Vec<Vec<u8>> = (0..8u8)
            .map(|s| (0..64).map(|i| s.wrapping_mul(31) ^ i).collect())
            .collect();
        assert_eq!(alltoall(&alltoall(&inputs)), inputs);
    }

    #[test]
    fn reduce_scatter_sums_chunks() {
        let inputs: Vec<Vec<u8>> = (0..4).map(|s| u32v(&[s, s, s, s])).collect();
        let out = reduce_scatter(&inputs, ReduceKind::Sum, DType::U32);
        for chunk in &out {
            assert_eq!(chunk, &u32v(&[1 + 2 + 3]));
        }
    }

    #[test]
    fn all_reduce_equals_reduce_everywhere() {
        let inputs: Vec<Vec<u8>> = (1..=4).map(|s| u32v(&[s, 100 * s])).collect();
        let out = all_reduce(&inputs, ReduceKind::Sum, DType::U32);
        assert_eq!(out.len(), 4);
        for o in &out {
            assert_eq!(*o, u32v(&[10, 1000]));
        }
    }

    #[test]
    fn all_gather_concatenates() {
        let inputs = vec![u32v(&[1]), u32v(&[2]), u32v(&[3])];
        let out = all_gather(&inputs);
        for o in &out {
            assert_eq!(*o, u32v(&[1, 2, 3]));
        }
    }

    #[test]
    fn rs_then_ag_equals_allreduce() {
        // The classic identity AllReduce = ReduceScatter ; AllGather.
        let inputs: Vec<Vec<u8>> = (0..4).map(|s| u32v(&[s, s + 1, s + 2, s + 3])).collect();
        let rs = reduce_scatter(&inputs, ReduceKind::Sum, DType::U32);
        let ag = all_gather(&rs);
        let ar = all_reduce(&inputs, ReduceKind::Sum, DType::U32);
        assert_eq!(ag, ar);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let host = u32v(&[1, 2, 3, 4, 5, 6]);
        let parts = scatter(&host, 3);
        assert_eq!(parts[1], u32v(&[3, 4]));
        assert_eq!(gather(&parts), host);
    }

    #[test]
    fn reduce_min() {
        let inputs = vec![u32v(&[5, 9]), u32v(&[3, 12])];
        assert_eq!(reduce(&inputs, ReduceKind::Min, DType::U32), u32v(&[3, 9]));
    }

    #[test]
    fn broadcast_copies() {
        let out = broadcast(&[1, 2, 3], 4);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o == &[1, 2, 3]));
    }
}

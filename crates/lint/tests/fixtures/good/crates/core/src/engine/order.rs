use std::collections::{BTreeMap, HashMap};

pub struct Sched {
    plans: HashMap<u64, u64>,
    order: BTreeMap<u64, u64>,
}

impl Sched {
    pub fn emit(&self) -> u64 {
        // Keyed lookup into the hash map is fine; iteration happens over
        // the sorted map only.
        let direct = self.plans[&3];
        let mut sum = direct;
        for (k, v) in &self.order {
            sum += k + v;
        }
        sum
    }
}

//! Per-PE state: MRAM, WRAM bookkeeping and local reorder kernels.
//!
//! Each bank of a PIM-enabled DIMM has a processing element (UPMEM: DPU)
//! with direct access to its 64 MB bank (MRAM) through a small scratchpad
//! (WRAM). PEs cannot see each other's banks — all inter-PE traffic goes
//! through the host — but they *can* rearrange their own data, which is what
//! the paper's *PE-assisted reordering* exploits (§V-A1).

/// WRAM scratchpad size of an UPMEM DPU in bytes.
pub const WRAM_BYTES: usize = 64 * 1024;

/// MRAM capacity of an UPMEM DPU in bytes. The simulator allocates lazily,
/// but refuses accesses beyond this bound.
pub const MRAM_CAPACITY: usize = 64 * 1024 * 1024;

/// One processing element and its bank.
///
/// MRAM is grown on demand (reads of never-written regions observe zeros,
/// like freshly initialized DRAM in the functional model), so simulating
/// 1024 PEs only costs memory proportional to the bytes actually used.
///
/// Reorder kernels reuse a per-PE scratch buffer (the WRAM stand-in), so
/// steady-state collectives run without per-call heap allocation.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    mram: Vec<u8>,
    /// Reusable staging buffer for the reorder kernels. Capacity grows to
    /// the largest region ever permuted and is then reused; never read
    /// outside a single kernel invocation.
    scratch: Vec<u8>,
}

impl Pe {
    /// Creates a PE with empty (all-zero) MRAM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of MRAM bytes touched so far.
    pub fn mram_used(&self) -> usize {
        self.mram.len()
    }

    /// Ensures MRAM covers `end` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds [`MRAM_CAPACITY`].
    fn ensure(&mut self, end: usize) {
        assert!(
            end <= MRAM_CAPACITY,
            "MRAM access at {end} exceeds 64 MiB bank"
        );
        if self.mram.len() < end {
            self.mram.resize(end, 0);
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&mut self, offset: usize, len: usize) -> &[u8] {
        self.ensure(offset + len);
        &self.mram[offset..offset + len]
    }

    /// Copies `len` bytes at `offset` into `dst`.
    pub fn read_into(&mut self, offset: usize, dst: &mut [u8]) {
        self.ensure(offset + dst.len());
        dst.copy_from_slice(&self.mram[offset..offset + dst.len()]);
    }

    /// Copies the bytes at `offset` into `dst` without growing MRAM:
    /// regions beyond the touched extent read as zeros, exactly like
    /// [`Pe::read`], but through `&self` — so read-only metering and
    /// parallel readers need no exclusive access.
    ///
    /// # Panics
    ///
    /// Panics if the access would exceed [`MRAM_CAPACITY`].
    pub fn peek_into(&self, offset: usize, dst: &mut [u8]) {
        let end = offset + dst.len();
        assert!(
            end <= MRAM_CAPACITY,
            "MRAM access at {end} exceeds 64 MiB bank"
        );
        let avail = self.mram.len().saturating_sub(offset).min(dst.len());
        if avail > 0 {
            dst[..avail].copy_from_slice(&self.mram[offset..offset + avail]);
        }
        dst[avail..].fill(0);
    }

    /// Returns `len` bytes at `offset` as a fresh vector without growing
    /// MRAM (untouched regions read as zeros). `&self` counterpart of
    /// `read(..).to_vec()`.
    pub fn peek(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.peek_into(offset, &mut out);
        out
    }

    /// Borrows `len` bytes at `offset` if the region is already
    /// materialized, `None` otherwise. Zero-copy fast path for readers
    /// that can fall back to [`Pe::peek_into`].
    pub fn try_slice(&self, offset: usize, len: usize) -> Option<&[u8]> {
        self.mram.get(offset..offset + len)
    }

    /// Reserves backing capacity for accesses up to `end` bytes without
    /// materializing (zero-filling) anything. Purely a performance hint:
    /// reserving in one step avoids the chain of reallocation copies that
    /// incremental growth would trigger, while regions are still zeroed
    /// lazily only when first skipped over by a write. Reads and writes
    /// behave identically either way.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds [`MRAM_CAPACITY`].
    pub fn reserve_extent(&mut self, end: usize) {
        assert!(
            end <= MRAM_CAPACITY,
            "MRAM access at {end} exceeds 64 MiB bank"
        );
        if end > self.mram.len() {
            self.mram.reserve(end - self.mram.len());
        }
    }

    /// Writes `src` at `offset`.
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        self.ensure(offset + src.len());
        self.mram[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copies `len` bytes from another PE's MRAM (`src` at `src_offset`)
    /// to `dst_offset` — the host-mediated PE-to-PE move, without staging
    /// through an intermediate buffer. Untouched source regions read as
    /// zeros, matching [`Pe::peek_into`].
    pub fn copy_from(&mut self, dst_offset: usize, src: &Pe, src_offset: usize, len: usize) {
        let dst = self.slice_mut(dst_offset, len);
        src.peek_into(src_offset, dst);
    }

    /// Copies `len` bytes from `src_offset` to `dst_offset` within this
    /// PE's MRAM. The regions must not overlap.
    pub fn copy_within_region(&mut self, src_offset: usize, dst_offset: usize, len: usize) {
        debug_assert!(
            src_offset + len <= dst_offset || dst_offset + len <= src_offset,
            "overlapping intra-PE copy"
        );
        self.ensure(src_offset.max(dst_offset) + len);
        self.mram
            .copy_within(src_offset..src_offset + len, dst_offset);
    }

    /// Mutable view of `len` bytes at `offset`.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        self.ensure(offset + len);
        &mut self.mram[offset..offset + len]
    }

    /// Debug-only validity check: `perm` must be a permutation of
    /// `0..count`.
    #[cfg(debug_assertions)]
    fn check_permutation(perm: &[usize], count: usize) {
        let mut seen = vec![false; count];
        for &src in perm {
            assert!(src < count, "permutation index {src} out of range");
            assert!(!seen[src], "duplicate permutation index {src}");
            seen[src] = true;
        }
    }

    /// Recognizes a permutation that rotates equal-sized parts uniformly:
    /// returns `(part_len, rot)` such that
    /// `perm[j] == (j % part_len + rot) % part_len + (j / part_len) * part_len`.
    /// The phase-A tables of the collective engine always have this form,
    /// and rotating in place halves the memory traffic of the generic
    /// staged permutation.
    fn as_part_rotation(perm: &[usize]) -> Option<(usize, usize)> {
        let count = perm.len();
        'candidates: for q in (1..=count).filter(|&q| count.is_multiple_of(q)) {
            let rot = perm[0];
            if rot >= q {
                continue;
            }
            for (j, &p) in perm.iter().enumerate() {
                if p != (j % q + rot) % q + (j / q) * q {
                    continue 'candidates;
                }
            }
            return Some((q, rot));
        }
        None
    }

    /// Local reorder kernel: treats `[offset, offset + count*block) ` as
    /// `count` blocks of `block` bytes and rearranges them so that the block
    /// at destination slot `d` is the block previously at slot `perm[d]`.
    ///
    /// This runs *inside* the PE (through WRAM), so the host never sees the
    /// data; callers charge [`crate::cost::Category::PeModulation`] time.
    /// Allocation-free in steady state: part-wise rotations (the engine's
    /// phase-A tables) run as in-place slice rotations; anything else is
    /// staged through the PE's reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != count`; in debug builds additionally if
    /// `perm` is not a permutation of `0..count`.
    pub fn permute_blocks(&mut self, offset: usize, block: usize, count: usize, perm: &[usize]) {
        assert_eq!(perm.len(), count, "permutation length mismatch");
        #[cfg(debug_assertions)]
        Self::check_permutation(perm, count);
        let len = block * count;
        self.ensure(offset + len);
        if let Some((part, rot)) = Self::as_part_rotation(perm) {
            if rot == 0 {
                return;
            }
            for region in self.mram[offset..offset + len].chunks_exact_mut(part * block) {
                region.rotate_left(rot * block);
            }
            return;
        }
        let region = &mut self.mram[offset..offset + len];
        self.scratch.clear();
        self.scratch.extend_from_slice(region);
        for (dst, &src) in perm.iter().enumerate() {
            region[dst * block..(dst + 1) * block]
                .copy_from_slice(&self.scratch[src * block..(src + 1) * block]);
        }
    }

    /// Local rotation kernel: rotates `count` blocks of `block` bytes left
    /// by `rot` slots (the block at slot `(d + rot) % count` moves to slot
    /// `d`). Implemented as an in-place slice rotation — no permutation
    /// table, no staging copy.
    pub fn rotate_blocks(&mut self, offset: usize, block: usize, count: usize, rot: usize) {
        if count == 0 {
            return;
        }
        let rot = rot % count;
        if rot == 0 {
            return;
        }
        let len = block * count;
        self.ensure(offset + len);
        self.mram[offset..offset + len].rotate_left(rot * block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_of_untouched_mram_are_zero() {
        let mut pe = Pe::new();
        assert_eq!(pe.read(100, 4), &[0, 0, 0, 0]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut pe = Pe::new();
        pe.write(8, &[1, 2, 3]);
        assert_eq!(pe.read(8, 3), &[1, 2, 3]);
        assert_eq!(pe.mram_used(), 11);
    }

    #[test]
    fn peek_does_not_grow_mram() {
        let mut pe = Pe::new();
        pe.write(0, &[9, 8]);
        let used = pe.mram_used();
        assert_eq!(pe.peek(0, 4), vec![9, 8, 0, 0]);
        assert_eq!(pe.peek(100, 3), vec![0, 0, 0]);
        assert_eq!(pe.mram_used(), used, "peek must not grow MRAM");
        // peek matches read for any region.
        let via_read = pe.read(60, 8).to_vec();
        assert_eq!(pe.peek(60, 8), via_read);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 MiB")]
    fn peek_respects_capacity() {
        let pe = Pe::new();
        let mut buf = [0u8; 2];
        pe.peek_into(MRAM_CAPACITY - 1, &mut buf);
    }

    #[test]
    fn rotate_blocks_left() {
        let mut pe = Pe::new();
        pe.write(0, &[0u8, 0, 1, 1, 2, 2, 3, 3]);
        pe.rotate_blocks(0, 2, 4, 1);
        // Slot d receives old slot (d+1)%4.
        assert_eq!(pe.read(0, 8), &[1, 1, 2, 2, 3, 3, 0, 0]);
    }

    #[test]
    fn rotate_by_count_is_identity() {
        let mut pe = Pe::new();
        let data: Vec<u8> = (0..24).collect();
        pe.write(0, &data);
        pe.rotate_blocks(0, 4, 6, 6);
        assert_eq!(pe.read(0, 24), &data[..]);
    }

    #[test]
    fn rotate_matches_equivalent_permutation() {
        // rotate_blocks(rot) must equal permute_blocks with
        // perm[d] = (d + rot) % count — the table the seed implementation
        // built explicitly.
        for count in [1usize, 2, 3, 5, 8] {
            for rot in 0..count + 2 {
                let data: Vec<u8> = (0..(count * 4) as u8).collect();
                let mut a = Pe::new();
                a.write(0, &data);
                a.rotate_blocks(0, 4, count, rot);
                let mut b = Pe::new();
                b.write(0, &data);
                let perm: Vec<usize> = (0..count).map(|d| (d + rot) % count).collect();
                b.permute_blocks(0, 4, count, &perm);
                assert_eq!(a.read(0, count * 4), b.read(0, count * 4), "{count}/{rot}");
            }
        }
    }

    #[test]
    fn permute_blocks_rotation_fast_path_matches_generic() {
        // Every permutation — part rotations (fast path) and arbitrary
        // tables (scratch path) — must produce the mapping
        // out[d] = in[perm[d]].
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4, 5], // identity
            vec![2, 3, 4, 5, 0, 1], // single-part rotation
            vec![1, 2, 0, 4, 5, 3], // two parts of 3, rot 1
            vec![5, 4, 3, 2, 1, 0], // reversal (generic)
            vec![1, 0, 3, 2, 5, 4], // pairwise swap = parts of 2 rot 1
            vec![3, 1, 4, 0, 5, 2], // arbitrary (generic)
        ];
        for perm in perms {
            let data: Vec<u8> = (0..48).collect();
            let mut pe = Pe::new();
            pe.write(0, &data);
            pe.permute_blocks(0, 8, 6, &perm);
            let got = pe.read(0, 48).to_vec();
            for (d, &s) in perm.iter().enumerate() {
                assert_eq!(
                    &got[d * 8..(d + 1) * 8],
                    &data[s * 8..(s + 1) * 8],
                    "perm {perm:?} slot {d}"
                );
            }
        }
    }

    #[test]
    fn permute_blocks_applies_mapping() {
        let mut pe = Pe::new();
        pe.write(0, &[10, 20, 30]);
        pe.permute_blocks(0, 1, 3, &[2, 0, 1]);
        assert_eq!(pe.read(0, 3), &[30, 10, 20]);
    }

    #[test]
    fn permute_blocks_is_reusable_across_sizes() {
        // The scratch buffer must not leak state between invocations of
        // different sizes.
        let mut pe = Pe::new();
        pe.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        pe.permute_blocks(0, 2, 4, &[3, 2, 1, 0]);
        assert_eq!(pe.read(0, 8), &[7, 8, 5, 6, 3, 4, 1, 2]);
        pe.permute_blocks(0, 1, 2, &[1, 0]);
        assert_eq!(pe.read(0, 2), &[8, 7]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate permutation index")]
    fn permute_rejects_non_permutation() {
        let mut pe = Pe::new();
        pe.permute_blocks(0, 1, 2, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 MiB")]
    fn mram_capacity_enforced() {
        let mut pe = Pe::new();
        pe.write(MRAM_CAPACITY, &[1]);
    }
}

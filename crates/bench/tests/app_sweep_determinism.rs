//! The work-stealing sweep pool and the apps' engine threading are pure
//! execution knobs: every budget must produce `AppProfile`s, modeled CPU
//! times and validation results byte-identical to the serial reference
//! schedule — the property the recorded `BENCH_apps.json` speedups rest
//! on.

use pidcomm::OptLevel;
use pidcomm_bench::apps;
use pidcomm_bench::sweep::SweepBudget;

#[test]
fn app_sweep_matches_serial_at_every_thread_count() {
    let cases = apps::small_cases();
    let cells = apps::base_vs_full_cells(cases.len(), 64);
    let reference = apps::run_app_sweep(&cases, &cells, SweepBudget::serial());
    assert!(
        reference.iter().all(|r| r.validated),
        "every app must validate against its CPU reference"
    );
    for total in [0usize, 2, 4] {
        let budget = SweepBudget::split(total, cells.len());
        let runs = apps::run_app_sweep(&cases, &cells, budget);
        assert_eq!(runs.len(), reference.len());
        for ((cell, serial), parallel) in cells.iter().zip(&reference).zip(&runs) {
            assert!(
                serial == parallel,
                "{} {} {:?} diverges from serial at threads={total}",
                cases[cell.case].app,
                cases[cell.case].dataset,
                cell.opt
            );
        }
    }
}

#[test]
fn app_engine_threads_are_pure_execution_knobs() {
    // Inside one app run, the cluster-level fan-out bound must not leak
    // into any result either.
    let cases = apps::small_cases();
    for case in &cases {
        let serial = case.run_threaded(64, OptLevel::Full, 1);
        for threads in [0usize, 2, 4] {
            let run = case.run_threaded(64, OptLevel::Full, threads);
            assert!(
                serial == run,
                "{} {} diverges at engine threads={threads}",
                case.app,
                case.dataset
            );
        }
    }
}

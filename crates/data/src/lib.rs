//! # pidcomm-data — synthetic dataset generators for the PID-Comm reproduction
//!
//! The paper evaluates on Criteo (DLRM), PubMed/Reddit (GNN) and
//! LiveJournal/Gowalla (BFS/CC). Those datasets cannot ship with this
//! reproduction, so this crate provides deterministic synthetic substitutes
//! whose *communication-relevant* properties match: power-law degree skew
//! for the graphs, Zipf-like categorical popularity for the DLRM batches,
//! and dense integer feature matrices of matching shapes. DESIGN.md §1
//! records the substitution rationale; all generators are seeded and
//! reproducible.

// The modeled engine takes no unsafe shortcuts; any future unsafe
// fast path belongs in pim_sim, under simlint's unsafe-audit lint.
#![forbid(unsafe_code)]

pub mod dlrm;
pub mod features;
pub mod graph;
pub mod rng;

pub use dlrm::{generate_batch, DlrmConfig, LookupBatch};
pub use features::MatI32;
pub use graph::{rmat, CsrGraph, GraphPreset, RmatParams};
pub use rng::SmallRng;

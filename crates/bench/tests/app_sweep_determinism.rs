//! The work-stealing sweep pool, the apps' engine threading, the
//! host-kernel executor (`pidcomm::par_pes`) and the per-worker system
//! arena are pure execution knobs: every budget, host-kernel thread count
//! and arena-reuse pattern must produce `AppProfile`s, modeled CPU times
//! and validation results byte-identical to the serial fresh-allocation
//! reference schedule — the property the recorded `BENCH_apps.json`
//! speedups rest on.

use pidcomm::{OptLevel, PlanCache};
use pidcomm_bench::apps;
use pidcomm_bench::sweep::SweepBudget;
use pim_sim::SystemArena;

#[test]
fn app_sweep_matches_serial_at_every_thread_count() {
    let cases = apps::small_cases();
    let cells = apps::base_vs_full_cells(cases.len(), 64);
    let reference = apps::run_app_sweep(&cases, &cells, SweepBudget::serial());
    assert!(
        reference.iter().all(|r| r.validated),
        "every app must validate against its CPU reference"
    );
    for total in [0usize, 2, 4] {
        let budget = SweepBudget::split(total, cells.len());
        let runs = apps::run_app_sweep(&cases, &cells, budget);
        assert_eq!(runs.len(), reference.len());
        for ((cell, serial), parallel) in cells.iter().zip(&reference).zip(&runs) {
            assert!(
                serial == parallel,
                "{} {} {:?} diverges from serial at threads={total}",
                cases[cell.case].app,
                cases[cell.case].dataset,
                cell.opt
            );
        }
    }
}

#[test]
fn app_engine_and_host_kernel_threads_are_pure_execution_knobs() {
    // Inside one app run the `threads` knob bounds both the engine's
    // cluster fan-out and the host-kernel executor (`par_pes`); neither
    // may leak into any result. {1, 2, auto} covers the serial reference,
    // a fixed parallel schedule and the machine-dependent auto budget.
    let cases = apps::small_cases();
    for case in &cases {
        let serial = case.run_threaded(64, OptLevel::Full, 1);
        for threads in [2usize, 4, 0] {
            let run = case.run_threaded(64, OptLevel::Full, threads);
            assert!(
                serial == run,
                "{} {} diverges at engine/host-kernel threads={threads}",
                case.app,
                case.dataset
            );
        }
    }
}

#[test]
fn plan_cache_plans_once_per_distinct_collective_per_worker() {
    // The apps hoist every collective onto the worker arena's plan cache:
    // planning must run at most once per distinct
    // (primitive, opt, mask, spec, geometry) per worker. A cold pass over
    // all five apps misses once per distinct collective; iteration loops
    // (BFS/CC per level, MLP per layer) hold their plan and re-execute it
    // without even a cache lookup, so within-run cache *hits* come only
    // from GNN's alternating masks re-requesting the layer-0 plans at
    // layer 2. A warm pass over the same cells must replan nothing.
    let cases = apps::small_cases();
    let mut arena = SystemArena::new();
    let cold: Vec<_> = cases
        .iter()
        .map(|case| case.run_in(64, OptLevel::Full, 1, &mut arena))
        .collect();
    let cache = arena.take_extension::<PlanCache>();
    let (cold_hits, cold_misses) = (cache.hits(), cache.misses());
    assert!(cold_misses > 0, "cold cells must plan");
    assert!(
        cold_hits > 0,
        "GNN's repeated masks must hit the layer-0 plans"
    );
    arena.put_extension(cache);

    let warm: Vec<_> = cases
        .iter()
        .map(|case| case.run_in(64, OptLevel::Full, 1, &mut arena))
        .collect();
    let cache = arena.take_extension::<PlanCache>();
    assert_eq!(
        cache.misses(),
        cold_misses,
        "warm cells replanned an already-pooled collective"
    );
    assert!(cache.hits() > cold_hits, "warm cells must hit the pool");
    // ...and warm plans change nothing observable.
    assert!(cold == warm, "warm-plan pass diverges from cold pass");
}

#[test]
fn arena_reuse_across_consecutive_cells_is_invisible() {
    // One worker's arena serves many consecutive cells: every checkout
    // must be observationally a fresh allocation, so no cell may see a
    // previous cell's systems or staging buffers — across different apps,
    // optimization levels and repeat runs of the same cell.
    let cases = apps::small_cases();
    let mut arena = SystemArena::new();
    for case in &cases {
        for opt in [OptLevel::Full, OptLevel::Baseline] {
            let fresh = case.run_threaded(64, opt, 1);
            let reused = case.run_in(64, opt, 1, &mut arena);
            assert!(
                fresh == reused,
                "{} {} {opt:?} diverges on a reused arena",
                case.app,
                case.dataset
            );
        }
    }
    assert!(
        arena.pooled_systems() >= 1,
        "runs must return their systems to the worker arena"
    );
    // Second full pass over the now well-populated pool (every checkout
    // is a pool hit): still byte-identical, including with parallel host
    // kernels on the reused systems.
    for case in &cases {
        let fresh = case.run_threaded(64, OptLevel::Full, 1);
        for threads in [1usize, 2, 0] {
            let reused = case.run_in(64, OptLevel::Full, threads, &mut arena);
            assert!(
                fresh == reused,
                "{} {} diverges on warm arena at threads={threads}",
                case.app,
                case.dataset
            );
        }
    }
}

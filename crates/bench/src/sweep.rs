//! Work-stealing sweep pool for independent benchmark cells.
//!
//! The figure regenerators run many independent `AppCase` × `OptLevel` ×
//! PE-count cells; cell runtimes vary by an order of magnitude (CC/LJ vs
//! MLP/16k), so static partitioning would leave workers idle. This pool
//! mirrors `pidcomm`'s `engine/parallel.rs` in spirit — scoped threads, no
//! dependencies — but schedules dynamically: workers pull the next cell
//! index from one shared atomic queue, so a worker that drew short cells
//! steals the remaining work from one stuck on a long cell.
//!
//! Results land in a per-cell slot, so the output order is the submission
//! order no matter which worker finished which cell when — and every cell
//! is a self-contained simulation, so the results themselves are
//! byte-identical to a serial run at any worker count (enforced by
//! `tests/app_sweep_determinism.rs`).
//!
//! # Per-worker system arena
//!
//! Every app cell used to build its `PimSystem` (up to 1024 paged-MRAM
//! PEs) and multi-megabyte scatter staging buffers from scratch and drop
//! them at the end, so sweeps spent a measurable slice of their wall on
//! the allocator. [`run_cells_with`] fixes that shape generically: each
//! worker thread constructs one private state value (`init()`) when it
//! starts and threads it through every cell it executes. The app sweep
//! instantiates that state as a [`pim_sim::SystemArena`] — apps check
//! systems and buffers out of the worker's arena and return them when the
//! cell completes, so *consecutive cells on one worker reuse the same
//! allocations*, zeroed in place.
//!
//! Arena lifecycle per cell: `arena.system(geom)` hands out an all-zero
//! reset system (pool hit) or builds a fresh one (miss); `arena.bytes(n)`
//! does the same for staging buffers; the app recycles both before
//! returning. A checkout is indistinguishable from a fresh allocation —
//! every read observes zeros, the meter is empty — so two consecutive
//! cells on one worker can never observe each other's state, and results
//! stay byte-identical to the fresh-allocation path at every worker count
//! (pinned by `tests/app_sweep_determinism.rs`).
//!
//! # Host-kernel threads
//!
//! The cells' engine budget (`SweepBudget::engine_threads`) also bounds
//! the apps' *host-kernel* fan-out (`pidcomm::par_pes`): inside a cell,
//! per-PE functional loops run on the same thread allowance as the
//! cluster fan-out, so `workers × engine_threads ≤ budget` keeps holding
//! with host kernels parallelized.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use pidcomm::auto_threads;

/// Extracts a `--threads N` flag from the process arguments (`0` or absent
/// = auto). Shared by the figure binaries. A malformed value is a usage
/// error: the process exits with a clear message and status 2 rather than
/// a panic backtrace.
pub fn threads_flag() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("error: --threads needs a number");
                std::process::exit(2);
            });
            return v.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads needs a number, got {v:?}");
                std::process::exit(2);
            });
        }
    }
    0
}

/// A machine thread budget split between the sweep pool (`workers`
/// concurrent cells) and each cell's collective engine
/// (`engine_threads` of cluster fan-out per run), so the two layers of
/// parallelism compose instead of oversubscribing: their product never
/// exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBudget {
    /// Concurrent sweep workers.
    pub workers: usize,
    /// `Communicator::with_threads` bound for every run inside the sweep.
    pub engine_threads: usize,
}

impl SweepBudget {
    /// Splits `total` threads (`0` = auto) over `cells` cells, favoring
    /// the outer sweep level: independent whole-app runs scale better
    /// than cluster fan-out inside one collective. Leftover budget goes
    /// to the engine (`total / workers`, at least 1).
    pub fn split(total: usize, cells: usize) -> Self {
        let total = if total == 0 { auto_threads() } else { total };
        let workers = total.clamp(1, cells.max(1));
        Self {
            workers,
            engine_threads: (total / workers).max(1),
        }
    }

    /// The fully serial reference schedule: one worker, serial engine.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            engine_threads: 1,
        }
    }
}

/// Runs `f(0..cells)` on up to `workers` scoped threads pulling from a
/// shared queue, and returns the results in cell order.
///
/// With `workers <= 1` the cells run on the caller's thread in order —
/// the serial reference path.
///
/// # Panics
///
/// Panicking cells are contained and reported with context once all
/// workers have drained — see [`run_cells_with`].
pub fn run_cells<T, F>(cells: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_with(cells, workers, || (), |(), i| f(i))
}

/// As [`run_cells`], but each worker thread owns a private state value
/// built by `init()` when the worker starts and passed to every cell that
/// worker executes — the hook the app sweep uses to give each worker a
/// reusable [`pim_sim::SystemArena`] (see the module docs).
///
/// The state must not let one cell's *results* depend on which cells ran
/// before it on the same worker; an arena qualifies because a checkout is
/// observationally a fresh allocation. With `workers <= 1` a single state
/// value serves every cell on the caller's thread, in order — the serial
/// reference path, which therefore exercises maximal state reuse.
///
/// # Panics
///
/// A panicking cell is *contained*: the worker catches it, rebuilds its
/// state, and keeps pulling from the queue, so one bad cell no longer
/// aborts the rest of the sweep mid-flight. Only once every worker has
/// drained does the call re-panic, reporting how many cells were poisoned
/// and the lowest-numbered one with its panic message.
pub fn run_cells_with<T, S, I, F>(cells: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_cells_collect(cells, workers, init, f).0
}

/// As [`run_cells_with`], but additionally returns each worker's final
/// state value (in no particular order) once the sweep drains — the hook
/// scoped accounting uses to read per-worker caches (e.g. the plan-cache
/// counters parked in each worker's arena) without process globals.
///
/// A worker whose state was rebuilt after a contained panic contributes
/// only its *final* state; the poisoned state's counters are lost with
/// it. That is fine for the only current consumer: a panicking sweep
/// re-panics below before any stats are read.
pub fn run_cells_collect<T, S, I, F>(
    cells: usize,
    workers: usize,
    init: I,
    f: F,
) -> (Vec<T>, Vec<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let poisoned: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let states: Mutex<Vec<S>> = Mutex::new(Vec::new());
    if workers <= 1 || cells <= 1 {
        let mut state = init();
        for (i, slot) in slots.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                Ok(r) => *slot.lock().unwrap() = Some(r),
                Err(payload) => {
                    poisoned
                        .lock()
                        .unwrap()
                        .push((i, pidcomm::panic_message(payload.as_ref())));
                    // The unwind may have left the state mid-update;
                    // rebuild it so later cells see clean state.
                    state = init();
                }
            }
        }
        states.lock().unwrap().push(state);
    } else {
        let next = AtomicUsize::new(0);
        let poisoned = &poisoned;
        let states = &states;
        std::thread::scope(|s| {
            for _ in 0..workers.min(cells) {
                s.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                            Ok(r) => *slots[i].lock().unwrap() = Some(r),
                            Err(payload) => {
                                poisoned
                                    .lock()
                                    .unwrap()
                                    .push((i, pidcomm::panic_message(payload.as_ref())));
                                state = init();
                            }
                        }
                    }
                    states.lock().unwrap().push(state);
                });
            }
        });
    }

    let mut poisoned = poisoned.into_inner().unwrap();
    if !poisoned.is_empty() {
        poisoned.sort_by_key(|(i, _)| *i);
        let (i, msg) = &poisoned[0];
        panic!(
            "{count} sweep cell(s) panicked; first at cell {i}: {msg}",
            count = poisoned.len()
        );
    }
    let results = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("cell ran"))
        .collect();
    (results, states.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        for workers in [1, 2, 5, 16] {
            let out = run_cells(33, workers, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>(), "{workers}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        run_cells(57, 7, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn per_worker_state_is_built_once_per_worker_and_reused() {
        // Each worker counts the cells it executed in its private state;
        // the counts must cover all cells exactly once, and with one
        // worker a single state value must see every cell.
        let serial = run_cells_with(
            9,
            1,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(serial, (1..=9).collect::<Vec<_>>(), "one state, in order");
        for workers in [2usize, 4, 16] {
            let cells = 33usize;
            let total = AtomicUsize::new(0);
            let states = AtomicUsize::new(0);
            let runs = run_cells_with(
                cells,
                workers,
                || {
                    states.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |seen, _| {
                    *seen += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                    *seen
                },
            );
            assert_eq!(runs.len(), cells);
            // Every cell ran exactly once...
            assert_eq!(total.load(Ordering::Relaxed), cells, "{workers}");
            // ...state was built once per worker, not once per cell...
            assert!(states.load(Ordering::Relaxed) <= workers, "{workers}");
            // ...so by pigeonhole some worker's state served several
            // consecutive cells (the arena-reuse path).
            let max_seen = runs.iter().copied().max().unwrap();
            assert!(max_seen >= cells.div_ceil(workers), "{workers}");
        }
    }

    #[test]
    fn poisoned_cells_are_contained_and_reported() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for workers in [1usize, 4] {
            let done: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(0)).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_cells(12, workers, |i| {
                    if i == 3 {
                        panic!("cell {i} exploded");
                    }
                    done[i].fetch_add(1, Ordering::Relaxed);
                })
            }))
            .expect_err("poisoned sweep must re-panic");
            let msg = pidcomm::panic_message(caught.as_ref());
            assert!(msg.contains("1 sweep cell(s) panicked"), "{workers}: {msg}");
            assert!(msg.contains("cell 3"), "{workers}: {msg}");
            assert!(msg.contains("cell 3 exploded"), "{workers}: {msg}");
            // Every healthy cell — including those queued after the
            // poisoned one — still completed.
            for (i, c) in done.iter().enumerate() {
                let expect = usize::from(i != 3);
                assert_eq!(c.load(Ordering::Relaxed), expect, "{workers}: cell {i}");
            }
        }
    }

    #[test]
    fn state_is_rebuilt_after_a_contained_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_cells_with(
                6,
                1,
                || 0u32,
                |state, i| {
                    assert_eq!(*state & 0xff00, 0, "state not rebuilt");
                    if i == 2 {
                        *state = 0xee00;
                        panic!("die mid-update");
                    }
                    *state += 1;
                },
            )
        }))
        .expect_err("must re-panic");
        assert!(pidcomm::panic_message(caught.as_ref()).contains("die mid-update"));
    }

    #[test]
    fn budget_split_never_oversubscribes() {
        for total in [1usize, 2, 3, 7, 16, 64] {
            for cells in [1usize, 2, 12, 100] {
                let b = SweepBudget::split(total, cells);
                assert!(b.workers >= 1 && b.engine_threads >= 1);
                assert!(
                    b.workers * b.engine_threads <= total.max(1),
                    "{total}/{cells}"
                );
                assert!(b.workers <= cells.max(1));
            }
        }
        assert_eq!(SweepBudget::serial().workers, 1);
        assert_eq!(SweepBudget::serial().engine_threads, 1);
    }
}

//! Graph neural network on a 2-D hypercube (§VII-B, Fig. 12, Algorithm 1).
//!
//! A GNN layer is an aggregation (sparse A·F) followed by a combination
//! (dense I·W). The PEs form an `s × s` grid; PE `(x, y)` holds adjacency
//! tiles and one block of the feature matrix. Two communication strategies
//! are implemented, matching the paper's variants:
//!
//! * **RS&AR**: partial aggregates are `ReduceScatter`'d across the active
//!   dimension, each PE combines its row sub-block with the full weight
//!   matrix, and an `AllReduce` assembles the next layer's feature block.
//! * **AR&AG**: aggregates are `AllReduce`'d, each PE combines one column
//!   block of the weights, and an `AllGather` concatenates the column
//!   blocks.
//!
//! The active dimension alternates between layers (`"10" ⇄ "01"`,
//! Algorithm 1), which keeps every PE's feature block aligned with its
//! rank in the next layer's communication group.

use std::sync::Arc;

use pidcomm::{
    par_pes, par_pes_with, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape,
    Iteration, OptLevel, PlanCache, Primitive, RunPolicy, Supervisor,
};
use pidcomm_data::{CsrGraph, MatI32};
use pim_sim::{kernels, DType, DimmGeometry, FaultPlan, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::{AppRun, ResilientRun};

/// GNN communication strategy (Table III lists both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnVariant {
    /// ReduceScatter + AllReduce.
    RsAr,
    /// AllReduce + AllGather.
    ArAg,
}

impl GnnVariant {
    /// Label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            GnnVariant::RsAr => "RS&AR",
            GnnVariant::ArAg => "AR&AG",
        }
    }
}

/// GNN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnConfig {
    /// Number of PEs; must be a perfect square (the paper notes GNNs
    /// "require symmetric partitioning", §VIII-G).
    pub pes: usize,
    /// Feature dimension `f` (divisible by `sqrt(pes)`).
    pub feature_dim: usize,
    /// Number of layers (the paper uses 3).
    pub layers: usize,
    /// Communication strategy.
    pub variant: GnnVariant,
    /// Communication optimization level.
    pub opt: OptLevel,
    /// Element width of features/weights (I8/I16/I32; the paper's word-bit
    /// sensitivity study, §VIII-F). 8-bit elements let ReduceScatter and
    /// AllReduce skip domain transfer entirely.
    pub dtype: DType,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

/// Wraps `v` to the declared element width (sign-extending truncation),
/// matching what fixed-width PE arithmetic would produce.
fn wrap(v: i32, dtype: DType) -> i32 {
    match dtype {
        DType::I8 | DType::U8 => v as i8 as i32,
        DType::I16 | DType::U16 => v as i16 as i32,
        _ => v,
    }
}

/// Element size in bytes.
fn esize(dtype: DType) -> usize {
    dtype.size_bytes()
}

/// Deserializes a matrix at the declared width via the chunked
/// sign-extending typed-lane decoder.
fn mat_from_bytes(rows: usize, cols: usize, bytes: &[u8], dtype: DType) -> MatI32 {
    assert_eq!(bytes.len(), rows * cols * esize(dtype));
    let mut m = MatI32::zeros(rows, cols);
    kernels::decode_sext(dtype, bytes, m.as_mut_slice());
    m
}

/// Dataset-scale compensation for kernel charges: the harness graphs and
/// feature dims are ~10x below PubMed/Reddit scale, and PE compute shrinks
/// superlinearly (f^2 combination) while communication shrinks linearly in
/// f. This factor restores the paper's kernel-to-communication ratio
/// (Fig. 13); see EXPERIMENTS.md.
const KERNEL_SCALE: f64 = 6.0;

fn isqrt(p: usize) -> usize {
    let s = (p as f64).sqrt().round() as usize;
    assert_eq!(s * s, p, "GNN needs a square PE count, got {p}");
    s
}

fn relu(v: i32) -> i32 {
    v.max(0)
}

/// CPU reference: `F <- relu((A · F) · W_l)` per layer with wrapping
/// arithmetic. Returns the final feature matrix and a roofline time.
fn cpu_reference(graph: &CsrGraph, f0: &MatI32, weights: &[MatI32], dtype: DType) -> (MatI32, f64) {
    let cpu = CpuModel::xeon_5215();
    let n = graph.num_vertices();
    let f = f0.cols();
    let mut feat = f0.clone();
    let mut time = 0.0;
    for w in weights {
        // Aggregation: I[u] = sum over (u, v) of F[v], at element width.
        let mut agg = MatI32::zeros(n, f);
        for (u, v) in graph.edges() {
            for c in 0..f {
                let val = wrap(
                    agg.get(u as usize, c).wrapping_add(feat.get(v as usize, c)),
                    dtype,
                );
                agg.set(u as usize, c, val);
            }
        }
        // Combination + ReLU at element width.
        let mut comb = MatI32::zeros(n, f);
        for r in 0..n {
            for k in 0..f {
                let a = agg.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..f {
                    let val = wrap(
                        comb.get(r, c).wrapping_add(a.wrapping_mul(w.get(k, c))),
                        dtype,
                    );
                    comb.set(r, c, val);
                }
            }
        }
        for r in 0..n {
            for c in 0..f {
                comb.set(r, c, relu(comb.get(r, c)));
            }
        }
        feat = comb;
        let edges = graph.num_edges() as u64;
        time += cpu.time_mixed_ns(
            edges * f as u64 + 2 * (n * f * f) as u64,
            (n * f * 4) as u64 * 2 + (n * f * f) as u64 / 16,
            edges * (f as u64 * 4 + 8),
        );
    }
    (feat, time)
}

/// Sparse tile: edges of A with source in row-block `i` and target in
/// column-block `j`, stored as (local row, local col) pairs.
fn tiles(graph: &CsrGraph, s: usize) -> Vec<Vec<Vec<(u32, u32)>>> {
    let n = graph.num_vertices();
    let bs = n / s;
    let mut t = vec![vec![Vec::new(); s]; s];
    for (u, v) in graph.edges() {
        let (i, j) = (u as usize / bs, v as usize / bs);
        t[i][j].push(((u as usize % bs) as u32, (v as usize % bs) as u32));
    }
    t
}

/// Runs the GNN benchmark and validates against the CPU reference.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics if shape constraints are violated or validation fails.
pub fn run_gnn(cfg: &GnnConfig, graph: &CsrGraph) -> pidcomm::Result<AppRun> {
    run_gnn_in(cfg, graph, &mut SystemArena::new())
}

/// As [`run_gnn`], but sourcing the `PimSystem` from `arena` (and
/// returning it), so repeated runs — e.g. consecutive sweep cells on one
/// worker — reuse allocations. Results are byte-identical to [`run_gnn`].
///
/// # Errors
///
/// Propagates collective validation errors.
pub fn run_gnn_in(
    cfg: &GnnConfig,
    graph: &CsrGraph,
    arena: &mut SystemArena,
) -> pidcomm::Result<AppRun> {
    let p = cfg.pes;
    let s = isqrt(p);
    let f = cfg.feature_dim;
    let n = graph.num_vertices();
    assert_eq!(n % (s * s), 0, "vertices must divide by s^2");
    assert_eq!(f % s, 0, "feature dim must divide by s");
    let bs = n / s; // vertices per block
    let es = esize(cfg.dtype);
    let block_bytes = bs * f * es;
    assert_eq!(block_bytes % (8 * s), 0, "collective alignment");

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![s, s])?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mut profile = AppProfile::new(
        format!("GNN {}", cfg.variant.label()),
        format!("{n}v/int{}", 8 * es),
    );

    let tile = tiles(graph, s);
    let weights: Vec<MatI32> = (0..cfg.layers)
        .map(|l| MatI32::random(f, f, 3, 0x6e6e + l as u64))
        .collect();
    let f0 = MatI32::random(n, f, 3, 0xfea7);

    // MRAM layout.
    const FEAT: usize = 0; // this PE's current feature block (bs x f)
    let partial_off = block_bytes.next_multiple_of(64);
    let reduced_off = partial_off + block_bytes.next_multiple_of(64);
    let out_off = reduced_off + block_bytes.next_multiple_of(64);

    // Scatter initial feature blocks: at layer 0 the active mask is "10"
    // (x varies within a group), so PE (x, y) must hold block x. The
    // per-group payloads come from (and return to) the arena's buffer-set
    // pool; feature rows are encoded straight into their rank-major slot.
    let mask0: DimMask = "10".parse()?;
    let groups0 = comm.manager().groups(&mask0)?;
    let mut scatter_bufs = arena.byte_set(groups0.len(), s * block_bytes);
    for g in &groups0 {
        let buf = &mut scatter_bufs[g.id];
        for rank in 0..g.members.len() {
            // Member `rank` holds feature rows [rank*bs, (rank+1)*bs).
            let dst = &mut buf[rank * block_bytes..(rank + 1) * block_bytes];
            for (lr, r) in (rank * bs..(rank + 1) * bs).enumerate() {
                kernels::encode_trunc(
                    cfg.dtype,
                    f0.row(r),
                    &mut dst[lr * f * es..(lr + 1) * f * es],
                );
            }
        }
    }
    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask0,
        &BufferSpec::new(0, FEAT, block_bytes).with_dtype(cfg.dtype),
        ReduceKind::Sum,
    )?;
    // One-shot send: direct execution beats staging a prepared image
    // that would run only once (the prepared tier pays off on repeat
    // executes; GNN's per-layer win is the fused pairs below).
    let report = scatter_plan.execute_with_host(&mut sys, &scatter_bufs)?;
    profile.record(&report);
    arena.recycle_byte_set(scatter_bufs);

    // Layers with alternating masks.
    for (layer, w) in weights.iter().enumerate() {
        let mask: DimMask = if layer % 2 == 0 {
            "10".parse()?
        } else {
            "01".parse()?
        };
        let groups = comm.manager().groups(&mask)?;
        // Host-kernel work items run one per PE; recover each PE's
        // (group, rank) coordinates up front since groups partition the
        // PE array exactly.
        let mut owner = vec![(0usize, 0usize); p];
        for g in &groups {
            for (rank, &pe) in g.members.iter().enumerate() {
                owner[pe.index()] = (g.id, rank);
            }
        }

        // Aggregation kernel: within its group, PE of rank r computes
        // A[i_group][r] · F_r, a partial of row-block i_group. Per-edge
        // row accumulation runs as a typed-lane segment-sum over the
        // feature block decoded into per-worker scratch.
        let kernels = par_pes_with(
            sys.pes_mut(),
            cfg.threads,
            || (vec![0i32; bs * f], vec![0i32; bs * f]),
            |(fblk, partial), pid, pe| {
                // simlint: hot(begin, gnn aggregation)
                let (gid, rank) = owner[pid];
                pe.read_sext(FEAT, cfg.dtype, fblk);
                partial.fill(0);
                let t = &tile[gid][rank];
                for &(u, v) in t {
                    let (u, v) = (u as usize, v as usize);
                    kernels::add_wrap(
                        cfg.dtype,
                        &mut partial[u * f..(u + 1) * f],
                        &fblk[v * f..(v + 1) * f],
                    );
                }
                pe.write_trunc(partial_off, cfg.dtype, partial);
                let edges = t.len() as u64;
                KERNEL_SCALE
                    * pe_kernel_ns(
                        edges * (f * es) as u64 + block_bytes as u64,
                        4 * edges * f as u64,
                    )
                // simlint: hot(end)
            },
        );
        let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
        sys.run_kernel(max_kernel);
        profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

        match cfg.variant {
            GnnVariant::RsAr => {
                // ReduceScatter + AllReduce run as one fused chain:
                // rank r's reduced rows sub-block lands in MRAM, the
                // combination kernel rewrites it in place as the
                // inter-step hook, and the AllReduce consumes the result
                // directly — no host staging between the pair. Layers
                // alternate between two masks, so every plan below is
                // built at most twice per run (and pooled across runs in
                // the arena cache).
                let rs_plan = comm.plan_cached(
                    &mut plans,
                    Primitive::ReduceScatter,
                    &mask,
                    &BufferSpec::new(partial_off, reduced_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                let ar_plan = comm.plan_cached(
                    &mut plans,
                    Primitive::AllReduce,
                    &mask,
                    &BufferSpec::new(partial_off, out_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                let fused = comm.fuse(vec![rs_plan.clone(), ar_plan.clone()], &[])?;

                // Combination kernel (the hook): rows sub-block x full W,
                // placed at its sub-block position in an otherwise-zero
                // block. The gemm runs as typed-lane axpy rows over W,
                // accumulating directly into the sub-block slot of the
                // output scratch.
                let sub_rows = bs / s;
                let mut comb_kernel = 0.0f64;
                let exec = fused.execute_with(&mut sys, None, |_, sys| {
                    let kernels = par_pes_with(
                        sys.pes_mut(),
                        cfg.threads,
                        || (vec![0i32; sub_rows * f], vec![0i32; bs * f]),
                        |(rows, out), pid, pe| {
                            // simlint: hot(begin, gnn rs-ar combine)
                            let (_, rank) = owner[pid];
                            let sub_bytes = sub_rows * f * es;
                            pe.read_sext(reduced_off, cfg.dtype, rows);
                            out.fill(0);
                            let base = rank * sub_rows * f;
                            for r in 0..sub_rows {
                                let acc = &mut out[base + r * f..base + (r + 1) * f];
                                for k in 0..f {
                                    let a = rows[r * f + k];
                                    if a == 0 {
                                        continue;
                                    }
                                    kernels::axpy_wrap(cfg.dtype, acc, a, w.row(k));
                                }
                            }
                            kernels::relu_i32(&mut out[base..base + sub_rows * f]);
                            pe.write_trunc(partial_off, cfg.dtype, out);
                            KERNEL_SCALE
                                * pe_kernel_ns(
                                    (sub_bytes + f * f * es) as u64,
                                    12 * (sub_rows * f * f) as u64,
                                )
                            // simlint: hot(end)
                        },
                    );
                    comb_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                    sys.run_kernel(comb_kernel);
                    Ok(())
                })?;
                profile.record(&exec.reports[0]);
                profile.record_kernel(comb_kernel + sys.model().kernel_launch_ns);
                profile.record(&exec.reports[1]);
            }
            GnnVariant::ArAg => {
                // AllReduce + AllGather as one fused chain (plans pooled
                // per mask, as in RS&AR): the combination kernel runs as
                // the inter-step hook over the reduced aggregates already
                // sitting in MRAM, and the AllGather picks its column
                // blocks up from the same place.
                let sub_cols = f / s;
                let colblk_bytes = bs * sub_cols * es;
                let ar_plan = comm.plan_cached(
                    &mut plans,
                    Primitive::AllReduce,
                    &mask,
                    &BufferSpec::new(partial_off, reduced_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                let ag_plan = comm.plan_cached(
                    &mut plans,
                    Primitive::AllGather,
                    &mask,
                    &BufferSpec::new(partial_off, out_off, colblk_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                let fused = comm.fuse(vec![ar_plan.clone(), ag_plan.clone()], &[])?;

                // Combination kernel (the hook): one weight column-block
                // per rank, as typed-lane axpy rows over W's column
                // sub-slices.
                let mut comb_kernel = 0.0f64;
                let exec = fused.execute_with(&mut sys, None, |_, sys| {
                    let kernels = par_pes_with(
                        sys.pes_mut(),
                        cfg.threads,
                        || (vec![0i32; bs * f], vec![0i32; bs * sub_cols]),
                        |(agg, colblk), pid, pe| {
                            // simlint: hot(begin, gnn ar-ag combine)
                            let (_, rank) = owner[pid];
                            pe.read_sext(reduced_off, cfg.dtype, agg);
                            // col block of result: agg x W[:, cols]
                            colblk.fill(0);
                            for r in 0..bs {
                                let acc = &mut colblk[r * sub_cols..(r + 1) * sub_cols];
                                for k in 0..f {
                                    let a = agg[r * f + k];
                                    if a == 0 {
                                        continue;
                                    }
                                    let wcols = &w.row(k)[rank * sub_cols..(rank + 1) * sub_cols];
                                    kernels::axpy_wrap(cfg.dtype, acc, a, wcols);
                                }
                            }
                            kernels::relu_i32(colblk);
                            pe.write_trunc(partial_off, cfg.dtype, colblk);
                            KERNEL_SCALE
                                * pe_kernel_ns(
                                    (block_bytes + f * sub_cols * es) as u64,
                                    12 * (bs * f * sub_cols) as u64,
                                )
                            // simlint: hot(end)
                        },
                    );
                    comb_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                    sys.run_kernel(comb_kernel);
                    Ok(())
                })?;
                profile.record(&exec.reports[0]);
                profile.record_kernel(comb_kernel + sys.model().kernel_launch_ns);
                profile.record(&exec.reports[1]);
                // The gathered layout is column-block-major; interleaving
                // it back to row-major is a pure row scatter (decode +
                // re-encode at one width is the identity on bytes), one
                // `copy_rows` per block through per-worker scratch.
                par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || vec![0u8; block_bytes],
                    |full, _, pe| {
                        // simlint: hot(begin, gnn layout transpose)
                        {
                            let bytes = pe.read(out_off, block_bytes);
                            for blk in 0..s {
                                kernels::copy_rows(
                                    full,
                                    blk * sub_cols * es,
                                    f * es,
                                    &bytes[blk * colblk_bytes..(blk + 1) * colblk_bytes],
                                    0,
                                    sub_cols * es,
                                    sub_cols * es,
                                    bs,
                                );
                            }
                        }
                        pe.write(out_off, full);
                        // simlint: hot(end)
                    },
                );
            }
        }

        // The result block becomes the next layer's feature block.
        par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
            // simlint: hot(begin, gnn feature rotate)
            pe.copy_within_region(out_off, FEAT, block_bytes);
            // simlint: hot(end)
        });
    }

    // Gather final features along the last active mask and validate.
    let last_mask: DimMask = if (cfg.layers - 1).is_multiple_of(2) {
        "10".parse()?
    } else {
        "01".parse()?
    };
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &last_mask,
        &BufferSpec::new(FEAT, 0, block_bytes).with_dtype(cfg.dtype),
        ReduceKind::Sum,
    )?;
    let (report, gathered) = gather_plan.execute_to_host(&mut sys)?;
    profile.record(&report);

    // After the final layer every PE of group i holds the full block i;
    // stitch the blocks together from each group's rank-i holder... every
    // member of group g holds block g (the group's row-block), so take
    // rank 0's copy.
    let (expected, cpu_ns) = cpu_reference(graph, &f0, &weights, cfg.dtype);
    let groups = comm.manager().groups(&last_mask)?;
    let mut validated = true;
    for g in &groups {
        let blk = &gathered[g.id][..block_bytes];
        let got = mat_from_bytes(bs, f, blk, cfg.dtype);
        for r in 0..bs {
            if got.row(r) != expected.row(g.id * bs + r) {
                validated = false;
            }
        }
    }
    assert!(validated, "GNN PIM features diverge from CPU reference");
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(AppRun {
        profile,
        cpu_ns,
        validated,
    })
}

/// As [`run_gnn`], but under run-level supervision (see
/// [`Supervisor`]): collectives run verified with quarantine-aware
/// recovery, each layer commits through an iteration checkpoint of the
/// live feature block, and unrecoverable faults end the run with a typed
/// outcome instead of a panic. With `fault = None` the profile and
/// outputs are bit-identical to [`run_gnn`].
///
/// # Errors
///
/// Propagates collective validation errors (never typed fault errors —
/// those are consumed by the supervisor).
pub fn run_gnn_resilient(
    cfg: &GnnConfig,
    graph: &CsrGraph,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
) -> pidcomm::Result<ResilientRun> {
    run_gnn_resilient_in(cfg, graph, fault, policy, &mut SystemArena::new())
}

/// As [`run_gnn_resilient`], sourcing allocations from `arena`.
///
/// # Errors
///
/// As [`run_gnn_resilient`].
pub fn run_gnn_resilient_in(
    cfg: &GnnConfig,
    graph: &CsrGraph,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
    arena: &mut SystemArena,
) -> pidcomm::Result<ResilientRun> {
    let p = cfg.pes;
    let s = isqrt(p);
    let f = cfg.feature_dim;
    let n = graph.num_vertices();
    assert_eq!(n % (s * s), 0, "vertices must divide by s^2");
    assert_eq!(f % s, 0, "feature dim must divide by s");
    let bs = n / s;
    let es = esize(cfg.dtype);
    let block_bytes = bs * f * es;
    assert_eq!(block_bytes % (8 * s), 0, "collective alignment");

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    if let Some(fp) = &fault {
        sys.attach_fault_plan(fp.clone());
        sys.set_verify_writes(true);
    }
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![s, s])?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mut profile = AppProfile::new(
        format!("GNN {}", cfg.variant.label()),
        format!("{n}v/int{}", 8 * es),
    );
    let mut sup = Supervisor::new(p, policy);

    let tile = tiles(graph, s);
    let weights: Vec<MatI32> = (0..cfg.layers)
        .map(|l| MatI32::random(f, f, 3, 0x6e6e + l as u64))
        .collect();
    let f0 = MatI32::random(n, f, 3, 0xfea7);

    const FEAT: usize = 0;
    let partial_off = block_bytes.next_multiple_of(64);
    let reduced_off = partial_off + block_bytes.next_multiple_of(64);
    let out_off = reduced_off + block_bytes.next_multiple_of(64);

    let mask0: DimMask = "10".parse()?;
    let groups0 = comm.manager().groups(&mask0)?;
    let mut scatter_bufs = arena.byte_set(groups0.len(), s * block_bytes);
    for g in &groups0 {
        let buf = &mut scatter_bufs[g.id];
        for rank in 0..g.members.len() {
            let dst = &mut buf[rank * block_bytes..(rank + 1) * block_bytes];
            for (lr, r) in (rank * bs..(rank + 1) * bs).enumerate() {
                kernels::encode_trunc(
                    cfg.dtype,
                    f0.row(r),
                    &mut dst[lr * f * es..(lr + 1) * f * es],
                );
            }
        }
    }
    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask0,
        &BufferSpec::new(0, FEAT, block_bytes).with_dtype(cfg.dtype),
        ReduceKind::Sum,
    )?;

    'run: {
        // Setup: the feature scatter restages everything from the host
        // buffers, so a re-run needs no checkpointed MRAM state.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            Ok(at
                .collective(&comm, sys, &scatter_plan, Some(&scatter_bufs))?
                .report)
        })? {
            Iteration::Done(report) => profile.record(&report),
            Iteration::Abort(_) => break 'run,
        }

        for (layer, w) in weights.iter().enumerate() {
            let mask: DimMask = if layer % 2 == 0 {
                "10".parse()?
            } else {
                "01".parse()?
            };
            let groups = comm.manager().groups(&mask)?;
            let mut owner = vec![(0usize, 0usize); p];
            for g in &groups {
                for (rank, &pe) in g.members.iter().enumerate() {
                    owner[pe.index()] = (g.id, rank);
                }
            }
            // The two per-layer plans, built (cached) outside the retry
            // body. Masks alternate, so each is planned at most twice.
            let (first_plan, second_plan) = match cfg.variant {
                GnnVariant::RsAr => (
                    comm.plan_cached(
                        &mut plans,
                        Primitive::ReduceScatter,
                        &mask,
                        &BufferSpec::new(partial_off, reduced_off, block_bytes)
                            .with_dtype(cfg.dtype),
                        ReduceKind::Sum,
                    )?,
                    comm.plan_cached(
                        &mut plans,
                        Primitive::AllReduce,
                        &mask,
                        &BufferSpec::new(partial_off, out_off, block_bytes).with_dtype(cfg.dtype),
                        ReduceKind::Sum,
                    )?,
                ),
                GnnVariant::ArAg => (
                    comm.plan_cached(
                        &mut plans,
                        Primitive::AllReduce,
                        &mask,
                        &BufferSpec::new(partial_off, reduced_off, block_bytes)
                            .with_dtype(cfg.dtype),
                        ReduceKind::Sum,
                    )?,
                    comm.plan_cached(
                        &mut plans,
                        Primitive::AllGather,
                        &mask,
                        &BufferSpec::new(partial_off, out_off, bs * (f / s) * es)
                            .with_dtype(cfg.dtype),
                        ReduceKind::Sum,
                    )?,
                ),
            };
            // The pair runs as one fused chain under the supervisor: the
            // chain's merged rollback image covers both steps' regions,
            // so a mid-chain fault restores and replays the whole pair
            // (the combine hook re-runs deterministically from step 0's
            // restored output).
            let fused = comm.fuse(vec![first_plan.clone(), second_plan.clone()], &[])?;

            // The live state at a layer boundary is the feature block
            // (everything else is rewritten from it or read-only).
            match sup.iteration(&mut sys, arena, &[(FEAT, block_bytes)], |sys, at| {
                let kernels = par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || (vec![0i32; bs * f], vec![0i32; bs * f]),
                    |(fblk, partial), pid, pe| {
                        // simlint: hot(begin, gnn aggregation)
                        let (gid, rank) = owner[pid];
                        pe.read_sext(FEAT, cfg.dtype, fblk);
                        partial.fill(0);
                        let t = &tile[gid][rank];
                        for &(u, v) in t {
                            let (u, v) = (u as usize, v as usize);
                            kernels::add_wrap(
                                cfg.dtype,
                                &mut partial[u * f..(u + 1) * f],
                                &fblk[v * f..(v + 1) * f],
                            );
                        }
                        pe.write_trunc(partial_off, cfg.dtype, partial);
                        let edges = t.len() as u64;
                        KERNEL_SCALE
                            * pe_kernel_ns(
                                edges * (f * es) as u64 + block_bytes as u64,
                                4 * edges * f as u64,
                            )
                        // simlint: hot(end)
                    },
                );
                let agg_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(agg_kernel);

                let (comb_kernel, first_report, second_report) = match cfg.variant {
                    GnnVariant::RsAr => {
                        let sub_rows = bs / s;
                        let mut comb_kernel = 0.0f64;
                        let exec = at.fused(&comm, sys, &fused, None, |_, sys| {
                            let kernels = par_pes_with(
                                sys.pes_mut(),
                                cfg.threads,
                                || (vec![0i32; sub_rows * f], vec![0i32; bs * f]),
                                |(rows, out), pid, pe| {
                                    // simlint: hot(begin, gnn rs-ar combine)
                                    let (_, rank) = owner[pid];
                                    let sub_bytes = sub_rows * f * es;
                                    pe.read_sext(reduced_off, cfg.dtype, rows);
                                    out.fill(0);
                                    let base = rank * sub_rows * f;
                                    for r in 0..sub_rows {
                                        let acc = &mut out[base + r * f..base + (r + 1) * f];
                                        for k in 0..f {
                                            let a = rows[r * f + k];
                                            if a == 0 {
                                                continue;
                                            }
                                            kernels::axpy_wrap(cfg.dtype, acc, a, w.row(k));
                                        }
                                    }
                                    kernels::relu_i32(&mut out[base..base + sub_rows * f]);
                                    pe.write_trunc(partial_off, cfg.dtype, out);
                                    KERNEL_SCALE
                                        * pe_kernel_ns(
                                            (sub_bytes + f * f * es) as u64,
                                            12 * (sub_rows * f * f) as u64,
                                        )
                                    // simlint: hot(end)
                                },
                            );
                            comb_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                            sys.run_kernel(comb_kernel);
                            Ok(())
                        })?;
                        let mut reports = exec.reports.into_iter();
                        let first_report = reports.next().expect("fused pair: RS report");
                        let second_report = reports.next().expect("fused pair: AR report");
                        (comb_kernel, first_report, second_report)
                    }
                    GnnVariant::ArAg => {
                        let sub_cols = f / s;
                        let mut comb_kernel = 0.0f64;
                        let exec = at.fused(&comm, sys, &fused, None, |_, sys| {
                            let kernels = par_pes_with(
                                sys.pes_mut(),
                                cfg.threads,
                                || (vec![0i32; bs * f], vec![0i32; bs * sub_cols]),
                                |(agg, colblk), pid, pe| {
                                    // simlint: hot(begin, gnn ar-ag combine)
                                    let (_, rank) = owner[pid];
                                    pe.read_sext(reduced_off, cfg.dtype, agg);
                                    colblk.fill(0);
                                    for r in 0..bs {
                                        let acc = &mut colblk[r * sub_cols..(r + 1) * sub_cols];
                                        for k in 0..f {
                                            let a = agg[r * f + k];
                                            if a == 0 {
                                                continue;
                                            }
                                            let wcols =
                                                &w.row(k)[rank * sub_cols..(rank + 1) * sub_cols];
                                            kernels::axpy_wrap(cfg.dtype, acc, a, wcols);
                                        }
                                    }
                                    kernels::relu_i32(colblk);
                                    pe.write_trunc(partial_off, cfg.dtype, colblk);
                                    KERNEL_SCALE
                                        * pe_kernel_ns(
                                            (block_bytes + f * sub_cols * es) as u64,
                                            12 * (bs * f * sub_cols) as u64,
                                        )
                                    // simlint: hot(end)
                                },
                            );
                            comb_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                            sys.run_kernel(comb_kernel);
                            Ok(())
                        })?;
                        let mut reports = exec.reports.into_iter();
                        let first_report = reports.next().expect("fused pair: AR report");
                        let second_report = reports.next().expect("fused pair: AG report");
                        let colblk_bytes = bs * sub_cols * es;
                        par_pes_with(
                            sys.pes_mut(),
                            cfg.threads,
                            || vec![0u8; block_bytes],
                            |full, _, pe| {
                                // simlint: hot(begin, gnn layout transpose)
                                {
                                    let bytes = pe.read(out_off, block_bytes);
                                    for blk in 0..s {
                                        kernels::copy_rows(
                                            full,
                                            blk * sub_cols * es,
                                            f * es,
                                            &bytes[blk * colblk_bytes..(blk + 1) * colblk_bytes],
                                            0,
                                            sub_cols * es,
                                            sub_cols * es,
                                            bs,
                                        );
                                    }
                                }
                                pe.write(out_off, full);
                                // simlint: hot(end)
                            },
                        );
                        (comb_kernel, first_report, second_report)
                    }
                };

                par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                    // simlint: hot(begin, gnn feature rotate)
                    pe.copy_within_region(out_off, FEAT, block_bytes);
                    // simlint: hot(end)
                });
                Ok((agg_kernel, first_report, comb_kernel, second_report))
            })? {
                Iteration::Done((agg_kernel, first_report, comb_kernel, second_report)) => {
                    profile.record_kernel(agg_kernel + sys.model().kernel_launch_ns);
                    profile.record(&first_report);
                    profile.record_kernel(comb_kernel + sys.model().kernel_launch_ns);
                    profile.record(&second_report);
                }
                Iteration::Abort(_) => break 'run,
            }
        }
    }
    arena.recycle_byte_set(scatter_bufs);

    // Final gather and validation, outside the labeled block so an
    // aborted run still reports its mismatch count.
    let (expected, cpu_ns) = cpu_reference(graph, &f0, &weights, cfg.dtype);
    let mut mismatched = (n * f) as u64;
    if sup.outcome() != pidcomm::RunOutcome::DeadlineExceeded
        && sup.outcome() != pidcomm::RunOutcome::BudgetExhausted
    {
        let last_mask: DimMask = if (cfg.layers - 1).is_multiple_of(2) {
            "10".parse()?
        } else {
            "01".parse()?
        };
        let gather_plan = comm.plan_cached(
            &mut plans,
            Primitive::Gather,
            &last_mask,
            &BufferSpec::new(FEAT, 0, block_bytes).with_dtype(cfg.dtype),
            ReduceKind::Sum,
        )?;
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            let exec = at.collective(&comm, sys, &gather_plan, None)?;
            Ok((
                exec.report,
                exec.host_out.expect("gather produces host output"),
            ))
        })? {
            Iteration::Done((report, gathered)) => {
                profile.record(&report);
                let groups = comm.manager().groups(&last_mask)?;
                let mut mm = 0u64;
                for g in &groups {
                    let blk = &gathered[g.id][..block_bytes];
                    let got = mat_from_bytes(bs, f, blk, cfg.dtype);
                    for r in 0..bs {
                        mm += got
                            .row(r)
                            .iter()
                            .zip(expected.row(g.id * bs + r))
                            .filter(|(a, b)| a != b)
                            .count() as u64;
                    }
                }
                mismatched = mm;
            }
            Iteration::Abort(_) => {}
        }
    }
    let validated = mismatched == 0;
    let modeled_ns = sys.meter().total();
    sys.detach_fault_plan();
    sys.set_verify_writes(false);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(ResilientRun {
        run: AppRun {
            profile,
            cpu_ns,
            validated,
        },
        outcome: sup.outcome(),
        retries: sup.retries(),
        quarantined: sup.ledger().quarantined(),
        mismatched,
        modeled_ns,
        backoff_epochs: sup.backoff_epochs(),
        checkpoint_restores: sup.checkpoint_restores(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidcomm_data::{rmat, RmatParams};

    fn small_graph() -> CsrGraph {
        rmat(10, 4, RmatParams::skewed(21)) // 1024 vertices
    }

    #[test]
    fn gnn_rsar_validates() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 3,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let run = run_gnn(&cfg, &small_graph()).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::ReduceScatter) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
    }

    #[test]
    fn gnn_arag_validates() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 3,
            variant: GnnVariant::ArAg,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let run = run_gnn(&cfg, &small_graph()).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllGather) > 0.0);
    }

    #[test]
    fn variants_agree_with_each_other() {
        let g = small_graph();
        let mk = |variant| GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 2,
            variant,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let a = run_gnn(&mk(GnnVariant::RsAr), &g).unwrap();
        let b = run_gnn(&mk(GnnVariant::ArAg), &g).unwrap();
        // Both validate against the same CPU reference -> they agree.
        assert!(a.validated && b.validated);
    }

    #[test]
    fn narrow_widths_validate_and_int8_skips_domain_transfer() {
        let g = small_graph();
        let mk = |dtype| GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 2,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype,
        };
        let i8run = run_gnn(&mk(DType::I8), &g).unwrap();
        let i16run = run_gnn(&mk(DType::I16), &g).unwrap();
        assert!(i8run.validated && i16run.validated);
        // 8-bit elements avoid domain transfer in RS/AR (§V-C); the
        // remaining DT comes only from Scatter/Gather, so even though the
        // int8 run moves half the bytes of int16, its DT drops by far more
        // than half.
        assert!(
            i8run.profile.comm.domain_transfer < 0.4 * i16run.profile.comm.domain_transfer,
            "int8 DT {} vs int16 DT {}",
            i8run.profile.comm.domain_transfer,
            i16run.profile.comm.domain_transfer
        );
    }

    #[test]
    #[should_panic(expected = "square PE count")]
    fn non_square_pes_rejected() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 128,
            feature_dim: 16,
            layers: 1,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let _ = run_gnn(&cfg, &small_graph());
    }
}

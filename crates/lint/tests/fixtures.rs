//! Fixture suite: one known-bad and one known-good snippet per lint,
//! checked through the library API with exact line:col expectations,
//! plus the workspace self-check and the CLI exit-code contract.

use pidcomm_lint::lints::{Lint, Severity, UnsafeAllowlist};
use pidcomm_lint::{lint_source, lint_workspace};
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel}: {e}"));
    (rel.to_string(), src)
}

/// Lints a fixture under its embedded workspace-suffix path.
fn diags_of(rel: &str, allowlist: &UnsafeAllowlist) -> Vec<(Lint, u32, u32, Severity)> {
    let (virtual_path, src) = fixture(rel);
    lint_source(&virtual_path, &src, allowlist)
        .diags
        .into_iter()
        .map(|d| (d.lint, d.line, d.col, d.severity))
        .collect()
}

fn errors_of(rel: &str) -> Vec<(Lint, u32, u32)> {
    diags_of(rel, &UnsafeAllowlist::default())
        .into_iter()
        .filter(|(_, _, _, sev)| *sev == Severity::Error)
        .map(|(l, ln, c, _)| (l, ln, c))
        .collect()
}

#[test]
fn l1_cost_sheet_bad_and_good() {
    assert_eq!(
        errors_of("bad/crates/core/src/engine/newpath.rs"),
        vec![(Lint::CostSheet, 4, 11)]
    );
    assert_eq!(errors_of("good/crates/core/src/engine/newpath.rs"), vec![]);
}

#[test]
fn l1_allowed_files_may_mutate() {
    // The same mutation is legal inside the charge-helper homes.
    let src = "pub fn charge(sheet: &mut CostSheet) { sheet.dt_blocks += 1; }";
    let out = lint_source(
        "crates/core/src/engine/sheet.rs",
        src,
        &UnsafeAllowlist::default(),
    );
    assert!(out.diags.is_empty(), "{:?}", out.diags);
}

#[test]
fn l2_pe_choke_point_bad_and_good() {
    assert_eq!(
        errors_of("bad/crates/apps/src/staging.rs"),
        vec![(Lint::PeChokePoint, 4, 8)]
    );
    assert_eq!(errors_of("good/crates/apps/src/staging.rs"), vec![]);
}

#[test]
fn l3_wall_clock_bad_and_good() {
    assert_eq!(
        errors_of("bad/crates/core/src/engine/timing.rs"),
        vec![(Lint::WallClock, 3, 25)]
    );
    assert_eq!(errors_of("good/crates/core/src/engine/timing.rs"), vec![]);
}

#[test]
fn l3_map_iteration_bad_and_good() {
    assert_eq!(
        errors_of("bad/crates/core/src/engine/order.rs"),
        vec![(Lint::MapIteration, 10, 29)]
    );
    assert_eq!(errors_of("good/crates/core/src/engine/order.rs"), vec![]);
}

#[test]
fn l4_hot_alloc_bad_and_good() {
    assert_eq!(
        errors_of("bad/crates/sim/src/hotpath.rs"),
        vec![(Lint::HotAlloc, 4, 19)]
    );
    assert_eq!(errors_of("good/crates/sim/src/hotpath.rs"), vec![]);
}

#[test]
fn l5_unsafe_audit_bad_and_good() {
    // Bad: both the missing SAFETY comment and the missing allowlist
    // entry fire, anchored on the `unsafe` keyword.
    assert_eq!(
        errors_of("bad/crates/sim/src/rawlane.rs"),
        vec![(Lint::UnsafeAudit, 3, 5), (Lint::UnsafeAudit, 3, 5)]
    );
    // Good: SAFETY comment present and the file allowlisted.
    let allowlist = UnsafeAllowlist::parse("crates/sim/src/rawlane.rs 1");
    let diags = diags_of("good/crates/sim/src/rawlane.rs", &allowlist);
    assert_eq!(diags, vec![]);
    // Over budget: a second unsafe beyond the allowlisted count fires.
    let src = "// SAFETY: a\nunsafe fn a() {}\n// SAFETY: b\nunsafe fn b() {}\n";
    let roomy = UnsafeAllowlist::parse("crates/sim/src/twice.rs 2");
    let out = lint_source("crates/sim/src/twice.rs", src, &roomy);
    assert!(out.diags.is_empty(), "{:?}", out.diags);
    let tight = UnsafeAllowlist::parse("crates/sim/src/twice.rs 1");
    let out = lint_source("crates/sim/src/twice.rs", src, &tight);
    assert_eq!(out.diags.len(), 1, "{:?}", out.diags);
    assert_eq!(out.diags[0].line, 4);
}

#[test]
fn allow_directive_suppresses_counts_and_reports() {
    let src = "pub fn f(sheet: &mut CostSheet) {\n    // simlint: allow(cost-sheet, reason = \"fixture\")\n    sheet.dt_blocks += 1;\n}\n";
    let out = lint_source(
        "crates/core/src/engine/x.rs",
        src,
        &UnsafeAllowlist::default(),
    );
    assert!(out.diags.is_empty(), "{:?}", out.diags);
    assert_eq!(out.allows.len(), 1);
    assert_eq!(out.allows[0].lint, Lint::CostSheet);
    assert_eq!(out.allows[0].suppressed, 1);
    assert_eq!(out.allows[0].reason, "fixture");
}

#[test]
fn allow_directive_is_narrow() {
    // An allow two lines above the violation does NOT suppress it.
    let src = "pub fn f(sheet: &mut CostSheet) {\n    // simlint: allow(cost-sheet, reason = \"too far\")\n    let pad = 0;\n    sheet.dt_blocks += 1;\n}\n";
    let out = lint_source(
        "crates/core/src/engine/x.rs",
        src,
        &UnsafeAllowlist::default(),
    );
    // The violation survives AND the unused allow warns.
    assert_eq!(
        out.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        1
    );
    assert_eq!(
        out.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count(),
        1
    );
}

#[test]
fn malformed_directives_are_errors() {
    for (src, what) in [
        ("// simlint: allow(cost-sheet)\n", "missing reason"),
        (
            "// simlint: allow(no-such-lint, reason = \"x\")\n",
            "unknown lint",
        ),
        ("// simlint: frobnicate(now)\n", "unknown directive"),
        ("// simlint: hot(end)\n", "unbalanced end"),
        ("// simlint: hot(begin)\n", "unclosed begin"),
    ] {
        let out = lint_source(
            "crates/core/src/engine/x.rs",
            src,
            &UnsafeAllowlist::default(),
        );
        assert_eq!(
            out.diags.len(),
            1,
            "{what}: expected exactly one diagnostic, got {:?}",
            out.diags
        );
        assert_eq!(out.diags[0].lint, Lint::Directive, "{what}");
        assert_eq!(out.diags[0].severity, Severity::Error, "{what}");
    }
}

#[test]
fn cfg_test_modules_are_exempt_from_source_lints() {
    let src = "#[cfg(test)]\nmod tests {\n    fn poke(sheet: &mut CostSheet) {\n        sheet.dt_blocks += 1;\n    }\n}\n";
    let out = lint_source(
        "crates/core/src/engine/x.rs",
        src,
        &UnsafeAllowlist::default(),
    );
    assert!(out.diags.is_empty(), "{:?}", out.diags);
}

#[test]
fn directive_inside_string_is_inert() {
    let src = "pub fn f() -> &'static str {\n    \"// simlint: hot(begin)\"\n}\n";
    let out = lint_source(
        "crates/core/src/engine/x.rs",
        src,
        &UnsafeAllowlist::default(),
    );
    assert!(out.diags.is_empty(), "{:?}", out.diags);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// The acceptance self-check: the live workspace lints clean.
#[test]
fn workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).unwrap();
    let errors: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "workspace lint errors: {errors:#?}");
    assert!(
        report.files_checked > 30,
        "walker found suspiciously few files: {}",
        report.files_checked
    );
    // The live annotations documented in crates/README.md are in effect.
    assert!(
        !report.allows.is_empty(),
        "expected the repo's reasoned allow directives to be reported"
    );
}

/// CLI contract: exit 0 on the workspace, nonzero with file:line:col
/// diagnostics on each bad fixture.
#[test]
fn cli_exit_codes_and_spans() {
    let bin = env!("CARGO_BIN_EXE_simlint");
    let root = workspace_root();

    let clean = std::process::Command::new(bin)
        .arg("--root")
        .arg(&root)
        .output()
        .unwrap();
    assert!(
        clean.status.success(),
        "workspace run failed:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    for (fixture, needle) in [
        ("bad/crates/core/src/engine/newpath.rs", ":4:11"),
        ("bad/crates/apps/src/staging.rs", ":4:8"),
        ("bad/crates/core/src/engine/timing.rs", ":3:25"),
        ("bad/crates/core/src/engine/order.rs", ":10:29"),
        ("bad/crates/sim/src/hotpath.rs", ":4:19"),
        ("bad/crates/sim/src/rawlane.rs", ":3:5"),
    ] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        let out = std::process::Command::new(bin)
            .arg("--root")
            .arg(&root)
            .arg(&path)
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{fixture}: expected exit 1, stderr:\n{stderr}"
        );
        assert!(
            stderr.contains(needle),
            "{fixture}: expected a diagnostic at `{needle}`, stderr:\n{stderr}"
        );
    }

    let explain = std::process::Command::new(bin)
        .args(["--explain", "cost-sheet"])
        .output()
        .unwrap();
    assert!(explain.status.success());
    assert!(String::from_utf8_lossy(&explain.stdout).contains("charge"));
}

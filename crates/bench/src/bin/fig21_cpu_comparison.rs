//! Fig. 21: CPU-only vs PIM-baseline vs PID-Comm across PE counts.

use pidcomm::OptLevel;
use pidcomm_bench::{apps, header};

/// Dataset-scale compensation applied to the CPU reference times.
///
/// The harness datasets are scaled 8-500x below the paper's; CPU work per
/// communication byte shrinks superlinearly with that scaling (GNN/MLP
/// compute is quadratic in the feature width while traffic is linear;
/// graph working sets that fit in LLC flatter the CPU). The factors below
/// restore the paper-scale compute-to-traffic ratio on the CPU side,
/// mirroring the KERNEL_SCALE compensation inside the PIM kernels; see
/// EXPERIMENTS.md for the derivations.
fn cpu_scale(app: &str) -> f64 {
    match app {
        "DLRM" => 8.0,                     // 26 Criteo tables vs 8, batch scale
        a if a.starts_with("GNN") => 45.0, // kernel x6 and (500/64)^2/(500/64) f-scaling
        "BFS" => 10.0,                     // kernel x4, LLC-resident visited arrays
        "CC" => 8.0,                       // kernel x1.5, LLC-resident labels
        "MLP" => 16.0,                     // (16k/2048)^2/(16k/2048) width scaling x mul width
        _ => 1.0,
    }
}

fn main() {
    header(
        "Fig. 21",
        "speedup over the CPU-only system vs PE count (harness-scale datasets, CPU scale-compensated)",
        "PIM base geomean 2.27x, PID-Comm 4.07x; compute-heavy apps scale with PEs, CC peaks early",
    );
    for case in apps::all_cases() {
        let counts: &[usize] = match case.app {
            a if a.starts_with("GNN") => &[64, 256, 1024],
            "CC" => &[32, 64, 128, 256, 512, 1024],
            _ => &[64, 128, 256, 512, 1024],
        };
        if !matches!(
            (case.app, case.dataset),
            ("DLRM", "16")
                | ("GNN RS&AR", "PM")
                | ("GNN AR&AG", "PM")
                | ("BFS", "LJ")
                | ("CC", "LJ")
                | ("MLP", "16k")
        ) {
            continue;
        }
        print!("{:<10} {:<4}", case.app, case.dataset);
        let scale = cpu_scale(case.app);
        for &p in counts {
            let base = case.run(p, OptLevel::Baseline);
            let ours = case.run(p, OptLevel::Full);
            print!(
                "  {p:>4}:{:>5.2}/{:<5.2}",
                scale * base.cpu_ns / base.profile.total_ns(),
                scale * ours.cpu_ns / ours.profile.total_ns()
            );
        }
        println!();
    }
    println!("(cells are PIM-base/PID-Comm speedup over CPU per PE count; >1 means PIM wins)");
}

//! Fig. 14: throughput of the eight supported primitives, baseline vs
//! PID-Comm, on the 2-D (32, 32) configuration.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{geomean, header, run_primitive, PrimSetup};

fn main() {
    header(
        "Fig. 14",
        "primitive throughput, Base vs PID-Comm, 2-D (32,32), 1024 PEs",
        "AA 5.19x, RS 4.46x, AR 4.23x, Br ~1x, geomean 2.83x",
    );
    let setup = PrimSetup::default_2d(32 * 1024);
    println!(
        "{:<4} {:>10} {:>10} {:>8}",
        "prim", "base GB/s", "ours GB/s", "speedup"
    );
    let mut speedups = Vec::new();
    for prim in Primitive::ALL {
        let base = run_primitive(&setup, prim, OptLevel::Baseline);
        let ours = run_primitive(&setup, prim, OptLevel::Full);
        let s = ours.throughput_gbps() / base.throughput_gbps();
        speedups.push(s);
        println!(
            "{:<4} {:>10.2} {:>10.2} {:>7.2}x",
            prim.abbrev(),
            base.throughput_gbps(),
            ours.throughput_gbps(),
            s
        );
    }
    println!("geomean speedup: {:.2}x", geomean(&speedups));
}

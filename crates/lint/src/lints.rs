//! The invariant lints and the token-pattern machinery they share.
//!
//! Each lint guards a contract the test suites can only probe pointwise:
//!
//! * [`Lint::CostSheet`] — every `CostSheet`/`mpi_ns` field mutation goes
//!   through the charge helpers, so cost-only execution cannot drift from
//!   functional runs (PR 7's bit-identical guarantee).
//! * [`Lint::PeChokePoint`] — no raw `slice_mut` writes to PE MRAM
//!   outside `pe.rs`, so the fault layer's single-hook claim (PR 6) stays
//!   sound.
//! * [`Lint::WallClock`] / [`Lint::MapIteration`] — no wall-clock reads
//!   or hash-order iteration in modeled-time code, so `CommReport` times
//!   stay bit-identical at any thread count.
//! * [`Lint::HotAlloc`] — no allocation inside the marked per-PE kernel
//!   regions (PR 4's allocation-free contract).
//! * [`Lint::UnsafeAudit`] — every `unsafe` carries a `// SAFETY:`
//!   comment and appears in the committed allowlist.
//!
//! Suppression is only possible through an explicit, reasoned
//! `// simlint: allow(<lint>, reason = "...")` directive on the offending
//! line or the line above; the tool counts and reports every directive so
//! escape hatches stay visible debt rather than silent holes.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// The lint identifiers. `Directive` covers problems with `// simlint:`
/// comments themselves (unknown lint names, missing reasons, unbalanced
/// hot markers) and is not suppressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    CostSheet,
    PeChokePoint,
    WallClock,
    MapIteration,
    HotAlloc,
    UnsafeAudit,
    Directive,
}

impl Lint {
    pub const ALL: [Lint; 6] = [
        Lint::CostSheet,
        Lint::PeChokePoint,
        Lint::WallClock,
        Lint::MapIteration,
        Lint::HotAlloc,
        Lint::UnsafeAudit,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Lint::CostSheet => "cost-sheet",
            Lint::PeChokePoint => "pe-choke-point",
            Lint::WallClock => "wall-clock",
            Lint::MapIteration => "map-iteration",
            Lint::HotAlloc => "hot-alloc",
            Lint::UnsafeAudit => "unsafe-audit",
            Lint::Directive => "directive",
        }
    }

    pub fn from_name(s: &str) -> Option<Lint> {
        Lint::ALL.iter().copied().find(|l| l.name() == s)
    }

    /// The `--explain` text: the contract, where it came from, and the
    /// escape-hatch policy.
    pub fn explain(self) -> &'static str {
        match self {
            Lint::CostSheet => {
                "\
cost-sheet: CostSheet and mpi_ns fields may only be mutated inside
crates/core/src/engine/{sheet.rs,streaming.rs,baseline.rs} — the charge
helpers both the functional and the cost-only execution paths share.

Contract (PR 7): `CollectivePlan::execute_cost_only` replays the exact
integer tallies a functional run produces, so modeled times are
bit-identical by construction. A field bump anywhere else is invisible to
the cost-only path and silently splits the two.

Any other charge site (the verified-execution recovery counters, the
multi-host per-step charges) must carry
`// simlint: allow(cost-sheet, reason = \"...\")` explaining why the
cost-only path cannot miss it."
            }
            Lint::PeChokePoint => {
                "\
pe-choke-point: `slice_mut` — the raw mutable window into PE MRAM — may
only be called inside crates/sim/src/pe.rs. All transport writes must
land through `Pe::write`/`write_checked` or the typed-view encoders.

Contract (PR 6): the fault layer injects and verifies at the single
`Pe::write` choke point. A raw `slice_mut` write elsewhere is invisible
to injection and read-after-write verification, quietly shrinking the
chaos suite's coverage.

PE-local compute that fills freshly-staged scratch (not transport) may
opt out with `// simlint: allow(pe-choke-point, reason = \"...\")`."
            }
            Lint::WallClock => {
                "\
wall-clock: `Instant::now`, `SystemTime` and `thread::current` are
forbidden in modeled-time code (crates/{core,sim,apps}/src).

Contract (PR 1): modeled `CommReport` times are a pure function of the
configuration — bit-identical at any thread count, on any machine. One
wall-clock read in an engine path destroys reproducibility in a way the
determinism suites only catch for the configurations they enumerate.
Benchmark harnesses (crates/bench) time walls legitimately and are out
of scope."
            }
            Lint::MapIteration => {
                "\
map-iteration: iterating a HashMap/HashSet (`iter`, `keys`, `values`,
`drain`, `retain`, `into_iter`, or a `for` loop) is forbidden in
crates/{core,sim}/src — hash iteration order is randomized across
processes, so any schedule, plan or report built from it diverges
between runs. Keyed lookup (`get`, `entry`, indexing) is fine.

Fix: iterate a sorted key list, or use BTreeMap/BTreeSet. A provably
order-independent iteration (e.g. a min over unique keys) may carry
`// simlint: allow(map-iteration, reason = \"...\")`."
            }
            Lint::HotAlloc => {
                "\
hot-alloc: `Vec::new`, `vec![]`, `.collect()`, `Box::new` and
`.to_vec()` are forbidden between `// simlint: hot(begin)` and
`// simlint: hot(end)` markers — the per-PE kernel regions of
crates/sim/src/kernels.rs and the apps' `par_pes` closures.

Contract (PR 4): the typed-lane kernels and the apps' per-PE loops are
allocation-free in steady state; per-worker scratch comes from
`par_pes_with` init closures (which sit *outside* the markers).
An allocation inside the marked region runs once per PE per iteration —
the exact regression the kernel rewrite removed."
            }
            Lint::UnsafeAudit => {
                "\
unsafe-audit: every `unsafe` must (a) carry a `// SAFETY:` comment on
the same line or within the five lines above, and (b) appear in the
committed allowlist crates/lint/unsafe_allowlist.txt (`<path-suffix>
<max-count>` per line).

The workspace currently has zero unsafe blocks and
`#![forbid(unsafe_code)]` in every crate but pim_sim; pim_sim is the
designated home for any future unsafe lane-decode fast path, and this
lint makes each one a reviewed, documented, counted event — the audit
trail the nightly Miri/TSan lane builds on."
            }
            Lint::Directive => {
                "\
directive: `// simlint:` comments must parse. Supported forms:
  // simlint: allow(<lint>, reason = \"...\")   (reason is mandatory)
  // simlint: hot(begin[, <label>])
  // simlint: hot(end)
An allow suppresses matching diagnostics on its own line and the next
line only. Unknown lint names, missing reasons and unbalanced hot
markers are errors; an allow that suppresses nothing is a warning."
            }
        }
    }
}

/// One diagnostic. `Error` fails the run; `Warning` is reported only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    pub lint: Lint,
    pub severity: Severity,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        writeln!(f, "{sev}[simlint::{}]: {}", self.lint.name(), self.msg)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// One `// simlint: allow(...)` directive that was actually exercised.
#[derive(Debug, Clone)]
pub struct AllowUse {
    pub lint: Lint,
    pub path: String,
    pub line: u32,
    pub reason: String,
    /// How many diagnostics it suppressed.
    pub suppressed: u32,
}

/// The unsafe allowlist: `(path suffix, max unsafe occurrences)` rows.
#[derive(Debug, Clone, Default)]
pub struct UnsafeAllowlist {
    pub entries: Vec<(String, usize)>,
}

impl UnsafeAllowlist {
    /// Parses the committed allowlist format: one `<path-suffix> <count>`
    /// per line, `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            if let (Some(p), Some(n)) = (it.next(), it.next()) {
                if let Ok(n) = n.parse::<usize>() {
                    entries.push((p.to_string(), n));
                }
            }
        }
        Self { entries }
    }

    fn budget_for(&self, path: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|(suffix, _)| path.ends_with(suffix.as_str()))
            .map(|&(_, n)| n)
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub diags: Vec<Diag>,
    pub allows: Vec<AllowUse>,
}

// ---- directives -----------------------------------------------------------

#[derive(Debug)]
enum DirectiveKind {
    Allow { lint: Lint, reason: String },
    HotBegin,
    HotEnd,
}

#[derive(Debug)]
struct Directive {
    kind: DirectiveKind,
    line: u32,
    col: u32,
}

/// Parses `// simlint:` directives out of the comment table. Malformed
/// directives become `Directive` error diagnostics — a typo'd suppression
/// must fail loudly, not silently stop suppressing.
fn parse_directives(comments: &[Comment], path: &str, diags: &mut Vec<Diag>) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("simlint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut bad = |msg: String| {
            diags.push(Diag {
                lint: Lint::Directive,
                severity: Severity::Error,
                path: path.to_string(),
                line: c.line,
                col: c.col,
                msg,
            });
        };
        if let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (name, tail) = match args.split_once(',') {
                Some((n, t)) => (n.trim(), t.trim()),
                None => (args.trim(), ""),
            };
            let Some(lint) = Lint::from_name(name) else {
                bad(format!(
                    "unknown lint {name:?} in allow directive (known: {})",
                    Lint::ALL.map(|l| l.name()).join(", ")
                ));
                continue;
            };
            let reason = tail
                .strip_prefix("reason")
                .map(|r| r.trim_start())
                .and_then(|r| r.strip_prefix('='))
                .map(|r| r.trim().trim_matches('"').to_string())
                .filter(|r| !r.is_empty());
            let Some(reason) = reason else {
                bad(format!(
                    "allow({name}) needs a reason: `// simlint: allow({name}, reason = \"...\")`"
                ));
                continue;
            };
            out.push(Directive {
                kind: DirectiveKind::Allow { lint, reason },
                line: c.line,
                col: c.col,
            });
        } else if let Some(args) = rest.strip_prefix("hot(").and_then(|r| r.strip_suffix(')')) {
            let head = args.split(',').next().unwrap_or("").trim();
            match head {
                "begin" => out.push(Directive {
                    kind: DirectiveKind::HotBegin,
                    line: c.line,
                    col: c.col,
                }),
                "end" => out.push(Directive {
                    kind: DirectiveKind::HotEnd,
                    line: c.line,
                    col: c.col,
                }),
                other => bad(format!(
                    "hot({other}) — expected hot(begin[, label]) or hot(end)"
                )),
            }
        } else {
            bad(format!(
                "unrecognized simlint directive {rest:?} (expected allow(...) or hot(...))"
            ));
        }
    }
    out
}

// ---- token pattern helpers ------------------------------------------------

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Whether `toks[i..]` starts with `::` (two adjacent colons).
fn path_sep_at(toks: &[Tok], i: usize) -> bool {
    punct_at(toks, i, ':') && punct_at(toks, i + 1, ':')
}

/// Skips a balanced bracket run starting at `toks[i]` (which must be the
/// opening bracket); returns the index just past the closing bracket.
fn skip_balanced(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct(c) if c == open => depth += 1,
            TokKind::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token index ranges covered by `#[cfg(test)] mod <name> { ... }` blocks:
/// in-file unit tests exercise invariants deliberately (constructing raw
/// sheets, poking fields) and run under the normal test suite, so the
/// source lints skip them. The unsafe audit does not (see `run_lints`).
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']');
        if is_cfg_test && ident_at(toks, i + 7) == Some("mod") {
            // Find the module's opening brace, then skip to its close.
            let mut j = i + 8;
            while j < toks.len() && !punct_at(toks, j, '{') {
                j += 1;
            }
            let end = skip_balanced(toks, j, '{', '}');
            out.push((i, end));
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

// ---- per-file policy ------------------------------------------------------

/// Where each lint applies, decided from the workspace-relative path (or,
/// for fixtures, any path whose *suffix* mirrors a workspace path).
struct Policy {
    cost_sheet: bool,
    pe_choke_point: bool,
    wall_clock: bool,
    map_iteration: bool,
}

fn policy_for(path: &str) -> Policy {
    let ends = |s: &str| path.ends_with(s);
    let contains = |s: &str| path.contains(s);
    Policy {
        // The three charge-helper homes are the only places CostSheet
        // fields may move without a reasoned allow.
        cost_sheet: !(ends("crates/core/src/engine/sheet.rs")
            || ends("crates/core/src/engine/streaming.rs")
            || ends("crates/core/src/engine/baseline.rs")),
        pe_choke_point: !ends("crates/sim/src/pe.rs"),
        wall_clock: contains("crates/core/src")
            || contains("crates/sim/src")
            || contains("crates/apps/src"),
        map_iteration: contains("crates/core/src") || contains("crates/sim/src"),
    }
}

/// `CostSheet` tally fields plus the multi-host `mpi_ns` charge — the
/// full set of counters whose mutation sites the cost-only replay must
/// mirror exactly.
const SHEET_FIELDS: [&str; 14] = [
    "bulk_bytes",
    "streamed_bytes",
    "dt_blocks",
    "shuffle_blocks",
    "reduce_blocks",
    "stream_bytes",
    "scatter_bytes",
    "reduce_mem_bytes",
    "transfer_phases",
    "recovery_retries",
    "recovery_bytes",
    "recovery_checkpoint_bytes",
    "recovery_backoff",
    "mpi_ns",
];

const MAP_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

// ---- the lint passes ------------------------------------------------------

/// Lints one file. `path` is used both for diagnostics and for policy
/// (matched by suffix/substring, so fixture trees that mirror workspace
/// paths get workspace policy).
pub fn lint_file(path: &str, src: &str, allowlist: &UnsafeAllowlist) -> FileOutcome {
    let lexed = lex(src);
    let mut diags = Vec::new();
    let directives = parse_directives(&lexed.comments, path, &mut diags);
    let hot_regions = hot_regions(&directives, path, &mut diags);
    run_lints(path, &lexed, &hot_regions, allowlist, &mut diags);
    apply_allows(path, &directives, diags)
}

/// Resolves hot(begin)/hot(end) pairs into line ranges, flagging
/// imbalance.
fn hot_regions(directives: &[Directive], path: &str, diags: &mut Vec<Diag>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut open: Option<u32> = None;
    for d in directives {
        match d.kind {
            DirectiveKind::HotBegin => {
                if let Some(begin) = open {
                    diags.push(Diag {
                        lint: Lint::Directive,
                        severity: Severity::Error,
                        path: path.to_string(),
                        line: d.line,
                        col: d.col,
                        msg: format!("hot(begin) while the region from line {begin} is still open"),
                    });
                }
                open = Some(d.line);
            }
            DirectiveKind::HotEnd => match open.take() {
                Some(begin) => out.push((begin, d.line)),
                None => diags.push(Diag {
                    lint: Lint::Directive,
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: d.line,
                    col: d.col,
                    msg: "hot(end) without a matching hot(begin)".to_string(),
                }),
            },
            DirectiveKind::Allow { .. } => {}
        }
    }
    if let Some(begin) = open {
        diags.push(Diag {
            lint: Lint::Directive,
            severity: Severity::Error,
            path: path.to_string(),
            line: begin,
            col: 1,
            msg: "hot(begin) never closed by hot(end)".to_string(),
        });
    }
    out
}

fn run_lints(
    path: &str,
    lexed: &Lexed,
    hot_regions: &[(u32, u32)],
    allowlist: &UnsafeAllowlist,
    diags: &mut Vec<Diag>,
) {
    let toks = &lexed.toks;
    let policy = policy_for(path);
    let test_ranges = cfg_test_ranges(toks);
    let in_tests = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i < b);
    let in_hot = |line: u32| hot_regions.iter().any(|&(a, b)| line > a && line < b);
    let mut push = |lint: Lint, t: &Tok, msg: String| {
        diags.push(Diag {
            lint,
            severity: Severity::Error,
            path: path.to_string(),
            line: t.line,
            col: t.col,
            msg,
        });
    };

    // Pass 0 (map-iteration): collect identifiers bound to HashMap/HashSet
    // in this file — field declarations (`name: HashMap<..>`) and let
    // bindings (`let mut name = HashMap::new()`), optionally path-prefixed.
    let mut map_names: Vec<String> = Vec::new();
    if policy.map_iteration {
        for i in 0..toks.len() {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            if name == "HashMap" || name == "HashSet" {
                // Walk back over a path prefix (`std :: collections ::`).
                let mut j = i;
                while j >= 2 && path_sep_at(toks, j - 2) {
                    j = j.saturating_sub(3);
                    while j > 0 && !matches!(toks[j].kind, TokKind::Ident(_)) {
                        j -= 1;
                    }
                }
                // `bound : [path] HashMap` (field/param/ascription)...
                if j >= 2 && punct_at(toks, j - 1, ':') && !punct_at(toks, j - 2, ':') {
                    if let Some(bound) = ident_at(toks, j - 2) {
                        map_names.push(bound.to_string());
                    }
                }
                // ...or `let [mut] bound = [path] HashMap`.
                if j >= 2 && punct_at(toks, j - 1, '=') {
                    if let Some(bound) = ident_at(toks, j - 2) {
                        if bound != "=" {
                            map_names.push(bound.to_string());
                        }
                    }
                }
            }
        }
        map_names.sort();
        map_names.dedup();
    }

    let mut unsafe_count = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let skip_tests_here = in_tests(i);

        // L5 unsafe-audit: applies everywhere, tests included — Miri and
        // TSan audit test code too, and a SAFETY comment costs nothing.
        if ident_at(toks, i) == Some("unsafe") {
            unsafe_count += 1;
            let documented = lexed
                .comments
                .iter()
                .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && t.line - c.line <= 5);
            if !documented {
                push(
                    Lint::UnsafeAudit,
                    t,
                    "`unsafe` without a `// SAFETY:` comment on the same line or the 5 lines above"
                        .to_string(),
                );
            }
            match allowlist.budget_for(path) {
                None => push(
                    Lint::UnsafeAudit,
                    t,
                    "file not in crates/lint/unsafe_allowlist.txt; add `<path> <count>` there \
                     to register this unsafe block for audit"
                        .to_string(),
                ),
                Some(budget) if unsafe_count > budget => push(
                    Lint::UnsafeAudit,
                    t,
                    format!(
                        "unsafe occurrence #{unsafe_count} exceeds the allowlisted budget of \
                         {budget} for this file; raise the budget deliberately in \
                         crates/lint/unsafe_allowlist.txt"
                    ),
                ),
                Some(_) => {}
            }
        }

        if skip_tests_here {
            i += 1;
            continue;
        }

        // L1 cost-sheet: `.field` followed by an assignment operator.
        if policy.cost_sheet && punct_at(toks, i, '.') {
            if let Some(field) = ident_at(toks, i + 1) {
                if SHEET_FIELDS.contains(&field) {
                    let mut j = i + 2;
                    if punct_at(toks, j, '[') {
                        j = skip_balanced(toks, j, '[', ']');
                    }
                    if is_assignment_op(toks, j) {
                        push(
                            Lint::CostSheet,
                            &toks[i + 1],
                            format!(
                                "direct mutation of cost field `{field}` outside the engine \
                                 charge helpers (sheet.rs/streaming.rs/baseline.rs); route the \
                                 charge through a helper the cost-only path replays"
                            ),
                        );
                    }
                }
            }
        }

        // L2 pe-choke-point: any `slice_mut(` call outside pe.rs.
        if policy.pe_choke_point
            && ident_at(toks, i) == Some("slice_mut")
            && punct_at(toks, i + 1, '(')
        {
            push(
                Lint::PeChokePoint,
                t,
                "raw `slice_mut` write outside crates/sim/src/pe.rs bypasses the Pe::write \
                 fault/verification choke point"
                    .to_string(),
            );
        }

        // L3a wall-clock.
        if policy.wall_clock {
            if ident_at(toks, i) == Some("Instant")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3) == Some("now")
            {
                push(
                    Lint::WallClock,
                    t,
                    "Instant::now() in modeled-time code; modeled results must be a pure \
                     function of the configuration"
                        .to_string(),
                );
            }
            if ident_at(toks, i) == Some("SystemTime") {
                push(
                    Lint::WallClock,
                    t,
                    "SystemTime in modeled-time code; modeled results must be a pure function \
                     of the configuration"
                        .to_string(),
                );
            }
            if ident_at(toks, i) == Some("thread")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3) == Some("current")
            {
                push(
                    Lint::WallClock,
                    t,
                    "thread::current() in modeled-time code; results must not depend on which \
                     thread runs them"
                        .to_string(),
                );
            }
        }

        // L3b map-iteration: `name.iter()`-family calls and `for .. in`
        // loops over a known map binding.
        if policy.map_iteration {
            if let Some(name) = ident_at(toks, i) {
                if map_names.iter().any(|m| m == name)
                    && punct_at(toks, i + 1, '.')
                    && ident_at(toks, i + 2).is_some_and(|m| MAP_ITER_METHODS.contains(&m))
                    && punct_at(toks, i + 3, '(')
                {
                    push(
                        Lint::MapIteration,
                        t,
                        format!(
                            "iteration over hash-ordered `{name}` ({}); hash order is \
                             randomized — sort the keys or use a BTreeMap",
                            ident_at(toks, i + 2).unwrap_or(""),
                        ),
                    );
                }
                if name == "in" {
                    // `for pat in [&]([mut] [self.])name {`
                    let mut j = i + 1;
                    while punct_at(toks, j, '&') || punct_at(toks, j, '(') {
                        j += 1;
                    }
                    if ident_at(toks, j) == Some("mut") {
                        j += 1;
                    }
                    if ident_at(toks, j) == Some("self") && punct_at(toks, j + 1, '.') {
                        j += 2;
                    }
                    if let Some(target) = ident_at(toks, j) {
                        let mut k = j + 1;
                        while punct_at(toks, k, ')') {
                            k += 1;
                        }
                        if map_names.iter().any(|m| m == target) && punct_at(toks, k, '{') {
                            push(
                                Lint::MapIteration,
                                &toks[j],
                                format!(
                                    "`for` loop over hash-ordered `{target}`; hash order is \
                                     randomized — sort the keys or use a BTreeMap"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // L4 hot-alloc: allocation tokens inside a marked hot region.
        if in_hot(t.line) {
            let alloc: Option<&str> = if ident_at(toks, i) == Some("Vec")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3) == Some("new")
            {
                Some("Vec::new")
            } else if ident_at(toks, i) == Some("vec") && punct_at(toks, i + 1, '!') {
                Some("vec!")
            } else if ident_at(toks, i) == Some("Box")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3) == Some("new")
            {
                Some("Box::new")
            } else if punct_at(toks, i, '.') && ident_at(toks, i + 1) == Some("collect") {
                Some(".collect()")
            } else if punct_at(toks, i, '.') && ident_at(toks, i + 1) == Some("to_vec") {
                Some(".to_vec()")
            } else {
                None
            };
            if let Some(what) = alloc {
                push(
                    Lint::HotAlloc,
                    t,
                    format!(
                        "{what} inside a `simlint: hot` region; per-PE kernel regions are \
                         allocation-free — stage through per-worker scratch (par_pes_with) \
                         instead"
                    ),
                );
            }
        }

        i += 1;
    }
}

/// Whether `toks[j..]` is an assignment operator: `=` (not `==`/`=>`),
/// a compound `op=`, or a shift-assign.
fn is_assignment_op(toks: &[Tok], j: usize) -> bool {
    if punct_at(toks, j, '=') {
        return !punct_at(toks, j + 1, '=') && !punct_at(toks, j + 1, '>');
    }
    let compound = ['+', '-', '*', '/', '%', '&', '|', '^'];
    if let Some(TokKind::Punct(c)) = toks.get(j).map(|t| &t.kind) {
        if compound.contains(c) && punct_at(toks, j + 1, '=') {
            return true;
        }
        // `<<=` / `>>=`
        if (*c == '<' || *c == '>') && punct_at(toks, j + 1, *c) && punct_at(toks, j + 2, '=') {
            return true;
        }
    }
    false
}

/// Applies allow directives: a matching allow on the diagnostic's line or
/// the line above suppresses it. Returns surviving diagnostics plus the
/// used-allow report; an allow that suppressed nothing becomes a warning.
fn apply_allows(path: &str, directives: &[Directive], diags: Vec<Diag>) -> FileOutcome {
    struct Slot<'d> {
        lint: Lint,
        line: u32,
        col: u32,
        reason: &'d str,
        suppressed: u32,
    }
    let mut slots: Vec<Slot> = directives
        .iter()
        .filter_map(|d| match &d.kind {
            DirectiveKind::Allow { lint, reason } => Some(Slot {
                lint: *lint,
                line: d.line,
                col: d.col,
                reason,
                suppressed: 0,
            }),
            _ => None,
        })
        .collect();

    let mut kept = Vec::new();
    for diag in diags {
        if diag.severity == Severity::Error && diag.lint != Lint::Directive {
            if let Some(slot) = slots
                .iter_mut()
                .find(|s| s.lint == diag.lint && (s.line == diag.line || s.line + 1 == diag.line))
            {
                slot.suppressed += 1;
                continue;
            }
        }
        kept.push(diag);
    }

    let mut out = FileOutcome {
        diags: kept,
        allows: Vec::new(),
    };
    for s in slots {
        if s.suppressed == 0 {
            out.diags.push(Diag {
                lint: Lint::Directive,
                severity: Severity::Warning,
                path: path.to_string(),
                line: s.line,
                col: s.col,
                msg: format!(
                    "allow({}) suppresses nothing; remove it or move it onto the offending line",
                    s.lint.name()
                ),
            });
        } else {
            out.allows.push(AllowUse {
                lint: s.lint,
                path: path.to_string(),
                line: s.line,
                reason: s.reason.to_string(),
                suppressed: s.suppressed,
            });
        }
    }
    out
}

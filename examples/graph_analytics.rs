//! Graph analytics on the PID-Comm framework: BFS distances and connected
//! components over a power-law graph, using AllReduce with `Or` and `Min`
//! reductions respectively.
//!
//! Run with `cargo run --release --example graph_analytics`.

use pidcomm::OptLevel;
use pidcomm_apps::bfs::{default_source, run_bfs, BfsConfig};
use pidcomm_apps::cc::{run_cc, CcConfig};
use pidcomm_data::{rmat, RmatParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = rmat(12, 12, RmatParams::skewed(0xbeef)).to_undirected();
    println!(
        "graph: {} vertices, {} undirected edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // BFS: levels spread through AllReduce(Or) over visited bitmaps.
    let source = default_source(&graph);
    let bfs = run_bfs(
        &BfsConfig {
            threads: 0,
            pes: 256,
            opt: OptLevel::Full,
        },
        &graph,
        source,
    )?;
    println!(
        "BFS from hub {source}: {:.2} ms total ({:.2} ms AllReduce), validated={}",
        bfs.profile.total_ns() / 1e6,
        bfs.profile.primitive_ns(pidcomm::Primitive::AllReduce) / 1e6,
        bfs.validated
    );

    // Connected components: min-label propagation with AllReduce(Min).
    let cc = run_cc(
        &CcConfig {
            threads: 0,
            pes: 256,
            opt: OptLevel::Full,
        },
        &graph,
    )?;
    println!(
        "CC ({}): {:.2} ms total, validated={}",
        cc.profile.dataset,
        cc.profile.total_ns() / 1e6,
        cc.validated
    );

    // Both against the conventional stack.
    let bfs_base = run_bfs(
        &BfsConfig {
            threads: 0,
            pes: 256,
            opt: OptLevel::Baseline,
        },
        &graph,
        source,
    )?;
    let cc_base = run_cc(
        &CcConfig {
            threads: 0,
            pes: 256,
            opt: OptLevel::Baseline,
        },
        &graph,
    )?;
    println!(
        "speedup over conventional: BFS {:.2}x, CC {:.2}x",
        bfs_base.profile.total_ns() / bfs.profile.total_ns(),
        cc_base.profile.total_ns() / cc.profile.total_ns()
    );
    Ok(())
}

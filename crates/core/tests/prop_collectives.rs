//! Property-style tests: the streaming engine must match the functional
//! oracle for randomly drawn shapes, masks, payload sizes and data.
//!
//! Inputs are drawn from a seeded, dependency-free generator (the container
//! has no proptest), so every run exercises the same fixed sample of the
//! input space and failures reproduce exactly.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{oracle, BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

use pim_sim::testgen::{fill_byte, SplitMix64};

/// Shape/geometry pairs covering sub-lane, strided, multi-EG and
/// straddling group structures (kept small so the sweep stays fast).
fn configs() -> Vec<(Vec<usize>, DimmGeometry)> {
    vec![
        (vec![8], DimmGeometry::single_group()),
        (vec![4, 2], DimmGeometry::single_group()),
        (vec![2, 2, 2], DimmGeometry::single_group()),
        (vec![8, 8], DimmGeometry::single_rank()),
        (vec![16, 4], DimmGeometry::single_rank()),
        (vec![4, 2, 4], DimmGeometry::new(2, 1, 2)),
        (vec![2, 8, 2], DimmGeometry::new(1, 1, 4)),
    ]
}

/// A random non-empty mask over `rank` dimensions.
fn random_mask(g: &mut SplitMix64, rank: usize) -> Vec<bool> {
    loop {
        let bits: Vec<bool> = (0..rank).map(|_| g.next_u64() % 2 == 1).collect();
        if bits.iter().any(|&b| b) {
            return bits;
        }
    }
}

fn fill(sys: &mut PimSystem, bytes: usize, seed: u64) {
    for pe in sys.geometry().pes() {
        let data: Vec<u8> = (0..bytes)
            .map(|i| fill_byte(seed, pe.0 as u64, i))
            .collect();
        sys.pe_mut(pe).write(0, &data);
    }
}

fn setup(
    dims: &[usize],
    geom: DimmGeometry,
    mask_bits: &[bool],
) -> (PimSystem, Communicator, DimMask, usize) {
    let shape = HypercubeShape::new(dims.to_vec()).unwrap();
    let mask = DimMask::new(mask_bits.to_vec()).unwrap();
    let n = mask.group_size(&shape).unwrap();
    let manager = HypercubeManager::new(shape, geom).unwrap();
    (PimSystem::new(geom), Communicator::new(manager), mask, n)
}

const CASES: usize = 48;

#[test]
fn alltoall_matches_oracle() {
    let mut g = SplitMix64::new(0xaa_2a11);
    for _ in 0..CASES {
        let (dims, geom) = g.pick(&configs());
        let mask_bits = random_mask(&mut g, dims.len());
        let mult = 1 + (g.next_u64() % 2) as usize;
        let seed = g.next_u64();
        let opt = g.pick(&[OptLevel::Baseline, OptLevel::PeReorder, OptLevel::Full]);
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n * mult;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for grp in &groups {
            let inputs: Vec<Vec<u8>> = grp
                .members
                .iter()
                .map(|&pe| sys.pe_mut(pe).read(0, b).to_vec())
                .collect();
            expected.push(oracle::alltoall(&inputs));
        }

        let dst = 2 * b + 128;
        comm.with_opt(opt)
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, dst, b))
            .unwrap();

        for (grp, want) in groups.iter().zip(&expected) {
            for (&pe, w) in grp.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                assert_eq!(&got, w, "{dims:?} {mask_bits:?} {opt} {pe}");
            }
        }
    }
}

#[test]
fn allreduce_matches_oracle() {
    let mut g = SplitMix64::new(0xa11_4ed);
    for _ in 0..CASES {
        let (dims, geom) = g.pick(&configs());
        let mask_bits = random_mask(&mut g, dims.len());
        let seed = g.next_u64();
        let dtype = g.pick(&[DType::U8, DType::U16, DType::U32, DType::U64, DType::I32]);
        let op = g.pick(&[
            ReduceKind::Sum,
            ReduceKind::Min,
            ReduceKind::Max,
            ReduceKind::Or,
        ]);
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for grp in &groups {
            let inputs: Vec<Vec<u8>> = grp
                .members
                .iter()
                .map(|&pe| sys.pe_mut(pe).read(0, b).to_vec())
                .collect();
            expected.push(oracle::all_reduce(&inputs, op, dtype));
        }

        let dst = 2 * b + 128;
        comm.all_reduce(
            &mut sys,
            &mask,
            &BufferSpec::new(0, dst, b).with_dtype(dtype),
            op,
        )
        .unwrap();

        for (grp, want) in groups.iter().zip(&expected) {
            for (&pe, w) in grp.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                assert_eq!(&got, w, "{dims:?} {mask_bits:?} {dtype} {op} {pe}");
            }
        }
    }
}

#[test]
fn allgather_matches_oracle() {
    let mut g = SplitMix64::new(0xa6_6a74);
    for _ in 0..CASES {
        let (dims, geom) = g.pick(&configs());
        let mask_bits = random_mask(&mut g, dims.len());
        let mult = 1 + (g.next_u64() % 3) as usize;
        let seed = g.next_u64();
        let (mut sys, comm, mask, _n) = setup(&dims, geom, &mask_bits);
        let b = 8 * mult;
        fill(&mut sys, b, seed);

        let groups = comm.manager().groups(&mask).unwrap();
        let mut expected = Vec::new();
        for grp in &groups {
            let inputs: Vec<Vec<u8>> = grp
                .members
                .iter()
                .map(|&pe| sys.pe_mut(pe).read(0, b).to_vec())
                .collect();
            expected.push(oracle::all_gather(&inputs));
        }

        let dst = 4096;
        comm.all_gather(&mut sys, &mask, &BufferSpec::new(0, dst, b))
            .unwrap();

        for (grp, want) in groups.iter().zip(&expected) {
            for (&pe, w) in grp.members.iter().zip(want) {
                let got = sys.pe_mut(pe).read(dst, w.len()).to_vec();
                assert_eq!(&got, w, "{dims:?} {mask_bits:?} {pe}");
            }
        }
    }
}

#[test]
fn every_report_has_positive_time_and_bus_traffic() {
    let mut g = SplitMix64::new(0x4e904);
    for _ in 0..CASES {
        let (dims, geom) = g.pick(&configs());
        let seed = g.next_u64();
        let mask_bits = vec![true; dims.len()];
        let (mut sys, comm, mask, n) = setup(&dims, geom, &mask_bits);
        let b = 8 * n;
        fill(&mut sys, b, seed);
        let report = comm
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 2 * b + 128, b))
            .unwrap();
        assert!(report.time_ns() > 0.0);
        assert!(report.breakdown.pe_mem_access > 0.0);
        assert!(report.throughput_gbps() > 0.0);
        assert_eq!(report.group_size, n);
    }
}

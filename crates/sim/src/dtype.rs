//! Element data types and byte-level reduction arithmetic.
//!
//! The PIM domain stores data as raw bytes spread across the lanes of an
//! entangled group; the host can only interpret multi-byte elements after a
//! domain transfer (see [`crate::domain`]). This module provides the element
//! types supported by the framework and reduction arithmetic that operates
//! directly on byte slices, so both the collective engine and the functional
//! oracles share one implementation.

use core::fmt;

/// Element type of a collective's payload.
///
/// Matches the paper's evaluated granularities (§V-C, §VIII-F): 8/16/32/64-bit
/// signed and unsigned integers. 8-bit elements are special: the host can
/// interpret them without a domain transfer, which lets ReduceScatter and
/// AllReduce skip domain transfer entirely.
///
/// # Examples
///
/// ```
/// use pim_sim::dtype::DType;
///
/// assert_eq!(DType::U32.size_bytes(), 4);
/// assert!(DType::I8.is_byte_sized());
/// assert!(!DType::U64.is_byte_sized());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 8-bit integer.
    I8,
    /// Unsigned 16-bit integer.
    U16,
    /// Signed 16-bit integer.
    I16,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
}

impl DType {
    /// All supported data types.
    pub const ALL: [DType; 8] = [
        DType::U8,
        DType::I8,
        DType::U16,
        DType::I16,
        DType::U32,
        DType::I32,
        DType::U64,
        DType::I64,
    ];

    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::U8 | DType::I8 => 1,
            DType::U16 | DType::I16 => 2,
            DType::U32 | DType::I32 => 4,
            DType::U64 | DType::I64 => 8,
        }
    }

    /// Whether elements are single bytes, in which case the host can operate
    /// on PIM-domain data without a domain transfer (§V-C).
    pub fn is_byte_sized(self) -> bool {
        self.size_bytes() == 1
    }

    /// Whether the type is signed (affects `Min`/`Max` reductions).
    pub fn is_signed(self) -> bool {
        matches!(self, DType::I8 | DType::I16 | DType::I32 | DType::I64)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::U8 => "u8",
            DType::I8 => "i8",
            DType::U16 => "u16",
            DType::I16 => "i16",
            DType::U32 => "u32",
            DType::I32 => "i32",
            DType::U64 => "u64",
            DType::I64 => "i64",
        };
        f.write_str(s)
    }
}

/// Reduction operator applied element-wise by reducing collectives.
///
/// `Sum` wraps on overflow (matching what the AVX-512 integer adds of the
/// reference implementation do). `Or`/`And`/`Xor` are bitwise and therefore
/// independent of element width or signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceKind {
    /// Wrapping element-wise addition.
    #[default]
    Sum,
    /// Element-wise minimum (respects signedness).
    Min,
    /// Element-wise maximum (respects signedness).
    Max,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Bitwise XOR.
    Xor,
}

impl ReduceKind {
    /// All supported reduction operators.
    pub const ALL: [ReduceKind; 6] = [
        ReduceKind::Sum,
        ReduceKind::Min,
        ReduceKind::Max,
        ReduceKind::Or,
        ReduceKind::And,
        ReduceKind::Xor,
    ];
}

impl fmt::Display for ReduceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceKind::Sum => "sum",
            ReduceKind::Min => "min",
            ReduceKind::Max => "max",
            ReduceKind::Or => "or",
            ReduceKind::And => "and",
            ReduceKind::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Inner reduction loop for one element type and one already-selected
/// operator, structured for LLVM autovectorization: the bulk runs over
/// 64-byte blocks decoded into fixed-width native-typed lanes (everything
/// stays in registers, the per-lane loops have compile-time trip counts),
/// with a scalar tail for the remainder. No `std::simd`, no unsafe.
macro_rules! reduce_lanes {
    ($ty:ty, $acc:expr, $src:expr, $f:expr) => {{
        const W: usize = core::mem::size_of::<$ty>();
        /// Lanes per block: one 64-byte burst / cache line at a time.
        const L: usize = 64 / W;
        let f = $f;
        let mut ab = $acc.chunks_exact_mut(W * L);
        let mut sb = $src.chunks_exact(W * L);
        for (a, s) in ab.by_ref().zip(sb.by_ref()) {
            let mut av = [0 as $ty; L];
            let mut sv = [0 as $ty; L];
            for i in 0..L {
                av[i] = <$ty>::from_le_bytes(a[i * W..(i + 1) * W].try_into().unwrap());
                sv[i] = <$ty>::from_le_bytes(s[i * W..(i + 1) * W].try_into().unwrap());
            }
            for i in 0..L {
                av[i] = f(av[i], sv[i]);
            }
            for i in 0..L {
                a[i * W..(i + 1) * W].copy_from_slice(&av[i].to_le_bytes());
            }
        }
        for (a, s) in ab
            .into_remainder()
            .chunks_exact_mut(W)
            .zip(sb.remainder().chunks_exact(W))
        {
            let av = <$ty>::from_le_bytes(a.try_into().unwrap());
            let sv = <$ty>::from_le_bytes(s.try_into().unwrap());
            a.copy_from_slice(&f(av, sv).to_le_bytes());
        }
    }};
}

macro_rules! reduce_typed {
    ($ty:ty, $kind:expr, $acc:expr, $src:expr) => {{
        // Select the operator once, outside the data loop, so each arm
        // monomorphizes into its own branch-free kernel.
        match $kind {
            ReduceKind::Sum => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a.wrapping_add(b)),
            ReduceKind::Min => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a.min(b)),
            ReduceKind::Max => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a.max(b)),
            ReduceKind::Or => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a | b),
            ReduceKind::And => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a & b),
            ReduceKind::Xor => reduce_lanes!($ty, $acc, $src, |a: $ty, b: $ty| a ^ b),
        }
    }};
}

/// Reduces `src` into `acc` element-wise: `acc[i] = op(acc[i], src[i])`.
///
/// Elements are little-endian, matching both the x86 host and the UPMEM PEs.
///
/// # Panics
///
/// Panics if the slice lengths differ or are not a multiple of the element
/// size.
pub fn reduce_bytes(op: ReduceKind, dtype: DType, acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "reduction operand length mismatch");
    assert_eq!(
        acc.len() % dtype.size_bytes(),
        0,
        "reduction length {} is not a multiple of element size {}",
        acc.len(),
        dtype.size_bytes()
    );
    match dtype {
        DType::U8 => reduce_typed!(u8, op, acc, src),
        DType::I8 => reduce_typed!(i8, op, acc, src),
        DType::U16 => reduce_typed!(u16, op, acc, src),
        DType::I16 => reduce_typed!(i16, op, acc, src),
        DType::U32 => reduce_typed!(u32, op, acc, src),
        DType::I32 => reduce_typed!(i32, op, acc, src),
        DType::U64 => reduce_typed!(u64, op, acc, src),
        DType::I64 => reduce_typed!(i64, op, acc, src),
    }
}

/// The identity element of `op` for `dtype`, as `dtype.size_bytes()` bytes.
///
/// Folding any value `v` with the identity yields `v` again, so reducing
/// collectives can seed their accumulators with it.
pub fn identity_bytes(op: ReduceKind, dtype: DType) -> Vec<u8> {
    let w = dtype.size_bytes();
    macro_rules! ident {
        ($ty:ty) => {{
            let v: $ty = match op {
                ReduceKind::Sum | ReduceKind::Or | ReduceKind::Xor => 0,
                ReduceKind::Min => <$ty>::MAX,
                ReduceKind::Max => <$ty>::MIN,
                ReduceKind::And => !0,
            };
            v.to_le_bytes().to_vec()
        }};
    }
    let bytes = match dtype {
        DType::U8 => ident!(u8),
        DType::I8 => ident!(i8),
        DType::U16 => ident!(u16),
        DType::I16 => ident!(i16),
        DType::U32 => ident!(u32),
        DType::I32 => ident!(i32),
        DType::U64 => ident!(u64),
        DType::I64 => ident!(i64),
    };
    debug_assert_eq!(bytes.len(), w);
    bytes
}

/// Fills `buf` with repeated copies of the identity element.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of the element size.
pub fn fill_identity(op: ReduceKind, dtype: DType, buf: &mut [u8]) {
    let id = identity_bytes(op, dtype);
    assert_eq!(
        buf.len() % id.len(),
        0,
        "buffer not a multiple of element size"
    );
    for chunk in buf.chunks_exact_mut(id.len()) {
        chunk.copy_from_slice(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::I16.size_bytes(), 2);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
    }

    #[test]
    fn sum_wraps() {
        let mut acc = 250u8.to_le_bytes().to_vec();
        let src = 10u8.to_le_bytes().to_vec();
        reduce_bytes(ReduceKind::Sum, DType::U8, &mut acc, &src);
        assert_eq!(acc[0], 4); // 260 mod 256
    }

    #[test]
    fn min_respects_sign() {
        let mut acc = (-5i32).to_le_bytes().to_vec();
        let src = 3i32.to_le_bytes().to_vec();
        reduce_bytes(ReduceKind::Min, DType::I32, &mut acc, &src);
        assert_eq!(i32::from_le_bytes(acc.try_into().unwrap()), -5);

        // Same bit patterns as unsigned: -5 is a huge unsigned value.
        let mut acc = (-5i32 as u32).to_le_bytes().to_vec();
        let src = 3u32.to_le_bytes().to_vec();
        reduce_bytes(ReduceKind::Min, DType::U32, &mut acc, &src);
        assert_eq!(u32::from_le_bytes(acc.try_into().unwrap()), 3);
    }

    #[test]
    fn max_respects_sign() {
        let mut acc = (-5i16).to_le_bytes().to_vec();
        let src = 3i16.to_le_bytes().to_vec();
        reduce_bytes(ReduceKind::Max, DType::I16, &mut acc, &src);
        assert_eq!(i16::from_le_bytes(acc.try_into().unwrap()), 3);
    }

    #[test]
    fn bitwise_ops() {
        let mut acc = 0b1100u64.to_le_bytes().to_vec();
        reduce_bytes(
            ReduceKind::Or,
            DType::U64,
            &mut acc,
            &0b0110u64.to_le_bytes(),
        );
        assert_eq!(u64::from_le_bytes(acc.clone().try_into().unwrap()), 0b1110);
        reduce_bytes(
            ReduceKind::And,
            DType::U64,
            &mut acc,
            &0b0111u64.to_le_bytes(),
        );
        assert_eq!(u64::from_le_bytes(acc.clone().try_into().unwrap()), 0b0110);
        reduce_bytes(
            ReduceKind::Xor,
            DType::U64,
            &mut acc,
            &0b0110u64.to_le_bytes(),
        );
        assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), 0);
    }

    #[test]
    fn multi_element_slices() {
        let mut acc: Vec<u8> = [1u32, 2, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        let src: Vec<u8> = [10u32, 20, 30]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        reduce_bytes(ReduceKind::Sum, DType::U32, &mut acc, &src);
        let out: Vec<u32> = acc
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![11, 22, 33]);
    }

    #[test]
    fn identity_is_neutral_for_all_ops_and_types() {
        for &op in &ReduceKind::ALL {
            for &dt in &DType::ALL {
                let mut acc = identity_bytes(op, dt);
                let probe: Vec<u8> = (0..dt.size_bytes() as u8).map(|i| 0xA5 ^ i).collect();
                reduce_bytes(op, dt, &mut acc, &probe);
                assert_eq!(acc, probe, "identity not neutral for {op} {dt}");
            }
        }
    }

    #[test]
    fn fill_identity_covers_buffer() {
        let mut buf = vec![7u8; 16];
        fill_identity(ReduceKind::Min, DType::U32, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn chunked_lanes_match_elementwise_reduction() {
        // The 64-byte block path must agree with reducing one element at a
        // time (which only exercises the scalar tail), across lengths that
        // cover full blocks, partial tails and both combined.
        use crate::testgen::SplitMix64;
        let mut g = SplitMix64::new(0xd7);
        for &op in &ReduceKind::ALL {
            for &dt in &DType::ALL {
                let w = dt.size_bytes();
                for elems in [1usize, 3, 8, 15, 16, 17, 64, 65] {
                    let len = elems * w;
                    let mut acc = g.bytes(len);
                    let src = g.bytes(len);
                    let mut expect = acc.clone();
                    for (a, s) in expect.chunks_exact_mut(w).zip(src.chunks_exact(w)) {
                        reduce_bytes(op, dt, a, s);
                    }
                    reduce_bytes(op, dt, &mut acc, &src);
                    assert_eq!(acc, expect, "{op} {dt} x{elems}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut acc = vec![0u8; 4];
        reduce_bytes(ReduceKind::Sum, DType::U32, &mut acc, &[0u8; 8]);
    }
}

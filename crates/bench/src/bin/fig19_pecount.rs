//! Fig. 19: primitive throughput vs number of PEs (64 - 1024).

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{header, run_primitive, PrimSetup};
use pim_sim::{DType, DimmGeometry};

fn main() {
    header(
        "Fig. 19",
        "PE-count sweep, 1-D and 2-D",
        "PID-Comm scales 2.36-4.20x from 64 to 1024 PEs (channel scaling); baseline is host-bound and flat",
    );
    let counts = [64usize, 128, 256, 512, 1024];
    for (label, dims_of) in [
        ("1D", (|p: usize| vec![p]) as fn(usize) -> Vec<usize>),
        ("2D", |p: usize| {
            let x = 1 << (p.trailing_zeros() / 2);
            vec![x, p / x]
        }),
    ] {
        for prim in [
            Primitive::AlltoAll,
            Primitive::ReduceScatter,
            Primitive::AllReduce,
            Primitive::AllGather,
        ] {
            print!("{label} {:<4}", prim.abbrev());
            for &p in &counts {
                let dims = dims_of(p);
                let mask = if dims.len() == 1 {
                    "1".to_string()
                } else {
                    "10".to_string()
                };
                // Fixed per-node payload across the sweep so fixed
                // overheads amortize identically (64 KiB for 1-D groups,
                // 8 KiB for 2-D groups; both satisfy the 8 x N alignment
                // at every PE count).
                let bytes_per_node = if dims.len() == 1 { 64 * 1024 } else { 8 * 1024 };
                let setup = PrimSetup {
                    geom: DimmGeometry::with_pes(p),
                    bytes_per_node,
                    dims,
                    mask,
                    dtype: DType::U64,
                    model: pim_sim::TimeModel::upmem(),
                    threads: 0,
                };
                let base = run_primitive(&setup, prim, OptLevel::Baseline).throughput_gbps();
                let ours = run_primitive(&setup, prim, OptLevel::Full).throughput_gbps();
                print!("  {p:>4}:{base:>5.1}/{ours:<5.1}");
            }
            println!();
        }
    }
    println!("(cells are base/ours GB/s per PE count)");
}

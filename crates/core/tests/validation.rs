//! Error-path coverage: every validation rule of the public API, checked
//! through `Communicator` calls.

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{BufferSpec, Communicator, DimMask, Error, HypercubeShape, OptLevel};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

fn comm_64() -> (PimSystem, Communicator) {
    let geom = DimmGeometry::single_rank();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    (PimSystem::new(geom), Communicator::new(manager))
}

#[test]
fn shape_validation() {
    assert!(matches!(
        HypercubeShape::new(vec![]),
        Err(Error::InvalidShape(_))
    ));
    assert!(matches!(
        HypercubeShape::new(vec![0]),
        Err(Error::InvalidShape(_))
    ));
    assert!(matches!(
        HypercubeShape::new(vec![3, 8]),
        Err(Error::InvalidShape(_))
    ));
    // Non-power-of-two allowed only in the last position.
    assert!(HypercubeShape::new(vec![8, 3]).is_ok());
}

#[test]
fn mask_validation() {
    assert!(matches!(DimMask::parse("0x1"), Err(Error::InvalidMask(_))));
    assert!(matches!(DimMask::parse("00"), Err(Error::InvalidMask(_))));
    assert!(matches!(DimMask::new(vec![]), Err(Error::InvalidMask(_))));

    let (mut sys, comm) = comm_64();
    // Rank mismatch surfaces at call time.
    let err = comm
        .all_to_all(
            &mut sys,
            &"101".parse().unwrap(),
            &BufferSpec::new(0, 4096, 512),
        )
        .unwrap_err();
    assert!(matches!(err, Error::InvalidMask(_)));
}

#[test]
fn manager_requires_exact_coverage() {
    let shape = HypercubeShape::new(vec![8, 8]).unwrap();
    let err = HypercubeManager::new(shape, DimmGeometry::upmem_256()).unwrap_err();
    assert!(matches!(
        err,
        Error::ShapeSystemMismatch {
            nodes: 64,
            pes: 256
        }
    ));
}

#[test]
fn system_and_manager_geometry_must_agree() {
    let (_, comm) = comm_64();
    let mut other = PimSystem::new(DimmGeometry::upmem_256());
    let err = comm
        .all_to_all(
            &mut other,
            &"10".parse().unwrap(),
            &BufferSpec::new(0, 4096, 512),
        )
        .unwrap_err();
    assert!(matches!(err, Error::ShapeSystemMismatch { .. }));
}

#[test]
fn zero_and_misaligned_buffers_rejected() {
    let (mut sys, comm) = comm_64();
    let mask: DimMask = "10".parse().unwrap();

    for b in [0usize, 4, 12, 63] {
        let err = comm
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 4096, b))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidBuffer(_)), "b = {b}");
    }

    // Chunked primitives need 8 x group-size alignment; 8 bytes is fine
    // for AllGather but not for AlltoAll on groups of 8.
    assert!(comm
        .all_gather(&mut sys, &mask, &BufferSpec::new(0, 4096, 8))
        .is_ok());
    assert!(matches!(
        comm.all_to_all(&mut sys, &mask, &BufferSpec::new(0, 4096, 8)),
        Err(Error::InvalidBuffer(_))
    ));
}

#[test]
fn dtype_alignment_enforced() {
    let (mut sys, comm) = comm_64();
    let mask: DimMask = "10".parse().unwrap();
    // 8 x 8 = 64 bytes is chunk-aligned but not a multiple of ... all
    // integer sizes divide 64, so use a valid case and check it passes.
    assert!(comm
        .reduce_scatter(
            &mut sys,
            &mask,
            &BufferSpec::new(0, 4096, 64).with_dtype(DType::U32),
            ReduceKind::Sum
        )
        .is_ok());
}

#[test]
fn overlapping_buffers_rejected() {
    let (mut sys, comm) = comm_64();
    let mask: DimMask = "10".parse().unwrap();
    let b = 512;

    // Identical src/dst.
    let err = comm
        .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 0, b))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidBuffer(_)));

    // Partial overlap.
    let err = comm
        .all_to_all(&mut sys, &mask, &BufferSpec::new(0, b / 2, b))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidBuffer(_)));

    // AllGather's destination is n x b wide — an offset just past src but
    // inside the previous region's footprint is fine the other way round.
    let err = comm
        .all_gather(&mut sys, &mask, &BufferSpec::new(64, 0, 64))
        .unwrap_err();
    assert!(
        matches!(err, Error::InvalidBuffer(_)),
        "dst window reaches into src"
    );

    // Disjoint regions pass.
    assert!(comm
        .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 8192, b))
        .is_ok());
}

#[test]
fn host_buffer_shapes_validated() {
    let (mut sys, comm) = comm_64();
    let mask: DimMask = "10".parse().unwrap();
    let spec = BufferSpec::new(0, 4096, 64);

    // Wrong group count.
    let err = comm
        .scatter(&mut sys, &mask, &spec, &[vec![0u8; 512]])
        .unwrap_err();
    assert!(matches!(err, Error::InvalidHostData(_)));

    // Wrong per-group size (needs n * b = 512).
    let bad = vec![vec![0u8; 128]; 8];
    let err = comm.scatter(&mut sys, &mask, &spec, &bad).unwrap_err();
    assert!(matches!(err, Error::InvalidHostData(_)));

    let good = vec![vec![0u8; 512]; 8];
    assert!(comm.scatter(&mut sys, &mask, &spec, &good).is_ok());

    // Broadcast expects b bytes per group.
    let oversized: Vec<Vec<u8>> = vec![vec![0u8; 512]; 8];
    let err = comm
        .broadcast(&mut sys, &mask, &spec, &oversized)
        .unwrap_err();
    assert!(matches!(err, Error::InvalidHostData(_)));
    assert!(comm
        .broadcast(
            &mut sys,
            &mask,
            &spec,
            &good.iter().map(|_| vec![0u8; 64]).collect::<Vec<_>>()
        )
        .is_ok());
}

#[test]
fn errors_do_not_charge_time_or_move_data() {
    let (mut sys, comm) = comm_64();
    let mask: DimMask = "10".parse().unwrap();
    for pe in sys.geometry().pes() {
        sys.pe_mut(pe).write(0, &[7u8; 512]);
    }
    let before = sys.meter();
    let _ = comm
        .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 0, 512))
        .unwrap_err();
    assert_eq!(
        sys.meter().total(),
        before.total(),
        "failed call charged time"
    );
    let data = sys.pe_mut(pim_sim::PeId(0)).read(0, 512).to_vec();
    assert!(data.iter().all(|&b| b == 7), "failed call mutated MRAM");
}

#[test]
fn all_levels_reject_the_same_inputs() {
    for opt in OptLevel::ALL {
        let (mut sys, comm) = comm_64();
        let comm = comm.with_opt(opt);
        let mask: DimMask = "10".parse().unwrap();
        assert!(
            comm.all_to_all(&mut sys, &mask, &BufferSpec::new(0, 4096, 12))
                .is_err(),
            "{opt} accepted a misaligned buffer"
        );
    }
}

//! Execution engine: validation, dispatch and cost application.
//!
//! Since the plan/execute split, the engine is two halves: [`plan`]
//! derives everything payload-independent once (validated buffer geometry,
//! cluster decomposition, permutation tables, phase-B schedules, resolved
//! thread fan-out) into a reusable [`plan::CollectivePlan`], and the
//! plan's execute methods run the payload-dependent half. The one-shot
//! [`execute`] entry point is now plan-then-execute.

pub mod autotune;
pub(crate) mod baseline;
pub mod hostkernel;
pub(crate) mod parallel;
pub mod plan;
pub mod prepared;
pub mod recovery;
pub mod sheet;
pub(crate) mod streaming;
pub mod supervisor;

use pim_sim::dtype::{DType, ReduceKind};
use pim_sim::PimSystem;

use crate::config::{OptLevel, Primitive};
use crate::error::{Error, Result};
use crate::hypercube::{DimMask, HypercubeManager};
use crate::report::CommReport;

/// Buffer description shared by all collective calls: the same MRAM offsets
/// apply to every participating PE (the SPMD convention of the paper's
/// API, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferSpec {
    /// Source MRAM offset on every PE (ignored by Scatter/Broadcast).
    pub src_offset: usize,
    /// Destination MRAM offset on every PE (ignored by Gather/Reduce).
    pub dst_offset: usize,
    /// Payload bytes per node; see each primitive for the exact meaning
    /// (total send size for AlltoAll/ReduceScatter/AllReduce/Reduce/Gather,
    /// per-node contribution for AllGather, per-node receive size for
    /// Scatter/Broadcast).
    pub bytes_per_node: usize,
    /// Element type of the payload.
    pub dtype: DType,
}

impl BufferSpec {
    /// Convenience constructor with `u64` elements.
    pub fn new(src_offset: usize, dst_offset: usize, bytes_per_node: usize) -> Self {
        Self {
            src_offset,
            dst_offset,
            bytes_per_node,
            dtype: DType::U64,
        }
    }

    /// Sets the element type.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }
}

/// Outcome of one engine invocation.
pub(crate) struct Execution {
    pub report: CommReport,
    pub host_out: Option<Vec<Vec<u8>>>,
}

/// MRAM byte ranges `(src_len, dst_len)` a primitive touches per PE.
pub(crate) fn buffer_extents(primitive: Primitive, b: usize, n: usize) -> (usize, usize) {
    match primitive {
        Primitive::AlltoAll | Primitive::AllReduce => (b, b),
        Primitive::ReduceScatter => (b, b / n),
        Primitive::AllGather => (b, b * n),
        Primitive::Scatter => (0, b),
        Primitive::Gather | Primitive::Reduce => (b, 0),
        Primitive::Broadcast => (0, b),
    }
}

/// Logical data volumes `(bytes_in, bytes_out)` for throughput reporting.
pub(crate) fn logical_volumes(
    primitive: Primitive,
    b: usize,
    n: usize,
    p: usize,
    g: usize,
) -> (u64, u64) {
    let (b, n, p, g) = (b as u64, n as u64, p as u64, g as u64);
    match primitive {
        Primitive::AlltoAll | Primitive::AllReduce => (p * b, p * b),
        Primitive::ReduceScatter => (p * b, p * b / n),
        Primitive::AllGather => (p * b, p * b * n),
        Primitive::Scatter => (g * n * b, p * b),
        Primitive::Gather => (p * b, g * n * b),
        Primitive::Reduce => (p * b, g * b),
        Primitive::Broadcast => (g * b, p * b),
    }
}

/// The payload-independent validation half: everything about the spec that
/// can be checked at plan time, without a system or host buffers.
pub(crate) fn validate_spec(primitive: Primitive, spec: &BufferSpec, n: usize) -> Result<()> {
    let b = spec.bytes_per_node;
    if b == 0 {
        return Err(Error::InvalidBuffer("bytes_per_node is zero".into()));
    }
    if !b.is_multiple_of(spec.dtype.size_bytes()) {
        return Err(Error::InvalidBuffer(format!(
            "bytes_per_node {b} is not a multiple of element size {}",
            spec.dtype.size_bytes()
        )));
    }
    let chunked = matches!(
        primitive,
        Primitive::AlltoAll | Primitive::ReduceScatter | Primitive::AllReduce | Primitive::Reduce
    );
    if chunked && !b.is_multiple_of(8 * n) {
        return Err(Error::InvalidBuffer(format!(
            "{primitive} needs bytes_per_node divisible by 8 x group size ({}); got {b}",
            8 * n
        )));
    }
    if !chunked && !b.is_multiple_of(8) {
        return Err(Error::InvalidBuffer(format!(
            "{primitive} needs bytes_per_node divisible by 8; got {b}"
        )));
    }

    let (src_len, dst_len) = buffer_extents(primitive, b, n);
    if src_len > 0 && dst_len > 0 {
        let (s0, s1) = (spec.src_offset, spec.src_offset + src_len);
        let (d0, d1) = (spec.dst_offset, spec.dst_offset + dst_len);
        if s0 < d1 && d0 < s1 {
            return Err(Error::InvalidBuffer(format!(
                "source [{s0}, {s1}) and destination [{d0}, {d1}) regions overlap"
            )));
        }
    }
    Ok(())
}

/// The payload-dependent validation half: host buffer counts and sizes,
/// checked at execute time.
pub(crate) fn validate_host_in(
    primitive: Primitive,
    b: usize,
    n: usize,
    num_groups: usize,
    host_in: Option<&[Vec<u8>]>,
) -> Result<()> {
    match primitive {
        Primitive::Scatter | Primitive::Broadcast => {
            let host_in = host_in.ok_or_else(|| {
                Error::InvalidHostData(format!("{primitive} requires host input buffers"))
            })?;
            if host_in.len() != num_groups {
                return Err(Error::InvalidHostData(format!(
                    "expected {num_groups} host buffers (one per group), got {}",
                    host_in.len()
                )));
            }
            let expect = if primitive == Primitive::Scatter {
                n * b
            } else {
                b
            };
            for (i, buf) in host_in.iter().enumerate() {
                if buf.len() != expect {
                    return Err(Error::InvalidHostData(format!(
                        "host buffer {i} has {} bytes, expected {expect}",
                        buf.len()
                    )));
                }
            }
        }
        _ => {
            if host_in.is_some() {
                return Err(Error::InvalidHostData(format!(
                    "{primitive} takes no host input buffers"
                )));
            }
        }
    }
    Ok(())
}

/// Validates and executes one collective call, returning the report and
/// (for rooted receive primitives) host-side outputs.
///
/// Implemented as plan-then-execute over [`plan::CollectivePlan`]: the
/// one-shot path pays exactly one planning pass, and repeated callers can
/// hold the plan instead.
///
/// `threads` bounds the engine's cluster-level fan-out; `0` means auto and
/// `1` forces the serial reference schedule (both produce byte-identical
/// buffers and reports).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    opt: OptLevel,
    primitive: Primitive,
    mask: &DimMask,
    spec: &BufferSpec,
    op: ReduceKind,
    host_in: Option<&[Vec<u8>]>,
    threads: usize,
) -> Result<Execution> {
    plan::CollectivePlan::build(manager, opt, primitive, mask, spec, op, threads)?.run(sys, host_in)
}

//! Deep learning recommendation model on a 3-D hypercube (§VII-A, Fig. 11).
//!
//! The embedding stage is partitioned three ways, mapped to the hypercube
//! axes: **x** splits the embedding dimension (column division), **y**
//! splits each table's rows (row division), and **z** splits the tables
//! (table division). The communication structure follows Fig. 11:
//!
//! 1. `AlltoAll("111")` distributes the batch's lookup indices to the PEs
//!    owning the referenced tables and rows (duplicated across x, since
//!    every column shard needs them).
//! 2. A lookup kernel sum-pools each sample's rows (multi-hot features).
//! 3. `ReduceScatter("010")` combines the row-shard partial sums along y.
//! 4. `AlltoAll("101")` relocates the pooled vectors so each PE ends with
//!    complete embedding vectors for its sample subset.
//!
//! The run is validated bit-exactly against a direct CPU pooling reference
//! and finishes with the top-MLP kernel and a Gather.

use std::sync::Arc;

use pidcomm::{
    par_chunks, par_pes, par_pes_with, BufferSpec, Communicator, DimMask, HypercubeManager,
    HypercubeShape, Iteration, OptLevel, PlanCache, Primitive, RunPolicy, Supervisor,
};
use pidcomm_data::dlrm::{embedding_value, generate_batch, DlrmConfig};
use pim_sim::{kernels, DType, DimmGeometry, FaultPlan, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::{AppRun, ResilientRun};

/// Rows summed per (sample, table) lookup (multi-hot pooling).
const POOL_K: usize = 2;

/// DLRM run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlrmRunConfig {
    /// Workload (tables, rows, embedding dim, batch).
    pub workload: DlrmConfig,
    /// Number of PEs.
    pub pes: usize,
    /// Communication optimization level.
    pub opt: OptLevel,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

/// Hypercube split `[x, y, z]` for a PE count (x = column division,
/// y = row division, z = table division ≤ number of tables).
fn split(pes: usize, tables: usize, dim: usize) -> [usize; 3] {
    let tz = tables.min(8);
    assert_eq!(pes % tz, 0, "PE count must divide by table division");
    let rest = pes / tz;
    // Column division cannot exceed the embedding dimension.
    let tx = (1 << (rest.trailing_zeros() / 2)).min(dim).min(8);
    let ty = rest / tx;
    [tx, ty, tz]
}

/// One lookup routed through the index AlltoAll: `(sample, table, row)`
/// packed into a u64.
fn pack(sample: usize, table: usize, row: u32) -> u64 {
    ((sample as u64) << 32) | ((table as u64) << 24) | row as u64
}

fn unpack(v: u64) -> (usize, usize, u32) {
    (
        (v >> 32) as usize,
        ((v >> 24) & 0xFF) as usize,
        (v & 0xFF_FFFF) as u32,
    )
}

/// Sentinel marking a padding slot in index chunks.
const PAD: u64 = u64::MAX;

/// Per-worker cache of materialized embedding rows: `embedding_value` is a
/// per-element hash, and the same `(table, row)` is looked up many times
/// across samples (multi-hot pooling over a bounded row space), so each
/// worker materializes a touched row once and pooling runs as typed-lane
/// adds over the cached slice instead of per-element hash calls. The row
/// space is bounded (`tables × rows_per_table`), so the cache is a flat
/// slot table indexed directly — no hashing on the lookup path. Purely a
/// memoization — the cached values are the deterministic
/// `embedding_value` outputs, so sums are bit-identical.
struct RowCache {
    d: usize,
    rows_per_table: usize,
    slots: Vec<Option<Box<[i32]>>>,
}

impl RowCache {
    fn new(w: &DlrmConfig) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(w.num_tables * w.rows_per_table, || None);
        Self {
            d: w.embedding_dim,
            rows_per_table: w.rows_per_table,
            slots,
        }
    }

    /// The cached full-width row for `(table, row)`, materialized on
    /// first touch.
    fn row(&mut self, table: usize, row: u32) -> &[i32] {
        let d = self.d;
        self.slots[table * self.rows_per_table + row as usize]
            .get_or_insert_with(|| (0..d).map(|c| embedding_value(table, row, c)).collect())
    }
}

/// CPU reference: pooled embedding vectors per sample (all tables
/// concatenated), plus a roofline time for lookup + pooling.
fn cpu_reference(cfg: &DlrmConfig, batch: &pidcomm_data::LookupBatch) -> (Vec<Vec<i32>>, f64) {
    let cpu = CpuModel::xeon_5215();
    let d = cfg.embedding_dim;
    let mut rows = RowCache::new(cfg);
    let mut out = Vec::with_capacity(cfg.batch_size);
    for tables in batch.indices.iter() {
        let mut vec = vec![0i32; cfg.num_tables * d];
        for (t, &r0) in tables.iter().enumerate() {
            for k in 0..POOL_K {
                let row = ((r0 as usize + k * 97) % cfg.rows_per_table) as u32;
                let vals = rows.row(t, row);
                kernels::add_wrap(DType::I32, &mut vec[t * d..(t + 1) * d], vals);
            }
        }
        out.push(vec);
    }
    let lookups = (cfg.batch_size * cfg.num_tables * POOL_K) as u64;
    let time = cpu.time_mixed_ns(lookups * d as u64, 0, lookups * (d as u64 * 4 + 64));
    (out, time)
}

/// Runs DLRM and validates the pooled embedding vectors.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics on invalid shape splits or if validation fails.
#[allow(clippy::needless_range_loop)] // src/dst PE ids drive the routing math
pub fn run_dlrm(cfg: &DlrmRunConfig) -> pidcomm::Result<AppRun> {
    run_dlrm_in(cfg, &mut SystemArena::new())
}

/// As [`run_dlrm`], but sourcing the `PimSystem` and staging buffers from
/// `arena` (and returning them to it), so repeated runs — e.g. consecutive
/// sweep cells on one worker — reuse allocations. Results are
/// byte-identical to [`run_dlrm`].
///
/// # Errors
///
/// Propagates collective validation errors.
#[allow(clippy::needless_range_loop)] // src/dst PE ids drive the routing math
pub fn run_dlrm_in(cfg: &DlrmRunConfig, arena: &mut SystemArena) -> pidcomm::Result<AppRun> {
    let w = &cfg.workload;
    let p = cfg.pes;
    let d = w.embedding_dim;
    let t = w.num_tables;
    let [tx, ty, tz] = split(p, t, d);
    assert_eq!(tx * ty * tz, p, "split must cover all PEs");
    assert_eq!(d % tx, 0);
    assert_eq!(w.rows_per_table % ty, 0);
    assert_eq!(t % tz, 0);
    let comps = d / tx; // embedding components per column shard
    let tables_per_z = t / tz;
    let rows_per_y = w.rows_per_table / ty;
    let bs = w.batch_size;
    assert_eq!(bs % p, 0, "batch must divide across PEs");

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![tx, ty, tz])?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mut profile = AppProfile::new("DLRM", format!("d{d}"));

    let batch = generate_batch(w);
    let coords = |pe: usize| {
        let x = pe % tx;
        let y = (pe / tx) % ty;
        let z = pe / (tx * ty);
        (x, y, z)
    };

    // The whole embedding pipeline executes as ONE fused chain —
    // Scatter("111") → index AlltoAll("111") → ReduceScatter("010") →
    // relocation AlltoAll("101") → score Gather("111") — with the host
    // kernels (index encode, pooled lookup, rank-major repack, vector
    // assembly + top MLP) as the inter-step hooks, so no intermediate
    // result ever takes a host staging round-trip. All host images,
    // layout offsets and plans are therefore computed up front.

    // ---- Host staging: raw batch shards (sample indices). ---------------
    let mask_all = DimMask::all(comm.manager().shape());
    let shard = bs / p;
    let shard_bytes = (shard * t * 8).next_multiple_of(8);
    let mut batch_host = arena.bytes(p * shard_bytes);
    par_chunks(&mut batch_host, shard_bytes, cfg.threads, |pe, chunk| {
        for si in 0..shard {
            let s = pe * shard + si;
            for (ti, &row) in batch.indices[s].iter().enumerate() {
                let v = pack(s, ti, row);
                let off = (si * t + ti) * 8;
                chunk[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    });

    // ---- Index routing for AlltoAll("111"). -----------------------------
    // Destination of (sample, table, row): z = table shard, y = row shard,
    // every x (duplicated). Chunk capacity is computed exactly, then
    // padded uniformly.
    // Each source PE's routing depends only on its own batch shard, so the
    // expansion fans out one host-kernel work item per source row of the
    // flat [src * p + dst] routing grid, whose p^2 lists come from (and
    // return to) the arena's index-list pool.
    let mut per_dest = arena.index_lists(p * p);
    par_chunks(&mut per_dest, p, cfg.threads, |src, dests| {
        for si in 0..shard {
            let s = src * shard + si;
            for (ti, &r0) in batch.indices[s].iter().enumerate() {
                for k in 0..POOL_K {
                    let row = ((r0 as usize + k * 97) % w.rows_per_table) as u32;
                    let dz = ti / tables_per_z;
                    let dy = row as usize / rows_per_y;
                    for dx in 0..tx {
                        let dst = dx + tx * (dy + ty * dz);
                        dests[dst].push(pack(s, ti, row));
                    }
                }
            }
        }
    });
    let max_entries = per_dest.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let chunk_entries = max_entries.next_multiple_of(2).max(2);
    let idx_b = p * chunk_entries * 8;
    let idx_src = shard_bytes.next_multiple_of(64);
    let idx_dst = idx_src + idx_b.next_multiple_of(64);

    // ---- Remaining MRAM layout. -----------------------------------------
    // Partial buffer: all samples x owned tables x owned components.
    let partial_entries = bs * tables_per_z * comps;
    let partial_bytes = (partial_entries * 4).next_multiple_of(8 * ty);
    let pool_src = idx_dst + idx_b.next_multiple_of(64);
    let pool_dst = pool_src + partial_bytes.next_multiple_of(64);
    // After the RS, PE (x, y, z) holds chunk y: samples sub-range
    // [y*bs/ty, ...) of the pooled (table z-shard, comps x-shard) values.
    let rs_chunk_bytes = partial_bytes / ty;
    let samples_per_y = bs / ty;
    // Within each y-fixed group (tx*tz members), member (x, z) holds the
    // y-chunk's samples for its (comps, tables) shard; destination (x', z')
    // owns samples sub-subset and wants all shards.
    let n2 = tx * tz;
    let samples_per_dest = samples_per_y / n2;
    assert!(
        samples_per_dest >= 1,
        "batch too small for the 101 AlltoAll"
    );
    let aa2_chunk = samples_per_dest * tables_per_z * comps * 4;
    let aa2_b = (n2 * aa2_chunk).next_multiple_of(8 * n2);
    let aa2_src = pool_dst + rs_chunk_bytes.next_multiple_of(64);
    let aa2_dst = aa2_src + aa2_b.next_multiple_of(64);
    let aa2_payload = n2 * aa2_chunk;
    let score_bytes = (samples_per_dest * 8).next_multiple_of(8);
    let score_off = aa2_dst + aa2_b.next_multiple_of(64);

    // ---- Plans (pooled across runs in the arena cache). -----------------
    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask_all,
        &BufferSpec::new(0, 0, shard_bytes).with_dtype(DType::U64),
        ReduceKind::Sum,
    )?;
    let idx_aa_plan = comm.plan_cached(
        &mut plans,
        Primitive::AlltoAll,
        &mask_all,
        &BufferSpec::new(idx_src, idx_dst, idx_b).with_dtype(DType::U64),
        ReduceKind::Sum,
    )?;
    let mask_y: DimMask = "010".parse()?;
    let rs_plan = comm.plan_cached(
        &mut plans,
        Primitive::ReduceScatter,
        &mask_y,
        &BufferSpec::new(pool_src, pool_dst, partial_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let mask_xz: DimMask = "101".parse()?;
    let aa2_plan = comm.plan_cached(
        &mut plans,
        Primitive::AlltoAll,
        &mask_xz,
        &BufferSpec::new(aa2_src, aa2_dst, aa2_b).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask_all,
        &BufferSpec::new(score_off, 0, score_bytes).with_dtype(DType::I64),
        ReduceKind::Sum,
    )?;

    let (expected, cpu_lookup_ns) = cpu_reference(w, &batch);

    // The batch image is validated and row-staged once into an
    // arena-pooled prepared buffer; the raw host copy returns to the pool
    // before the chain even runs.
    let prepared = comm.prepare_in(
        scatter_plan.clone(),
        core::slice::from_ref(&batch_host),
        arena,
    )?;
    arena.recycle_bytes(batch_host);
    let fused = comm.fuse(
        vec![
            scatter_plan.clone(),
            idx_aa_plan.clone(),
            rs_plan.clone(),
            aa2_plan.clone(),
            gather_plan.clone(),
        ],
        &[],
    )?;

    // Bottom + top MLP stack: each PE processes its samples through 8
    // dense layers of width t*d (compute only; the paper profiles this as
    // Kernel — DLRM is its most kernel-heavy benchmark).
    let width = (t * d) as u64;
    let mlp_ops = samples_per_dest as u64 * 8 * 12 * width * width;
    let mlp_bytes = samples_per_dest as u64 * 8 * width * 4;
    let mlp_kernel = pe_kernel_ns(mlp_bytes, mlp_ops);

    let mut lookup_kernel = 0.0f64;
    let mut validated = true;
    let exec = fused.execute_with(&mut sys, Some(&prepared), |step, sys| {
        match step {
            // After the Scatter: encode each source PE's routed index
            // chunks (PAD-padded) into its AlltoAll send buffer.
            0 => {
                par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    Vec::new,
                    |buf: &mut Vec<u8>, src, pe| {
                        // simlint: hot(begin, dlrm index encode)
                        buf.clear();
                        buf.resize(idx_b, 0xFF); // PAD everywhere
                        for (dst, entries) in per_dest[src * p..(src + 1) * p].iter().enumerate() {
                            let off = dst * chunk_entries * 8;
                            kernels::encode_u64(entries, &mut buf[off..off + entries.len() * 8]);
                        }
                        pe.write(idx_src, buf);
                        // simlint: hot(end)
                    },
                );
            }
            // After the index AlltoAll: sum-pool owned rows.
            // Each worker materializes every touched (table, row)
            // embedding row once into its private cache; pooling then runs
            // as a typed-lane add over the PE's column slice of the cached
            // row instead of per-element `embedding_value` calls — the
            // same multi-hot rows recur across samples, and all PEs of one
            // worker share the cache.
            1 => {
                let kernels = par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || (vec![0i32; partial_entries], RowCache::new(w)),
                    |(partial, rows), pid, pe| {
                        // simlint: hot(begin, dlrm pooled lookup)
                        let (x, y, z) = coords(pid);
                        let _ = y;
                        partial.fill(0);
                        let mut lookups = 0u64;
                        {
                            let received = pe.read(idx_dst, idx_b);
                            for e in received.chunks_exact(8) {
                                let v = u64::from_le_bytes(e.try_into().unwrap());
                                if v == PAD {
                                    continue;
                                }
                                let (s, ti, row) = unpack(v);
                                let local_t = ti % tables_per_z;
                                debug_assert_eq!(ti / tables_per_z, z);
                                lookups += 1;
                                let base = (s * tables_per_z + local_t) * comps;
                                let vals = rows.row(ti, row);
                                kernels::add_wrap(
                                    DType::I32,
                                    &mut partial[base..base + comps],
                                    &vals[x * comps..(x + 1) * comps],
                                );
                            }
                        }
                        pe.write_i32s(pool_src, partial);
                        // simlint: allow(pe-choke-point, reason = "zero-fills freshly staged PE-local scratch pad, not transport; the payload above goes through the typed-view encoder")
                        pe.slice_mut(
                            pool_src + partial_entries * 4,
                            partial_bytes - partial_entries * 4,
                        )
                        .fill(0);
                        pe_kernel_ns(lookups * (comps as u64 * 4 + 8), 6 * lookups * comps as u64)
                        // simlint: hot(end)
                    },
                );
                lookup_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(lookup_kernel);
            }
            // After the ReduceScatter: stage the RS chunk as
            // destination-rank-major chunks. The chunk layout ([sample in
            // y-range][local table][comp] i32) already *is* rank-major —
            // destination rank r's samples are the contiguous sub-range
            // [r * samples_per_dest, (r+1) * samples_per_dest) — so the
            // rearrangement is one in-PE copy plus zeroing the pad.
            2 => {
                par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                    // simlint: hot(begin, dlrm rank-major repack)
                    pe.copy_within_region(pool_dst, aa2_src, aa2_payload);
                    // simlint: allow(pe-choke-point, reason = "zero-fills the PE-local alignment pad after an in-PE copy, not transport")
                    pe.slice_mut(aa2_src + aa2_payload, aa2_b - aa2_payload)
                        .fill(0);
                    // simlint: hot(end)
                });
            }
            // After the relocation AlltoAll: assemble + validate the full
            // embedding vectors, run the top MLP and stage the scores for
            // the final Gather. Per-chunk payloads decode as one
            // typed-lane run into per-worker scratch, then scatter as
            // comps-wide rows into the sample vector.
            _ => {
                let per_pe_ok = par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || (vec![0i32; t * d], vec![0i32; tables_per_z * comps]),
                    |(vec, run), pid, pe| {
                        // simlint: hot(begin, dlrm vector assembly)
                        let (x, y, z) = coords(pid);
                        let my_rank = x + tx * z; // rank within the "101" group (x fastest)
                        let received = pe.read(aa2_dst, aa2_b);
                        let mut ok = true;
                        for sd in 0..samples_per_dest {
                            let s = y * samples_per_y + my_rank * samples_per_dest + sd;
                            vec.fill(0);
                            for src_rank in 0..n2 {
                                let (sx, sz) = (src_rank % tx, src_rank / tx);
                                let base = src_rank * aa2_chunk + sd * tables_per_z * comps * 4;
                                kernels::decode_i32(
                                    &received[base..base + tables_per_z * comps * 4],
                                    run,
                                );
                                for lt in 0..tables_per_z {
                                    let at = (sz * tables_per_z + lt) * d + sx * comps;
                                    vec[at..at + comps]
                                        .copy_from_slice(&run[lt * comps..(lt + 1) * comps]);
                                }
                            }
                            if vec[..] != expected[s][..] {
                                ok = false;
                            }
                        }
                        ok
                        // simlint: hot(end)
                    },
                );
                validated &= per_pe_ok.into_iter().all(|ok| ok);
                sys.run_kernel(mlp_kernel);
                par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                    // simlint: hot(begin, dlrm score staging)
                    // simlint: allow(pe-choke-point, reason = "stages PE-local placeholder scores before the Gather, not transport; the Gather itself moves them through Pe::write")
                    pe.slice_mut(score_off, score_bytes).fill(1);
                    // simlint: hot(end)
                });
            }
        }
        Ok(())
    })?;
    profile.record(&exec.reports[0]);
    profile.record(&exec.reports[1]);
    profile.record_kernel(lookup_kernel + sys.model().kernel_launch_ns);
    profile.record(&exec.reports[2]);
    profile.record(&exec.reports[3]);
    profile.record_kernel(mlp_kernel + sys.model().kernel_launch_ns);
    profile.record(&exec.reports[4]);
    assert!(
        validated,
        "DLRM pooled embeddings diverge from CPU reference"
    );
    prepared.retire(arena);
    arena.recycle_index_lists(per_dest);

    // CPU reference also runs the top MLP.
    let cpu = CpuModel::xeon_5215();
    let cpu_mlp_ns = cpu.time_ns(bs as u64 * 8 * 2 * width * width, bs as u64 * 8 * width * 4);
    arena.recycle(sys);
    arena.put_extension(plans);
    Ok(AppRun {
        profile,
        cpu_ns: cpu_lookup_ns + cpu_mlp_ns,
        validated,
    })
}

/// As [`run_dlrm`], but under run-level supervision (see
/// [`Supervisor`]): collectives run verified with quarantine-aware
/// recovery, the embedding pipeline (index AlltoAll → lookup →
/// ReduceScatter → relocation AlltoAll) commits as one iteration, and
/// unrecoverable faults end the run with a typed outcome instead of a
/// panic. With `fault = None` the profile and outputs are bit-identical
/// to [`run_dlrm`].
///
/// Every pipeline stage restages its inputs from host data or from
/// buffers written earlier in the same attempt, so iteration checkpoints
/// are empty and a re-run replays the whole pipeline.
///
/// # Errors
///
/// Propagates collective validation errors (never typed fault errors —
/// those are consumed by the supervisor).
#[allow(clippy::needless_range_loop)] // src/dst PE ids drive the routing math
pub fn run_dlrm_resilient(
    cfg: &DlrmRunConfig,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
) -> pidcomm::Result<ResilientRun> {
    run_dlrm_resilient_in(cfg, fault, policy, &mut SystemArena::new())
}

/// As [`run_dlrm_resilient`], sourcing allocations from `arena`.
///
/// # Errors
///
/// As [`run_dlrm_resilient`].
#[allow(clippy::needless_range_loop)] // src/dst PE ids drive the routing math
pub fn run_dlrm_resilient_in(
    cfg: &DlrmRunConfig,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
    arena: &mut SystemArena,
) -> pidcomm::Result<ResilientRun> {
    let w = &cfg.workload;
    let p = cfg.pes;
    let d = w.embedding_dim;
    let t = w.num_tables;
    let [tx, ty, tz] = split(p, t, d);
    assert_eq!(tx * ty * tz, p, "split must cover all PEs");
    assert_eq!(d % tx, 0);
    assert_eq!(w.rows_per_table % ty, 0);
    assert_eq!(t % tz, 0);
    let comps = d / tx;
    let tables_per_z = t / tz;
    let rows_per_y = w.rows_per_table / ty;
    let bs = w.batch_size;
    assert_eq!(bs % p, 0, "batch must divide across PEs");

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    if let Some(fp) = &fault {
        sys.attach_fault_plan(fp.clone());
        sys.set_verify_writes(true);
    }
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![tx, ty, tz])?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mut profile = AppProfile::new("DLRM", format!("d{d}"));
    let mut sup = Supervisor::new(p, policy);

    let batch = generate_batch(w);
    let coords = |pe: usize| {
        let x = pe % tx;
        let y = (pe / tx) % ty;
        let z = pe / (tx * ty);
        (x, y, z)
    };

    // Host staging, all computed up front so every attempt restages the
    // identical bytes.
    let mask_all = DimMask::all(comm.manager().shape());
    let shard = bs / p;
    let shard_bytes = (shard * t * 8).next_multiple_of(8);
    let mut batch_host = arena.bytes(p * shard_bytes);
    par_chunks(&mut batch_host, shard_bytes, cfg.threads, |pe, chunk| {
        for si in 0..shard {
            let s = pe * shard + si;
            for (ti, &row) in batch.indices[s].iter().enumerate() {
                let v = pack(s, ti, row);
                let off = (si * t + ti) * 8;
                chunk[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
    });
    let batch_host_in = [batch_host];

    let mut per_dest = arena.index_lists(p * p);
    par_chunks(&mut per_dest, p, cfg.threads, |src, dests| {
        for si in 0..shard {
            let s = src * shard + si;
            for (ti, &r0) in batch.indices[s].iter().enumerate() {
                for k in 0..POOL_K {
                    let row = ((r0 as usize + k * 97) % w.rows_per_table) as u32;
                    let dz = ti / tables_per_z;
                    let dy = row as usize / rows_per_y;
                    for dx in 0..tx {
                        let dst = dx + tx * (dy + ty * dz);
                        dests[dst].push(pack(s, ti, row));
                    }
                }
            }
        }
    });
    let max_entries = per_dest.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let chunk_entries = max_entries.next_multiple_of(2).max(2);
    let idx_b = p * chunk_entries * 8;
    let idx_src = shard_bytes.next_multiple_of(64);
    let idx_dst = idx_src + idx_b.next_multiple_of(64);

    let partial_entries = bs * tables_per_z * comps;
    let partial_bytes = (partial_entries * 4).next_multiple_of(8 * ty);
    let pool_src = idx_dst + idx_b.next_multiple_of(64);
    let pool_dst = pool_src + partial_bytes.next_multiple_of(64);
    let rs_chunk_bytes = partial_bytes / ty;
    let samples_per_y = bs / ty;
    let n2 = tx * tz;
    let samples_per_dest = samples_per_y / n2;
    assert!(
        samples_per_dest >= 1,
        "batch too small for the 101 AlltoAll"
    );
    let aa2_chunk = samples_per_dest * tables_per_z * comps * 4;
    let aa2_b = (n2 * aa2_chunk).next_multiple_of(8 * n2);
    let aa2_src = pool_dst + rs_chunk_bytes.next_multiple_of(64);
    let aa2_dst = aa2_src + aa2_b.next_multiple_of(64);
    let aa2_payload = n2 * aa2_chunk;
    let score_bytes = (samples_per_dest * 8).next_multiple_of(8);
    let score_off = aa2_dst + aa2_b.next_multiple_of(64);

    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask_all,
        &BufferSpec::new(0, 0, shard_bytes).with_dtype(DType::U64),
        ReduceKind::Sum,
    )?;
    let idx_aa_plan = comm.plan_cached(
        &mut plans,
        Primitive::AlltoAll,
        &mask_all,
        &BufferSpec::new(idx_src, idx_dst, idx_b).with_dtype(DType::U64),
        ReduceKind::Sum,
    )?;
    let mask_y: DimMask = "010".parse()?;
    let rs_plan = comm.plan_cached(
        &mut plans,
        Primitive::ReduceScatter,
        &mask_y,
        &BufferSpec::new(pool_src, pool_dst, partial_bytes).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let mask_xz: DimMask = "101".parse()?;
    let aa2_plan = comm.plan_cached(
        &mut plans,
        Primitive::AlltoAll,
        &mask_xz,
        &BufferSpec::new(aa2_src, aa2_dst, aa2_b).with_dtype(DType::I32),
        ReduceKind::Sum,
    )?;
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask_all,
        &BufferSpec::new(score_off, 0, score_bytes).with_dtype(DType::I64),
        ReduceKind::Sum,
    )?;
    // The pipeline core runs as one fused chain under the supervisor:
    // index AlltoAll → ReduceScatter → relocation AlltoAll, with the
    // pooled lookup and the rank-major repack as inter-step hooks. A
    // mid-chain fault restores the chain's merged region image (which
    // covers the encoded index buffer, so the hooks replay
    // deterministically) and re-runs the whole pipeline.
    let fused_pipeline = comm.fuse(
        vec![idx_aa_plan.clone(), rs_plan.clone(), aa2_plan.clone()],
        &[],
    )?;

    let (expected, cpu_lookup_ns) = cpu_reference(w, &batch);
    let mut mismatched = (bs * t * d) as u64;
    'run: {
        // Setup: the batch scatter restages from the host buffer.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            Ok(at
                .collective(&comm, sys, &scatter_plan, Some(&batch_host_in))?
                .report)
        })? {
            Iteration::Done(report) => profile.record(&report),
            Iteration::Abort(_) => break 'run,
        }

        // The embedding pipeline as one iteration: every stage restages
        // its input from host data or same-attempt buffers, so the
        // checkpoint is empty and a re-run replays the whole pipeline.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            par_pes_with(
                sys.pes_mut(),
                cfg.threads,
                Vec::new,
                |buf: &mut Vec<u8>, src, pe| {
                    // simlint: hot(begin, dlrm index encode)
                    buf.clear();
                    buf.resize(idx_b, 0xFF); // PAD everywhere
                    for (dst, entries) in per_dest[src * p..(src + 1) * p].iter().enumerate() {
                        let off = dst * chunk_entries * 8;
                        kernels::encode_u64(entries, &mut buf[off..off + entries.len() * 8]);
                    }
                    pe.write(idx_src, buf);
                    // simlint: hot(end)
                },
            );
            let mut max_kernel = 0.0f64;
            let exec = at.fused(&comm, sys, &fused_pipeline, None, |step, sys| {
                match step {
                    // After the index AlltoAll: sum-pool owned rows.
                    0 => {
                        let kernels = par_pes_with(
                            sys.pes_mut(),
                            cfg.threads,
                            || (vec![0i32; partial_entries], RowCache::new(w)),
                            |(partial, rows), pid, pe| {
                                // simlint: hot(begin, dlrm pooled lookup)
                                let (x, y, z) = coords(pid);
                                let _ = y;
                                partial.fill(0);
                                let mut lookups = 0u64;
                                {
                                    let received = pe.read(idx_dst, idx_b);
                                    for e in received.chunks_exact(8) {
                                        let v = u64::from_le_bytes(e.try_into().unwrap());
                                        if v == PAD {
                                            continue;
                                        }
                                        let (s, ti, row) = unpack(v);
                                        // Degraded transport can deliver
                                        // corrupted entries; skip anything
                                        // out of range instead of indexing
                                        // with garbage (clean runs never
                                        // hit this — every routed entry is
                                        // valid).
                                        if s >= bs
                                            || ti >= t
                                            || row as usize >= w.rows_per_table
                                            || ti / tables_per_z != z
                                        {
                                            continue;
                                        }
                                        let local_t = ti % tables_per_z;
                                        lookups += 1;
                                        let base = (s * tables_per_z + local_t) * comps;
                                        let vals = rows.row(ti, row);
                                        kernels::add_wrap(
                                            DType::I32,
                                            &mut partial[base..base + comps],
                                            &vals[x * comps..(x + 1) * comps],
                                        );
                                    }
                                }
                                pe.write_i32s(pool_src, partial);
                                // simlint: allow(pe-choke-point, reason = "zero-fills freshly staged PE-local scratch pad, not transport; the payload above goes through the typed-view encoder")
                                pe.slice_mut(
                                    pool_src + partial_entries * 4,
                                    partial_bytes - partial_entries * 4,
                                )
                                .fill(0);
                                pe_kernel_ns(
                                    lookups * (comps as u64 * 4 + 8),
                                    6 * lookups * comps as u64,
                                )
                                // simlint: hot(end)
                            },
                        );
                        max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                        sys.run_kernel(max_kernel);
                    }
                    // After the ReduceScatter: rank-major repack.
                    _ => {
                        par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                            // simlint: hot(begin, dlrm rank-major repack)
                            pe.copy_within_region(pool_dst, aa2_src, aa2_payload);
                            // simlint: allow(pe-choke-point, reason = "zero-fills the PE-local alignment pad after an in-PE copy, not transport")
                            pe.slice_mut(aa2_src + aa2_payload, aa2_b - aa2_payload)
                                .fill(0);
                            // simlint: hot(end)
                        });
                    }
                }
                Ok(())
            })?;
            let mut reports = exec.reports.into_iter();
            let aa1_report = reports.next().expect("fused pipeline: index AA report");
            let rs_report = reports.next().expect("fused pipeline: RS report");
            let aa2_report = reports.next().expect("fused pipeline: AA2 report");
            Ok((aa1_report, max_kernel, rs_report, aa2_report))
        })? {
            Iteration::Done((aa1_report, max_kernel, rs_report, aa2_report)) => {
                profile.record(&aa1_report);
                profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);
                profile.record(&rs_report);
                profile.record(&aa2_report);
            }
            Iteration::Abort(_) => break 'run,
        }

        // Assembly + divergence count (read-only, no writes to supervise).
        let per_pe_mm = par_pes_with(
            sys.pes_mut(),
            cfg.threads,
            || (vec![0i32; t * d], vec![0i32; tables_per_z * comps]),
            |(vec, run), pid, pe| {
                // simlint: hot(begin, dlrm vector assembly)
                let (x, y, z) = coords(pid);
                let my_rank = x + tx * z;
                let received = pe.read(aa2_dst, aa2_b);
                let mut mm = 0u64;
                for sd in 0..samples_per_dest {
                    let s = y * samples_per_y + my_rank * samples_per_dest + sd;
                    vec.fill(0);
                    for src_rank in 0..n2 {
                        let (sx, sz) = (src_rank % tx, src_rank / tx);
                        let base = src_rank * aa2_chunk + sd * tables_per_z * comps * 4;
                        kernels::decode_i32(&received[base..base + tables_per_z * comps * 4], run);
                        for lt in 0..tables_per_z {
                            let at = (sz * tables_per_z + lt) * d + sx * comps;
                            vec[at..at + comps].copy_from_slice(&run[lt * comps..(lt + 1) * comps]);
                        }
                    }
                    mm += vec.iter().zip(&expected[s]).filter(|(a, b)| a != b).count() as u64;
                }
                mm
                // simlint: hot(end)
            },
        );
        mismatched = per_pe_mm.into_iter().sum();

        // Top MLP + score gather: scores restage each attempt.
        let width = (t * d) as u64;
        let mlp_ops = samples_per_dest as u64 * 8 * 12 * width * width;
        let mlp_bytes = samples_per_dest as u64 * 8 * width * 4;
        let kernel = pe_kernel_ns(mlp_bytes, mlp_ops);
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            sys.run_kernel(kernel);
            par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                // simlint: hot(begin, dlrm score staging)
                // simlint: allow(pe-choke-point, reason = "stages PE-local placeholder scores before the Gather, not transport; the Gather itself moves them through Pe::write")
                pe.slice_mut(score_off, score_bytes).fill(1);
                // simlint: hot(end)
            });
            Ok(at.collective(&comm, sys, &gather_plan, None)?.report)
        })? {
            Iteration::Done(report) => {
                profile.record_kernel(kernel + sys.model().kernel_launch_ns);
                profile.record(&report);
            }
            Iteration::Abort(_) => {}
        }
    }
    let [batch_host] = batch_host_in;
    arena.recycle_bytes(batch_host);
    arena.recycle_index_lists(per_dest);

    let validated = mismatched == 0;
    let width = (t * d) as u64;
    let cpu = CpuModel::xeon_5215();
    let cpu_mlp_ns = cpu.time_ns(bs as u64 * 8 * 2 * width * width, bs as u64 * 8 * width * 4);
    let modeled_ns = sys.meter().total();
    sys.detach_fault_plan();
    sys.set_verify_writes(false);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(ResilientRun {
        run: AppRun {
            profile,
            cpu_ns: cpu_lookup_ns + cpu_mlp_ns,
            validated,
        },
        outcome: sup.outcome(),
        retries: sup.retries(),
        quarantined: sup.ledger().quarantined(),
        mismatched,
        modeled_ns,
        backoff_epochs: sup.backoff_epochs(),
        checkpoint_restores: sup.checkpoint_restores(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> DlrmConfig {
        DlrmConfig {
            num_tables: 8,
            rows_per_table: 1 << 10,
            embedding_dim: 16,
            batch_size: 1024,
            seed: 7,
        }
    }

    #[test]
    fn dlrm_validates_on_64_pes() {
        let cfg = DlrmRunConfig {
            threads: 0,
            workload: workload(),
            pes: 64,
            opt: OptLevel::Full,
        };
        let run = run_dlrm(&cfg).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AlltoAll) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::ReduceScatter) > 0.0);
    }

    #[test]
    fn dlrm_baseline_matches_and_is_slower() {
        let full = run_dlrm(&DlrmRunConfig {
            threads: 0,
            workload: workload(),
            pes: 64,
            opt: OptLevel::Full,
        })
        .unwrap();
        let base = run_dlrm(&DlrmRunConfig {
            threads: 0,
            workload: workload(),
            pes: 64,
            opt: OptLevel::Baseline,
        })
        .unwrap();
        assert!(base.validated);
        assert!(base.profile.comm_ns() > full.profile.comm_ns());
    }

    #[test]
    fn split_shapes_are_consistent() {
        for pes in [64, 128, 256, 512, 1024] {
            let [x, y, z] = split(pes, 8, 16);
            assert_eq!(x * y * z, pes, "pes {pes}");
            assert!(x <= 16 && z <= 8);
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let v = pack(12345, 7, 0x00AB_CDEF);
        assert_eq!(unpack(v), (12345, 7, 0x00AB_CDEF));
    }
}

//! Domain transfer and register-level data modulation.
//!
//! Because a 64-bit word written by the host is split 8-bit-wise across the
//! 8 chips of a rank, data living in the PIM domain is *byte-transposed*
//! relative to the host domain (§II-B of the paper):
//!
//! * **raw (PIM-domain) order** of a 64-byte burst read from an entangled
//!   group at MRAM offset `o`: `raw[beat * 8 + lane] = mram[lane][o + beat]`
//!   — beat-major, one byte per lane per beat.
//! * **host-domain order**: `host[lane * 8 + beat]` — word-major, the 8
//!   bytes of lane `lane` form one contiguous 64-bit word.
//!
//! **Domain transfer** converts between the two orders; it is exactly an
//! 8×8 byte transpose of the block ([`transpose8x8`]) and is an involution.
//!
//! The *cross-domain modulation* technique of the paper (§V-A3) rests on the
//! algebraic identity that a word-level permutation in the host domain
//! equals a per-beat byte-lane permutation in the raw domain:
//!
//! ```text
//! permute_lanes_raw(π) == DT ∘ permute_words_host(π) ∘ DT
//! ```
//!
//! so primitives that only redistribute data (AlltoAll, AllGather) can skip
//! both domain transfers and perform a single byte-level shuffle instead.
//! This identity is verified by the `fusion_identity` test below.

use crate::geometry::{BURST_BYTES, LANES, LANE_BYTES};

/// A lane permutation: `perm[dst] = src` means destination slot `dst`
/// receives the contents of source slot `src`. Applied to either the 8
/// words of a host-domain block or the 8 byte-lanes of a raw-domain block.
pub type LanePerm = [usize; LANES];

/// The identity permutation.
pub const IDENTITY_PERM: LanePerm = [0, 1, 2, 3, 4, 5, 6, 7];

/// Performs a domain transfer on one 64-byte block in place: transposes the
/// 8×8 byte matrix, converting raw (PIM-domain) order to host-domain order
/// or back. Involution: applying it twice restores the input.
///
/// On the reference system this is what the UPMEM driver performs with
/// AVX-512 shuffles on every host↔PIM transfer.
///
/// # Panics
///
/// Panics if `block.len() != 64`.
///
/// # Examples
///
/// ```
/// use pim_sim::domain::transpose8x8;
///
/// let mut block: Vec<u8> = (0..64).collect();
/// let orig = block.clone();
/// transpose8x8(&mut block);
/// assert_eq!(block[1], orig[8]); // (beat 0, lane 1) <-> (lane 0, beat 1)
/// transpose8x8(&mut block);
/// assert_eq!(block, orig);
/// ```
pub fn transpose8x8(block: &mut [u8]) {
    assert_eq!(
        block.len(),
        BURST_BYTES,
        "domain transfer needs a 64-byte block"
    );
    // Word-wise 8×8 byte transpose: three rounds of masked delta-swaps on
    // the 8 rows held in u64 registers (the scalar analogue of the AVX-512
    // shuffle the UPMEM driver uses). Row i, byte j ↔ bits [8j, 8j+8) of
    // word i in little-endian order.
    let mut w = [0u64; LANES];
    for (wi, row) in w.iter_mut().zip(block.chunks_exact(LANES)) {
        *wi = u64::from_le_bytes(row.try_into().unwrap());
    }
    // Swap 4×4 byte blocks between row pairs (i, i+4).
    for i in 0..4 {
        let t = ((w[i] >> 32) ^ w[i + 4]) & 0x0000_0000_FFFF_FFFF;
        w[i] ^= t << 32;
        w[i + 4] ^= t;
    }
    // Swap 2×2 byte blocks between row pairs (i, i+2) within each half.
    for i in [0, 1, 4, 5] {
        let t = ((w[i] >> 16) ^ w[i + 2]) & 0x0000_FFFF_0000_FFFF;
        w[i] ^= t << 16;
        w[i + 2] ^= t;
    }
    // Swap single bytes between adjacent rows.
    for i in [0, 2, 4, 6] {
        let t = ((w[i] >> 8) ^ w[i + 1]) & 0x00FF_00FF_00FF_00FF;
        w[i] ^= t << 8;
        w[i + 1] ^= t;
    }
    for (wi, row) in w.iter().zip(block.chunks_exact_mut(LANES)) {
        row.copy_from_slice(&wi.to_le_bytes());
    }
}

/// Applies a word-level permutation to a host-domain block: the 8-byte word
/// at destination slot `d` becomes the word previously at slot `perm[d]`.
///
/// This is the in-register *data modulation* step of the paper (word-level
/// shifts done with SIMD instructions, §V-A2).
///
/// # Panics
///
/// Panics if `block.len() != 64` or `perm` is not a permutation of `0..8`.
pub fn permute_words_host(block: &mut [u8], perm: &LanePerm) {
    assert_eq!(
        block.len(),
        BURST_BYTES,
        "word permutation needs a 64-byte block"
    );
    debug_assert!(is_permutation(perm), "not a permutation: {perm:?}");
    let mut out = [0u8; BURST_BYTES];
    for dst in 0..LANES {
        let src = perm[dst];
        out[dst * LANE_BYTES..(dst + 1) * LANE_BYTES]
            .copy_from_slice(&block[src * LANE_BYTES..(src + 1) * LANE_BYTES]);
    }
    block.copy_from_slice(&out);
}

/// Applies a byte-lane permutation to a raw (PIM-domain) block: within every
/// beat, the byte at lane `d` becomes the byte previously at lane `perm[d]`.
///
/// This is the fused byte-level shift of *cross-domain modulation* (§V-A3):
/// one AVX-512 byte shuffle replacing DT + word shift + DT.
///
/// # Panics
///
/// Panics if `block.len() != 64` or `perm` is not a permutation of `0..8`.
pub fn permute_lanes_raw(block: &mut [u8], perm: &LanePerm) {
    assert_eq!(
        block.len(),
        BURST_BYTES,
        "lane permutation needs a 64-byte block"
    );
    debug_assert!(is_permutation(perm), "not a permutation: {perm:?}");
    let mut beat = [0u8; LANES];
    for b in 0..LANES {
        let row = &mut block[b * LANES..(b + 1) * LANES];
        for dst in 0..LANES {
            beat[dst] = row[perm[dst]];
        }
        row.copy_from_slice(&beat);
    }
}

/// Builds the permutation that rotates the listed lanes by `r` positions
/// (lane `lanes[i]` moves to lane `lanes[(i + r) % lanes.len()]`), leaving
/// all other lanes in place.
///
/// Communication groups smaller than an entangled group occupy a subset of
/// lanes (possibly strided, e.g. the `y`-slice of a `[4, 2, …]` hypercube);
/// sibling instances packed into the remaining lanes use their own rotation,
/// and the per-instance permutations compose into a single 8-lane shuffle —
/// this is how multiple instances share one burst (Fig. 9b).
///
/// # Panics
///
/// Panics if `lanes` is empty, contains duplicates or out-of-range lanes.
pub fn rotation_within(lanes: &[usize], r: usize) -> LanePerm {
    assert!(!lanes.is_empty(), "rotation needs at least one lane");
    let mut perm = IDENTITY_PERM;
    let l = lanes.len();
    let mut seen = [false; LANES];
    for &lane in lanes {
        assert!(lane < LANES, "lane {lane} out of range");
        assert!(!seen[lane], "duplicate lane {lane}");
        seen[lane] = true;
    }
    for (i, &src) in lanes.iter().enumerate() {
        let dst = lanes[(i + r) % l];
        perm[dst] = src;
    }
    perm
}

/// Composes two permutations: applying the result equals applying `first`
/// and then `second`.
pub fn compose(first: &LanePerm, second: &LanePerm) -> LanePerm {
    let mut out = IDENTITY_PERM;
    for dst in 0..LANES {
        out[dst] = first[second[dst]];
    }
    out
}

/// Inverts a permutation.
///
/// # Panics
///
/// Panics (in debug builds) if `perm` is not a permutation.
pub fn invert(perm: &LanePerm) -> LanePerm {
    debug_assert!(is_permutation(perm), "not a permutation: {perm:?}");
    let mut out = IDENTITY_PERM;
    for (dst, &src) in perm.iter().enumerate() {
        out[src] = dst;
    }
    out
}

/// Returns whether `perm` is a permutation of `0..8`.
pub fn is_permutation(perm: &LanePerm) -> bool {
    let mut seen = [false; LANES];
    for &p in perm {
        if p >= LANES || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Vec<u8> {
        (0..BURST_BYTES as u8)
            .map(|b| b.wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    #[test]
    fn transpose_is_involution() {
        let mut block = sample_block();
        let orig = block.clone();
        transpose8x8(&mut block);
        assert_ne!(block, orig);
        transpose8x8(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn transpose_maps_beats_to_words() {
        // raw[beat*8 + lane] -> host[lane*8 + beat]
        let mut block = vec![0u8; BURST_BYTES];
        for beat in 0..LANES {
            for lane in 0..LANES {
                block[beat * LANES + lane] = (beat * LANES + lane) as u8;
            }
        }
        transpose8x8(&mut block);
        for lane in 0..LANES {
            for beat in 0..LANES {
                assert_eq!(block[lane * LANES + beat], (beat * LANES + lane) as u8);
            }
        }
    }

    #[test]
    fn word_permutation_moves_whole_words() {
        let mut block = sample_block();
        let orig = block.clone();
        let perm = rotation_within(&IDENTITY_PERM, 1); // rotate all words by 1
        permute_words_host(&mut block, &perm);
        for dst in 0..LANES {
            let src = perm[dst];
            assert_eq!(
                &block[dst * 8..dst * 8 + 8],
                &orig[src * 8..src * 8 + 8],
                "word {dst}"
            );
        }
    }

    #[test]
    fn fusion_identity() {
        // permute_lanes_raw(p) == DT ∘ permute_words_host(p) ∘ DT
        // — the algebraic core of cross-domain modulation.
        for r in 0..LANES {
            for lanes in [
                vec![0, 1, 2, 3, 4, 5, 6, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
                vec![0, 2, 4, 6],
                vec![1, 5],
                vec![3],
            ] {
                let perm = rotation_within(&lanes, r % lanes.len());

                let mut via_raw = sample_block();
                permute_lanes_raw(&mut via_raw, &perm);

                let mut via_host = sample_block();
                transpose8x8(&mut via_host);
                permute_words_host(&mut via_host, &perm);
                transpose8x8(&mut via_host);

                assert_eq!(via_raw, via_host, "lanes {lanes:?} rot {r}");
            }
        }
    }

    #[test]
    fn rotation_within_strided_lanes() {
        // Lanes {1, 5} rotated by 1 swap with each other; others untouched.
        let perm = rotation_within(&[1, 5], 1);
        assert_eq!(perm, [0, 5, 2, 3, 4, 1, 6, 7]);
    }

    #[test]
    fn rotation_zero_is_identity() {
        assert_eq!(rotation_within(&[0, 3, 6], 0), IDENTITY_PERM);
    }

    #[test]
    fn compose_and_invert() {
        let a = rotation_within(&[0, 1, 2, 3, 4, 5, 6, 7], 3);
        let b = rotation_within(&[0, 2, 4, 6], 1);
        let ab = compose(&a, &b);

        let mut x = sample_block();
        permute_words_host(&mut x, &a);
        permute_words_host(&mut x, &b);
        let mut y = sample_block();
        permute_words_host(&mut y, &ab);
        assert_eq!(x, y, "compose order");

        let inv = invert(&ab);
        permute_words_host(&mut y, &inv);
        assert_eq!(y, sample_block(), "invert undoes permutation");
    }

    #[test]
    fn rotations_compose_to_identity() {
        let lanes = [0, 2, 4, 6];
        let fwd = rotation_within(&lanes, 1);
        let back = rotation_within(&lanes, 3);
        assert_eq!(compose(&fwd, &back), IDENTITY_PERM);
    }

    #[test]
    #[should_panic(expected = "duplicate lane")]
    fn duplicate_lane_rejected() {
        let _ = rotation_within(&[1, 1], 0);
    }

    #[test]
    fn is_permutation_detects_bad_input() {
        assert!(is_permutation(&IDENTITY_PERM));
        assert!(!is_permutation(&[0, 0, 2, 3, 4, 5, 6, 7]));
    }
}

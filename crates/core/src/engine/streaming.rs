//! The optimized PID-Comm execution paths (§V of the paper).
//!
//! Every primitive follows the same three-phase structure:
//!
//! 1. **PE-assisted reordering** (phase A): each PE locally permutes its
//!    chunks so that, afterwards, every burst the host reads contains eight
//!    words with *distinct destinations* — one per lane.
//! 2. **Streaming host modulation** (phase B): the host reads bursts,
//!    applies a single register-level permutation (a byte-lane shuffle when
//!    cross-domain modulation applies, otherwise DT ∘ word-shift ∘ DT) and
//!    optionally a vertical SIMD reduction, then writes the register
//!    straight back to the destination entangled group. No host-memory
//!    staging.
//! 3. **PE-assisted reordering** (phase C): destination PEs fix up the
//!    local order of the received chunks.
//!
//! The index arithmetic for arbitrary groups: a communication group of size
//! `N` decomposes as `N = L × M` (lane ranks × entangled groups, see
//! [`EgCluster`]). A source PE with lane rank `i` pre-rotates the chunks
//! inside each destination-EG part by `i`, so the burst at part `m_d`,
//! slot `k` carries, in lane rank `i`, the chunk destined to lane rank
//! `(k + i) mod L` of EG `m_d`. Rotating the register by `k` aligns every
//! word with its destination lane, and the whole register is written to EG
//! `m_d` in one burst. Packed sibling instances (groups sharing the
//! entangled groups) rotate in lock-step inside the same register.
//!
//! # Execution engine
//!
//! Clusters touch disjoint entangled groups, so each cluster runs as an
//! independent task: it receives an exclusive [`EgView`] over its PEs and a
//! private [`CostSheet`], and the tasks fan out over scoped threads
//! ([`super::parallel`]). Sheets are merged in cluster order afterwards;
//! since every counter is an exact integer, the merged totals — and hence
//! the modeled times — are byte-identical to serial execution no matter how
//! the clusters were scheduled. Inside a task, the `(m_s, m_d, k)` loops
//! move whole chunks per call through the batched burst-run transport
//! instead of one 64-byte burst at a time.
//!
//! Every function here executes a [`CollectivePlan`]: the phase-A/C
//! permutation tables ([`PermCache`]), the per-cluster rotation schedules
//! and the resolved thread fan-out were all derived at *plan* time, so a
//! plan held across iterations (or pooled in a `PlanCache`) pays none of
//! that per call — the seed implementation recomputed the tables once per
//! PE per entangled group, the pre-plan engine once per call.
//!
//! # Fault model
//!
//! The streaming loops need no fault hooks of their own: every byte they
//! land — lane-permuted row writes, batched burst runs, reduction results
//! — funnels through [`pim_sim::pe::Pe::write`] on the destination PE (an
//! [`EgView`] borrows the system's hooked PEs), which is where
//! [`pim_sim::FaultPlan`] injection and read-after-write verification
//! live. Phase-A/C reordering ([`pim_sim::pe::Pe::permute_blocks`]) and
//! the typed in-place views are PE-local *compute*, deliberately outside
//! the transport fault scope (see `pim_sim::pe`). With no fault plan
//! attached and verification off, none of these paths change behavior by
//! a single byte or modeled nanosecond.

#![allow(clippy::needless_range_loop)] // loop indices drive offset math

use std::collections::HashMap;

use pim_sim::domain::{LanePerm, IDENTITY_PERM};
use pim_sim::dtype::{fill_identity, DType, ReduceKind};
use pim_sim::geometry::{BURST_BYTES, LANES};
use pim_sim::kernels;
use pim_sim::system::EgView;
use pim_sim::PimSystem;

use crate::config::{OptLevel, Primitive, Technique};
use crate::engine::parallel;
use crate::engine::plan::{ClusterSched, CollectivePlan};
use crate::engine::sheet::CostSheet;
use crate::hypercube::EgCluster;

/// The per-PE pre-permutation of phase A: destination slot `m_d * l + k`
/// receives the chunk originally at `((k + i_src) % l) + l * m_d`.
fn pre_perm(i_src: usize, l: usize, m: usize) -> Vec<usize> {
    (0..l * m)
        .map(|p| {
            let (m_d, k) = (p / l, p % l);
            ((k + i_src) % l) + l * m_d
        })
        .collect()
}

/// The per-PE post-permutation of phase C: final slot `s = m_s * l + i_s`
/// receives the chunk that arrived at slot `m_s * l + ((i_dst - i_s) % l)`.
fn post_perm(i_dst: usize, l: usize, m: usize) -> Vec<usize> {
    (0..l * m)
        .map(|s| {
            let (m_s, i_s) = (s / l, s % l);
            m_s * l + ((i_dst + l - i_s) % l)
        })
        .collect()
}

/// Memoized phase-A/C permutation tables.
///
/// `pre_perm`/`post_perm` depend only on `(lane rank, L, M)`, so one table
/// set per distinct cluster shape serves every PE of every EG — the seed
/// implementation recomputed them once per PE per entangled group.
///
/// Phase C is additionally stored in *placement* form: `place[i_dst][k]`
/// is the within-part slot where the register arriving at within-part slot
/// `k` finally belongs (the inverse of [`post_perm`] per part). The
/// streaming writes use it to land every register directly in its final
/// slot, fusing the phase-C PE kernel into phase B.
// Keyed-lookup only (simlint: map-iteration): both tables are read through
// `pre()`/`place()` index lookups, never iterated, so hash order can't
// reach schedules or modeled time. Audited for ISSUE 8; if iteration ever
// becomes necessary, sort the keys first or switch to BTreeMap.
pub(crate) struct PermCache {
    /// `(l, m)` → pre-permutations indexed by source lane rank.
    pre: HashMap<(usize, usize), Vec<Vec<usize>>>,
    /// `(l, m)` → within-part final slots indexed by destination lane
    /// rank, then arrival slot.
    place: HashMap<(usize, usize), Vec<Vec<usize>>>,
}

impl PermCache {
    /// Builds the tables for every distinct `(L, M)` among `clusters`.
    pub(crate) fn for_clusters(clusters: &[EgCluster]) -> Self {
        let mut pre = HashMap::new();
        let mut place = HashMap::new();
        for c in clusters {
            let key = (c.lane_count, c.eg_count());
            let (l, m) = key;
            pre.entry(key)
                .or_insert_with(|| (0..l).map(|i| pre_perm(i, l, m)).collect());
            place.entry(key).or_insert_with(|| {
                (0..l)
                    .map(|i_dst| {
                        // Invert post_perm within one part: the table maps
                        // final slot -> arrival slot, identically per part.
                        let post = post_perm(i_dst, l, m);
                        let mut inv = vec![0usize; l];
                        for (s, &arrival) in post.iter().take(l).enumerate() {
                            inv[arrival % l] = s % l;
                        }
                        inv
                    })
                    .collect()
            });
        }
        Self { pre, place }
    }

    /// Pre-permutations for a cluster shape, indexed by lane rank.
    pub(crate) fn pre(&self, l: usize, m: usize) -> &[Vec<usize>] {
        &self.pre[&(l, m)]
    }

    /// Within-part final-slot placements for a cluster shape, indexed by
    /// destination lane rank, then arrival slot.
    pub(crate) fn place(&self, l: usize, m: usize) -> &[Vec<usize>] {
        &self.place[&(l, m)]
    }
}

/// Per-lane destination offsets for a register arriving at within-part
/// slot `k` of part `base`: lane `d` lands at its *final* slot (the fused
/// phase-C placement), `chunk` bytes apart.
fn final_offsets(
    place: &[Vec<usize>],
    rank: &[usize; LANES],
    dst: usize,
    base: usize,
    k: usize,
    chunk: usize,
) -> [usize; LANES] {
    core::array::from_fn(|d| dst + (base + place[rank[d]][k]) * chunk)
}

/// The lane rank of every physical lane of a cluster (`rank[lane]` is the
/// lane's index within its packed group).
pub(crate) fn lane_ranks(c: &EgCluster) -> [usize; LANES] {
    let mut rank = [0usize; LANES];
    for g in &c.groups {
        for (i, &lane) in g.lanes.iter().enumerate() {
            rank[lane] = i;
        }
    }
    rank
}

/// One cluster's execution context: exclusive PE access, private cost
/// sheet, the plan's precomputed per-cluster schedule, and a slot for
/// host-side outputs of rooted primitives.
struct ClusterTask<'c, 'v> {
    view: EgView<'v>,
    sheet: CostSheet,
    cluster: &'c EgCluster,
    sched: &'c ClusterSched,
    /// Index of the cluster in plan order (keys per-cluster prepared
    /// staging offsets).
    index: usize,
    /// `(group_id, buffer)` pairs produced by Gather/Reduce.
    out: Vec<(usize, Vec<u8>)>,
}

/// Splits `sys` into per-cluster views, runs `f` over all of the plan's
/// clusters on up to the plan's resolved thread count, merges the private
/// sheets in cluster order and returns the host outputs sorted by group
/// id.
fn run_clustered(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
    f: impl Fn(&mut ClusterTask) + Sync,
) -> Vec<(usize, Vec<u8>)> {
    // Plans of primitives whose execution never reads a schedule
    // (Scatter/Gather/Broadcast, and the baseline path) carry an *empty*
    // schedule vector; anything else must be parallel to the clusters —
    // a partial vector is a broken plan invariant, and direct indexing
    // turns it into an immediate panic instead of silent corruption.
    static NO_SCHED: ClusterSched = ClusterSched {
        rotations: Vec::new(),
        rank: [0; LANES],
    };
    let sched_of = |i: usize| {
        if plan.sched.is_empty() {
            &NO_SCHED
        } else {
            &plan.sched[i]
        }
    };
    let channels = sys.geometry().channels();
    // The per-cluster EG partition was cloned out of the clusters on every
    // call until ISSUE 10 hoisted it to plan time (`plan.parts`) — repeat
    // executes of a warm plan now allocate nothing before the fan-out.
    let views = sys.split_eg_views(&plan.parts);
    let mut tasks: Vec<ClusterTask> = views
        .into_iter()
        .zip(plan.clusters.iter().enumerate())
        .map(|(view, (i, cluster))| ClusterTask {
            view,
            sheet: CostSheet::new(channels),
            cluster,
            sched: sched_of(i),
            index: i,
            out: Vec::new(),
        })
        .collect();
    parallel::par_for_each(&mut tasks, plan.cluster_threads, f);

    let mut outs = Vec::new();
    for task in tasks {
        sheet.merge(&task.sheet);
        outs.extend(task.out);
    }
    outs.sort_by_key(|(gid, _)| *gid);
    outs
}

/// Runs phase A for one cluster: every PE rotates its `n` chunks of
/// `chunk` bytes at `offset` according to its lane rank.
fn pre_reorder_cluster(task: &mut ClusterTask, offset: usize, chunk: usize, cache: &PermCache) {
    let c = task.cluster;
    let (l, m) = (c.lane_count, c.eg_count());
    let tables = cache.pre(l, m);
    for g in &c.groups {
        for (i_src, &lane) in g.lanes.iter().enumerate() {
            for slot in 0..m {
                task.view
                    .pe_mut(slot, lane)
                    .permute_blocks(offset, chunk, l * m, &tables[i_src]);
            }
        }
    }
}

/// Charges `blocks` host-side modulations of a non-arithmetic primitive:
/// a single byte-lane shuffle per block when cross-domain modulation is
/// enabled, otherwise the DT ∘ word-shift ∘ DT sequence (staged through
/// host memory when in-register modulation is disabled).
///
/// The *functional* modulation happens in the host domain during the row
/// write ([`EgView::write_rows`] with the rotation as the lane
/// permutation) — byte-identical to shuffling each raw burst, by the
/// fusion identity of [`pim_sim::domain`] — so only the model's operation
/// counts are recorded here, exactly as the per-burst path charged them.
fn modulate_charges(sheet: &mut CostSheet, primitive: Primitive, opt: OptLevel, blocks: u64) {
    if opt.enables(Technique::CrossDomain, primitive) {
        sheet.shuffle_blocks += blocks;
    } else {
        sheet.dt_blocks += 2 * blocks;
        sheet.shuffle_blocks += blocks;
        if !opt.enables(Technique::InRegister, primitive) {
            // Spill + reload around the host-memory modulation pass.
            sheet.stream_bytes += 2 * BURST_BYTES as u64 * blocks;
        }
    }
}

/// Records every `CostSheet` charge one cluster of `plan` incurs on the
/// streaming path — the **single source of truth** for streaming costs.
///
/// The functional executors below call this once per cluster task and move
/// bytes with no in-loop accounting; the cost-only path
/// ([`charge`]) calls it for every cluster without touching PE memory.
/// Both therefore tally the *identical integer* counters: the formulas
/// here are the exact loop aggregations of the original per-`(m_s, m_d,
/// k)` charges (every counter is a `u64`, so summing per-iteration charges
/// in any grouping is exact), and the one `u64 → f64` conversion happens
/// later, in [`CostSheet::apply`]/[`CostSheet::apply_to`].
fn charge_cluster(sheet: &mut CostSheet, plan: &CollectivePlan, c: &EgCluster) {
    let p = plan.primitive;
    let (opt, dtype) = (plan.opt, plan.spec.dtype);
    let b = plan.spec.bytes_per_node;
    let (l, m) = (c.lane_count, c.eg_count());
    let n = l * m;
    match p {
        Primitive::AlltoAll => {
            // Triple loop (m_s, m_d, k): read burst + modulation + write
            // burst per iteration.
            let chunk = b / n;
            let words = (chunk / 8) as u64;
            let run = (chunk / 8 * BURST_BYTES) as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], (m * l) as u64 * run);
            }
            modulate_charges(sheet, p, opt, (m * m * l) as u64 * words);
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], (m * l) as u64 * run);
            }
        }
        Primitive::ReduceScatter => {
            // Per destination part: the shared reduction loop over all
            // (m_s, k) sources, then one reduced row write.
            let chunk = b / n;
            let words = (chunk / 8) as u64;
            let run = (chunk * LANES) as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], (m * l) as u64 * run);
            }
            align_reduce_charges(sheet, dtype, p, opt, (m * m * l) as u64 * words);
            if !dtype.is_byte_sized() {
                // Write-back domain transfer of the reduced registers.
                sheet.dt_blocks += m as u64 * words;
            }
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], run);
            }
        }
        Primitive::AllReduce => {
            // Reduction phase (as ReduceScatter's), then the fused
            // distribution fan-out: every reduced register is shuffled and
            // written to every (k, m_d) destination.
            let chunk = b / n;
            let words = (chunk / 8) as u64;
            let run = (chunk * LANES) as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], (m * l) as u64 * run);
            }
            align_reduce_charges(sheet, dtype, p, opt, (m * m * l) as u64 * words);
            if !dtype.is_byte_sized() {
                // One domain transfer per reduced register (per m_v).
                sheet.dt_blocks += m as u64 * words;
            }
            sheet.shuffle_blocks += (m * l * m) as u64 * words;
            if !opt.enables(Technique::InRegister, p) {
                sheet.stream_bytes += (m * l * m) as u64 * 2 * run;
            }
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], (m * l) as u64 * run);
            }
        }
        Primitive::AllGather => {
            // One read burst per source part, then a modulated write per
            // (k, m_d) destination.
            let chunk = b;
            let words = (chunk / 8) as u64;
            let run = (chunk / 8 * BURST_BYTES) as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], run);
            }
            modulate_charges(sheet, p, opt, (m * m * l) as u64 * words);
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], (m * l) as u64 * run);
            }
        }
        Primitive::Scatter => {
            let words = (b / 8) as u64;
            let run = words * BURST_BYTES as u64;
            sheet.stream_bytes += m as u64 * run;
            if !opt.enables(Technique::InRegister, p) {
                // Conventional path first rearranges the host buffer in
                // host memory before transferring.
                sheet.scatter_bytes += m as u64 * run;
            }
            sheet.dt_blocks += m as u64 * words;
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], run);
            }
        }
        Primitive::Gather => {
            let words = (b / 8) as u64;
            let run = words * BURST_BYTES as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], run);
            }
            sheet.dt_blocks += m as u64 * words;
            if !opt.enables(Technique::InRegister, p) {
                sheet.scatter_bytes += m as u64 * run;
            }
            sheet.stream_bytes += m as u64 * run;
        }
        Primitive::Reduce => {
            // The reduction loop per destination part, then one streaming
            // copy of the accumulator to the host.
            let chunk = b / n;
            let words = (chunk / 8) as u64;
            let run = (chunk * LANES) as u64;
            for m_s in 0..m {
                sheet.streamed(c.channels[m_s], (m * l) as u64 * run);
            }
            align_reduce_charges(sheet, dtype, p, opt, (m * m * l) as u64 * words);
            sheet.stream_bytes += m as u64 * run;
        }
        Primitive::Broadcast => {
            let words = (b / 8) as u64;
            let run = words * BURST_BYTES as u64;
            sheet.stream_bytes += run;
            sheet.dt_blocks += words;
            for m_d in 0..m {
                sheet.streamed(c.channels[m_d], run);
            }
        }
    }
}

/// Cost-only accounting for the streaming path: tallies onto `sheet`
/// exactly what the functional executor of `plan` would, cluster by
/// cluster, without touching PE memory. PE-reorder kernel charges live on
/// the system meter, not the sheet — the cost-only caller
/// ([`CollectivePlan::charge_cost_only`]) replays those separately.
pub(crate) fn charge(sheet: &mut CostSheet, plan: &CollectivePlan) {
    for c in &plan.clusters {
        charge_cluster(sheet, plan, c);
    }
    sheet.transfer_phases += 1;
}

/// AlltoAll (§V-A, Fig. 7d).
pub(crate) fn alltoall(sys: &mut PimSystem, sheet: &mut CostSheet, plan: &CollectivePlan) {
    let cache = &plan.cache;
    let (src, dst) = (plan.spec.src_offset, plan.spec.dst_offset);
    let bytes_per_node = plan.spec.bytes_per_node;
    sys.charge_pe_reorder(bytes_per_node as u64);

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let sigmas = &task.sched.rotations;

        charge_cluster(&mut task.sheet, plan, c);
        pre_reorder_cluster(task, src, chunk, cache);

        // Phase B with phase C fused into the write: the register read at
        // part m_d, slot k of EG m_s lands directly in its *final* slot on
        // EG m_d (per-lane placement), so no destination-side PE kernel
        // has to run afterwards. The model still charges the phase-C
        // reorder — the device would execute it — while the
        // simulator skips the byte shuffling it can prove redundant.
        let place = cache.place(l, m);
        let rank = task.sched.rank;
        for m_s in 0..m {
            for m_d in 0..m {
                for k in 0..l {
                    let off_s = src + (m_d * l + k) * chunk;
                    let offs = final_offsets(place, &rank, dst, m_s * l, k, chunk);
                    task.view
                        .copy_rows(m_s, off_s, m_d, &offs, chunk, &sigmas[k]);
                }
            }
        }
    });
    sheet.transfer_phases += 1;
    sys.charge_pe_reorder(bytes_per_node as u64);
}

/// Charges `blocks` align-and-reduce steps: for 8-bit element types the
/// whole step stays in the raw domain (the host can interpret single bytes
/// without domain transfer, §V-C); otherwise each block is
/// domain-transferred first. As with [`modulate_charges`], the functional
/// work runs row-wise in the host domain and only the counts are recorded
/// here.
fn align_reduce_charges(
    sheet: &mut CostSheet,
    dtype: DType,
    primitive: Primitive,
    opt: OptLevel,
    blocks: u64,
) {
    if !dtype.is_byte_sized() {
        sheet.dt_blocks += blocks;
    }
    sheet.shuffle_blocks += blocks;
    sheet.reduce_blocks += blocks;
    if !opt.enables(Technique::InRegister, primitive) {
        sheet.stream_bytes += 2 * BURST_BYTES as u64 * blocks;
    }
}

/// Accumulates every `(m_s, k)` source run of destination part `m_d` into
/// the per-lane rows of `acc` — the shared reduction loop of
/// ReduceScatter, AllReduce and Reduce. Lane row `d` accumulates source
/// row `sigma[d]` straight out of PE memory (no staging copy), the
/// host-domain form of aligning each burst with the rotation before the
/// vertical SIMD reduction. Purely functional: its costs are part of
/// [`charge_cluster`]'s per-primitive tallies.
#[allow(clippy::too_many_arguments)]
fn reduce_part(
    task: &mut ClusterTask,
    acc: &mut [u8],
    sigmas: &[LanePerm],
    m_d: usize,
    src: usize,
    chunk: usize,
    dtype: DType,
    op: ReduceKind,
) {
    let c = task.cluster;
    let (l, m) = (c.lane_count, c.eg_count());
    fill_identity(op, dtype, acc);
    for m_s in 0..m {
        for k in 0..l {
            task.view.reduce_rows(
                m_s,
                src + (m_d * l + k) * chunk,
                chunk,
                acc,
                &sigmas[k],
                op,
                dtype,
            );
        }
    }
}

/// ReduceScatter (§V-B2, Fig. 8b).
pub(crate) fn reduce_scatter(sys: &mut PimSystem, sheet: &mut CostSheet, plan: &CollectivePlan) {
    let cache = &plan.cache;
    let (src, dst) = (plan.spec.src_offset, plan.spec.dst_offset);
    let (bytes_per_node, dtype, op) = (plan.spec.bytes_per_node, plan.spec.dtype, plan.op);
    sys.charge_pe_reorder(bytes_per_node as u64);

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let sigmas = task.sched.rotations.as_slice();

        charge_cluster(&mut task.sheet, plan, c);
        pre_reorder_cluster(task, src, chunk, cache);

        let mut acc = vec![0u8; LANES * chunk];
        for m_d in 0..m {
            reduce_part(task, &mut acc, sigmas, m_d, src, chunk, dtype, op);
            task.view.write_rows(m_d, dst, chunk, &acc, &IDENTITY_PERM);
        }
    });
    sheet.transfer_phases += 1;
}

/// AllReduce (§V-B3, Fig. 8c): ReduceScatter's reduction phase fused with
/// AllGather's distribution phase — the reduced registers are scattered to
/// all PEs without a round-trip through PIM memory.
pub(crate) fn all_reduce(sys: &mut PimSystem, sheet: &mut CostSheet, plan: &CollectivePlan) {
    let cache = &plan.cache;
    let (src, dst) = (plan.spec.src_offset, plan.spec.dst_offset);
    let (bytes_per_node, dtype, op) = (plan.spec.bytes_per_node, plan.spec.dtype, plan.op);
    sys.charge_pe_reorder(bytes_per_node as u64);

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let sigmas = task.sched.rotations.as_slice();

        charge_cluster(&mut task.sheet, plan, c);
        pre_reorder_cluster(task, src, chunk, cache);

        // Reduction phase: one accumulator region per destination EG.
        let mut accs: Vec<Vec<u8>> = vec![vec![0u8; LANES * chunk]; m];
        for (m_d, acc) in accs.iter_mut().enumerate() {
            reduce_part(task, acc, sigmas, m_d, src, chunk, dtype, op);
        }

        // Distribution phase: the model charges one domain transfer per
        // reduced register and one shuffle per written register (see
        // charge_cluster) — the reference flow rotates in the store loop —
        // while the functional rotation rides the row writes' lane
        // permutation, and the phase-C reorder is fused into per-lane
        // final-slot placement exactly as in AlltoAll.
        let place = cache.place(l, m);
        let rank = task.sched.rank;
        for (m_v, acc) in accs.iter().enumerate() {
            for k in 0..l {
                let offs = final_offsets(place, &rank, dst, m_v * l, k, chunk);
                for m_d in 0..m {
                    task.view.write_rows_at(m_d, &offs, chunk, acc, &sigmas[k]);
                }
            }
        }
    });
    sheet.transfer_phases += 1;
    sys.charge_pe_reorder(bytes_per_node as u64);
}

/// AllGather (§V-B1, Fig. 8a).
pub(crate) fn all_gather(sys: &mut PimSystem, sheet: &mut CostSheet, plan: &CollectivePlan) {
    let cache = &plan.cache;
    let (src, dst) = (plan.spec.src_offset, plan.spec.dst_offset);
    let chunk = plan.spec.bytes_per_node;

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let sigmas = &task.sched.rotations;
        let place = cache.place(l, m);
        let rank = task.sched.rank;
        charge_cluster(&mut task.sheet, plan, c);
        for m_s in 0..m {
            for k in 0..l {
                let offs = final_offsets(place, &rank, dst, m_s * l, k, chunk);
                for m_d in 0..m {
                    task.view.copy_rows(m_s, src, m_d, &offs, chunk, &sigmas[k]);
                }
            }
        }
    });
    sheet.transfer_phases += 1;

    sys.charge_pe_reorder((plan.n * chunk) as u64);
}

/// Scatter (§V-B4: the write-back half of ReduceScatter, host as root).
/// `host_in` is indexed by group id; each entry holds `N * bytes_per_node`
/// bytes laid out by destination rank.
pub(crate) fn scatter(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
    host_in: &[Vec<u8>],
) {
    let dst = plan.spec.dst_offset;
    let bytes_per_node = plan.spec.bytes_per_node;

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let mut rows = vec![0u8; LANES * bytes_per_node];
        charge_cluster(&mut task.sheet, plan, c);
        for m_d in 0..m {
            // Assemble the rows: each lane's span of the per-group host
            // buffer is contiguous, one memcpy per lane.
            for g in &c.groups {
                for (i, &lane) in g.lanes.iter().enumerate() {
                    let rank = i + l * m_d;
                    let off = rank * bytes_per_node;
                    rows[lane * bytes_per_node..(lane + 1) * bytes_per_node]
                        .copy_from_slice(&host_in[g.group_id][off..off + bytes_per_node]);
                }
            }
            task.view
                .write_rows(m_d, dst, bytes_per_node, &rows, &IDENTITY_PERM);
        }
    });
    sheet.transfer_phases += 1;
}

/// Gather (§V-B4: AllGather's read step followed by domain transfer).
/// Returns host buffers indexed by group id, `N * bytes_per_node` each.
pub(crate) fn gather(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
) -> Vec<Vec<u8>> {
    let src = plan.spec.src_offset;
    let bytes_per_node = plan.spec.bytes_per_node;
    let num_groups = plan.num_groups;

    let outs = run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let mut host: Vec<(usize, Vec<u8>)> = c
            .groups
            .iter()
            .map(|g| (g.group_id, vec![0u8; c.group_size() * bytes_per_node]))
            .collect();
        let mut rows = vec![0u8; LANES * bytes_per_node];
        charge_cluster(&mut task.sheet, plan, c);
        for m_s in 0..m {
            task.view
                .read_rows_into(m_s, src, bytes_per_node, &mut rows);
            for (gi, g) in c.groups.iter().enumerate() {
                for (i, &lane) in g.lanes.iter().enumerate() {
                    let rank = i + l * m_s;
                    let off = rank * bytes_per_node;
                    host[gi].1[off..off + bytes_per_node]
                        .copy_from_slice(&rows[lane * bytes_per_node..(lane + 1) * bytes_per_node]);
                }
            }
        }
        task.out = host;
    });
    sheet.transfer_phases += 1;

    collect_host_out(outs, num_groups)
}

/// Reduce (§V-B4: the reduction half of ReduceScatter with the host as
/// root). Returns per-group reduced vectors of `bytes_per_node` bytes.
pub(crate) fn reduce(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
) -> Vec<Vec<u8>> {
    let cache = &plan.cache;
    let src = plan.spec.src_offset;
    let (bytes_per_node, dtype, op) = (plan.spec.bytes_per_node, plan.spec.dtype, plan.op);
    let num_groups = plan.num_groups;
    sys.charge_pe_reorder(bytes_per_node as u64);

    let outs = run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let (l, m) = (c.lane_count, c.eg_count());
        let n = l * m;
        let chunk = bytes_per_node / n;
        let sigmas = task.sched.rotations.as_slice();

        charge_cluster(&mut task.sheet, plan, c);
        pre_reorder_cluster(task, src, chunk, cache);

        let mut host: Vec<(usize, Vec<u8>)> = c
            .groups
            .iter()
            .map(|g| (g.group_id, vec![0u8; bytes_per_node]))
            .collect();
        let mut acc = vec![0u8; LANES * chunk];
        for m_d in 0..m {
            reduce_part(task, &mut acc, sigmas, m_d, src, chunk, dtype, op);
            // The accumulator rows already hold word order for every
            // element width (for 8-bit elements this is the free raw-domain
            // reinterpretation of the model: no DT charged).
            for (gi, g) in task.cluster.groups.iter().enumerate() {
                for (i, &lane) in g.lanes.iter().enumerate() {
                    let rank = i + l * m_d;
                    let off = rank * chunk;
                    host[gi].1[off..off + chunk]
                        .copy_from_slice(&acc[lane * chunk..(lane + 1) * chunk]);
                }
            }
        }
        task.out = host;
    });
    sheet.transfer_phases += 1;

    collect_host_out(outs, num_groups)
}

/// Broadcast (§V-B4): the native driver path — one domain transfer per
/// block, reused for every destination PE of the group. No technique
/// applies; it is already bus-bound (Table II, §VIII-B).
pub(crate) fn broadcast(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
    host_in: &[Vec<u8>],
) {
    let dst = plan.spec.dst_offset;
    let bytes_per_node = plan.spec.bytes_per_node;

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let m = c.eg_count();
        let mut rows = vec![0u8; LANES * bytes_per_node];
        charge_cluster(&mut task.sheet, plan, c);
        for g in &c.groups {
            for &lane in &g.lanes {
                rows[lane * bytes_per_node..(lane + 1) * bytes_per_node]
                    .copy_from_slice(&host_in[g.group_id][..bytes_per_node]);
            }
        }
        for m_d in 0..m {
            task.view
                .write_rows(m_d, dst, bytes_per_node, &rows, &IDENTITY_PERM);
        }
    });
    sheet.transfer_phases += 1;
}

/// Total staged-row bytes a prepared execution of `plan` needs: one
/// `LANES * bytes_per_node` row block per destination part of every
/// cluster for Scatter, one per cluster for Broadcast (the block is
/// written to every part unchanged).
pub(crate) fn staged_len(plan: &CollectivePlan) -> usize {
    let b = plan.spec.bytes_per_node;
    match plan.primitive {
        Primitive::Scatter => plan.clusters.iter().map(|c| c.eg_count() * LANES * b).sum(),
        Primitive::Broadcast => plan.clusters.len() * LANES * b,
        _ => 0,
    }
}

/// Assembles the per-group host buffers of a Scatter/Broadcast into the
/// prepared row image `buf` (length [`staged_len`]), returning the base
/// offset of each cluster's block in plan order.
///
/// This is exactly the row assembly the per-call executors perform —
/// lane `lane` of destination part `m_d` sources rank `i + l * m_d` of
/// its group's host buffer — hoisted to prepare time, in the same
/// part-major order (each `LANES * b` block is assembled front to back,
/// so writes stay cache-local instead of striding the whole image once
/// per lane). Lane rows no group covers are zeroed explicitly, which
/// keeps the image byte-identical to the executors' fresh
/// `vec![0u8; ..]` row staging whatever `buf` held before — recycled
/// arena buffers and `restage` over a previous payload need no
/// whole-image clear first.
pub(crate) fn stage_rows(plan: &CollectivePlan, host_in: &[Vec<u8>], buf: &mut [u8]) -> Vec<usize> {
    let b = plan.spec.bytes_per_node;
    let mut offsets = Vec::with_capacity(plan.clusters.len());
    let mut base = 0usize;
    for c in &plan.clusters {
        offsets.push(base);
        let (l, m) = (c.lane_count, c.eg_count());
        let mut covered = [false; LANES];
        for g in &c.groups {
            for &lane in &g.lanes {
                covered[lane] = true;
            }
        }
        match plan.primitive {
            Primitive::Scatter => {
                for m_d in 0..m {
                    let block = base + m_d * LANES * b;
                    for (lane, cov) in covered.iter().enumerate() {
                        if !cov {
                            buf[block + lane * b..block + (lane + 1) * b].fill(0);
                        }
                    }
                    for g in &c.groups {
                        let src = &host_in[g.group_id];
                        for (i, &lane) in g.lanes.iter().enumerate() {
                            let rank = i + l * m_d;
                            buf[block + lane * b..block + (lane + 1) * b]
                                .copy_from_slice(&src[rank * b..(rank + 1) * b]);
                        }
                    }
                }
                base += m * LANES * b;
            }
            Primitive::Broadcast => {
                for (lane, cov) in covered.iter().enumerate() {
                    if !cov {
                        buf[base + lane * b..base + (lane + 1) * b].fill(0);
                    }
                }
                for g in &c.groups {
                    for &lane in &g.lanes {
                        buf[base + lane * b..base + (lane + 1) * b]
                            .copy_from_slice(&host_in[g.group_id][..b]);
                    }
                }
                base += LANES * b;
            }
            _ => unreachable!("stage_rows only stages Scatter/Broadcast plans"),
        }
    }
    offsets
}

/// Rebuilds the per-group host buffers from a prepared row image — the
/// exact inverse of [`stage_rows`] (staging is a pure byte permutation,
/// so no information is lost). Only the degraded-recompute path uses
/// this (the oracle needs the original rank-ordered buffers), which is
/// what lets [`super::prepared::PreparedScatter`] drop `host_in` after
/// staging instead of retaining a second copy.
pub(crate) fn unstage_rows(
    plan: &CollectivePlan,
    staged: &[u8],
    offsets: &[usize],
) -> Vec<Vec<u8>> {
    let b = plan.spec.bytes_per_node;
    let per_group = match plan.primitive {
        Primitive::Scatter => plan.n * b,
        Primitive::Broadcast => b,
        _ => unreachable!("unstage_rows only reads Scatter/Broadcast images"),
    };
    let mut host: Vec<Vec<u8>> = vec![vec![0u8; per_group]; plan.num_groups];
    for (ci, c) in plan.clusters.iter().enumerate() {
        let base = offsets[ci];
        let (l, m) = (c.lane_count, c.eg_count());
        match plan.primitive {
            Primitive::Scatter => {
                for g in &c.groups {
                    for (i, &lane) in g.lanes.iter().enumerate() {
                        kernels::copy_rows(
                            &mut host[g.group_id],
                            i * b,
                            l * b,
                            staged,
                            base + lane * b,
                            LANES * b,
                            b,
                            m,
                        );
                    }
                }
            }
            Primitive::Broadcast => {
                // Every lane of the group carries the same bytes; the
                // first is as good as any.
                for g in &c.groups {
                    let lane = g.lanes[0];
                    host[g.group_id]
                        .copy_from_slice(&staged[base + lane * b..base + (lane + 1) * b]);
                }
            }
            _ => unreachable!("matched above"),
        }
    }
    host
}

/// Scatter from a prepared row image: identical charging and row writes
/// to [`scatter`], with the per-call assembly replaced by slicing the
/// image staged once by [`stage_rows`]. Byte- and bit-identical to the
/// unprepared path by construction.
pub(crate) fn scatter_prestaged(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
    staged: &[u8],
    offsets: &[usize],
) {
    let dst = plan.spec.dst_offset;
    let b = plan.spec.bytes_per_node;

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let m = c.eg_count();
        let base = offsets[task.index];
        charge_cluster(&mut task.sheet, plan, c);
        // simlint: hot(begin, prestaged scatter landing)
        for m_d in 0..m {
            let block = base + m_d * LANES * b;
            task.view.write_rows(
                m_d,
                dst,
                b,
                &staged[block..block + LANES * b],
                &IDENTITY_PERM,
            );
        }
        // simlint: hot(end)
    });
    sheet.transfer_phases += 1;
}

/// Broadcast from a prepared row image: identical charging and row
/// writes to [`broadcast`], assembly replaced by the staged image.
pub(crate) fn broadcast_prestaged(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
    staged: &[u8],
    offsets: &[usize],
) {
    let dst = plan.spec.dst_offset;
    let b = plan.spec.bytes_per_node;

    run_clustered(sys, sheet, plan, |task| {
        let c = task.cluster;
        let m = c.eg_count();
        let base = offsets[task.index];
        charge_cluster(&mut task.sheet, plan, c);
        // simlint: hot(begin, prestaged broadcast landing)
        let rows = &staged[base..base + LANES * b];
        for m_d in 0..m {
            task.view.write_rows(m_d, dst, b, rows, &IDENTITY_PERM);
        }
        // simlint: hot(end)
    });
    sheet.transfer_phases += 1;
}

/// Places per-cluster `(group_id, buffer)` outputs into the dense
/// group-indexed vector the public API returns.
fn collect_host_out(outs: Vec<(usize, Vec<u8>)>, num_groups: usize) -> Vec<Vec<u8>> {
    let mut host_out: Vec<Vec<u8>> = vec![Vec::new(); num_groups];
    for (gid, buf) in outs {
        host_out[gid] = buf;
    }
    host_out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre- and post-permutations must compose with the burst-level
    /// rotation schedule to the AlltoAll permutation; here we check their
    /// standalone algebra.
    #[test]
    fn pre_perm_is_a_permutation_for_all_shapes() {
        for l in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 3, 4, 16] {
                for i_src in 0..l {
                    let p = pre_perm(i_src, l, m);
                    let mut seen = vec![false; l * m];
                    for &x in &p {
                        assert!(!seen[x], "l={l} m={m} i={i_src}");
                        seen[x] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn post_perm_is_a_permutation_for_all_shapes() {
        for l in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 3, 4, 16] {
                for i_dst in 0..l {
                    let p = post_perm(i_dst, l, m);
                    let mut seen = vec![false; l * m];
                    for &x in &p {
                        assert!(!seen[x], "l={l} m={m} i={i_dst}");
                        seen[x] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn pre_perm_keeps_parts_and_rotates_within() {
        // Slot m_d*l+k must source a chunk of the same destination-EG part.
        let (l, m) = (4usize, 3usize);
        for i_src in 0..l {
            let p = pre_perm(i_src, l, m);
            for (slot, &src) in p.iter().enumerate() {
                assert_eq!(slot / l, src / l, "chunks never cross parts");
                assert_eq!((slot % l + i_src) % l, src % l, "rotation by lane rank");
            }
        }
    }

    #[test]
    fn pre_perm_with_zero_lane_rank_is_identity() {
        let p = pre_perm(0, 8, 4);
        assert!(p.iter().enumerate().all(|(i, &x)| i == x));
        // ...and so is the post-permutation for destination lane rank 0
        // only at slots whose source lane rank is 0.
        let q = post_perm(0, 1, 16);
        assert!(
            q.iter().enumerate().all(|(i, &x)| i == x),
            "l=1 is trivially identity"
        );
    }

    #[test]
    fn post_perm_inverts_arrival_order() {
        // If chunk from source rank s arrives at slot m_s*l + (i_d - i_s)%l,
        // the post-permutation must place it at slot s = m_s*l + i_s.
        let (l, m) = (8usize, 2usize);
        for i_d in 0..l {
            let p = post_perm(i_d, l, m);
            for m_s in 0..m {
                for i_s in 0..l {
                    let arrival = m_s * l + ((i_d + l - i_s) % l);
                    let final_slot = m_s * l + i_s;
                    assert_eq!(p[final_slot], arrival);
                }
            }
        }
    }

    #[test]
    fn perm_cache_matches_closed_form() {
        // The cache must hand back exactly the closed-form tables for
        // every lane rank of every cluster shape it was built for: the
        // pre tables verbatim, and the placement tables as the per-part
        // inverse of the closed-form post-permutation.
        use crate::hypercube::{build_clusters, HypercubeManager};
        use crate::HypercubeShape;
        use pim_sim::DimmGeometry;

        let manager = HypercubeManager::new(
            HypercubeShape::new(vec![4, 2, 4]).unwrap(),
            DimmGeometry::new(2, 1, 2),
        )
        .unwrap();
        for mask in ["100", "010", "001", "110", "101", "111"] {
            let clusters = build_clusters(&manager, &mask.parse().unwrap()).unwrap();
            let cache = PermCache::for_clusters(&clusters);
            for c in &clusters {
                let (l, m) = (c.lane_count, c.eg_count());
                for i in 0..l {
                    assert_eq!(cache.pre(l, m)[i], pre_perm(i, l, m), "{mask} pre i={i}");
                    // Writing each arrival slot k of every part directly to
                    // place[i][k] must equal applying post_perm afterwards:
                    // post[final] = arrival  <=>  place[arrival] = final.
                    let post = post_perm(i, l, m);
                    let place = &cache.place(l, m)[i];
                    for m_s in 0..m {
                        for i_s in 0..l {
                            let arrival = post[m_s * l + i_s];
                            assert_eq!(
                                m_s * l + place[arrival % l],
                                m_s * l + i_s,
                                "{mask} i={i} part {m_s} slot {i_s}"
                            );
                        }
                    }
                }
            }
        }
    }
}

//! Fig. 15: application speedup of PID-Comm over the baseline stack.

use pidcomm::OptLevel;
use pidcomm_bench::{apps, geomean, header};

fn main() {
    header(
        "Fig. 15",
        "application speedup, PID-Comm over baseline, 1024 PEs",
        "1.20x - 3.99x per app, geomean 1.99x",
    );
    println!(
        "{:<12} {:<4} {:>10} {:>10} {:>8}",
        "app", "ds", "base ms", "ours ms", "speedup"
    );
    let mut speedups = Vec::new();
    for case in apps::all_cases() {
        let base = case.run(1024, OptLevel::Baseline);
        let ours = case.run(1024, OptLevel::Full);
        let s = base.profile.total_ns() / ours.profile.total_ns();
        speedups.push(s);
        println!(
            "{:<12} {:<4} {:>10.2} {:>10.2} {:>7.2}x",
            case.app,
            case.dataset,
            base.profile.total_ns() / 1e6,
            ours.profile.total_ns() / 1e6,
            s
        );
    }
    println!("geomean speedup: {:.2}x (paper: 1.99x)", geomean(&speedups));
}

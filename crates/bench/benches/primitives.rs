//! Criterion micro-benchmarks of the library itself: the domain-transfer
//! kernels that every burst passes through, plan construction, and the
//! end-to-end simulated collectives (wall-clock of the functional engine,
//! useful for tracking simulator performance regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pidcomm::hypercube::{build_clusters, HypercubeManager};
use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel, Primitive};
use pidcomm_bench::{run_primitive, PrimSetup};
use pim_sim::domain::{permute_lanes_raw, rotation_within, transpose8x8};
use pim_sim::dtype::{reduce_bytes, DType, ReduceKind};
use pim_sim::DimmGeometry;

fn bench_domain_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("domain");
    group.throughput(Throughput::Bytes(64));

    let mut block = [0x5Au8; 64];
    group.bench_function("transpose8x8", |b| {
        b.iter(|| transpose8x8(std::hint::black_box(&mut block)))
    });

    let perm = rotation_within(&[0, 1, 2, 3, 4, 5, 6, 7], 3);
    group.bench_function("permute_lanes_raw", |b| {
        b.iter(|| permute_lanes_raw(std::hint::black_box(&mut block), &perm))
    });

    let mut acc = [1u8; 64];
    let src = [2u8; 64];
    group.bench_function("reduce_u32_sum", |b| {
        b.iter(|| {
            reduce_bytes(
                ReduceKind::Sum,
                DType::U32,
                std::hint::black_box(&mut acc),
                &src,
            )
        })
    });
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    for (dims, geom) in [
        (vec![32usize, 32], DimmGeometry::upmem_1024()),
        (vec![8, 16, 8], DimmGeometry::upmem_1024()),
    ] {
        let manager =
            HypercubeManager::new(HypercubeShape::new(dims.clone()).unwrap(), geom).unwrap();
        let mask: DimMask = DimMask::single(dims.len(), 0);
        group.bench_function(
            BenchmarkId::new("build_clusters", format!("{dims:?}")),
            |b| b.iter(|| build_clusters(std::hint::black_box(&manager), &mask).unwrap()),
        );
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_64pe");
    group.sample_size(20);
    let setup = PrimSetup {
        geom: DimmGeometry::single_rank(),
        dims: vec![8, 8],
        mask: "10".into(),
        bytes_per_node: 8 * 8 * 16,
        dtype: pim_sim::DType::U64,
        model: pim_sim::TimeModel::upmem(),
    };
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            group.bench_function(BenchmarkId::new(prim.abbrev(), format!("{opt}")), |b| {
                b.iter(|| run_primitive(std::hint::black_box(&setup), prim, opt))
            });
        }
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("allreduce_256pe_8kib", |b| {
        let geom = DimmGeometry::upmem_256();
        let manager =
            HypercubeManager::new(HypercubeShape::new(vec![16, 16]).unwrap(), geom).unwrap();
        let comm = Communicator::new(manager);
        let mask: DimMask = "10".parse().unwrap();
        b.iter(|| {
            let mut sys = pim_sim::PimSystem::new(geom);
            for pe in geom.pes() {
                sys.pe_mut(pe).write(0, &[1u8; 8192]);
            }
            comm.all_reduce(
                &mut sys,
                &mask,
                &BufferSpec::new(0, 16384, 8192),
                ReduceKind::Sum,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_domain_ops,
    bench_planning,
    bench_collectives,
    bench_end_to_end
);
criterion_main!(benches);

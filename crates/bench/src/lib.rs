//! # pidcomm-bench — figure/table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§VIII); see
//! DESIGN.md §3 for the experiment index and EXPERIMENTS.md for measured
//! vs published shapes. This library holds the shared runners.
//!
//! # Threading model
//!
//! The harness composes two independent layers of parallelism, both pure
//! execution knobs (results are byte-identical at every setting):
//!
//! 1. **Sweep level** ([`sweep`]): the app-sweep binaries (fig13 / fig15 /
//!    fig21 / fig23) run their independent `AppCase` × `OptLevel` ×
//!    PE-count cells on a work-stealing pool — workers pull cell indices
//!    from one shared queue, results land in per-cell slots so output
//!    order never depends on scheduling.
//! 2. **Engine level**: inside each run, every app passes a
//!    `Communicator::with_threads` bound down to `pidcomm`'s
//!    cluster-parallel engine (each cluster gets a disjoint `EgView`).
//!
//! A machine budget (`--threads N`, `0` = auto from `PIDCOMM_THREADS` or
//! the available parallelism) is split by [`sweep::SweepBudget`] so
//! `workers × engine_threads` never exceeds it: the outer level is filled
//! first (whole-app cells scale better than cluster fan-out), and the
//! remainder goes to the engine. The serial reference schedule
//! ([`sweep::SweepBudget::serial`]) is one worker with a serial engine;
//! `tests/app_sweep_determinism.rs` pins every other budget to it.

// The harness times walls but never takes unsafe shortcuts; any future
// unsafe fast path belongs in pim_sim, under simlint's unsafe-audit lint.
#![forbid(unsafe_code)]

use pidcomm::{
    BufferSpec, CommReport, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel,
    Primitive,
};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind, TimeModel};

pub mod sweep;

/// A primitive invocation setup shared by the sweeps.
#[derive(Debug, Clone)]
pub struct PrimSetup {
    /// System geometry.
    pub geom: DimmGeometry,
    /// Hypercube dimensions.
    pub dims: Vec<usize>,
    /// Communication mask.
    pub mask: String,
    /// `bytes_per_node` for chunked primitives (AA/RS/AR); AllGather &
    /// rooted primitives derive per-node sizes from it.
    pub bytes_per_node: usize,
    /// Element type.
    pub dtype: DType,
    /// Timing model (defaults to the UPMEM calibration; extensions swap in
    /// projected hardware).
    pub model: TimeModel,
    /// Engine thread budget for the collective (`0` = auto, `1` = serial
    /// reference), passed to `Communicator::with_threads` — so sweeps that
    /// record their schedule report the budget that actually ran.
    pub threads: usize,
}

impl PrimSetup {
    /// The paper's default 2-D (32, 32) setup on 1024 PEs.
    pub fn default_2d(bytes_per_node: usize) -> Self {
        Self {
            geom: DimmGeometry::upmem_1024(),
            dims: vec![32, 32],
            mask: "10".into(),
            bytes_per_node,
            dtype: DType::U64,
            model: TimeModel::upmem(),
            threads: 0,
        }
    }

    /// A 1-D setup over all 1024 PEs.
    pub fn default_1d(bytes_per_node: usize) -> Self {
        Self {
            geom: DimmGeometry::upmem_1024(),
            dims: vec![1024],
            mask: "1".into(),
            bytes_per_node,
            dtype: DType::U64,
            model: TimeModel::upmem(),
            threads: 0,
        }
    }

    fn group_size(&self) -> usize {
        let shape = HypercubeShape::new(self.dims.clone()).unwrap();
        let mask: DimMask = self.mask.parse().unwrap();
        mask.group_size(&shape).unwrap()
    }
}

/// Runs one primitive at one optimization level and returns its report.
///
/// Buffers are filled deterministically; `bytes_per_node` is interpreted
/// per primitive so total volume stays comparable across primitives (the
/// paper's "larger side" normalization).
///
/// # Panics
///
/// Panics on configuration errors (this is a harness, not a library API).
pub fn run_primitive(setup: &PrimSetup, prim: Primitive, opt: OptLevel) -> CommReport {
    time_primitive(setup, prim, opt, 1).0
}

/// Runs one primitive like [`run_primitive`], but times *only* the
/// collective invocation (system construction and buffer fills stay
/// outside the clock) and returns the minimum wall-clock milliseconds over
/// `reps` fresh runs alongside the last report. This is the measurement
/// the simulator-performance trajectory (`bench_json`) records: the
/// engine hot path, undiluted by harness setup.
///
/// # Panics
///
/// Panics on configuration errors (this is a harness, not a library API).
pub fn time_primitive(
    setup: &PrimSetup,
    prim: Primitive,
    opt: OptLevel,
    reps: usize,
) -> (CommReport, f64) {
    let shape = HypercubeShape::new(setup.dims.clone()).unwrap();
    let mask: DimMask = setup.mask.parse().unwrap();
    let n = setup.group_size();
    let b = setup.bytes_per_node;
    let manager = HypercubeManager::new(shape, setup.geom).unwrap();
    let comm = Communicator::new(manager)
        .with_opt(opt)
        .with_threads(setup.threads);
    let groups = comm.manager().groups(&mask).unwrap().len();
    let small = (b / n).max(8).next_multiple_of(8);
    let dst = 2 * b.next_multiple_of(64) + 64;
    let spec = BufferSpec::new(0, dst, b).with_dtype(setup.dtype);
    let small_spec = BufferSpec::new(0, dst, small).with_dtype(setup.dtype);

    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let mut sys = PimSystem::with_model(setup.geom, setup.model.clone());
        for pe in setup.geom.pes() {
            let fill: Vec<u8> = (0..b)
                .map(|i| ((pe.0 as usize + i * 13) % 251) as u8)
                .collect();
            sys.pe_mut(pe).write(0, &fill);
        }
        let t0 = std::time::Instant::now();
        let r = match prim {
            Primitive::AlltoAll => comm.all_to_all(&mut sys, &mask, &spec).unwrap(),
            Primitive::ReduceScatter => comm
                .reduce_scatter(&mut sys, &mask, &spec, ReduceKind::Sum)
                .unwrap(),
            Primitive::AllReduce => comm
                .all_reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                .unwrap(),
            Primitive::AllGather => comm.all_gather(&mut sys, &mask, &small_spec).unwrap(),
            Primitive::Scatter => {
                let host: Vec<Vec<u8>> = vec![vec![0x5Au8; n * small]; groups];
                comm.scatter(&mut sys, &mask, &small_spec, &host).unwrap()
            }
            Primitive::Gather => comm.gather(&mut sys, &mask, &small_spec).unwrap().0,
            Primitive::Reduce => {
                comm.reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                    .unwrap()
                    .0
            }
            Primitive::Broadcast => {
                let host: Vec<Vec<u8>> = vec![vec![0xA5u8; small]; groups];
                comm.broadcast(&mut sys, &mask, &small_spec, &host).unwrap()
            }
        };
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (report.unwrap(), best)
}

/// Geometric mean of a slice.
pub fn geomean(values: &[f64]) -> f64 {
    let ln: f64 = values.iter().map(|v| v.ln()).sum();
    (ln / values.len() as f64).exp()
}

/// Formats a GB/s value.
pub fn gbps(report: &CommReport) -> f64 {
    report.throughput_gbps()
}

/// Prints a standard figure header.
pub fn header(fig: &str, what: &str, paper_shape: &str) {
    println!("==================================================================");
    println!("{fig}: {what}");
    println!("paper shape: {paper_shape}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn run_primitive_works_for_all_eight() {
        let setup = PrimSetup {
            geom: DimmGeometry::single_rank(),
            dims: vec![8, 8],
            mask: "10".into(),
            bytes_per_node: 8 * 8 * 8,
            dtype: DType::U64,
            model: TimeModel::upmem(),
            threads: 0,
        };
        for prim in Primitive::ALL {
            let report = run_primitive(&setup, prim, OptLevel::Full);
            assert!(report.time_ns() > 0.0, "{prim}");
            assert!(report.throughput_gbps() > 0.0, "{prim}");
        }
    }
}

/// Standard scaled application configurations (Table III), used by the
/// Fig. 4 / 13 / 15 / 21 regenerators. Returns `(label, dataset, run)`
/// closures so binaries can pick subsets.
pub mod apps {
    use pidcomm::OptLevel;
    use pidcomm_apps::bfs::{default_source, run_bfs_in, BfsConfig};
    use pidcomm_apps::cc::{run_cc_in, CcConfig};
    use pidcomm_apps::dlrm::{run_dlrm_in, DlrmRunConfig};
    use pidcomm_apps::gnn::{run_gnn_in, GnnConfig, GnnVariant};
    use pidcomm_apps::mlp::{run_mlp_in, MlpConfig};
    use pidcomm_apps::AppRun;
    use pidcomm_data::dlrm::DlrmConfig;
    use pidcomm_data::{rmat, CsrGraph, RmatParams};
    use pim_sim::{DType, SystemArena};

    use crate::sweep::{self, SweepBudget};

    use std::sync::LazyLock;

    // The harness datasets are immutable and shared by every cell of a
    // sweep, so they are generated once per process and borrowed from
    // every (possibly concurrent) run instead of being rebuilt per cell.
    static LJ: LazyLock<CsrGraph> =
        LazyLock::new(|| rmat(15, 16, RmatParams::skewed(0x117e)).to_undirected());
    static LG: LazyLock<CsrGraph> =
        LazyLock::new(|| rmat(13, 10, RmatParams::skewed(0x6a11a)).to_undirected());
    static PM: LazyLock<CsrGraph> = LazyLock::new(|| rmat(11, 4, RmatParams::uniform(0x9d)));
    static RD: LazyLock<CsrGraph> = LazyLock::new(|| rmat(11, 25, RmatParams::skewed(0x4edd17)));
    static SMALL: LazyLock<CsrGraph> = LazyLock::new(|| rmat(10, 6, RmatParams::skewed(0x5ca1e)));
    static SMALL_UNDIR: LazyLock<CsrGraph> = LazyLock::new(|| SMALL.to_undirected());

    /// LiveJournal-like graph, scaled for the harness.
    pub fn lj() -> &'static CsrGraph {
        &LJ
    }

    /// Gowalla-like graph, scaled for the harness.
    pub fn lg() -> &'static CsrGraph {
        &LG
    }

    /// PubMed-like GNN graph (2048 vertices, sparse).
    pub fn pm() -> &'static CsrGraph {
        &PM
    }

    /// Reddit-like GNN graph (2048 vertices, dense).
    pub fn rd() -> &'static CsrGraph {
        &RD
    }

    /// The `sm` harness graph shared by the small GNN case and the chaos
    /// soak.
    pub fn small() -> &'static CsrGraph {
        &SMALL
    }

    /// Undirected view of [`small`] (the small BFS/CC dataset).
    pub fn small_undir() -> &'static CsrGraph {
        &SMALL_UNDIR
    }

    /// `(pes, opt, threads, arena)` entry point of one benchmark case.
    type AppRunner = Box<dyn Fn(usize, OptLevel, usize, &mut SystemArena) -> AppRun + Send + Sync>;

    /// One benchmark configuration of Table III.
    ///
    /// The runner is `Send + Sync` so independent runs can execute
    /// concurrently on the sweep pool — each run checks its
    /// [`pim_sim::PimSystem`] out of the worker's private arena and only
    /// borrows the shared *immutable* process-cached datasets above.
    pub struct AppCase {
        /// Application name (paper naming).
        pub app: &'static str,
        /// Dataset label (paper naming).
        pub dataset: &'static str,
        runner: AppRunner,
    }

    impl AppCase {
        /// Runs the case on `pes` PEs at `opt` with the default (auto)
        /// engine thread budget.
        pub fn run(&self, pes: usize, opt: OptLevel) -> AppRun {
            self.run_threaded(pes, opt, 0)
        }

        /// Runs the case with an explicit engine + host-kernel thread
        /// budget (`0` = auto, `1` = serial). Results are byte-identical
        /// at every setting.
        pub fn run_threaded(&self, pes: usize, opt: OptLevel, threads: usize) -> AppRun {
            self.run_in(pes, opt, threads, &mut SystemArena::new())
        }

        /// Runs the case sourcing its `PimSystem` and staging buffers from
        /// `arena` — the sweep pool passes each worker's private arena so
        /// consecutive cells reuse allocations. Results are byte-identical
        /// to a fresh-arena run.
        pub fn run_in(
            &self,
            pes: usize,
            opt: OptLevel,
            threads: usize,
            arena: &mut SystemArena,
        ) -> AppRun {
            (self.runner)(pes, opt, threads, arena)
        }
    }

    /// The paper's twelve benchmark configurations (Table III / Fig. 15),
    /// at harness scale.
    pub fn all_cases() -> Vec<AppCase> {
        vec![
            AppCase {
                app: "DLRM",
                dataset: "16",
                runner: Box::new(|pes, opt, threads, arena| {
                    let mut w = DlrmConfig::criteo_like(16);
                    w.batch_size = 2048;
                    run_dlrm_in(
                        &DlrmRunConfig {
                            workload: w,
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "DLRM",
                dataset: "32",
                runner: Box::new(|pes, opt, threads, arena| {
                    let mut w = DlrmConfig::criteo_like(32);
                    w.batch_size = 2048;
                    run_dlrm_in(
                        &DlrmRunConfig {
                            workload: w,
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "GNN RS&AR",
                dataset: "PM",
                runner: Box::new(|pes, opt, threads, arena| {
                    gnn_case(pes, opt, threads, GnnVariant::RsAr, pm(), arena)
                }),
            },
            AppCase {
                app: "GNN RS&AR",
                dataset: "RD",
                runner: Box::new(|pes, opt, threads, arena| {
                    gnn_case(pes, opt, threads, GnnVariant::RsAr, rd(), arena)
                }),
            },
            AppCase {
                app: "GNN AR&AG",
                dataset: "PM",
                runner: Box::new(|pes, opt, threads, arena| {
                    gnn_case(pes, opt, threads, GnnVariant::ArAg, pm(), arena)
                }),
            },
            AppCase {
                app: "GNN AR&AG",
                dataset: "RD",
                runner: Box::new(|pes, opt, threads, arena| {
                    gnn_case(pes, opt, threads, GnnVariant::ArAg, rd(), arena)
                }),
            },
            AppCase {
                app: "BFS",
                dataset: "LJ",
                runner: Box::new(|pes, opt, threads, arena| {
                    let g = lj();
                    run_bfs_in(
                        &BfsConfig { pes, opt, threads },
                        g,
                        default_source(g),
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "BFS",
                dataset: "LG",
                runner: Box::new(|pes, opt, threads, arena| {
                    let g = lg();
                    run_bfs_in(
                        &BfsConfig { pes, opt, threads },
                        g,
                        default_source(g),
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "CC",
                dataset: "LJ",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_cc_in(&CcConfig { pes, opt, threads }, lj(), arena).unwrap()
                }),
            },
            AppCase {
                app: "CC",
                dataset: "LG",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_cc_in(&CcConfig { pes, opt, threads }, lg(), arena).unwrap()
                }),
            },
            AppCase {
                app: "MLP",
                dataset: "16k",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_mlp_in(
                        &MlpConfig {
                            features: 2048,
                            layers: 5,
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "MLP",
                dataset: "32k",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_mlp_in(
                        &MlpConfig {
                            features: 4096,
                            layers: 5,
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
        ]
    }

    /// Reduced-scale cases covering all five applications, sized so the
    /// whole sweep finishes in seconds on 64 PEs — used by the CI smoke
    /// run of `bench_json --apps --small` and the sweep determinism test.
    pub fn small_cases() -> Vec<AppCase> {
        vec![
            AppCase {
                app: "DLRM",
                dataset: "sm",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_dlrm_in(
                        &DlrmRunConfig {
                            workload: DlrmConfig {
                                num_tables: 8,
                                rows_per_table: 1 << 10,
                                embedding_dim: 16,
                                batch_size: 1024,
                                seed: 7,
                            },
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "GNN RS&AR",
                dataset: "sm",
                runner: Box::new(|pes, opt, threads, arena| {
                    gnn_case(pes, opt, threads, GnnVariant::RsAr, &SMALL, arena)
                }),
            },
            AppCase {
                app: "BFS",
                dataset: "sm",
                runner: Box::new(|pes, opt, threads, arena| {
                    let g = &*SMALL_UNDIR;
                    run_bfs_in(
                        &BfsConfig { pes, opt, threads },
                        g,
                        default_source(g),
                        arena,
                    )
                    .unwrap()
                }),
            },
            AppCase {
                app: "CC",
                dataset: "sm",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_cc_in(&CcConfig { pes, opt, threads }, &SMALL_UNDIR, arena).unwrap()
                }),
            },
            AppCase {
                app: "MLP",
                dataset: "sm",
                runner: Box::new(|pes, opt, threads, arena| {
                    run_mlp_in(
                        &MlpConfig {
                            features: 512,
                            layers: 3,
                            pes,
                            opt,
                            threads,
                        },
                        arena,
                    )
                    .unwrap()
                }),
            },
        ]
    }

    fn gnn_case(
        pes: usize,
        opt: OptLevel,
        threads: usize,
        variant: GnnVariant,
        graph: &CsrGraph,
        arena: &mut SystemArena,
    ) -> AppRun {
        run_gnn_in(
            &GnnConfig {
                pes,
                feature_dim: 64,
                layers: 3,
                variant,
                opt,
                dtype: DType::I32,
                threads,
            },
            graph,
            arena,
        )
        .unwrap()
    }

    /// One cell of an application sweep: which case, at which PE count,
    /// at which optimization level.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct AppCell {
        /// Index into the sweep's case list.
        pub case: usize,
        /// Number of PEs.
        pub pes: usize,
        /// Communication optimization level.
        pub opt: OptLevel,
    }

    /// Runs every cell over `cases` on the work-stealing sweep pool and
    /// returns the [`AppRun`]s in cell order. `budget.workers` cells run
    /// concurrently, each with `budget.engine_threads` of cluster and
    /// host-kernel fan-out; [`SweepBudget::serial`] is the serial
    /// reference schedule, and every budget produces byte-identical
    /// results.
    ///
    /// Each worker owns a private [`SystemArena`], so consecutive cells
    /// on one worker reuse the same `PimSystem` allocation and scatter
    /// staging buffers instead of rebuilding them from scratch (see the
    /// [`sweep`] module docs for the lifecycle).
    pub fn run_app_sweep(cases: &[AppCase], cells: &[AppCell], budget: SweepBudget) -> Vec<AppRun> {
        run_app_sweep_with_stats(cases, cells, budget).0
    }

    /// As [`run_app_sweep`], but additionally returns the pool-wide
    /// [`pidcomm::PlanCacheStats`] summed over every worker's private
    /// plan cache (parked in its arena's extension slot between cells) —
    /// the scoped replacement for the removed process-global counters.
    /// Integer sums commute, so the tally is worker-order independent.
    pub fn run_app_sweep_with_stats(
        cases: &[AppCase],
        cells: &[AppCell],
        budget: SweepBudget,
    ) -> (Vec<AppRun>, pidcomm::PlanCacheStats) {
        let (runs, arenas) =
            sweep::run_cells_collect(cells.len(), budget.workers, SystemArena::new, |arena, i| {
                let c = &cells[i];
                cases[c.case].run_in(c.pes, c.opt, budget.engine_threads, arena)
            });
        let stats = arenas
            .into_iter()
            .map(|mut arena| arena.take_extension::<pidcomm::PlanCache>().snapshot())
            .fold(pidcomm::PlanCacheStats::default(), |acc, s| acc.merge(&s));
        (runs, stats)
    }

    /// The fig13/fig15 cell list: every case at `pes` PEs, baseline then
    /// full, in case order.
    pub fn base_vs_full_cells(num_cases: usize, pes: usize) -> Vec<AppCell> {
        (0..num_cases)
            .flat_map(|case| {
                [OptLevel::Baseline, OptLevel::Full]
                    .into_iter()
                    .map(move |opt| AppCell { case, pes, opt })
            })
            .collect()
    }
}

/// Deterministic chaos soak: the five small application cases rerun
/// through their `run_*_resilient` variants under seeded fault profiles
/// and recovery policies (`bench_json --chaos`).
///
/// Every number the soak records is a pure function of the grid: fault
/// schedules are seeded [`pim_sim::FaultPlan`]s (decisions keyed on
/// `(seed, pe, epoch, offset)`), the apps commit per-iteration, and the
/// engine is deterministic — so the whole `BENCH_chaos.json` report is
/// reproducible bit-for-bit and `--check` can pin it exactly like the
/// fault-free sweeps. The `clean` column doubles as the zero-fault
/// bit-identity guard: its modeled bits must equal the plain runners'.
pub mod chaos {
    use std::sync::Arc;

    use pidcomm::{OptLevel, RunPolicy};
    use pidcomm_apps::bfs::{default_source, run_bfs_resilient_in, BfsConfig};
    use pidcomm_apps::cc::{run_cc_resilient_in, CcConfig};
    use pidcomm_apps::dlrm::{run_dlrm_resilient_in, DlrmRunConfig};
    use pidcomm_apps::gnn::{run_gnn_resilient_in, GnnConfig, GnnVariant};
    use pidcomm_apps::mlp::{run_mlp_resilient_in, MlpConfig};
    use pidcomm_apps::ResilientRun;
    use pidcomm_data::dlrm::DlrmConfig;
    use pim_sim::{DType, FaultPlan, SystemArena};

    use crate::apps;

    /// Seeded fault profile of one soak column.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultProfile {
        /// No fault plan attached — the zero-fault bit-identity column.
        Clean,
        /// Rare transient bit flips (about one write in 2^14).
        Flip,
        /// Dense transient corruption: bit flips at 2^13 plus row
        /// corruption at 2^14 — retry pressure high enough to exercise
        /// backoff and, under quarantine, the ledger threshold.
        Storm,
        /// One persistently dead PE (flat index 3): the case bounded
        /// retry cannot fix and recovery must degrade around.
        DeadPe,
    }

    impl FaultProfile {
        /// Every profile, clean first.
        pub const ALL: [FaultProfile; 4] = [
            FaultProfile::Clean,
            FaultProfile::Flip,
            FaultProfile::Storm,
            FaultProfile::DeadPe,
        ];

        /// Stable report label.
        pub fn label(self) -> &'static str {
            match self {
                FaultProfile::Clean => "clean",
                FaultProfile::Flip => "flip",
                FaultProfile::Storm => "storm",
                FaultProfile::DeadPe => "dead-pe",
            }
        }

        /// The seeded fault plan of this profile (`None` for clean).
        pub fn plan(self, seed: u64) -> Option<Arc<FaultPlan>> {
            match self {
                FaultProfile::Clean => None,
                FaultProfile::Flip => {
                    Some(Arc::new(FaultPlan::new(seed).with_bit_flip_period(1 << 14)))
                }
                FaultProfile::Storm => Some(Arc::new(
                    FaultPlan::new(seed)
                        .with_bit_flip_period(1 << 13)
                        .with_row_corrupt_period(1 << 14),
                )),
                FaultProfile::DeadPe => Some(Arc::new(FaultPlan::new(seed).with_failed_pe(3))),
            }
        }
    }

    /// `(pes, fault, policy, arena)` entry point of one soak case — the
    /// resilient twin of [`apps::AppCase`], always at `OptLevel::Full`
    /// with a serial engine.
    type ChaosRunner = Box<
        dyn Fn(usize, Option<Arc<FaultPlan>>, RunPolicy, &mut SystemArena) -> ResilientRun
            + Send
            + Sync,
    >;

    /// One application of the soak grid.
    pub struct ChaosCase {
        /// Application name (paper naming, matching [`apps::small_cases`]).
        pub app: &'static str,
        runner: ChaosRunner,
    }

    impl ChaosCase {
        /// Runs the case on `pes` PEs under `fault` and `policy`,
        /// sourcing allocations from `arena`.
        pub fn run_in(
            &self,
            pes: usize,
            fault: Option<Arc<FaultPlan>>,
            policy: RunPolicy,
            arena: &mut SystemArena,
        ) -> ResilientRun {
            (self.runner)(pes, fault, policy, arena)
        }
    }

    /// The five soak applications at exactly the [`apps::small_cases`]
    /// configurations, so the `clean` column is directly comparable to
    /// the `--apps --small` sweep.
    pub fn cases() -> Vec<ChaosCase> {
        vec![
            ChaosCase {
                app: "DLRM",
                runner: Box::new(|pes, fault, policy, arena| {
                    run_dlrm_resilient_in(
                        &DlrmRunConfig {
                            workload: DlrmConfig {
                                num_tables: 8,
                                rows_per_table: 1 << 10,
                                embedding_dim: 16,
                                batch_size: 1024,
                                seed: 7,
                            },
                            pes,
                            opt: OptLevel::Full,
                            threads: 1,
                        },
                        fault,
                        policy,
                        arena,
                    )
                    .unwrap()
                }),
            },
            ChaosCase {
                app: "GNN RS&AR",
                runner: Box::new(|pes, fault, policy, arena| {
                    run_gnn_resilient_in(
                        &GnnConfig {
                            pes,
                            feature_dim: 64,
                            layers: 3,
                            variant: GnnVariant::RsAr,
                            opt: OptLevel::Full,
                            dtype: DType::I32,
                            threads: 1,
                        },
                        apps::small(),
                        fault,
                        policy,
                        arena,
                    )
                    .unwrap()
                }),
            },
            ChaosCase {
                app: "BFS",
                runner: Box::new(|pes, fault, policy, arena| {
                    let g = apps::small_undir();
                    run_bfs_resilient_in(
                        &BfsConfig {
                            pes,
                            opt: OptLevel::Full,
                            threads: 1,
                        },
                        g,
                        default_source(g),
                        fault,
                        policy,
                        arena,
                    )
                    .unwrap()
                }),
            },
            ChaosCase {
                app: "CC",
                runner: Box::new(|pes, fault, policy, arena| {
                    run_cc_resilient_in(
                        &CcConfig {
                            pes,
                            opt: OptLevel::Full,
                            threads: 1,
                        },
                        apps::small_undir(),
                        fault,
                        policy,
                        arena,
                    )
                    .unwrap()
                }),
            },
            ChaosCase {
                app: "MLP",
                runner: Box::new(|pes, fault, policy, arena| {
                    run_mlp_resilient_in(
                        &MlpConfig {
                            features: 512,
                            layers: 3,
                            pes,
                            opt: OptLevel::Full,
                            threads: 1,
                        },
                        fault,
                        policy,
                        arena,
                    )
                    .unwrap()
                }),
            },
        ]
    }

    /// One cell of the soak grid: which case, under which fault profile
    /// and which policy column.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosCell {
        /// Index into [`cases`].
        pub case: usize,
        /// Seeded fault profile.
        pub profile: FaultProfile,
        /// Whether the health ledger may quarantine (the default policy);
        /// `false` runs [`RunPolicy::without_quarantine`].
        pub quarantine: bool,
        /// Fault-plan seed (fixed per profile; the report is keyed on it).
        pub seed: u64,
    }

    impl ChaosCell {
        /// Dataset label of the report row — the fault profile and policy
        /// column folded into the `app/dataset/opt/pes` identity key so
        /// the tolerant `--check` scanner pins every cell unchanged.
        pub fn dataset(&self) -> String {
            match self.profile {
                FaultProfile::Clean => "sm+clean".into(),
                p => format!(
                    "sm+{}/{}",
                    p.label(),
                    if self.quarantine { "q" } else { "nq" }
                ),
            }
        }

        /// The run policy of this cell.
        pub fn policy(&self) -> RunPolicy {
            if self.quarantine {
                RunPolicy::default()
            } else {
                RunPolicy::default().without_quarantine()
            }
        }
    }

    /// The full soak grid over `num_cases` applications: the clean column
    /// once per app (policy is irrelevant without faults), every faulty
    /// profile under quarantine on and off. Seeds are fixed per profile
    /// so the grid — and therefore the report — is fully deterministic.
    pub fn soak_cells(num_cases: usize) -> Vec<ChaosCell> {
        let mut cells = Vec::new();
        for case in 0..num_cases {
            for (i, profile) in FaultProfile::ALL.into_iter().enumerate() {
                let seed = 0xc4a0_5000 + i as u64;
                if profile == FaultProfile::Clean {
                    cells.push(ChaosCell {
                        case,
                        profile,
                        quarantine: true,
                        seed,
                    });
                    continue;
                }
                for quarantine in [true, false] {
                    cells.push(ChaosCell {
                        case,
                        profile,
                        quarantine,
                        seed,
                    });
                }
            }
        }
        cells
    }
}

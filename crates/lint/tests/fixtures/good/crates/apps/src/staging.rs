// L2 good: all transport lands through the write choke point or the
// typed-view encoders.
pub fn stage(pe: &mut Pe, data: &[u8]) {
    pe.write(0, data);
    pe.write_i32s(64, &[1, 2, 3]);
}

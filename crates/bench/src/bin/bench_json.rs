//! Machine-readable performance trajectory of the simulator hot path.
//!
//! Runs the fig14-style primitive sweep (AlltoAll / ReduceScatter /
//! AllReduce / AllGather at the full optimization level on the paper's
//! 1024-PE 2-D (32, 32) configuration) and records, per primitive, the
//! *wall-clock* time of the functional simulation alongside the *modeled*
//! device time. The output lets future PRs regress simulator performance —
//! wall-clock is what the refactors optimize, modeled time is what must
//! stay bit-identical.
//!
//! Usage: `bench_json [OUTPUT] [--reference FILE]`
//!
//! * `OUTPUT` — path of the JSON report (default `BENCH_streaming.json`).
//! * `--reference FILE` — a previous report to embed verbatim under
//!   `"reference"`, so before/after numbers live in one file.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{run_primitive, time_primitive, PrimSetup};

const PRIMS: [Primitive; 4] = [
    Primitive::AlltoAll,
    Primitive::ReduceScatter,
    Primitive::AllReduce,
    Primitive::AllGather,
];

fn main() {
    let mut args = std::env::args().skip(1);
    let mut output = String::from("BENCH_streaming.json");
    let mut reference: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--reference" {
            reference = Some(args.next().expect("--reference needs a file path"));
        } else {
            output = arg;
        }
    }

    let bytes_per_node = 32 * 1024;
    let setup = PrimSetup::default_2d(bytes_per_node);

    // Warm up allocator and page cache so the first primitive is not
    // charged for process start-up.
    let _ = run_primitive(&setup, Primitive::AlltoAll, OptLevel::Full);

    let mut rows = Vec::new();
    for prim in PRIMS {
        let (report, wall_ms) = time_primitive(&setup, prim, OptLevel::Full, 3);
        let modeled_us = report.time_ns() / 1e3;
        eprintln!(
            "{:<4} wall {wall_ms:>10.1} ms   modeled {modeled_us:>10.1} us   {:>8.2} GB/s modeled",
            prim.abbrev(),
            report.throughput_gbps()
        );
        rows.push(format!(
            "    {{ \"primitive\": \"{}\", \"wall_ms\": {wall_ms:.3}, \"modeled_us\": {modeled_us:.3}, \"modeled_gbps\": {:.4} }}",
            prim.abbrev(),
            report.throughput_gbps()
        ));
    }

    let reference_json = match &reference {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read reference {path}: {e}")),
        None => "null".into(),
    };

    let json = format!(
        "{{\n  \"benchmark\": \"fig14 primitive sweep, 1024 PEs, (32,32), {} B/node, OptLevel::Full\",\n  \"threads\": \"{}\",\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        bytes_per_node,
        std::env::var("PIDCOMM_THREADS").unwrap_or_else(|_| "auto".into()),
        rows.join(",\n"),
        reference_json.trim_end()
    );
    std::fs::write(&output, json).expect("write output");
    eprintln!("wrote {output}");
}

//! A small, dependency-free deterministic RNG for dataset generation.
//!
//! The generators in this crate only need a seedable stream of uniform
//! variates; statistical quality far beyond splitmix64/xoshiro is not
//! required (degree skew and popularity curves are what matter, not
//! cryptographic properties). Implemented locally so the crate stays
//! dependency-free.

/// xoshiro256++ seeded through splitmix64 — the standard recommendation
/// for a small, fast, well-distributed generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (fully deterministic).
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 to spread the seed over the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.gen_range(17) < 17);
        }
    }
}

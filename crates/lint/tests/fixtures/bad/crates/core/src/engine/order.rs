use std::collections::HashMap;

pub struct Sched {
    plans: HashMap<u64, u64>,
}

impl Sched {
    pub fn emit(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (k, v) in &self.plans {
            out.push(k + v);
        }
        out
    }
}

//! The conventional CPU-mediated communication path (§III-A, Fig. 3a).
//!
//! This is the UPMEM-SDK / SimplePIM-style flow the paper compares against:
//! all data is pulled to the host (with automatic domain transfer),
//! globally rearranged/reduced *in host memory*, domain-transferred again
//! and pushed back. Functionally it simply executes the oracle semantics —
//! which is faithful, because the conventional flow really does materialize
//! everything in host memory — while the cost sheet charges the three
//! bottlenecks the paper identifies: host-memory staging, word-granular
//! modulation and per-byte domain transfer.
//!
//! Groups touch disjoint PEs, so the host-memory rearrangement of the
//! groups fans out over scoped threads; pulls and pushes stay in group
//! order, keeping the cost accounting and final MRAM images identical to
//! serial execution.

use pim_sim::geometry::BURST_BYTES;
use pim_sim::PimSystem;

use crate::config::Primitive;
use crate::engine::plan::CollectivePlan;
use crate::engine::sheet::CostSheet;
use crate::oracle;

/// Bytes read from / written to each member PE for one primitive.
fn in_out_sizes(primitive: Primitive, bytes_per_node: usize, n: usize) -> (usize, usize) {
    match primitive {
        Primitive::AlltoAll => (bytes_per_node, bytes_per_node),
        Primitive::ReduceScatter => (bytes_per_node, bytes_per_node / n),
        Primitive::AllReduce => (bytes_per_node, bytes_per_node),
        Primitive::AllGather => (bytes_per_node, bytes_per_node * n),
        Primitive::Reduce => (bytes_per_node, 0),
        Primitive::Scatter | Primitive::Gather | Primitive::Broadcast => {
            unreachable!("{primitive} does not use the baseline group path")
        }
    }
}

/// Records every `CostSheet` charge the baseline execution of `plan`
/// incurs — the **single source of truth** for the conventional path's
/// costs, shared by the functional executor ([`run`]) and cost-only
/// execution. All quantities depend only on the plan's group tables and
/// spec, never on payload bytes, so the tallies are identical with or
/// without a functional run.
pub(crate) fn charge(sheet: &mut CostSheet, plan: &CollectivePlan) {
    let geom = plan.geometry;
    let groups = plan.groups.as_slice();
    let primitive = plan.primitive;
    let bytes_per_node = plan.spec.bytes_per_node;
    let n = groups[0].members.len();
    let (in_size, out_size) = in_out_sizes(primitive, bytes_per_node, n);

    // 1. Pull every member's data into host memory.
    for group in groups {
        for &pe in &group.members {
            let ch = geom.channel_of_group(geom.group_of(pe));
            sheet.bulk(ch, in_size as u64);
        }
    }
    let total_in = (in_size as u64) * groups.len() as u64 * n as u64;

    // 3. Push results back — every primitive but Reduce redistributes
    //    per-member outputs of `out_size` bytes.
    let mut total_out = 0u64;
    if primitive != Primitive::Reduce {
        for group in groups {
            for &pe in &group.members {
                let ch = geom.channel_of_group(geom.group_of(pe));
                sheet.bulk(ch, out_size as u64);
            }
            total_out += (out_size * group.members.len()) as u64;
        }
    }

    // Host-side accounting. The 1-D single-group AllGather has a fast path
    // in the conventional stack: Gather followed by the native Broadcast,
    // which domain-transfers each block only once and needs no modulation
    // (§VIII-E: "the baseline relies on the fast broadcast function, which
    // cannot be utilized for 2D settings").
    let ag_fast_path = primitive == Primitive::AllGather && groups.len() == 1;
    let unique_out = if ag_fast_path {
        (n * bytes_per_node) as u64 // one concatenated vector, reused for all PEs
    } else {
        total_out
    };

    sheet.dt_blocks += (total_in + unique_out).div_ceil(BURST_BYTES as u64);
    sheet.stream_bytes += total_in + unique_out;
    if primitive.is_reducing() {
        // The host-memory arithmetic pass over all inputs.
        sheet.reduce_mem_bytes += total_in;
        // Reduce needs no global rearrangement, only the reduction; the
        // redistributing primitives additionally pay the word-granular
        // modulation pass.
        if primitive != Primitive::Reduce {
            sheet.scatter_bytes += total_in + total_out;
        }
    } else if !ag_fast_path {
        sheet.scatter_bytes += total_in + total_out;
    }
    sheet.transfer_phases += 2;
}

/// Executes the plan's primitive over its pre-enumerated group tables
/// using the conventional host-memory flow. Returns host-side outputs for
/// `Reduce`, `None` otherwise.
pub(crate) fn run(
    sys: &mut PimSystem,
    sheet: &mut CostSheet,
    plan: &CollectivePlan,
) -> Option<Vec<Vec<u8>>> {
    let groups = plan.groups.as_slice();
    let primitive = plan.primitive;
    let (src, dst) = (plan.spec.src_offset, plan.spec.dst_offset);
    let (in_size, dtype, op) = (
        in_out_sizes(primitive, plan.spec.bytes_per_node, groups[0].members.len()).0,
        plan.spec.dtype,
        plan.op,
    );

    charge(sheet, plan);

    // 1. Pull every member's data into host memory (domain transfer is
    //    automatic in the conventional driver). Reads never grow MRAM, so
    //    the snapshot works through shared references.
    let inputs: Vec<Vec<Vec<u8>>> = groups
        .iter()
        .map(|group| {
            group
                .members
                .iter()
                .map(|&pe| sys.pe(pe).peek(src, in_size))
                .collect()
        })
        .collect();

    // 2. Globally rearrange / reduce in host memory — pure computation on
    //    the snapshots, one task per group.
    /// Per-group work slot: group index, per-member outputs (distributing
    /// primitives) and the host-side reduction (Reduce).
    type WorkSlot = (usize, Option<Vec<Vec<u8>>>, Option<Vec<u8>>);
    let mut work: Vec<WorkSlot> = (0..groups.len()).map(|g| (g, None, None)).collect();
    crate::engine::parallel::par_for_each(&mut work, plan.group_threads, |slot| {
        let inputs = &inputs[slot.0];
        match primitive {
            Primitive::AlltoAll => slot.1 = Some(oracle::alltoall(inputs)),
            Primitive::ReduceScatter => slot.1 = Some(oracle::reduce_scatter(inputs, op, dtype)),
            Primitive::AllReduce => slot.1 = Some(oracle::all_reduce(inputs, op, dtype)),
            Primitive::AllGather => slot.1 = Some(oracle::all_gather(inputs)),
            Primitive::Reduce => slot.2 = Some(oracle::reduce(inputs, op, dtype)),
            _ => unreachable!(),
        }
    });

    // 3. Push results back (domain transfer again), in group order.
    let mut host_out: Vec<Vec<u8>> = Vec::new();
    for (group, (_, outputs, reduced)) in groups.iter().zip(work) {
        if let Some(reduced) = reduced {
            host_out.push(reduced);
        }
        if let Some(outputs) = outputs {
            for (&pe, out) in group.members.iter().zip(&outputs) {
                sys.pe_mut(pe).write(dst, out);
            }
        }
    }

    if primitive == Primitive::Reduce {
        Some(host_out)
    } else {
        None
    }
}

//! Engine-vs-oracle correctness: every primitive, at every optimization
//! level, over a variety of hypercube shapes and dimension masks, must
//! leave exactly the bytes the functional oracle predicts in MRAM (or in
//! the host output buffers).

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{oracle, BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

const SRC: usize = 0;

/// Deterministic per-PE pseudo-random fill.
fn fill(sys: &mut PimSystem, bytes: usize) {
    for pe in sys.geometry().pes() {
        let data: Vec<u8> = (0..bytes)
            .map(|i| {
                let x = (pe.0 as usize).wrapping_mul(2654435761) ^ i.wrapping_mul(40503) ^ (i >> 3);
                (x % 251) as u8
            })
            .collect();
        sys.pe_mut(pe).write(SRC, &data);
    }
}

struct Case {
    dims: Vec<usize>,
    geom: DimmGeometry,
    mask: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        // Single entangled group, the paper's Fig. 7/8 setting.
        Case {
            dims: vec![8],
            geom: DimmGeometry::single_group(),
            mask: "1",
        },
        // Sub-lane groups packing two instances per entangled group.
        Case {
            dims: vec![4, 2],
            geom: DimmGeometry::single_group(),
            mask: "10",
        },
        // Strided lanes (y within the lane space).
        Case {
            dims: vec![4, 2],
            geom: DimmGeometry::single_group(),
            mask: "01",
        },
        Case {
            dims: vec![2, 2, 2],
            geom: DimmGeometry::single_group(),
            mask: "101",
        },
        // Whole-machine group.
        Case {
            dims: vec![4, 2],
            geom: DimmGeometry::single_group(),
            mask: "11",
        },
        // Multi-EG groups on one rank.
        Case {
            dims: vec![8, 8],
            geom: DimmGeometry::single_rank(),
            mask: "10",
        },
        Case {
            dims: vec![8, 8],
            geom: DimmGeometry::single_rank(),
            mask: "01",
        },
        Case {
            dims: vec![8, 8],
            geom: DimmGeometry::single_rank(),
            mask: "11",
        },
        // Straddling dimension (x = 16 covers lanes plus an EG bit).
        Case {
            dims: vec![16, 4],
            geom: DimmGeometry::single_rank(),
            mask: "10",
        },
        Case {
            dims: vec![16, 4],
            geom: DimmGeometry::single_rank(),
            mask: "01",
        },
        // The paper's 4x2x4 example over 2 channels.
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "100",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "010",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "001",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "110",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "101",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "011",
        },
        Case {
            dims: vec![4, 2, 4],
            geom: DimmGeometry::new(2, 1, 2),
            mask: "111",
        },
        // Straddling unselected dimension.
        Case {
            dims: vec![2, 8, 2],
            geom: DimmGeometry::new(1, 1, 4),
            mask: "101",
        },
        // Groups of size 2 across ranks.
        Case {
            dims: vec![8, 2, 2, 2],
            geom: DimmGeometry::new(2, 2, 2),
            mask: "0010",
        },
        // Non-power-of-two last dimension (3 channels).
        Case {
            dims: vec![8, 2, 3],
            geom: DimmGeometry::new(3, 1, 2),
            mask: "001",
        },
    ]
}

fn setup(case: &Case) -> (PimSystem, Communicator, DimMask, usize) {
    let shape = HypercubeShape::new(case.dims.clone()).unwrap();
    let mask: DimMask = case.mask.parse().unwrap();
    let n = mask.group_size(&shape).unwrap();
    let manager = HypercubeManager::new(shape, case.geom).unwrap();
    let sys = PimSystem::new(case.geom);
    (sys, Communicator::new(manager), mask, n)
}

/// Captures the oracle-predicted per-PE outputs for a group-local
/// transformation.
fn expected_per_pe<F>(
    comm: &Communicator,
    sys: &mut PimSystem,
    mask: &DimMask,
    b: usize,
    f: F,
) -> Vec<(u32, Vec<u8>)>
where
    F: Fn(&[Vec<u8>]) -> Vec<Vec<u8>>,
{
    let groups = comm.manager().groups(mask).unwrap();
    let mut out = Vec::new();
    for g in &groups {
        let inputs: Vec<Vec<u8>> = g
            .members
            .iter()
            .map(|&pe| sys.pe_mut(pe).read(SRC, b).to_vec())
            .collect();
        let outputs = f(&inputs);
        for (&pe, o) in g.members.iter().zip(outputs) {
            out.push((pe.0, o));
        }
    }
    out
}

fn check_outputs(sys: &mut PimSystem, dst: usize, expected: &[(u32, Vec<u8>)], label: &str) {
    for (pe, want) in expected {
        let got = sys
            .pe_mut(pim_sim::PeId(*pe))
            .read(dst, want.len())
            .to_vec();
        assert_eq!(&got, want, "{label}: PE{pe} output mismatch");
    }
}

#[test]
fn alltoall_matches_oracle_everywhere() {
    for case in cases() {
        for opt in OptLevel::ALL {
            let (mut sys, comm, mask, n) = setup(&case);
            let b = 8 * n * 2; // two 8-byte words per destination
            fill(&mut sys, b);
            let expected = expected_per_pe(&comm, &mut sys, &mask, b, oracle::alltoall);
            let dst = b + 64;
            comm.with_opt(opt)
                .all_to_all(&mut sys, &mask, &BufferSpec::new(SRC, dst, b))
                .unwrap();
            check_outputs(
                &mut sys,
                dst,
                &expected,
                &format!("AA {:?}/{} {opt}", case.dims, case.mask),
            );
        }
    }
}

#[test]
fn reduce_scatter_matches_oracle_everywhere() {
    for case in cases() {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            for (dtype, op) in [
                (DType::U64, ReduceKind::Sum),
                (DType::U32, ReduceKind::Min),
                (DType::U8, ReduceKind::Sum),
                (DType::I16, ReduceKind::Max),
            ] {
                let (mut sys, comm, mask, n) = setup(&case);
                let b = 8 * n;
                fill(&mut sys, b);
                let expected = expected_per_pe(&comm, &mut sys, &mask, b, |i| {
                    oracle::reduce_scatter(i, op, dtype)
                });
                let dst = b + 64;
                comm.with_opt(opt)
                    .reduce_scatter(
                        &mut sys,
                        &mask,
                        &BufferSpec::new(SRC, dst, b).with_dtype(dtype),
                        op,
                    )
                    .unwrap();
                check_outputs(
                    &mut sys,
                    dst,
                    &expected,
                    &format!("RS {:?}/{} {opt} {dtype} {op}", case.dims, case.mask),
                );
            }
        }
    }
}

#[test]
fn all_reduce_matches_oracle_everywhere() {
    for case in cases() {
        for opt in OptLevel::ALL {
            for (dtype, op) in [(DType::U64, ReduceKind::Sum), (DType::U8, ReduceKind::Or)] {
                let (mut sys, comm, mask, n) = setup(&case);
                let b = 8 * n;
                fill(&mut sys, b);
                let expected = expected_per_pe(&comm, &mut sys, &mask, b, |i| {
                    oracle::all_reduce(i, op, dtype)
                });
                let dst = b + 64;
                comm.with_opt(opt)
                    .all_reduce(
                        &mut sys,
                        &mask,
                        &BufferSpec::new(SRC, dst, b).with_dtype(dtype),
                        op,
                    )
                    .unwrap();
                check_outputs(
                    &mut sys,
                    dst,
                    &expected,
                    &format!("AR {:?}/{} {opt} {dtype} {op}", case.dims, case.mask),
                );
            }
        }
    }
}

#[test]
fn all_gather_matches_oracle_everywhere() {
    for case in cases() {
        for opt in OptLevel::ALL {
            let (mut sys, comm, mask, _n) = setup(&case);
            let b = 16;
            fill(&mut sys, b);
            let expected = expected_per_pe(&comm, &mut sys, &mask, b, oracle::all_gather);
            let dst = 1024;
            comm.with_opt(opt)
                .all_gather(&mut sys, &mask, &BufferSpec::new(SRC, dst, b))
                .unwrap();
            check_outputs(
                &mut sys,
                dst,
                &expected,
                &format!("AG {:?}/{} {opt}", case.dims, case.mask),
            );
        }
    }
}

#[test]
fn gather_scatter_roundtrip_everywhere() {
    for case in cases() {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            let (mut sys, comm, mask, n) = setup(&case);
            let b = 24;
            fill(&mut sys, b);
            let comm = comm.with_opt(opt);

            // Gather collects by rank...
            let (_, gathered) = comm
                .gather(&mut sys, &mask, &BufferSpec::new(SRC, 0, b))
                .unwrap();
            let groups = comm.manager().groups(&mask).unwrap();
            for g in &groups {
                for (rank, &pe) in g.members.iter().enumerate() {
                    let want = sys.pe_mut(pe).read(SRC, b).to_vec();
                    assert_eq!(
                        &gathered[g.id][rank * b..(rank + 1) * b],
                        &want[..],
                        "Gather {:?}/{} group {} rank {rank}",
                        case.dims,
                        case.mask,
                        g.id
                    );
                }
            }
            assert!(gathered.iter().all(|v| v.len() == n * b));

            // ...and Scatter puts it back.
            let dst = 4096;
            comm.scatter(&mut sys, &mask, &BufferSpec::new(0, dst, b), &gathered)
                .unwrap();
            for g in &groups {
                for &pe in &g.members {
                    let want = sys.pe_mut(pe).read(SRC, b).to_vec();
                    let got = sys.pe_mut(pe).read(dst, b).to_vec();
                    assert_eq!(got, want, "Scatter roundtrip {:?}/{}", case.dims, case.mask);
                }
            }
        }
    }
}

#[test]
fn reduce_matches_oracle_everywhere() {
    for case in cases() {
        for opt in [OptLevel::Baseline, OptLevel::Full] {
            for dtype in [DType::U64, DType::U8, DType::U32] {
                let (mut sys, comm, mask, n) = setup(&case);
                let b = 8 * n;
                fill(&mut sys, b);
                let groups = comm.manager().groups(&mask).unwrap();
                let expected: Vec<Vec<u8>> = groups
                    .iter()
                    .map(|g| {
                        let inputs: Vec<Vec<u8>> = g
                            .members
                            .iter()
                            .map(|&pe| sys.pe_mut(pe).read(SRC, b).to_vec())
                            .collect();
                        oracle::reduce(&inputs, ReduceKind::Sum, dtype)
                    })
                    .collect();
                let (_, got) = comm
                    .with_opt(opt)
                    .reduce(
                        &mut sys,
                        &mask,
                        &BufferSpec::new(SRC, 0, b).with_dtype(dtype),
                        ReduceKind::Sum,
                    )
                    .unwrap();
                assert_eq!(
                    got, expected,
                    "Reduce {:?}/{} {opt} {dtype}",
                    case.dims, case.mask
                );
            }
        }
    }
}

#[test]
fn broadcast_delivers_everywhere() {
    for case in cases() {
        let (mut sys, comm, mask, _n) = setup(&case);
        let b = 16;
        let groups = comm.manager().groups(&mask).unwrap();
        let host_in: Vec<Vec<u8>> = (0..groups.len())
            .map(|g| (0..b).map(|i| (g * 37 + i) as u8).collect())
            .collect();
        let dst = 128;
        comm.broadcast(&mut sys, &mask, &BufferSpec::new(0, dst, b), &host_in)
            .unwrap();
        for g in &groups {
            for &pe in &g.members {
                let got = sys.pe_mut(pe).read(dst, b).to_vec();
                assert_eq!(
                    got, host_in[g.id],
                    "Broadcast {:?}/{}",
                    case.dims, case.mask
                );
            }
        }
    }
}

#[test]
fn rs_then_ag_equals_ar_on_device() {
    // The classic identity, executed on the simulated device end-to-end.
    let case = Case {
        dims: vec![8, 8],
        geom: DimmGeometry::single_rank(),
        mask: "10",
    };
    let (mut sys, comm, mask, n) = setup(&case);
    let b = 8 * n;
    fill(&mut sys, b);

    let mut sys2 = PimSystem::new(case.geom);
    fill(&mut sys2, b);

    // Path 1: fused AllReduce.
    comm.all_reduce(
        &mut sys,
        &mask,
        &BufferSpec::new(SRC, 2048, b),
        ReduceKind::Sum,
    )
    .unwrap();
    // Path 2: ReduceScatter then AllGather.
    comm.reduce_scatter(
        &mut sys2,
        &mask,
        &BufferSpec::new(SRC, 1024, b),
        ReduceKind::Sum,
    )
    .unwrap();
    comm.all_gather(&mut sys2, &mask, &BufferSpec::new(1024, 2048, b / n))
        .unwrap();

    for pe in case.geom.pes() {
        let a = sys.pe_mut(pe).read(2048, b).to_vec();
        let c = sys2.pe_mut(pe).read(2048, b).to_vec();
        assert_eq!(a, c, "{pe}");
    }
}

//! Chaos suite for the fault-injection / verified-execution layer.
//!
//! Three guarantees, in order of importance:
//!
//! 1. **Zero-cost when disabled**: with no fault plan attached,
//!    `execute_verified` is byte- and modeled-bit-identical to the plain
//!    execute path, for every primitive at every optimization level.
//! 2. **Transient faults recover**: an injected single fault is retried
//!    under a fresh epoch and produces the exact clean result, with the
//!    recovery visible in modeled time.
//! 3. **No silent corruption**: under seeded random fault storms
//!    (`PIDCOMM_CHAOS_SEED` overrides the base seed), every run either
//!    returns the bit-exact clean result or a typed error — never a wrong
//!    answer, never a panic.
//!
//! The `app_storms` module lifts the same guarantees to whole application
//! runs through the run-level supervisor (`run_*_resilient`): zero-fault
//! bit-identity with the plain runners, deterministic typed outcomes
//! under seeded storms, and Degraded completion (within a modeled-time
//! deadline) where a persistent PE failure used to be a fatal error.

use pidcomm::{
    BufferSpec, Communicator, DimMask, Error, HypercubeManager, HypercubeShape, OptLevel,
    Primitive, RecoveryPolicy, ReduceKind,
};
use pim_sim::{DimmGeometry, FaultKind, FaultPlan, PimSystem};
use std::sync::Arc;

const B: usize = 256;
const DST: usize = 8192;
const N: usize = 8;
const GROUPS: usize = 8;

fn comm(opt: OptLevel) -> Communicator {
    let geom = DimmGeometry::single_rank(); // 64 PEs
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    Communicator::new(manager).with_opt(opt).with_threads(1)
}

fn fresh_filled() -> PimSystem {
    let geom = DimmGeometry::single_rank();
    let mut sys = PimSystem::new(geom);
    for pe in geom.pes() {
        let fill: Vec<u8> = (0..N * B)
            .map(|i| ((pe.0 as usize * 31 + i * 7) % 251) as u8)
            .collect();
        sys.pe_mut(pe).write(0, &fill);
    }
    sys
}

/// Full MRAM image of the src+dst windows on every PE.
fn snapshot(sys: &PimSystem) -> Vec<Vec<u8>> {
    sys.geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, DST + N * B))
        .collect()
}

fn spec() -> BufferSpec {
    BufferSpec::new(0, DST, B)
}

fn host_in(prim: Primitive) -> Option<Vec<Vec<u8>>> {
    match prim {
        Primitive::Scatter => Some(
            (0..GROUPS)
                .map(|g| (0..N * B).map(|i| ((g * 13 + i) % 241) as u8).collect())
                .collect(),
        ),
        Primitive::Broadcast => Some(
            (0..GROUPS)
                .map(|g| (0..B).map(|i| ((g * 17 + i) % 239) as u8).collect())
                .collect(),
        ),
        _ => None,
    }
}

/// Clean reference execution through the ordinary plan-execute methods.
fn run_clean(
    c: &Communicator,
    sys: &mut PimSystem,
    prim: Primitive,
    mask: &DimMask,
) -> (pidcomm::CommReport, Option<Vec<Vec<u8>>>) {
    let plan = c.plan(prim, mask, &spec(), ReduceKind::Sum).unwrap();
    let hin = host_in(prim);
    match prim {
        Primitive::Scatter | Primitive::Broadcast => (
            plan.execute_with_host(sys, hin.as_ref().unwrap()).unwrap(),
            None,
        ),
        Primitive::Gather | Primitive::Reduce => {
            let (r, out) = plan.execute_to_host(sys).unwrap();
            (r, Some(out))
        }
        _ => (plan.execute(sys).unwrap(), None),
    }
}

#[test]
fn zero_fault_verified_execution_is_bit_identical() {
    let mask: DimMask = "10".parse().unwrap();
    for opt in [OptLevel::Baseline, OptLevel::InRegister, OptLevel::Full] {
        for prim in Primitive::ALL {
            let c = comm(opt);

            let mut clean_sys = fresh_filled();
            let (clean_report, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

            let mut ver_sys = fresh_filled();
            let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
            let hin = host_in(prim);
            let ver = c
                .execute_verified(
                    &mut ver_sys,
                    &plan,
                    hin.as_deref(),
                    &RecoveryPolicy::default(),
                )
                .unwrap();

            assert_eq!(ver.retries, 0, "{prim} {opt:?}");
            assert!(!ver.degraded, "{prim} {opt:?}");
            assert_eq!(ver.report, clean_report, "{prim} {opt:?}: modeled bits");
            assert_eq!(ver.host_out, clean_host, "{prim} {opt:?}: host output");
            assert_eq!(
                snapshot(&ver_sys),
                snapshot(&clean_sys),
                "{prim} {opt:?}: PE bytes"
            );
        }
    }
}

#[test]
fn transient_fault_is_retried_to_the_exact_clean_result() {
    let mask: DimMask = "10".parse().unwrap();
    for prim in Primitive::ALL {
        let c = comm(OptLevel::Full);

        let mut clean_sys = fresh_filled();
        let (clean_report, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

        // A bit flip on PE 2's transport writes during epoch 1 (the first
        // attempt); epoch 2 (the retry) is fault-free.
        let mut ver_sys = fresh_filled();
        ver_sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
            FaultKind::BitFlip,
            2,
            1,
        )));
        let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
        let hin = host_in(prim);
        let ver = c
            .execute_verified(
                &mut ver_sys,
                &plan,
                hin.as_deref(),
                &RecoveryPolicy::default(),
            )
            .unwrap();

        // Host-rooted receives (Gather, Reduce) move data PE→host only:
        // the collective never writes PE MRAM, so a transport write fault
        // is *provably harmless* — no retry, clean result. Every other
        // primitive lands bytes on PE 2 and must detect-and-retry.
        let writes_pes = !matches!(prim, Primitive::Gather | Primitive::Reduce);
        let want_retries = u32::from(writes_pes);
        assert_eq!(
            ver.retries, want_retries,
            "{prim}: detected-or-harmless retry count"
        );
        assert!(!ver.degraded, "{prim}");
        assert_eq!(ver.host_out, clean_host, "{prim}: host output");
        ver_sys.detach_fault_plan();
        assert_eq!(snapshot(&ver_sys), snapshot(&clean_sys), "{prim}: PE bytes");
        if writes_pes {
            // The failed attempt plus the retry resync are on the meter.
            assert!(
                ver.report.time_ns() > clean_report.time_ns(),
                "{prim}: recovery must be visible in modeled time \
                 ({} vs clean {})",
                ver.report.time_ns(),
                clean_report.time_ns()
            );
        } else {
            assert_eq!(
                ver.report, clean_report,
                "{prim}: harmless fault leaves modeled time untouched"
            );
        }
    }
}

#[test]
fn transient_fault_with_no_retry_budget_surfaces_typed_error() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
        FaultKind::BitFlip,
        2,
        1,
    )));
    let plan = c
        .plan(Primitive::AlltoAll, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let policy = RecoveryPolicy {
        max_retries: 0,
        degrade: true,
    };
    match c.execute_verified(&mut sys, &plan, None, &policy) {
        Err(Error::DataCorruption { pe, epoch, .. }) => {
            assert_eq!(pe, 2);
            assert_eq!(epoch, 1);
        }
        other => panic!("expected DataCorruption, got {other:?}"),
    }
}

#[test]
fn persistent_pe_failure_degrades_to_correct_surviving_results() {
    let mask: DimMask = "10".parse().unwrap();
    let dead: u32 = 12;
    for prim in Primitive::ALL {
        let c = comm(OptLevel::Full);

        let mut clean_sys = fresh_filled();
        let (_, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

        let mut ver_sys = fresh_filled();
        ver_sys.attach_fault_plan(Arc::new(FaultPlan::new(11).with_failed_pe(dead)));
        let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
        let hin = host_in(prim);
        let ver = c
            .execute_verified(
                &mut ver_sys,
                &plan,
                hin.as_deref(),
                &RecoveryPolicy::default(),
            )
            .unwrap();

        assert!(ver.degraded, "{prim}: must degrade around the dead PE");
        assert_eq!(ver.retries, 0, "{prim}: persistent failure never retries");
        // Host-rooted receive outputs are computed from still-readable
        // banks, so they match the clean run exactly.
        assert_eq!(ver.host_out, clean_host, "{prim}: host output");
        // Every surviving PE's *destination* region holds the exact clean
        // result (the source region legitimately differs: the clean run's
        // phase A pre-rotated it in place, the degraded run never
        // dispatched). The dead PE's destination stays untouched.
        ver_sys.detach_fault_plan();
        for pe in ver_sys.geometry().pes() {
            if pe.0 == dead {
                continue;
            }
            assert_eq!(
                ver_sys.pe(pe).peek(DST, N * B),
                clean_sys.pe(pe).peek(DST, N * B),
                "{prim}: surviving PE {pe:?} destination"
            );
        }
        // Degraded recompute is visible in modeled time via the recovery
        // byte counter (host-modulation charge).
        assert!(
            ver.report.breakdown.host_modulation > 0.0,
            "{prim}: degraded recompute must be charged"
        );
    }
}

#[test]
fn persistent_failure_with_degradation_disabled_surfaces_pe_failed() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(3).with_failed_pe(5)));
    let plan = c
        .plan(Primitive::AllReduce, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let policy = RecoveryPolicy {
        max_retries: 2,
        degrade: false,
    };
    match c.execute_verified(&mut sys, &plan, None, &policy) {
        Err(Error::PeFailed { pe, .. }) => assert_eq!(pe, 5),
        other => panic!("expected PeFailed, got {other:?}"),
    }
}

/// Seeded fault storms: across seeds and fault densities, a verified
/// execution must end in exactly one of two states — the bit-exact clean
/// result, or a typed detection error. A wrong answer (silent corruption)
/// or a panic fails the suite.
#[test]
fn seeded_chaos_never_corrupts_silently() {
    let base: u64 = std::env::var("PIDCOMM_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let mask: DimMask = "10".parse().unwrap();
    let policy = RecoveryPolicy {
        max_retries: 3,
        degrade: true,
    };

    let mut recovered = 0u32;
    let mut detected = 0u32;
    let mut clean = 0u32;

    for round in 0..3u64 {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E3779B97F4A7C15));
        // Sparse-to-dense storms: small periods fault nearly every epoch,
        // large ones only occasionally.
        for (flip_p, row_p) in [(1 << 14, 0), (0, 1 << 15), (1 << 10, 1 << 11)] {
            for prim in Primitive::ALL {
                let c = comm(OptLevel::Full);

                let mut clean_sys = fresh_filled();
                let (_, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);
                let want = snapshot(&clean_sys);

                let mut fp = FaultPlan::new(seed ^ (flip_p << 1) ^ row_p);
                if flip_p > 0 {
                    fp = fp.with_bit_flip_period(flip_p);
                }
                if row_p > 0 {
                    fp = fp.with_row_corrupt_period(row_p);
                }
                let mut sys = fresh_filled();
                sys.attach_fault_plan(Arc::new(fp));
                let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
                let hin = host_in(prim);
                match c.execute_verified(&mut sys, &plan, hin.as_deref(), &policy) {
                    Ok(ver) => {
                        assert!(!ver.degraded, "{prim} seed {seed}: no PE ever dies here");
                        assert_eq!(ver.host_out, clean_host, "{prim} seed {seed}");
                        sys.detach_fault_plan();
                        assert_eq!(snapshot(&sys), want, "{prim} seed {seed}: PE bytes");
                        if ver.retries > 0 {
                            recovered += 1;
                        } else {
                            clean += 1;
                        }
                    }
                    Err(Error::DataCorruption { .. }) | Err(Error::PeFailed { .. }) => {
                        detected += 1;
                    }
                    Err(other) => panic!("{prim} seed {seed}: unexpected error {other:?}"),
                }
            }
        }
    }

    eprintln!("chaos: {recovered} recovered, {detected} detected, {clean} clean");
    // Under the default seeds the storm must actually exercise the fault
    // paths; a custom seed only has to satisfy the per-run property.
    if std::env::var("PIDCOMM_CHAOS_SEED").is_err() {
        assert!(
            recovered + detected > 0,
            "fault storm triggered nothing: periods too sparse"
        );
    }
}

/// The recovery rollback image is scoped to the plan's written regions:
/// a retried execution still lands the exact clean result, and bytes the
/// application keeps *outside* the plan's buffer extents — which the
/// rollback no longer snapshots — survive the failed attempt untouched.
#[test]
fn recovery_rollback_is_scoped_to_plan_regions() {
    let mask: DimMask = "10".parse().unwrap();
    // A sentinel window beyond every primitive's destination extent
    // (AllGather writes the largest: N * B bytes at DST).
    let sentinel_off = DST + N * B;
    let sentinel = |pe: u32| -> Vec<u8> { (0..64u32).map(|i| (pe + i * 3) as u8).collect() };
    for prim in Primitive::ALL {
        let c = comm(OptLevel::Full);

        let mut clean_sys = fresh_filled();
        let (_, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

        let mut sys = fresh_filled();
        for pe in sys.geometry().pes() {
            sys.pe_mut(pe).write(sentinel_off, &sentinel(pe.0));
        }
        sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
            FaultKind::BitFlip,
            2,
            1,
        )));
        let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
        let hin = host_in(prim);
        let ver = c
            .execute_verified(&mut sys, &plan, hin.as_deref(), &RecoveryPolicy::default())
            .unwrap();
        assert!(!ver.degraded, "{prim}");
        assert_eq!(ver.host_out, clean_host, "{prim}: retried result drifts");
        sys.detach_fault_plan();
        for pe in sys.geometry().pes() {
            assert_eq!(
                sys.pe(pe).peek(sentinel_off, 64),
                sentinel(pe.0),
                "{prim}: bytes outside the plan's regions disturbed by rollback"
            );
            assert_eq!(
                sys.pe(pe).peek(DST, N * B),
                clean_sys.pe(pe).peek(DST, N * B),
                "{prim}: destination bytes diverge from the clean run"
            );
        }
    }
}

/// A stuck-period fault plan can stall a PE for one epoch; the pre-dispatch
/// scan must catch it (typed error or clean retry), never hang or corrupt.
#[test]
fn transiently_stuck_pe_is_caught_before_dispatch() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut clean_sys = fresh_filled();
    let (_, _) = run_clean(&c, &mut clean_sys, Primitive::AlltoAll, &mask);
    let want = snapshot(&clean_sys);

    // An explicit one-epoch stall on PE 9: attempt 1 fails pre-dispatch,
    // the retry's fresh epoch clears it.
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(5).with_event(
        FaultKind::Stuck,
        9,
        1,
    )));
    let plan = c
        .plan(Primitive::AlltoAll, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let ver = c
        .execute_verified(&mut sys, &plan, None, &RecoveryPolicy::default())
        .unwrap();
    assert_eq!(ver.retries, 1);
    assert!(!ver.degraded);
    sys.detach_fault_plan();
    assert_eq!(snapshot(&sys), want);
}

// ---- run-level resilience: full application storms -------------------
//
// The supervisor tier lifts the per-collective guarantees above to whole
// application runs. Tiny 16-PE configurations keep the debug-mode storm
// affordable; the release-mode soak (`bench_json --chaos`) covers the
// benchmark-scale grid.

mod app_storms {
    use pidcomm::OptLevel;
    use pidcomm::{RunOutcome, RunPolicy};
    use pidcomm_apps::bfs::{default_source, run_bfs, run_bfs_resilient, BfsConfig};
    use pidcomm_apps::cc::{run_cc, run_cc_resilient, CcConfig};
    use pidcomm_apps::dlrm::{run_dlrm, run_dlrm_resilient, DlrmRunConfig};
    use pidcomm_apps::gnn::{run_gnn, run_gnn_resilient, GnnConfig, GnnVariant};
    use pidcomm_apps::mlp::{run_mlp, run_mlp_resilient, MlpConfig};
    use pidcomm_apps::{AppRun, ResilientRun};
    use pidcomm_data::dlrm::DlrmConfig;
    use pidcomm_data::{rmat, CsrGraph, RmatParams};
    use pim_sim::{DType, FaultPlan};
    use std::sync::{Arc, LazyLock};

    const PES: usize = 16;

    static GRAPH: LazyLock<CsrGraph> =
        LazyLock::new(|| rmat(9, 4, RmatParams::skewed(0xAB)).to_undirected());
    static GNN_GRAPH: LazyLock<CsrGraph> = LazyLock::new(|| rmat(8, 4, RmatParams::uniform(0x3D)));

    fn mlp_cfg() -> MlpConfig {
        MlpConfig {
            features: 128,
            layers: 2,
            pes: PES,
            opt: OptLevel::Full,
            threads: 1,
        }
    }

    fn bfs_cfg() -> BfsConfig {
        BfsConfig {
            pes: PES,
            opt: OptLevel::Full,
            threads: 1,
        }
    }

    fn cc_cfg() -> CcConfig {
        CcConfig {
            pes: PES,
            opt: OptLevel::Full,
            threads: 1,
        }
    }

    fn gnn_cfg() -> GnnConfig {
        GnnConfig {
            pes: PES,
            feature_dim: 16,
            layers: 2,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
            threads: 1,
        }
    }

    fn dlrm_cfg() -> DlrmRunConfig {
        DlrmRunConfig {
            workload: DlrmConfig {
                num_tables: 4,
                rows_per_table: 256,
                embedding_dim: 8,
                batch_size: 128,
                seed: 7,
            },
            pes: PES,
            opt: OptLevel::Full,
            threads: 1,
        }
    }

    /// Runs every app's resilient variant under a fresh fault plan from
    /// `fault` (fresh per run: the plan's epoch counter is stateful) and
    /// `policy`, in a fixed order.
    fn run_all(
        fault: &dyn Fn() -> Option<Arc<FaultPlan>>,
        policy: RunPolicy,
    ) -> Vec<(&'static str, ResilientRun)> {
        vec![
            (
                "MLP",
                run_mlp_resilient(&mlp_cfg(), fault(), policy).unwrap(),
            ),
            (
                "BFS",
                run_bfs_resilient(&bfs_cfg(), &GRAPH, default_source(&GRAPH), fault(), policy)
                    .unwrap(),
            ),
            (
                "CC",
                run_cc_resilient(&cc_cfg(), &GRAPH, fault(), policy).unwrap(),
            ),
            (
                "GNN",
                run_gnn_resilient(&gnn_cfg(), &GNN_GRAPH, fault(), policy).unwrap(),
            ),
            (
                "DLRM",
                run_dlrm_resilient(&dlrm_cfg(), fault(), policy).unwrap(),
            ),
        ]
    }

    fn plain_all() -> Vec<(&'static str, AppRun)> {
        vec![
            ("MLP", run_mlp(&mlp_cfg()).unwrap()),
            (
                "BFS",
                run_bfs(&bfs_cfg(), &GRAPH, default_source(&GRAPH)).unwrap(),
            ),
            ("CC", run_cc(&cc_cfg(), &GRAPH).unwrap()),
            ("GNN", run_gnn(&gnn_cfg(), &GNN_GRAPH).unwrap()),
            ("DLRM", run_dlrm(&dlrm_cfg()).unwrap()),
        ]
    }

    fn assert_same(app: &str, ctx: &str, a: &ResilientRun, b: &ResilientRun) {
        assert_eq!(a.outcome, b.outcome, "{app} {ctx}: outcome");
        assert_eq!(a.retries, b.retries, "{app} {ctx}: retries");
        assert_eq!(a.quarantined, b.quarantined, "{app} {ctx}: quarantined");
        assert_eq!(a.mismatched, b.mismatched, "{app} {ctx}: mismatched");
        assert_eq!(
            a.backoff_epochs, b.backoff_epochs,
            "{app} {ctx}: backoff epochs"
        );
        assert_eq!(
            a.checkpoint_restores, b.checkpoint_restores,
            "{app} {ctx}: checkpoint restores"
        );
        assert_eq!(
            a.modeled_ns.to_bits(),
            b.modeled_ns.to_bits(),
            "{app} {ctx}: modeled bits"
        );
        assert!(a.run == b.run, "{app} {ctx}: committed profile diverges");
    }

    /// With no fault plan, every resilient runner is bit-identical to its
    /// plain twin: same profile, same validation, zero recovery state.
    #[test]
    fn zero_fault_resilient_runs_match_plain_runners() {
        let clean = run_all(&|| None, RunPolicy::default());
        for ((app, res), (_, plain)) in clean.iter().zip(&plain_all()) {
            assert_eq!(res.outcome, RunOutcome::Completed, "{app}");
            assert_eq!(res.retries, 0, "{app}");
            assert!(res.quarantined.is_empty(), "{app}");
            assert_eq!(res.mismatched, 0, "{app}");
            assert_eq!(res.backoff_epochs, 0, "{app}");
            assert_eq!(res.checkpoint_restores, 0, "{app}");
            assert!(
                res.run == *plain,
                "{app}: zero-fault resilient run diverges from the plain runner"
            );
        }
    }

    /// Seeded storms over every app, three seeds, quarantine on and off:
    /// whatever each cell's typed outcome is, rerunning the cell must
    /// reproduce it exactly — outcome, recovery counters and modeled bits.
    #[test]
    fn storm_outcomes_are_deterministic() {
        for seed in [0xD00Du64, 0xBEE5, 0x5EED] {
            for quarantine in [true, false] {
                let fault = move || {
                    Some(Arc::new(
                        FaultPlan::new(seed)
                            .with_bit_flip_period(1 << 10)
                            .with_row_corrupt_period(1 << 11),
                    ))
                };
                let policy = if quarantine {
                    RunPolicy::default()
                } else {
                    RunPolicy::default().without_quarantine()
                };
                let ctx = format!("seed {seed:#x} quarantine {quarantine}");
                let first = run_all(&fault, policy);
                let second = run_all(&fault, policy);
                for ((app, a), (_, b)) in first.iter().zip(&second) {
                    assert_same(app, &ctx, a, b);
                }
            }
        }
    }

    /// The acceptance scenario: a persistent PE failure, fatal before
    /// this tier existed, now completes `Degraded` within a finite
    /// modeled-time deadline — the quarantined PE is reported, and the
    /// degraded-output delta is bounded by the run's own accounting.
    #[test]
    fn persistent_pe_failure_completes_degraded_within_deadline() {
        let dead: u32 = 5;
        let plain = plain_all();
        let fault = move || Some(Arc::new(FaultPlan::new(17).with_failed_pe(dead)));
        // A generous but finite budget: 4x the clean modeled time.
        let runs: Vec<(&str, ResilientRun, f64)> = run_all(&fault, RunPolicy::default())
            .into_iter()
            .zip(&plain)
            .map(|((app, r), (_, p))| {
                let deadline = 4.0 * p.profile.total_ns();
                (app, r, deadline)
            })
            .collect();
        for (app, run, deadline) in &runs {
            match &run.outcome {
                RunOutcome::Degraded { quarantined } => {
                    assert_eq!(quarantined, &vec![dead], "{app}: quarantine report");
                }
                other => panic!("{app}: expected Degraded, got {other:?}"),
            }
            assert!(
                run.modeled_ns <= *deadline,
                "{app}: degraded run blew the deadline ({} > {deadline} ns)",
                run.modeled_ns
            );
            // Degraded, not wrong-silently: the delta is reported.
            assert!(
                !run.run.validated || run.mismatched == 0,
                "{app}: validation flag contradicts the mismatch count"
            );
        }
        // Re-run under an *enforced* deadline: the outcome stays Degraded
        // because the run fits the budget.
        let policy = RunPolicy::default().with_deadline_ns(runs[0].2);
        let r = run_mlp_resilient(&mlp_cfg(), fault(), policy).unwrap();
        assert!(
            matches!(r.outcome, RunOutcome::Degraded { .. }),
            "MLP under enforced deadline: {:?}",
            r.outcome
        );
    }
}

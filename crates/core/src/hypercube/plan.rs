//! Entangled-group-level execution plans for collective calls.
//!
//! The streaming engine does not operate on individual communication
//! groups: bursts always move whole entangled groups, and groups smaller
//! than 8 lanes are *packed* — sibling instances occupy the remaining lanes
//! and are served by the very same bursts (Fig. 9b of the paper). This
//! module decomposes a collective call into [`EgCluster`]s, the units the
//! engine streams over.

use pim_sim::domain::{rotation_within, LanePerm, IDENTITY_PERM};
use pim_sim::geometry::{DimmGeometry, EgId, LANES};

use crate::error::Result;
use crate::hypercube::{CommGroup, DimMask, HypercubeManager};

/// One communication group's position inside an [`EgCluster`].
///
/// Group rank `r` decomposes as `r = lane_rank + L * eg_rank`, where
/// `lane_rank` indexes [`GroupPlan::lanes`] (the physical lanes the group
/// occupies within each of the cluster's entangled groups) and `eg_rank`
/// indexes [`EgCluster::egs`]. This regular decomposition is guaranteed by
/// the power-of-two hypercube shape and is asserted during planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Index of the group in [`HypercubeManager::groups`] order.
    pub group_id: usize,
    /// Physical lane of each lane rank (length `L`, possibly strided).
    pub lanes: Vec<usize>,
}

/// A set of entangled groups processed together, with all the communication
/// groups packed into their lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgCluster {
    /// Entangled groups, indexed by eg-rank `m`.
    pub egs: Vec<EgId>,
    /// Memory channel of each entangled group (for bus-parallelism
    /// accounting).
    pub channels: Vec<usize>,
    /// The packed communication groups (disjoint lanes, together covering
    /// all 8 lanes).
    pub groups: Vec<GroupPlan>,
    /// Lane ranks per group (`L`); identical for every packed group.
    pub lane_count: usize,
}

impl EgCluster {
    /// Number of entangled groups (`M`).
    pub fn eg_count(&self) -> usize {
        self.egs.len()
    }

    /// Communication-group size `N = L * M`.
    pub fn group_size(&self) -> usize {
        self.lane_count * self.egs.len()
    }

    /// The combined 8-lane permutation rotating every packed group's lanes
    /// by `k` positions (lane rank `i` moves to lane rank `(i + k) % L`).
    ///
    /// Because all packed instances rotate in lock-step, one register
    /// shuffle serves them all — the heart of multi-instance packing.
    pub fn rotation(&self, k: usize) -> LanePerm {
        let mut perm = IDENTITY_PERM;
        for g in &self.groups {
            let rot = rotation_within(&g.lanes, k % self.lane_count);
            // Merge: `rot` only deviates from identity on g's lanes, which
            // are disjoint from other groups' lanes.
            for (dst, &src) in rot.iter().enumerate() {
                if src != dst {
                    perm[dst] = src;
                }
            }
        }
        perm
    }
}

/// Decomposes the communication groups of `mask` into clusters.
///
/// # Errors
///
/// Propagates mask/shape validation errors.
///
/// # Panics
///
/// Panics if a group's members do not decompose regularly into
/// (lane rank, eg rank) — impossible for shapes accepted by
/// [`crate::hypercube::HypercubeShape::new`] covering the whole system.
pub fn build_clusters(manager: &HypercubeManager, mask: &DimMask) -> Result<Vec<EgCluster>> {
    let groups = manager.groups(mask)?;
    build_clusters_from_groups(manager.geometry(), &groups)
}

/// Clusters pre-enumerated groups (exposed for tests and for topologies
/// that construct groups directly).
pub fn build_clusters_from_groups(
    geometry: &DimmGeometry,
    groups: &[CommGroup],
) -> Result<Vec<EgCluster>> {
    // Preserve first-appearance order of EG sets so cluster order is
    // deterministic.
    let mut clusters: Vec<EgCluster> = Vec::new();

    for group in groups {
        let n = group.members.len();
        // Entangled groups in order of first appearance.
        let mut egs: Vec<EgId> = Vec::new();
        for &pe in &group.members {
            let eg = geometry.group_of(pe);
            if egs.last() != Some(&eg) && !egs.contains(&eg) {
                egs.push(eg);
            }
        }
        let m = egs.len();
        assert_eq!(
            n % m,
            0,
            "group {} does not tile its entangled groups",
            group.id
        );
        let lane_count = n / m;
        assert!(
            lane_count <= LANES,
            "group {} occupies more than 8 lanes per entangled group",
            group.id
        );

        // Lane pattern from the first EG's members; assert regularity.
        let lanes: Vec<usize> = group.members[..lane_count]
            .iter()
            .map(|&pe| geometry.lane_of(pe))
            .collect();
        for (rank, &pe) in group.members.iter().enumerate() {
            let (i, mm) = (rank % lane_count, rank / lane_count);
            assert_eq!(
                geometry.lane_of(pe),
                lanes[i],
                "irregular lane pattern in group {}",
                group.id
            );
            assert_eq!(
                geometry.group_of(pe),
                egs[mm],
                "irregular entangled-group pattern in group {}",
                group.id
            );
        }

        let plan = GroupPlan {
            group_id: group.id,
            lanes,
        };

        if let Some(cluster) = clusters.iter_mut().find(|c| c.egs == egs) {
            assert_eq!(
                cluster.lane_count, lane_count,
                "packed groups disagree on lane count"
            );
            cluster.groups.push(plan);
        } else {
            let channels = egs.iter().map(|&e| geometry.channel_of_group(e)).collect();
            clusters.push(EgCluster {
                egs,
                channels,
                groups: vec![plan],
                lane_count,
            });
        }
    }

    // Every lane of every cluster must be owned by exactly one packed group
    // (the hypercube covers all PEs).
    for c in &clusters {
        let mut owned = [false; LANES];
        for g in &c.groups {
            for &l in &g.lanes {
                assert!(!owned[l], "lane {l} claimed twice in cluster");
                owned[l] = true;
            }
        }
        assert!(owned.iter().all(|&o| o), "cluster leaves lanes unowned");
    }

    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::HypercubeShape;
    use pim_sim::domain::is_permutation;

    fn manager(dims: &[usize], geom: DimmGeometry) -> HypercubeManager {
        HypercubeManager::new(HypercubeShape::new(dims.to_vec()).unwrap(), geom).unwrap()
    }

    #[test]
    fn full_lane_groups_one_per_cluster() {
        // [8, 4] on 32 PEs: x groups are whole EGs.
        let m = manager(&[8, 4], DimmGeometry::new(2, 1, 2));
        let clusters = build_clusters(&m, &"10".parse().unwrap()).unwrap();
        assert_eq!(clusters.len(), 4);
        for c in &clusters {
            assert_eq!(c.lane_count, 8);
            assert_eq!(c.eg_count(), 1);
            assert_eq!(c.groups.len(), 1);
            assert_eq!(c.group_size(), 8);
        }
    }

    #[test]
    fn sub_lane_groups_pack_into_clusters() {
        // [4, 2, 4]: x groups (size 4) pack two per entangled group.
        let m = manager(&[4, 2, 4], DimmGeometry::new(2, 1, 2));
        let clusters = build_clusters(&m, &"100".parse().unwrap()).unwrap();
        assert_eq!(clusters.len(), 4, "one cluster per EG");
        for c in &clusters {
            assert_eq!(c.lane_count, 4);
            assert_eq!(c.groups.len(), 2, "two packed instances");
            let mut lanes: Vec<usize> = c.groups.iter().flat_map(|g| g.lanes.clone()).collect();
            lanes.sort_unstable();
            assert_eq!(lanes, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
    }

    #[test]
    fn strided_lane_groups() {
        // [4, 2, 4] mask "010": y groups have stride-4 lanes {l, l+4}.
        let m = manager(&[4, 2, 4], DimmGeometry::new(2, 1, 2));
        let clusters = build_clusters(&m, &"010".parse().unwrap()).unwrap();
        assert_eq!(clusters.len(), 4);
        for c in &clusters {
            assert_eq!(c.lane_count, 2);
            assert_eq!(c.groups.len(), 4);
            for g in &c.groups {
                assert_eq!(g.lanes[1], g.lanes[0] + 4, "y stride");
            }
        }
    }

    #[test]
    fn multi_eg_groups() {
        // [4, 2, 4] mask "101": xz groups of 16 span 2 EGs with 8 lanes.
        let m = manager(&[4, 2, 4], DimmGeometry::new(2, 1, 2));
        let clusters = build_clusters(&m, &"101".parse().unwrap()).unwrap();
        for c in &clusters {
            assert_eq!(c.group_size(), 16);
            assert!(c.lane_count == 4, "x covers 4 lanes, z spans EGs");
            assert_eq!(c.eg_count(), 4);
        }
    }

    #[test]
    fn straddling_dimension() {
        // [16, 4] on 64 PEs: x=16 straddles the lane boundary (8 lanes x 2 EGs).
        let m = manager(&[16, 4], DimmGeometry::single_rank());
        let clusters = build_clusters(&m, &"10".parse().unwrap()).unwrap();
        assert_eq!(clusters.len(), 4);
        for c in &clusters {
            assert_eq!(c.lane_count, 8);
            assert_eq!(c.eg_count(), 2);
            assert_eq!(c.group_size(), 16);
        }
    }

    #[test]
    fn rotations_are_permutations_and_identity_at_zero() {
        let m = manager(&[4, 2, 4], DimmGeometry::new(2, 1, 2));
        for mask in ["100", "010", "001", "110", "101", "111"] {
            let clusters = build_clusters(&m, &mask.parse().unwrap()).unwrap();
            for c in &clusters {
                assert_eq!(c.rotation(0), IDENTITY_PERM, "{mask}");
                for k in 0..c.lane_count {
                    assert!(is_permutation(&c.rotation(k)), "{mask} k={k}");
                }
            }
        }
    }

    #[test]
    fn rotation_moves_each_groups_lanes_internally() {
        let m = manager(&[4, 2, 4], DimmGeometry::new(2, 1, 2));
        let clusters = build_clusters(&m, &"100".parse().unwrap()).unwrap();
        let c = &clusters[0];
        let perm = c.rotation(1);
        for g in &c.groups {
            for (i, &lane) in g.lanes.iter().enumerate() {
                let dst = g.lanes[(i + 1) % c.lane_count];
                assert_eq!(perm[dst], lane, "lane {lane} rotates within its group");
            }
        }
    }

    #[test]
    fn paper_figure6_mapping() {
        // Fig. 6: shape [x=8(2^3), y=2, z=4] on ch=2, r=2, b=2, c=2... we
        // use the text's [z=2,y=1,x=3] exponents: 8x2x4 = 64 PEs on a
        // 2-channel, 2-rank, 2-bank geometry.
        let m = manager(&[8, 2, 4], DimmGeometry::new(2, 2, 2));
        // x occupies whole entangled groups.
        let cx = build_clusters(&m, &"100".parse().unwrap()).unwrap();
        assert!(cx.iter().all(|c| c.lane_count == 8 && c.eg_count() == 1));
        // z spans channels (last dimension -> channel level).
        let cz = build_clusters(&m, &"001".parse().unwrap()).unwrap();
        for c in &cz {
            let unique: std::collections::BTreeSet<usize> = c.channels.iter().copied().collect();
            assert_eq!(unique.len(), 2, "z slices span both channels");
        }
    }
}

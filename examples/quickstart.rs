//! Quickstart: set up a simulated PIM system, define a virtual hypercube,
//! and run a few collectives — the PID-Comm "hello world".
//!
//! Run with `cargo run --example quickstart`.

use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single-channel UPMEM-like system: 4 ranks x 8 chips x 8 banks
    // = 256 PEs.
    let geom = DimmGeometry::upmem_256();
    let mut sys = PimSystem::new(geom);
    println!("system: {geom}");

    // Abstract the PEs as a 16x16 hypercube (the paper's Fig. 5 idea).
    let shape = HypercubeShape::new(vec![16, 16])?;
    let manager = HypercubeManager::new(shape, geom)?;
    let comm = Communicator::new(manager);

    // Every PE contributes 2048 u64 counters, all equal to its PE id
    // (large enough that transfer time, not launch overhead, dominates).
    let b = 2048 * 8;
    for pe in geom.pes() {
        let vals: Vec<u8> = (0..2048u64)
            .flat_map(|_| (pe.0 as u64).to_le_bytes())
            .collect();
        sys.pe_mut(pe).write(0, &vals);
    }

    // AllReduce along the x axis: each row of 16 PEs sums its counters —
    // 16 independent instances run at once (multi-instance invocation).
    let report = comm.all_reduce(
        &mut sys,
        &DimMask::parse("10")?,
        &BufferSpec::new(0, 32768, b).with_dtype(DType::U64),
        ReduceKind::Sum,
    )?;
    println!("AllReduce(x):             {report}");

    // The first row's PEs are 0..16, so every sum is 0+1+...+15 = 120.
    let first = sys
        .pe_mut(geom.pes().next().unwrap())
        .read(32768, 8)
        .to_vec();
    assert_eq!(u64::from_le_bytes(first.try_into().unwrap()), 120);

    // Multi-instance AlltoAll along y.
    let report = comm.all_to_all(
        &mut sys,
        &DimMask::parse("01")?,
        &BufferSpec::new(0, 65536, b).with_dtype(DType::U64),
    )?;
    println!("AlltoAll(y):              {report}");

    // Compare against the conventional CPU-mediated baseline.
    let baseline = Communicator::new(comm.manager().clone()).with_opt(OptLevel::Baseline);
    let report = baseline.all_to_all(
        &mut sys,
        &DimMask::parse("01")?,
        &BufferSpec::new(0, 131072, b).with_dtype(DType::U64),
    )?;
    println!("AlltoAll(y) conventional: {report}");
    println!("-> PID-Comm's streaming path avoids host-memory staging entirely.");
    Ok(())
}

//! Synthetic graph generation and partitioning.
//!
//! The paper's graph workloads use LiveJournal (LJ) and Gowalla (LG) for
//! BFS/CC, and PubMed (PM) / Reddit (RD) for GNNs. None of those can ship
//! with this reproduction, so we substitute seeded R-MAT graphs with
//! matching degree skew, scaled to simulator-friendly sizes (see
//! DESIGN.md §1). The communication structure of the benchmarks — frontier
//! growth for BFS, label mixing for CC, tile density for GNN SpMM —
//! depends on size and power-law shape, both preserved.

use crate::rng::SmallRng;

/// A directed graph in compressed-sparse-row form, vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list, sorting and deduplicating.
    pub fn from_edges(num_vertices: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0usize; num_vertices + 1];
        for &(s, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let targets = edges.into_iter().map(|(_, t)| t).collect();
        Self { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of vertex `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Iterator over all edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Returns the graph with every edge mirrored (the paper preprocesses
    /// CC inputs from directed to undirected edges, §VII-D).
    pub fn to_undirected(&self) -> CsrGraph {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges() * 2);
        for (s, t) in self.edges() {
            edges.push((s, t));
            edges.push((t, s));
        }
        CsrGraph::from_edges(self.num_vertices(), edges)
    }
}

/// R-MAT generator parameters.
///
/// The classic (a, b, c, d) recursive quadrant probabilities; (0.57, 0.19,
/// 0.19, 0.05) approximates social-network skew, (0.25, 0.25, 0.25, 0.25)
/// degenerates to an Erdős–Rényi-like graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl RmatParams {
    /// Social-network-like skew.
    pub fn skewed(seed: u64) -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    /// Uniform quadrants (no skew).
    pub fn uniform(seed: u64) -> Self {
        Self {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and roughly
/// `edge_factor * 2^scale` distinct directed edges (self-loops removed).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams) -> CsrGraph {
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let m = n * edge_factor;
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let r: f64 = rng.gen_f64();
            let (dx, dy) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            let mx = (x0 + x1) / 2;
            let my = (y0 + y1) / 2;
            if dx == 0 {
                x1 = mx
            } else {
                x0 = mx
            }
            if dy == 0 {
                y1 = my
            } else {
                y0 = my
            }
        }
        if x0 != y0 {
            edges.push((x0 as u32, y0 as u32));
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Named graph presets standing in for the paper's datasets (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphPreset {
    /// LiveJournal-like: large, skewed (scaled from 4.8M/69M).
    LiveJournalLike,
    /// Gowalla-like (LG): smaller location-based social network.
    GowallaLike,
    /// PubMed-like (PM): small citation graph for GNNs.
    PubMedLike,
    /// Reddit-like (RD): dense post-comment graph for GNNs.
    RedditLike,
}

impl GraphPreset {
    /// Short label used in benchmark tables (matching the paper's).
    pub fn label(self) -> &'static str {
        match self {
            GraphPreset::LiveJournalLike => "LJ",
            GraphPreset::GowallaLike => "LG",
            GraphPreset::PubMedLike => "PM",
            GraphPreset::RedditLike => "RD",
        }
    }

    /// Generates the preset graph (deterministic).
    ///
    /// Sizes are scaled down ~64× from the originals so functional
    /// simulation stays tractable; the scale factor is identical across
    /// presets, preserving their relative sizes.
    pub fn generate(self) -> CsrGraph {
        match self {
            // LJ: 4.8M vertices / 69M edges -> 64k / ~1M.
            GraphPreset::LiveJournalLike => rmat(16, 16, RmatParams::skewed(0x117e)),
            // LG (Gowalla): 197k / 1.9M -> 16k / ~160k.
            GraphPreset::GowallaLike => rmat(14, 10, RmatParams::skewed(0x6a11a)),
            // PM (PubMed): 19.7k / 88.6k -> kept near-original 16k / ~72k.
            GraphPreset::PubMedLike => rmat(14, 4, RmatParams::uniform(0x9d)),
            // RD (Reddit): 233k / 11.6M (dense!) -> 16k / ~800k.
            GraphPreset::RedditLike => rmat(14, 50, RmatParams::skewed(0x4edd17)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (2, 3), (0, 1)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3, "duplicates removed");
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn undirected_mirrors_edges() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.num_edges(), 4);
        assert_eq!(u.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 4, RmatParams::skewed(7));
        let b = rmat(8, 4, RmatParams::skewed(7));
        assert_eq!(a, b);
        let c = rmat(8, 4, RmatParams::skewed(8));
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_has_requested_scale() {
        let g = rmat(10, 8, RmatParams::skewed(1));
        assert_eq!(g.num_vertices(), 1024);
        // Dedup may remove a few, but the bulk should be there.
        assert!(g.num_edges() > 1024 * 6, "got {}", g.num_edges());
        // No self loops.
        assert!(g.edges().all(|(s, t)| s != t));
    }

    #[test]
    fn skewed_rmat_is_skewed() {
        let g = rmat(12, 8, RmatParams::skewed(3));
        let mut degrees: Vec<usize> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degrees[..degrees.len() / 100].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top1pct * 5 > total,
            "top 1% of vertices should hold >20% of edges (got {top1pct}/{total})"
        );
    }

    #[test]
    fn presets_generate() {
        let g = GraphPreset::PubMedLike.generate();
        assert_eq!(g.num_vertices(), 1 << 14);
        assert_eq!(GraphPreset::LiveJournalLike.label(), "LJ");
    }
}

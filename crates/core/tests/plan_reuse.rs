//! Persistent collective plans are pure derivations: executing one warm
//! plan many times — across thread budgets, arena-recycled systems and
//! interleaved other traffic — must be byte-identical to cold per-call
//! planning, for every primitive and optimization level. The recorded
//! sweep speedups and the apps' hoisted plans rest on this property.

use pidcomm::{
    BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel, PlanCache,
    Primitive, ReduceKind,
};
use pim_sim::{DType, DimmGeometry, PimSystem, SystemArena};

const B: usize = 512;
const DST: usize = 8192;

fn comm(opt: OptLevel, threads: usize) -> Communicator {
    let geom = DimmGeometry::single_rank(); // 64 PEs
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    Communicator::new(manager)
        .with_opt(opt)
        .with_threads(threads)
}

fn fresh_filled(arena: &mut SystemArena) -> PimSystem {
    let geom = DimmGeometry::single_rank();
    let mut sys = arena.system(geom);
    for pe in geom.pes() {
        let fill: Vec<u8> = (0..B)
            .map(|i| ((pe.0 as usize * 31 + i * 7) % 251) as u8)
            .collect();
        sys.pe_mut(pe).write(0, &fill);
    }
    sys
}

/// Full MRAM image of the src+dst windows on every PE.
fn snapshot(sys: &PimSystem) -> Vec<Vec<u8>> {
    sys.geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, DST + 16 * B))
        .collect()
}

fn spec() -> BufferSpec {
    BufferSpec::new(0, DST, B)
}

fn host_in(prim: Primitive, n: usize, groups: usize) -> Option<Vec<Vec<u8>>> {
    match prim {
        Primitive::Scatter => Some(
            (0..groups)
                .map(|g| (0..n * B).map(|i| ((g * 13 + i) % 241) as u8).collect())
                .collect(),
        ),
        Primitive::Broadcast => Some(
            (0..groups)
                .map(|g| (0..B).map(|i| ((g * 17 + i) % 239) as u8).collect())
                .collect(),
        ),
        _ => None,
    }
}

#[test]
fn warm_plan_reexecution_matches_cold_per_call_planning() {
    let mask: DimMask = "10".parse().unwrap();
    for opt in [OptLevel::Full, OptLevel::InRegister, OptLevel::Baseline] {
        for prim in Primitive::ALL {
            // Cold reference: the one-shot path on a fresh system.
            let c = comm(opt, 1);
            let n = 8;
            let groups = 8;
            let hin = host_in(prim, n, groups);
            let mut arena = SystemArena::new();
            let mut sys = fresh_filled(&mut arena);
            let (ref_report, ref_host_out) = match prim {
                Primitive::AlltoAll => (c.all_to_all(&mut sys, &mask, &spec()).unwrap(), None),
                Primitive::ReduceScatter => (
                    c.reduce_scatter(&mut sys, &mask, &spec(), ReduceKind::Sum)
                        .unwrap(),
                    None,
                ),
                Primitive::AllReduce => (
                    c.all_reduce(&mut sys, &mask, &spec(), ReduceKind::Sum)
                        .unwrap(),
                    None,
                ),
                Primitive::AllGather => (c.all_gather(&mut sys, &mask, &spec()).unwrap(), None),
                Primitive::Scatter => (
                    c.scatter(&mut sys, &mask, &spec(), hin.as_ref().unwrap())
                        .unwrap(),
                    None,
                ),
                Primitive::Gather => {
                    let (r, out) = c.gather(&mut sys, &mask, &spec()).unwrap();
                    (r, Some(out))
                }
                Primitive::Reduce => {
                    let (r, out) = c.reduce(&mut sys, &mask, &spec(), ReduceKind::Sum).unwrap();
                    (r, Some(out))
                }
                Primitive::Broadcast => (
                    c.broadcast(&mut sys, &mask, &spec(), hin.as_ref().unwrap())
                        .unwrap(),
                    None,
                ),
            };
            let ref_mram = snapshot(&sys);
            arena.recycle(sys);

            // Warm plan: one plan, many executions, across thread budgets
            // and arena-recycled systems.
            for threads in [1usize, 2, 0] {
                let c = comm(opt, threads);
                let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
                for round in 0..3 {
                    let mut sys = fresh_filled(&mut arena);
                    let (report, out) = match prim {
                        Primitive::Scatter | Primitive::Broadcast => (
                            plan.execute_with_host(&mut sys, hin.as_ref().unwrap())
                                .unwrap(),
                            None,
                        ),
                        Primitive::Gather | Primitive::Reduce => {
                            let (r, o) = plan.execute_to_host(&mut sys).unwrap();
                            (r, Some(o))
                        }
                        _ => (plan.execute(&mut sys).unwrap(), None),
                    };
                    assert!(
                        report == ref_report,
                        "{prim} {opt:?} report diverges (threads={threads}, round={round})"
                    );
                    assert!(
                        out == ref_host_out,
                        "{prim} {opt:?} host output diverges (threads={threads}, round={round})"
                    );
                    assert!(
                        snapshot(&sys) == ref_mram,
                        "{prim} {opt:?} MRAM diverges (threads={threads}, round={round})"
                    );
                    arena.recycle(sys);
                }
            }
        }
    }
}

#[test]
fn execute_variants_enforce_host_buffer_shape() {
    let c = comm(OptLevel::Full, 1);
    let mask: DimMask = "10".parse().unwrap();
    let aa = c
        .plan(Primitive::AlltoAll, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let sc = c
        .plan(Primitive::Scatter, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let ga = c
        .plan(Primitive::Gather, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let mut arena = SystemArena::new();
    let mut sys = fresh_filled(&mut arena);

    // Wrong execute variant for the planned primitive.
    assert!(sc.execute(&mut sys).is_err(), "Scatter needs host input");
    assert!(ga.execute(&mut sys).is_err(), "Gather produces host output");
    assert!(aa.execute_with_host(&mut sys, &[]).is_err());
    assert!(aa.execute_to_host(&mut sys).is_err());
    // Wrong host buffer count still caught at execute time.
    assert!(sc.execute_with_host(&mut sys, &[vec![0u8; 8 * B]]).is_err());
    // Geometry mismatch caught at execute time.
    let mut small = PimSystem::new(DimmGeometry::single_group());
    assert!(aa.execute(&mut small).is_err());
}

#[test]
fn plan_cache_plans_once_per_distinct_key() {
    let c = comm(OptLevel::Full, 1);
    let mask: DimMask = "10".parse().unwrap();
    let mut cache = PlanCache::new();

    let p1 = c
        .plan_cached(
            &mut cache,
            Primitive::AllReduce,
            &mask,
            &spec(),
            ReduceKind::Sum,
        )
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (0, 1));
    // Same key: served from the pool, and it is the same plan.
    let p2 = c
        .plan_cached(
            &mut cache,
            Primitive::AllReduce,
            &mask,
            &spec(),
            ReduceKind::Sum,
        )
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert!(std::sync::Arc::ptr_eq(&p1, &p2));

    // Any key ingredient change is a distinct plan: primitive, op, mask,
    // spec, opt level, thread budget.
    c.plan_cached(
        &mut cache,
        Primitive::ReduceScatter,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    c.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Min,
    )
    .unwrap();
    c.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &"01".parse().unwrap(),
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    c.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &BufferSpec::new(0, DST, 2 * B),
        ReduceKind::Sum,
    )
    .unwrap();
    let c2 = comm(OptLevel::Baseline, 1);
    c2.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    let c3 = comm(OptLevel::Full, 2);
    c3.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 7));
    assert_eq!(cache.len(), 7);

    // Warm lookups of every key replan nothing.
    let misses = cache.misses();
    c.plan_cached(
        &mut cache,
        Primitive::ReduceScatter,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    c3.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    assert_eq!(cache.misses(), misses, "warm keys must not replan");
    assert_eq!(cache.hits(), 3);

    // A failed build (misaligned spec) is an error and never cached.
    assert!(c
        .plan_cached(
            &mut cache,
            Primitive::AlltoAll,
            &mask,
            &BufferSpec::new(0, DST, 12),
            ReduceKind::Sum
        )
        .is_err());
    assert_eq!(cache.len(), 7);
}

#[test]
fn bounded_plan_cache_evicts_least_recently_used() {
    let c = comm(OptLevel::Full, 1);
    let mask: DimMask = "10".parse().unwrap();
    let mut cache = PlanCache::with_capacity(2);
    assert_eq!(cache.capacity(), Some(2));

    let key_a = (Primitive::AllReduce, ReduceKind::Sum);
    let key_b = (Primitive::ReduceScatter, ReduceKind::Sum);
    let key_c = (Primitive::AllReduce, ReduceKind::Min);
    let get = |cache: &mut PlanCache, (prim, op): (Primitive, ReduceKind)| {
        c.plan_cached(cache, prim, &mask, &spec(), op).unwrap()
    };

    get(&mut cache, key_a); // miss: {A}
    get(&mut cache, key_b); // miss: {A, B}
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 2, 0));
    assert_eq!(cache.len(), 2);

    get(&mut cache, key_a); // hit: A is now the most recently used
    get(&mut cache, key_c); // miss at capacity: evicts B, the LRU entry
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 3, 1));
    assert_eq!(cache.len(), 2);

    get(&mut cache, key_a); // still resident
    get(&mut cache, key_c); // still resident
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (3, 3, 1));
    get(&mut cache, key_b); // was evicted: replans, evicting A (LRU)
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (3, 4, 2));
    get(&mut cache, key_c); // survived the last eviction
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (4, 4, 2));
    assert_eq!(cache.len(), 2);

    // The default cache is unbounded and never evicts.
    assert_eq!(PlanCache::new().capacity(), None);
}

#[test]
fn plan_cache_snapshot_deltas_scope_a_workload() {
    use pidcomm::PlanCacheStats;

    let c = comm(OptLevel::Full, 1);
    let mask: DimMask = "10".parse().unwrap();
    let mut cache = PlanCache::new();

    c.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    let before = cache.snapshot();
    assert_eq!(
        before,
        PlanCacheStats {
            hits: 0,
            misses: 1,
            evictions: 0,
            len: 1
        }
    );

    // A scoped workload: one warm hit, one new plan.
    c.plan_cached(
        &mut cache,
        Primitive::AllReduce,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();
    c.plan_cached(
        &mut cache,
        Primitive::AllGather,
        &mask,
        &spec(),
        ReduceKind::Sum,
    )
    .unwrap();

    let delta = cache.snapshot().delta(&before);
    assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 1, 0));
    assert_eq!(delta.len, 2, "delta.len reports current occupancy");
}

#[test]
fn warm_multihost_plan_matches_one_shot_calls() {
    use pidcomm::{LinkModel, MultiHost};

    let geom = DimmGeometry::single_rank();
    let hosts = 3;
    let mk_systems = |bytes: usize| -> Vec<PimSystem> {
        (0..hosts)
            .map(|h| {
                let mut sys = PimSystem::new(geom);
                for pe in geom.pes() {
                    let data: Vec<u8> = (0..bytes)
                        .map(|i| ((h * 19 + pe.0 as usize * 7 + i) % 113) as u8)
                        .collect();
                    sys.pe_mut(pe).write(0, &data);
                }
                sys
            })
            .collect()
    };
    let comms: Vec<Communicator> = (0..hosts)
        .map(|_| {
            let m = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
            Communicator::new(m).with_threads(1)
        })
        .collect();
    let mh = MultiHost::new(comms, LinkModel::ethernet_10g()).unwrap();
    let mask: DimMask = "10".parse().unwrap();
    let b = 64;
    let spec = BufferSpec::new(0, 1024, b).with_dtype(DType::U64);

    let mut systems = mk_systems(b);
    let reference = mh
        .all_reduce(&mut systems, &mask, &spec, ReduceKind::Sum)
        .unwrap();
    let ref_mram: Vec<Vec<Vec<u8>>> = systems
        .iter()
        .map(|s| {
            s.geometry()
                .pes()
                .map(|pe| s.pe(pe).peek(0, 2048))
                .collect()
        })
        .collect();

    let plan = mh
        .plan(Primitive::AllReduce, &mask, &spec, ReduceKind::Sum)
        .unwrap();
    for round in 0..3 {
        let mut systems = mk_systems(b);
        let report = plan.execute(&mut systems).unwrap();
        assert!(
            report == reference,
            "multi-host report diverges (round {round})"
        );
        let mram: Vec<Vec<Vec<u8>>> = systems
            .iter()
            .map(|s| {
                s.geometry()
                    .pes()
                    .map(|pe| s.pe(pe).peek(0, 2048))
                    .collect()
            })
            .collect();
        assert!(mram == ref_mram, "multi-host MRAM diverges (round {round})");
    }
}

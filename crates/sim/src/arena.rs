//! Reusable allocation arena for [`PimSystem`]s and host staging buffers.
//!
//! Every benchmark cell builds a `PimSystem` (up to 1024 PEs, each with
//! paged MRAM segments and a reorder scratch) plus multi-megabyte host
//! staging buffers for its scatters, uses them for one run and drops the
//! lot — so a sweep over dozens of cells spends a measurable slice of its
//! serial wall on the allocator. A [`SystemArena`] closes that gap: each
//! sweep worker owns one arena, returns its system and buffers when a cell
//! finishes, and the next cell on that worker checks them out again,
//! zeroed in place instead of reallocated.
//!
//! # Lifecycle and determinism contract
//!
//! * [`SystemArena::system`] returns a pooled system with *matching
//!   geometry* after [`PimSystem::reset`] — functionally indistinguishable
//!   from `PimSystem::new(geom)` (all reads observe zeros, meter empty) —
//!   or builds a fresh one on a pool miss. Pooled systems keep their
//!   [`crate::TimeModel`]; the arena is meant for homogeneous sweeps where
//!   every cell uses the default calibration, and callers with custom
//!   models should build those systems directly.
//! * [`SystemArena::recycle`] returns a system to the pool. Skipping it
//!   (e.g. on an error path) is safe — the system just drops and the next
//!   checkout pays a fresh allocation.
//! * [`SystemArena::bytes`] / [`SystemArena::recycle_bytes`] do the same
//!   for plain `Vec<u8>` staging buffers: `bytes(len)` is observationally
//!   `vec![0u8; len]`, reusing the largest recycled capacity.
//!   [`SystemArena::raw_bytes`] draws on the same pool without the clear
//!   (contents unspecified) for fully-overwritten images — the prepared
//!   tier's staged rows (`PreparedScatter::stage_in` checks one out,
//!   `retire` returns it), so iteration-heavy sweeps re-stage into one
//!   allocation across cells.
//! * [`SystemArena::byte_set`] / [`SystemArena::index_lists`] (with their
//!   `recycle_*` twins) pool the two remaining per-cell buffer classes:
//!   the GNN's per-group scatter payloads (`Vec<Vec<u8>>`) and the DLRM's
//!   per-(source, destination) index routing lists (`Vec<Vec<u64>>`). A
//!   checkout is observationally fresh — zero-filled buffers, empty
//!   lists — with only spare capacity carried over.
//!
//! Because a checkout is always all-zero with a cleared meter, two
//! consecutive cells on one worker can never observe each other's state —
//! pinned by `app_sweep_determinism`'s arena-reuse test.

use std::any::Any;

use crate::geometry::DimmGeometry;
use crate::system::{Checkpoint, PimSystem};

/// Per-worker pool of [`PimSystem`]s and host staging buffers. See the
/// module docs for the lifecycle and determinism contract.
#[derive(Default)]
pub struct SystemArena {
    systems: Vec<PimSystem>,
    buffers: Vec<Vec<u8>>,
    byte_sets: Vec<Vec<Vec<u8>>>,
    index_lists: Vec<Vec<Vec<u64>>>,
    checkpoints: Vec<Checkpoint>,
    extensions: Vec<Box<dyn Any + Send>>,
}

impl core::fmt::Debug for SystemArena {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SystemArena")
            .field("systems", &self.systems.len())
            .field("buffers", &self.buffers.len())
            .field("byte_sets", &self.byte_sets.len())
            .field("index_lists", &self.index_lists.len())
            .field("checkpoints", &self.checkpoints.len())
            .field("extensions", &self.extensions.len())
            .finish()
    }
}

impl SystemArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out an all-zero system with geometry `geom`: a reset pooled
    /// system when one with matching geometry is available, a fresh
    /// [`PimSystem::new`] otherwise.
    pub fn system(&mut self, geom: DimmGeometry) -> PimSystem {
        match self.systems.iter().position(|s| *s.geometry() == geom) {
            Some(i) => {
                let mut sys = self.systems.swap_remove(i);
                sys.reset();
                sys
            }
            None => PimSystem::new(geom),
        }
    }

    /// Returns a system to the pool for the next checkout.
    pub fn recycle(&mut self, sys: PimSystem) {
        self.systems.push(sys);
    }

    /// Checks out a zero-filled buffer of exactly `len` bytes, reusing the
    /// largest recycled allocation when one exists.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut buf = match self
            .buffers
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
        {
            Some((i, _)) => self.buffers.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// As [`SystemArena::bytes`], but the contents are unspecified
    /// (recycled bytes are handed back as-is): the checkout for callers
    /// that overwrite every byte before reading any — the prepared tier's
    /// staged row images. Skipping the clear matters there: the image can
    /// run to hundreds of megabytes, and [`SystemArena::bytes`] would
    /// memset all of it only for the staging pass to overwrite it again.
    /// A fresh checkout allocates with `vec![0u8; len]` (lazily zeroed
    /// pages), so first-touch cost is paid once, by the writer.
    pub fn raw_bytes(&mut self, len: usize) -> Vec<u8> {
        match self
            .buffers
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
        {
            Some((i, _)) => {
                let mut buf = self.buffers.swap_remove(i);
                // Grows (zero-filling only the growth) or truncates; the
                // recycled prefix keeps whatever it held.
                buf.resize(len, 0);
                buf
            }
            None => vec![0u8; len],
        }
    }

    /// Returns a staging buffer to the pool.
    pub fn recycle_bytes(&mut self, buf: Vec<u8>) {
        self.buffers.push(buf);
    }

    /// Checks out a set of `count` zero-filled buffers of `len` bytes
    /// each — the per-group scatter payloads of the GNN — reusing a
    /// recycled set's allocations (outer vector and inner buffers) when
    /// one exists. Observationally `vec![vec![0u8; len]; count]`.
    pub fn byte_set(&mut self, count: usize, len: usize) -> Vec<Vec<u8>> {
        let mut set = self.byte_sets.pop().unwrap_or_default();
        set.truncate(count);
        for buf in &mut set {
            buf.clear();
            buf.resize(len, 0);
        }
        set.resize_with(count, || vec![0u8; len]);
        set
    }

    /// Returns a buffer set to the pool for the next checkout.
    pub fn recycle_byte_set(&mut self, set: Vec<Vec<u8>>) {
        self.byte_sets.push(set);
    }

    /// Checks out `count` empty `u64` lists — the DLRM per-(source,
    /// destination) index routing buffers — reusing a recycled set's
    /// allocations. Observationally `vec![Vec::new(); count]`: every list
    /// is empty, only spare capacity betrays the recycling.
    pub fn index_lists(&mut self, count: usize) -> Vec<Vec<u64>> {
        let mut lists = self.index_lists.pop().unwrap_or_default();
        lists.truncate(count);
        for list in &mut lists {
            list.clear();
        }
        lists.resize_with(count, Vec::new);
        lists
    }

    /// Returns an index-list set to the pool for the next checkout.
    pub fn recycle_index_lists(&mut self, lists: Vec<Vec<u64>>) {
        self.index_lists.push(lists);
    }

    /// Checks out an iteration [`Checkpoint`] for
    /// [`PimSystem::checkpoint_regions`], reusing a recycled one's per-PE
    /// buffers when available. The capture overwrites previous contents, so
    /// only spare capacity carries over.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.checkpoints.pop().unwrap_or_default()
    }

    /// Returns a checkpoint to the pool for the next checkout.
    pub fn recycle_checkpoint(&mut self, ckpt: Checkpoint) {
        self.checkpoints.push(ckpt);
    }

    /// Checks out the arena's typed extension slot for `T`, removing it
    /// from the pool (or building `T::default()` on a miss). Higher layers
    /// park per-worker caches that `pim_sim` cannot name — e.g. `pidcomm`'s
    /// keyed collective-plan cache — next to the systems and buffers, so
    /// consecutive cells on one worker reuse them. Pair with
    /// [`SystemArena::put_extension`] like `system`/`recycle`; skipping
    /// the put on an error path is safe (the next checkout starts fresh).
    pub fn take_extension<T: Any + Send + Default>(&mut self) -> T {
        match self
            .extensions
            .iter()
            .position(|e| e.downcast_ref::<T>().is_some())
        {
            Some(i) => *self
                .extensions
                .swap_remove(i)
                .downcast::<T>()
                .expect("position matched the type"),
            None => T::default(),
        }
    }

    /// Returns an extension value to the pool for the next checkout.
    pub fn put_extension<T: Any + Send>(&mut self, value: T) {
        self.extensions.push(Box::new(value));
    }

    /// Number of systems currently parked in the pool (tests/metrics).
    pub fn pooled_systems(&self) -> usize {
        self.systems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PeId;

    #[test]
    fn checkout_after_recycle_is_all_zero_and_reuses_the_allocation() {
        let geom = DimmGeometry::single_rank();
        let mut arena = SystemArena::new();
        let mut sys = arena.system(geom);
        sys.pe_mut(PeId(5)).write(128, &[0xAB; 256]);
        sys.run_kernel(17.0);
        assert!(sys.total_mram_used() > 0);
        arena.recycle(sys);
        assert_eq!(arena.pooled_systems(), 1);

        let sys = arena.system(geom);
        assert_eq!(arena.pooled_systems(), 0, "pool hit consumed the entry");
        assert_eq!(sys.total_mram_used(), 0);
        assert_eq!(sys.meter().total(), 0.0);
        assert_eq!(sys.pe(PeId(5)).peek(128, 256), vec![0u8; 256]);
        // The recycled PE kept its materialized pages (the whole point).
        assert!(sys.pe(PeId(5)).mram_resident() > 0);
    }

    #[test]
    fn geometry_mismatch_builds_fresh() {
        let mut arena = SystemArena::new();
        arena.recycle(PimSystem::new(DimmGeometry::single_rank()));
        let sys = arena.system(DimmGeometry::single_group());
        assert_eq!(*sys.geometry(), DimmGeometry::single_group());
        assert_eq!(arena.pooled_systems(), 1, "mismatch leaves the pool alone");
    }

    #[test]
    fn byte_sets_are_observationally_fresh_and_reuse_allocations() {
        let mut arena = SystemArena::new();
        let mut set = arena.byte_set(4, 128);
        assert_eq!(set, vec![vec![0u8; 128]; 4]);
        for b in &mut set {
            b.fill(0x33);
        }
        let caps: Vec<usize> = set.iter().map(Vec::capacity).collect();
        arena.recycle_byte_set(set);
        // Smaller checkout: same inner allocations, zeroed.
        let set = arena.byte_set(3, 64);
        assert_eq!(set, vec![vec![0u8; 64]; 3]);
        assert!(set.iter().zip(&caps).all(|(b, &c)| b.capacity() == c));
        arena.recycle_byte_set(set);
        // Larger checkout: grows with fresh buffers for the extras.
        let set = arena.byte_set(6, 16);
        assert_eq!(set, vec![vec![0u8; 16]; 6]);
    }

    #[test]
    fn index_lists_come_back_empty_with_capacity() {
        let mut arena = SystemArena::new();
        let mut lists = arena.index_lists(5);
        assert!(lists.iter().all(Vec::is_empty));
        lists[2].extend_from_slice(&[7, 8, 9]);
        let cap = lists[2].capacity();
        arena.recycle_index_lists(lists);
        let lists = arena.index_lists(5);
        assert!(lists.iter().all(Vec::is_empty), "checkout must be empty");
        assert_eq!(lists[2].capacity(), cap, "capacity is recycled");
        arena.recycle_index_lists(lists);
        let lists = arena.index_lists(9);
        assert_eq!(lists.len(), 9);
        assert!(lists.iter().all(Vec::is_empty));
    }

    #[test]
    fn extensions_roundtrip_by_type() {
        #[derive(Default, PartialEq, Debug)]
        struct CacheA(Vec<u32>);
        #[derive(Default, PartialEq, Debug)]
        struct CacheB(u64);

        let mut arena = SystemArena::new();
        // Miss builds a default.
        assert_eq!(arena.take_extension::<CacheA>(), CacheA::default());
        arena.put_extension(CacheA(vec![1, 2, 3]));
        arena.put_extension(CacheB(9));
        // Each type finds its own slot regardless of insertion order.
        assert_eq!(arena.take_extension::<CacheB>(), CacheB(9));
        assert_eq!(arena.take_extension::<CacheA>(), CacheA(vec![1, 2, 3]));
        // Taken slots are gone.
        assert_eq!(arena.take_extension::<CacheB>(), CacheB::default());
    }

    #[test]
    fn bytes_are_observationally_fresh_zero_vectors() {
        let mut arena = SystemArena::new();
        let mut b = arena.bytes(1024);
        assert_eq!(b, vec![0u8; 1024]);
        b.fill(0x77);
        let cap = b.capacity();
        arena.recycle_bytes(b);
        let b = arena.bytes(512);
        assert_eq!(b, vec![0u8; 512]);
        assert_eq!(b.capacity(), cap, "recycled capacity is reused");
        arena.recycle_bytes(b);
        let b = arena.bytes(2048);
        assert_eq!(b, vec![0u8; 2048]);
    }
}

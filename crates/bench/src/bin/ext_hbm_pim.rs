//! Extension (§IX-A): adapting PID-Comm to an HBM-PIM-style device.
//!
//! HBM-PIM attaches a PE per *two* banks behind a single chip, so there is
//! no 8-way byte interleaving and cross-domain modulation does not apply
//! ("PID-Comm can be applied without cross-domain modulation"). We model
//! the adaptation by running the collective stack with CM disabled
//! (OptLevel::InRegister) on an HBM-like geometry with a faster,
//! pseudo-channel-rich bus.

use pidcomm::{OptLevel, Primitive};
use pidcomm_bench::{header, run_primitive, PrimSetup};
use pim_sim::{DType, DimmGeometry, TimeModel};

fn main() {
    header(
        "Extension (§IX-A)",
        "PID-Comm on an HBM-PIM-style stack (no cross-domain modulation, wider bus)",
        "paper: 'PID-Comm can be applied without cross-domain modulation'",
    );

    // HBM2 stack: 8 pseudo-channels modeled as channels, higher per-channel
    // bandwidth; 512 PEs.
    let mut hbm = TimeModel::upmem();
    hbm.channel_bw = 32.0;

    let setup = PrimSetup {
        geom: DimmGeometry::new(8, 1, 8), // 8 pseudo-channels x 64 PEs
        dims: vec![32, 16],
        mask: "10".into(),
        bytes_per_node: 32 * 1024,
        dtype: DType::U64,
        model: hbm.clone(),
        threads: 0,
    };

    println!(
        "{:<4} {:>14} {:>16} {:>16}",
        "prim", "UPMEM full", "UPMEM no-CM", "HBM-PIM no-CM*"
    );
    for prim in [
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::AllGather,
    ] {
        let upmem_full = run_primitive(&PrimSetup::default_2d(32 * 1024), prim, OptLevel::Full);
        let upmem_nocm = run_primitive(
            &PrimSetup::default_2d(32 * 1024),
            prim,
            OptLevel::InRegister,
        );
        // Same engine, HBM geometry + bandwidth, CM off.
        let hbm_run = run_primitive(&setup, prim, OptLevel::InRegister);
        println!(
            "{:<4} {:>12.2} GB/s {:>13.2} GB/s {:>13.2} GB/s",
            prim.abbrev(),
            upmem_full.throughput_gbps(),
            upmem_nocm.throughput_gbps(),
            hbm_run.throughput_gbps(),
        );
    }
    println!("* reducing primitives lose nothing (CM never applied to them);");
    println!("  AlltoAll/AllGather pay the DT they can no longer fuse away.");
}

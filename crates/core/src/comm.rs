//! The user-facing communicator (the paper's `pidcomm_*` API, Fig. 10).

use std::sync::Arc;

use pim_sim::dtype::ReduceKind;
use pim_sim::{PimSystem, SystemArena};

use crate::config::{OptLevel, Primitive};
use crate::engine::plan::{CollectivePlan, PlanCache, PlanKey};
use crate::engine::prepared::{FusedPlan, PreparedScatter};
use crate::engine::recovery::{self, FusedVerifiedExecution, RecoveryPolicy, VerifiedExecution};
use crate::engine::{self, BufferSpec};
use crate::error::{Error, Result};
use crate::hypercube::{DimMask, HypercubeManager};
use crate::report::CommReport;

/// Issues multi-instance collective communications over a virtual
/// hypercube.
///
/// A `Communicator` pairs a [`HypercubeManager`] with an [`OptLevel`]
/// (defaulting to the full PID-Comm design; the other levels exist for the
/// paper's ablation and baseline comparisons). Every call takes the target
/// [`PimSystem`], a [`DimMask`] choosing the communication dimensions and a
/// [`BufferSpec`] describing the per-PE buffers.
///
/// # Examples
///
/// Eight-node AllReduce over one entangled group:
///
/// ```
/// use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape};
/// use pim_sim::{DimmGeometry, DType, PimSystem, ReduceKind};
///
/// let geom = DimmGeometry::single_group();
/// let mut sys = PimSystem::new(geom);
/// // Every PE holds eight u64 values.
/// for pe in geom.pes() {
///     let vals: Vec<u8> = (0..8u64).flat_map(|v| v.to_le_bytes()).collect();
///     sys.pe_mut(pe).write(0, &vals);
/// }
///
/// let manager = HypercubeManager::new(HypercubeShape::linear(8)?, geom)?;
/// let comm = Communicator::new(manager);
/// let report = comm.all_reduce(
///     &mut sys,
///     &DimMask::parse("1")?,
///     &BufferSpec::new(0, 64, 64),
///     ReduceKind::Sum,
/// )?;
///
/// // Every PE now holds the sums 0*8, 1*8, ..., 7*8.
/// let out = sys.pe_mut(geom.pes().next().unwrap()).read(64, 8).to_vec();
/// assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 0);
/// assert!(report.time_ns() > 0.0);
/// # Ok::<(), pidcomm::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Communicator {
    manager: HypercubeManager,
    opt: OptLevel,
    threads: usize,
}

impl Communicator {
    /// Creates a communicator running the full PID-Comm design.
    pub fn new(manager: HypercubeManager) -> Self {
        Self {
            manager,
            opt: OptLevel::Full,
            threads: 0,
        }
    }

    /// Selects an optimization level (for ablations and baselines).
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Bounds the engine's cluster-level thread fan-out: `0` (the default)
    /// sizes it automatically, `1` forces the serial reference schedule.
    /// Purely an execution knob — results and reports are byte-identical
    /// at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured thread bound (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured optimization level.
    pub fn opt(&self) -> OptLevel {
        self.opt
    }

    /// The underlying hypercube manager.
    pub fn manager(&self) -> &HypercubeManager {
        &self.manager
    }

    /// Plans one collective — validates the spec, decomposes the mask into
    /// entangled-group clusters, builds the permutation tables and phase-B
    /// schedules, and resolves the thread fan-out — without executing it.
    /// The returned [`CollectivePlan`] can be executed any number of
    /// times, against any system of matching geometry; each execution is
    /// byte-identical to the corresponding one-shot call (which is itself
    /// plan-then-execute). `op` is ignored by non-reducing primitives
    /// (pass [`ReduceKind::Sum`]).
    ///
    /// This is the classic persistent-collective shape (MPI persistent
    /// requests, FFTW plans): iteration-heavy applications hoist the plan
    /// out of their loops and stop paying the fixed planning cost per
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] on invalid masks or misaligned/overlapping
    /// buffers — the payload-independent half of the one-shot validation.
    pub fn plan(
        &self,
        primitive: Primitive,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<CollectivePlan> {
        CollectivePlan::build(
            &self.manager,
            self.opt,
            primitive,
            mask,
            spec,
            op,
            self.threads,
        )
    }

    /// As [`Communicator::plan`], but served from `cache`: planning runs
    /// at most once per distinct
    /// `(primitive, opt, mask, spec, geometry, op, threads)` key per
    /// cache. Sweep workers park one cache in their
    /// [`pim_sim::SystemArena`] extension slot so consecutive cells reuse
    /// plans across runs.
    ///
    /// # Errors
    ///
    /// See [`Communicator::plan`]; failed builds are not cached.
    pub fn plan_cached(
        &self,
        cache: &mut PlanCache,
        primitive: Primitive,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<Arc<CollectivePlan>> {
        let key = PlanKey::new(self, primitive, mask, spec, op);
        cache.get_or_build(key, || self.plan(primitive, mask, spec, op))
    }

    /// Executes a plan with fault detection and recovery: verification is
    /// enabled for the duration, transient faults (detected corruption, a
    /// transiently stuck PE) are retried up to `policy.max_retries` times
    /// — each execution is one fault epoch, so a retry re-draws the fault
    /// schedule — and a *persistently* failed PE degrades to host-side
    /// recompute of the collective's semantics when `policy.degrade` is
    /// set. The returned report spans all attempts, with retries and
    /// degraded recompute charged to the cost sheet's recovery counters,
    /// so recovery is visible in modeled time.
    ///
    /// With no fault plan attached this is byte- and modeled-bit-identical
    /// to the plan's ordinary execute methods: verification reads back
    /// through the non-materializing peek path and charges nothing.
    ///
    /// `host_in` follows the plan's primitive: `Some` for Scatter and
    /// Broadcast (one buffer per group), `None` otherwise; Gather and
    /// Reduce return `host_out` buffers.
    ///
    /// # Errors
    ///
    /// As the plan's execute methods, plus [`crate::Error::DataCorruption`]
    /// / [`crate::Error::PeFailed`] when recovery is exhausted (retry
    /// budget spent, or degradation disabled).
    pub fn execute_verified(
        &self,
        sys: &mut PimSystem,
        plan: &CollectivePlan,
        host_in: Option<&[Vec<u8>]>,
        policy: &RecoveryPolicy,
    ) -> Result<VerifiedExecution> {
        recovery::run_verified(sys, &self.manager, plan, host_in, policy)
    }

    /// Stages a rooted send's host payload for repeat execution: the
    /// prepared-execution tier over [`Communicator::plan`]. Validation
    /// and row assembly run once, here; every
    /// [`PreparedScatter::execute`] after that skips both and is
    /// byte- and modeled-bit-identical to
    /// [`CollectivePlan::execute_with_host`].
    ///
    /// Pass an arena to pool the staged image
    /// ([`PreparedScatter::stage_in`] / [`PreparedScatter::retire`]) via
    /// [`Communicator::prepare_in`].
    ///
    /// # Errors
    ///
    /// [`Error::ShapeSystemMismatch`] when the plan was built for a
    /// different geometry than this communicator, plus
    /// [`PreparedScatter::stage`]'s validation errors.
    pub fn prepare(
        &self,
        plan: Arc<CollectivePlan>,
        host_in: &[Vec<u8>],
    ) -> Result<PreparedScatter> {
        self.check_plan_geometry(&plan)?;
        PreparedScatter::stage(plan, host_in)
    }

    /// As [`Communicator::prepare`], staging into an arena-pooled buffer.
    ///
    /// # Errors
    ///
    /// As [`Communicator::prepare`].
    pub fn prepare_in(
        &self,
        plan: Arc<CollectivePlan>,
        host_in: &[Vec<u8>],
        arena: &mut SystemArena,
    ) -> Result<PreparedScatter> {
        self.check_plan_geometry(&plan)?;
        PreparedScatter::stage_in(plan, host_in, arena)
    }

    /// Fuses plans built by this communicator into one multi-step chain
    /// ([`FusedPlan::new`]), checking each against the communicator's
    /// geometry first. `extra_regions` lists the MRAM windows inter-step
    /// hooks write, so chain-level rollback covers them
    /// ([`FusedPlan::with_regions`]).
    ///
    /// # Errors
    ///
    /// [`Error::ShapeSystemMismatch`] on any geometry mismatch, plus the
    /// fusion-contract errors of [`FusedPlan::new`].
    pub fn fuse(
        &self,
        steps: Vec<Arc<CollectivePlan>>,
        extra_regions: &[(usize, usize)],
    ) -> Result<FusedPlan> {
        for step in &steps {
            self.check_plan_geometry(step)?;
        }
        FusedPlan::with_regions(steps, extra_regions)
    }

    /// Executes a fused chain with fault detection and recovery — the
    /// chain-level [`Communicator::execute_verified`]: verification on
    /// for the duration, transient faults retried by rolling the whole
    /// chain back (merged step + hook regions) and re-running from step
    /// 0, persistent PE failures degraded step-by-step to host-side
    /// recompute. With no fault plan attached this is byte- and
    /// modeled-bit-identical to [`FusedPlan::execute_with`].
    ///
    /// # Errors
    ///
    /// As [`Communicator::execute_verified`], plus the fused-plan
    /// validation errors (staged input mismatch).
    pub fn execute_verified_fused(
        &self,
        sys: &mut PimSystem,
        fused: &FusedPlan,
        staged: Option<&PreparedScatter>,
        policy: &RecoveryPolicy,
        hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
    ) -> Result<FusedVerifiedExecution> {
        recovery::run_verified_fused(sys, &self.manager, fused, staged, policy, None, hook)
    }

    /// A plan only prepares/fuses on the communicator whose geometry it
    /// was built for.
    fn check_plan_geometry(&self, plan: &CollectivePlan) -> Result<()> {
        if plan.geometry != *self.manager.geometry() {
            return Err(Error::ShapeSystemMismatch {
                nodes: plan.num_nodes,
                pes: self.manager.geometry().num_pes(),
            });
        }
        Ok(())
    }

    /// AlltoAll: each node's buffer holds one chunk per group member; node
    /// `d` receives chunk `d` of every member, ordered by source rank.
    ///
    /// `spec.bytes_per_node` is the full send buffer size and must be
    /// divisible by `8 × group size`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] on invalid masks, misaligned or overlapping
    /// buffers, or a shape/system mismatch.
    pub fn all_to_all(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::AlltoAll,
            mask,
            spec,
            ReduceKind::Sum,
            None,
            self.threads,
        )
        .map(|e| e.report)
    }

    /// ReduceScatter: chunks are reduced element-wise across the group and
    /// node `d` receives reduced chunk `d` (`bytes_per_node / group size`
    /// bytes) at `dst_offset`.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`].
    pub fn reduce_scatter(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::ReduceScatter,
            mask,
            spec,
            op,
            None,
            self.threads,
        )
        .map(|e| e.report)
    }

    /// AllReduce: every node receives the element-wise reduction of all
    /// `bytes_per_node`-byte buffers. Implemented as the paper's fused
    /// ReduceScatter + AllGather (reduced registers are fanned out without
    /// a PIM round-trip).
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`].
    pub fn all_reduce(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::AllReduce,
            mask,
            spec,
            op,
            None,
            self.threads,
        )
        .map(|e| e.report)
    }

    /// AllGather: every node contributes `bytes_per_node` bytes and
    /// receives the concatenation of all contributions (`group size ×
    /// bytes_per_node` bytes) at `dst_offset`, ordered by source rank.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`].
    pub fn all_gather(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::AllGather,
            mask,
            spec,
            ReduceKind::Sum,
            None,
            self.threads,
        )
        .map(|e| e.report)
    }

    /// Scatter: the host (root) distributes `host_in[g]` — `group size ×
    /// bytes_per_node` bytes laid out by destination rank — to the nodes of
    /// group `g`.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`]; additionally validates the host
    /// buffers' count and sizes.
    pub fn scatter(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
        host_in: &[Vec<u8>],
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::Scatter,
            mask,
            spec,
            ReduceKind::Sum,
            Some(host_in),
            self.threads,
        )
        .map(|e| e.report)
    }

    /// Gather: the host (root) collects `bytes_per_node` bytes from every
    /// node; returns one buffer per group, ordered by source rank.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`].
    pub fn gather(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
    ) -> Result<(CommReport, Vec<Vec<u8>>)> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::Gather,
            mask,
            spec,
            ReduceKind::Sum,
            None,
            self.threads,
        )
        .map(|e| (e.report, e.host_out.expect("gather produces host output")))
    }

    /// Reduce: the host (root) receives, per group, the element-wise
    /// reduction of the members' `bytes_per_node`-byte buffers.
    ///
    /// # Errors
    ///
    /// See [`Communicator::all_to_all`].
    pub fn reduce(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
        op: ReduceKind,
    ) -> Result<(CommReport, Vec<Vec<u8>>)> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::Reduce,
            mask,
            spec,
            op,
            None,
            self.threads,
        )
        .map(|e| (e.report, e.host_out.expect("reduce produces host output")))
    }

    /// Broadcast: the host (root) sends `host_in[g]` (`bytes_per_node`
    /// bytes) to every node of group `g`. This is the native driver path
    /// and is identical at every optimization level (§VIII-B).
    ///
    /// # Errors
    ///
    /// See [`Communicator::scatter`].
    pub fn broadcast(
        &self,
        sys: &mut PimSystem,
        mask: &DimMask,
        spec: &BufferSpec,
        host_in: &[Vec<u8>],
    ) -> Result<CommReport> {
        engine::execute(
            sys,
            &self.manager,
            self.opt,
            Primitive::Broadcast,
            mask,
            spec,
            ReduceKind::Sum,
            Some(host_in),
            self.threads,
        )
        .map(|e| e.report)
    }
}

//! Cost-only execution is the functional engine's analytic twin: for every
//! primitive, optimization level and geometry, the modeled breakdown it
//! produces must be **bit-identical** (`f64::to_bits`) to what a real
//! functional run reports — on fresh systems, on arena-recycled systems,
//! and across the multi-host hierarchy. The autotuner and the extended
//! design-space sweeps rest on this equivalence; so does the recorded
//! analytic-vs-functional speedup in `BENCH_design.json`.

use pidcomm::{
    autotune, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, LinkModel,
    MultiHost, OptLevel, Primitive, ReduceKind, TuneRequest,
};
use pim_sim::{Breakdown, DType, DimmGeometry, PimSystem, SystemArena, TimeModel};

const DST: usize = 8192;

/// One seeded single-host configuration of the equivalence sweep.
struct Config {
    dims: Vec<usize>,
    mask: &'static str,
    bytes: usize,
    dtype: DType,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            dims: vec![8, 8],
            mask: "10",
            bytes: 512,
            dtype: DType::U64,
        },
        Config {
            dims: vec![4, 4, 4],
            mask: "110",
            bytes: 512,
            dtype: DType::U32,
        },
        Config {
            dims: vec![2, 32],
            mask: "01",
            bytes: 2048,
            dtype: DType::U8,
        },
        Config {
            dims: vec![64],
            mask: "1",
            bytes: 1024,
            dtype: DType::I16,
        },
    ]
}

fn assert_bits_eq(got: &Breakdown, want: &Breakdown, ctx: &str) {
    for (name, g, w) in [
        ("domain_transfer", got.domain_transfer, want.domain_transfer),
        ("host_modulation", got.host_modulation, want.host_modulation),
        ("host_mem_access", got.host_mem_access, want.host_mem_access),
        ("pe_mem_access", got.pe_mem_access, want.pe_mem_access),
        ("pe_modulation", got.pe_modulation, want.pe_modulation),
        ("kernel", got.kernel, want.kernel),
        ("other", got.other, want.other),
    ] {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: {name} drifts ({g} vs {w})"
        );
    }
}

fn fill_src(sys: &mut PimSystem, bytes: usize) {
    for pe in sys.geometry().pes() {
        let fill: Vec<u8> = (0..bytes)
            .map(|i| ((pe.0 as usize * 31 + i * 7) % 251) as u8)
            .collect();
        sys.pe_mut(pe).write(0, &fill);
    }
}

fn host_in(prim: Primitive, n: usize, groups: usize, b: usize) -> Option<Vec<Vec<u8>>> {
    match prim {
        Primitive::Scatter => Some(
            (0..groups)
                .map(|g| (0..n * b).map(|i| ((g * 13 + i) % 241) as u8).collect())
                .collect(),
        ),
        Primitive::Broadcast => Some(
            (0..groups)
                .map(|g| (0..b).map(|i| ((g * 17 + i) % 239) as u8).collect())
                .collect(),
        ),
        _ => None,
    }
}

/// Every primitive x every optimization level x every seeded geometry:
/// the cost-only report equals the functional report bit-for-bit, on a
/// fresh system and again on an arena-recycled one.
#[test]
fn cost_only_matches_functional_bits() {
    let mut arena = SystemArena::new();
    for cfg in configs() {
        let geom = DimmGeometry::single_rank();
        let manager =
            HypercubeManager::new(HypercubeShape::new(cfg.dims.clone()).unwrap(), geom).unwrap();
        let mask = DimMask::parse(cfg.mask).unwrap();
        let spec = BufferSpec::new(0, DST, cfg.bytes).with_dtype(cfg.dtype);
        for opt in [
            OptLevel::Full,
            OptLevel::InRegister,
            OptLevel::PeReorder,
            OptLevel::Baseline,
        ] {
            let comm = Communicator::new(manager.clone())
                .with_opt(opt)
                .with_threads(1);
            for prim in Primitive::ALL {
                let ctx = format!("{prim} {opt:?} dims={:?} mask={}", cfg.dims, cfg.mask);
                let plan = comm.plan(prim, &mask, &spec, ReduceKind::Sum).unwrap();
                let hin = host_in(prim, plan.group_size(), plan.num_groups(), cfg.bytes);

                // The analytic side never needs a system at all.
                let model = TimeModel::upmem();
                let cost = plan.cost_only_report(&model);

                for round in 0..2 {
                    // Round 0: fresh arena system; round 1: recycled.
                    let mut sys = arena.system(geom);
                    fill_src(&mut sys, cfg.bytes);
                    let functional = match prim {
                        Primitive::Scatter | Primitive::Broadcast => plan
                            .execute_with_host(&mut sys, hin.as_ref().unwrap())
                            .unwrap(),
                        Primitive::Gather | Primitive::Reduce => {
                            plan.execute_to_host(&mut sys).unwrap().0
                        }
                        _ => plan.execute(&mut sys).unwrap(),
                    };
                    assert_bits_eq(
                        &cost.breakdown,
                        &functional.breakdown,
                        &format!("{ctx} round={round}"),
                    );
                    assert_eq!(cost.primitive, functional.primitive, "{ctx}");
                    assert_eq!(cost.opt, functional.opt, "{ctx}");
                    assert_eq!(cost.bytes_in, functional.bytes_in, "{ctx}");
                    assert_eq!(cost.bytes_out, functional.bytes_out, "{ctx}");
                    assert_eq!(cost.group_size, functional.group_size, "{ctx}");
                    assert_eq!(cost.num_groups, functional.num_groups, "{ctx}");
                    arena.recycle(sys);
                }
            }
        }
    }
}

/// The multi-host hierarchy: cost-only local breakdown and link time equal
/// the functional multi-host report bit-for-bit for every hierarchical
/// primitive.
#[test]
fn multihost_cost_only_matches_functional_bits() {
    let geom = DimmGeometry::single_rank();
    let hosts = 2;
    let b = 512;
    let spec = BufferSpec::new(0, DST, b).with_dtype(DType::U64);
    let mask = DimMask::parse("10").unwrap();

    let comms: Vec<Communicator> = (0..hosts)
        .map(|_| {
            let m = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
            Communicator::new(m).with_threads(1)
        })
        .collect();
    let mh = MultiHost::new(comms, LinkModel::ethernet_10g()).unwrap();

    for prim in [
        Primitive::AllReduce,
        Primitive::AlltoAll,
        Primitive::ReduceScatter,
        Primitive::AllGather,
    ] {
        let plan = mh.plan(prim, &mask, &spec, ReduceKind::Sum).unwrap();
        let cost = plan.execute_cost_only(&TimeModel::upmem());

        let mut systems: Vec<PimSystem> = (0..hosts)
            .map(|h| {
                let mut sys = PimSystem::new(geom);
                for pe in geom.pes() {
                    let data: Vec<u8> = (0..b)
                        .map(|i| ((h * 19 + pe.0 as usize * 7 + i) % 113) as u8)
                        .collect();
                    sys.pe_mut(pe).write(0, &data);
                }
                sys
            })
            .collect();
        let functional = plan.execute(&mut systems).unwrap();

        assert_bits_eq(&cost.local, &functional.local, &format!("multihost {prim}"));
        assert_eq!(
            cost.mpi_ns.to_bits(),
            functional.mpi_ns.to_bits(),
            "multihost {prim}: mpi_ns drifts"
        );
        assert_eq!(cost.hosts, functional.hosts, "multihost {prim}");
    }
}

/// Cost-only execution is fault-inert: scoring a plan consumes no fault
/// epochs, triggers no injection, and leaves PE MRAM untouched even while
/// a hostile fault plan is attached to the system it is scored against —
/// only functional execution advances the epoch clock. The autotuner and
/// the design-space sweeps may therefore score thousands of candidates
/// against a live (fault-attached) system without perturbing its fault
/// schedule.
#[test]
fn cost_only_is_fault_inert() {
    use pim_sim::{FaultKind, FaultPlan};
    use std::sync::Arc;

    let geom = DimmGeometry::single_rank();
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    let spec = BufferSpec::new(0, DST, 512).with_dtype(DType::U64);
    let comm = Communicator::new(manager).with_threads(1);
    let plan = comm
        .plan(
            Primitive::AllReduce,
            &DimMask::parse("10").unwrap(),
            &spec,
            ReduceKind::Sum,
        )
        .unwrap();
    let model = TimeModel::upmem();

    // A hostile plan: every transport write bit-flipped, PE 0 stuck in
    // the first epoch. If cost-only execution touched the fault layer at
    // all, this plan would make it visible.
    let fp = Arc::new(
        FaultPlan::new(9)
            .with_bit_flip_period(1)
            .with_event(FaultKind::Stuck, 0, 1),
    );
    let mut sys = PimSystem::new(geom);
    fill_src(&mut sys, 512);
    sys.attach_fault_plan(fp.clone());
    sys.set_verify_writes(true);
    let image = |sys: &PimSystem| -> Vec<Vec<u8>> {
        geom.pes().map(|pe| sys.pe(pe).peek(0, DST + 512)).collect()
    };
    let before = image(&sys);

    let clean_bits = plan.cost_only_report(&model).time_ns().to_bits();
    for round in 0..8 {
        let sheet = plan.execute_cost_only();
        assert_eq!(sheet.recovery_retries, 0, "round {round}");
        assert_eq!(
            plan.cost_only_report(&model).time_ns().to_bits(),
            clean_bits,
            "round {round}: cost-only bits drift under an attached fault plan"
        );
    }
    assert_eq!(fp.epoch(), 0, "cost-only execution consumed a fault epoch");
    assert_eq!(image(&sys), before, "cost-only execution disturbed PE MRAM");

    // The epoch clock is live, not merely never started: one functional
    // execution (whatever its verdict under this hostile plan) advances it.
    let _ = plan.execute(&mut sys);
    assert!(
        fp.epoch() > 0,
        "functional execution must consume fault epochs"
    );
}

/// The autotuner is a pure function of its request: the same search run
/// at any thread budget returns the same frontier and the same winner,
/// down to the modeled-time bits.
#[test]
fn autotune_is_deterministic_across_thread_counts() {
    let geom = DimmGeometry::single_rank();
    let spec = BufferSpec::new(0, DST, 512);
    let model = TimeModel::upmem();

    let reference = autotune(
        &TuneRequest::new(Primitive::AllReduce, spec, geom)
            .with_opts(vec![
                OptLevel::Full,
                OptLevel::InRegister,
                OptLevel::Baseline,
            ])
            .with_threads(1),
        &model,
    )
    .unwrap()
    .1;

    for threads in [2usize, 8, 0] {
        let report = autotune(
            &TuneRequest::new(Primitive::AllReduce, spec, geom)
                .with_opts(vec![
                    OptLevel::Full,
                    OptLevel::InRegister,
                    OptLevel::Baseline,
                ])
                .with_threads(threads),
            &model,
        )
        .unwrap()
        .1;
        assert_eq!(report.best, reference.best, "threads={threads}");
        assert_eq!(report.skipped, reference.skipped, "threads={threads}");
        assert_eq!(
            report.explored.len(),
            reference.explored.len(),
            "threads={threads}"
        );
        for (got, want) in report.explored.iter().zip(&reference.explored) {
            assert_eq!(got.dims, want.dims, "threads={threads}");
            assert_eq!(got.mask, want.mask, "threads={threads}");
            assert_eq!(got.opt, want.opt, "threads={threads}");
            assert_eq!(
                got.modeled_ns.to_bits(),
                want.modeled_ns.to_bits(),
                "threads={threads}: score drifts for dims={:?} mask={}",
                got.dims,
                got.mask
            );
        }
        assert_eq!(
            report.best().modeled_ns.to_bits(),
            reference.best().modeled_ns.to_bits()
        );
    }
}

/// Fig. 20-style smoke: for hypercube shapes of the paper's 1024-PE
/// design-space sweep, the autotuner never loses to the default shape —
/// with the group size pinned (pure layout search) it ties or wins, and
/// with the full design space open (the actual fig. 20 question, where
/// group size varies across shapes) it is strictly faster than at least
/// one default.
#[test]
fn autotune_matches_or_beats_fig20_default_shapes() {
    let geom = DimmGeometry::upmem_1024();
    let model = TimeModel::upmem();
    let mut strictly_better = 0usize;

    for dims in [vec![8, 64, 2], vec![128, 4, 2], vec![64, 4, 4]] {
        let bytes = (8 * dims[0] * 32).max(4096);
        let spec = BufferSpec::new(0, bytes, bytes).with_dtype(DType::U64);
        let manager =
            HypercubeManager::new(HypercubeShape::new(dims.clone()).unwrap(), geom).unwrap();
        let mask = DimMask::parse("100").unwrap();
        let default_plan = Communicator::new(manager)
            .with_threads(1)
            .plan(Primitive::AllReduce, &mask, &spec, ReduceKind::Sum)
            .unwrap();
        let default_ns = default_plan.cost_only_report(&model).time_ns();

        // Same group size, layout free: never slower than the default.
        // (The cost model is layout-neutral at fixed group size — every
        // explored candidate must tie the winner exactly.)
        let (tuned_plan, constrained) = autotune(
            &TuneRequest::new(Primitive::AllReduce, spec, geom).with_group_size(dims[0]),
            &model,
        )
        .unwrap();
        let constrained_ns = constrained.best().modeled_ns;
        assert_eq!(tuned_plan.group_size(), dims[0], "{dims:?}");
        assert!(
            constrained_ns <= default_ns,
            "{dims:?}: tuned {constrained_ns} ns slower than default {default_ns} ns"
        );
        for c in &constrained.explored {
            assert_eq!(
                c.modeled_ns.to_bits(),
                constrained_ns.to_bits(),
                "{dims:?}: layout {:?}/{} breaks group-size cost neutrality",
                c.dims,
                c.mask
            );
        }

        // Full design space (group size free): at least as good as the
        // constrained winner, and strictly better than some default.
        let (_, free) =
            autotune(&TuneRequest::new(Primitive::AllReduce, spec, geom), &model).unwrap();
        let free_ns = free.best().modeled_ns;
        assert!(
            free_ns <= constrained_ns,
            "{dims:?}: widening the search space made the winner worse"
        );
        if free_ns < default_ns {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 1,
        "autotuner never strictly improved on a fig. 20 default shape"
    );
}

//! Verified execution: detect-and-recover around a collective plan.
//!
//! The MPI/ULFM-style layer over the plan/execute split: a
//! [`crate::engine::plan::CollectivePlan`] is the natural unit to verify,
//! retry and replan around, because the source region is never written
//! during execution ([`crate::engine::validate_spec`] rejects overlapping
//! buffers) — a failed attempt can always be re-run from intact inputs.
//!
//! Three tiers, in escalation order:
//!
//! 1. **Verify**: every execution runs with read-after-write verification
//!    on; detected corruption ([`crate::Error::DataCorruption`]) and stuck
//!    PEs ([`crate::Error::PeFailed`]) surface at the execute boundary.
//! 2. **Retry**: transient faults are epoch-keyed and each execution is one
//!    epoch, so a bounded number of re-runs clears them. The failed
//!    attempt is first rolled back from a pre-execution image of the
//!    plan's touched MRAM windows — phase-A reordering destructively
//!    pre-rotates the sources in place, so a blind re-run would
//!    double-permute them into silent garbage. The image is scoped to the
//!    plan's validated source/destination extents (nothing else changes
//!    during execution), not the whole MRAM. Each retry pays the failed
//!    attempt's full modeled cost (already on the meter) plus a fixed
//!    resynchronization setup (the [`CostSheet`] recovery counter).
//! 3. **Degrade**: a *persistently* failed PE cannot be retried around.
//!    The collective still completes: the host re-computes the semantics
//!    directly (the [`crate::oracle`] reference path) from the members'
//!    still-readable MRAM, lands results on the surviving PEs, and charges
//!    the recomputation at word-granular host-modulation cost — degraded
//!    execution is visible in modeled time, never hidden. The dead PE's
//!    outputs are dropped, and its *inputs* are taken from its bank as-is
//!    (on UPMEM the host reaches a bank regardless of DPU health).
//!
//! Run-level supervision ([`crate::engine::supervisor`]) builds on these
//! same pieces: its [`HealthLedger`] receives per-PE attribution of every
//! detected fault, and PEs it has quarantined degrade up front via
//! [`run_degraded`] instead of burning retries rediscovering them.
//!
//! Fused chains ([`FusedPlan`]) recover as one unit: the rollback image
//! covers the chain's *merged* region list (every step's touched windows
//! plus hook-written intermediates), so a fault detected mid-chain —
//! after earlier steps already committed their landings — restores the
//! chain-entry state in one [`PimSystem::restore_regions`] and re-runs
//! from step 0 ([`run_verified_fused`]).

use pim_sim::{Breakdown, Checkpoint, FaultPlan, PimSystem};

use crate::config::Primitive;
use crate::engine::logical_volumes;
use crate::engine::plan::CollectivePlan;
use crate::engine::prepared::{FusedPlan, PreparedScatter};
use crate::engine::sheet::CostSheet;
use crate::engine::supervisor::HealthLedger;
use crate::error::{Error, Result};
use crate::hypercube::HypercubeManager;
use crate::oracle;
use crate::report::CommReport;

/// How [`crate::Communicator::execute_verified`] responds to detected
/// faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum number of re-runs after a transient fault (detected
    /// corruption or a transiently stuck PE) before giving up.
    pub max_retries: u32,
    /// Whether a persistently failed PE degrades to host-side recompute
    /// (`true`) or surfaces [`Error::PeFailed`] (`false`).
    pub degrade: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            degrade: true,
        }
    }
}

/// Outcome of a verified execution: the report spans *all* attempts (a
/// retried collective is visibly slower than a clean one), plus how much
/// recovery it took.
#[derive(Debug, Clone)]
pub struct VerifiedExecution {
    /// Aggregate report over every attempt, including recovery charges.
    pub report: CommReport,
    /// Host output buffers (Gather/Reduce only), one per group.
    pub host_out: Option<Vec<Vec<u8>>>,
    /// Number of re-runs that were needed (0 on a clean first attempt).
    pub retries: u32,
    /// Whether the result was produced by degraded host-side recompute.
    pub degraded: bool,
}

/// Outcome of a verified fused-chain execution: per-step reports from the
/// committing pass plus an aggregate breakdown spanning every attempt.
#[derive(Debug, Clone)]
pub struct FusedVerifiedExecution {
    /// One report per step from the pass that committed (bit-identical to
    /// standalone executions on a clean first attempt).
    pub reports: Vec<CommReport>,
    /// Aggregate modeled time across every attempt, including recovery
    /// charges — equals the sum of the step breakdowns on a clean run.
    pub breakdown: Breakdown,
    /// Host output buffers of a trailing Gather/Reduce step.
    pub host_out: Option<Vec<Vec<u8>>>,
    /// Number of whole-chain re-runs that were needed.
    pub retries: u32,
    /// Whether the result was produced by degraded host-side recompute.
    pub degraded: bool,
}

/// Captures the pre-execution rollback image: the plan's touched MRAM
/// windows only (source extent — phase-A reordering is destructive in
/// place — plus destination extent), captured only when a fault plan is
/// attached, so the clean path never pays for the copy.
fn capture(sys: &PimSystem, plan: &CollectivePlan) -> Checkpoint {
    let mut ckpt = Checkpoint::new();
    sys.checkpoint_regions(&plan.touched_regions(), &mut ckpt);
    ckpt
}

/// As [`capture`], over a fused chain's merged region list — every step's
/// touched windows plus the hook-written extras, so a fault in step *k*
/// rolls back steps `0..k`'s landings and the hooks' intermediate writes
/// in one restore.
fn capture_fused(sys: &PimSystem, fused: &FusedPlan) -> Checkpoint {
    let mut ckpt = Checkpoint::new();
    sys.checkpoint_regions(fused.regions(), &mut ckpt);
    ckpt
}

/// Runs `plan` with verification enabled, retrying transient faults and
/// degrading around persistent PE failures per `policy`.
pub(crate) fn run_verified(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
    policy: &RecoveryPolicy,
) -> Result<VerifiedExecution> {
    run_verified_tracked(sys, manager, plan, host_in, policy, None)
}

/// As [`run_verified`], but additionally attributing every detected fault
/// (corruption, stuck detection, retry, persistent failure) to its PE in
/// `ledger`, so run-level supervision can quarantine repeat offenders.
pub(crate) fn run_verified_tracked(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
    policy: &RecoveryPolicy,
    ledger: Option<&mut HealthLedger>,
) -> Result<VerifiedExecution> {
    let before = sys.meter();
    let prev = sys.verify_writes();
    sys.set_verify_writes(true);
    let snapshot = sys.fault_plan().is_some().then(|| capture(sys, plan));
    let result = drive(
        sys,
        manager,
        plan,
        host_in,
        policy,
        &before,
        snapshot.as_ref(),
        ledger,
    );
    sys.set_verify_writes(prev);
    result
}

/// Degrades `plan` up front, without attempting a normal execution —
/// the run-level supervisor's path for plans whose members include
/// already-quarantined PEs. Writes additionally skip every quarantined PE
/// (its transport is known-bad; landing bytes there would only re-detect
/// what the ledger already knows).
pub(crate) fn run_degraded(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
    ledger: &HealthLedger,
) -> Result<VerifiedExecution> {
    let before = sys.meter();
    let prev = sys.verify_writes();
    sys.set_verify_writes(true);
    let result = degrade(sys, manager, plan, host_in, &before, 0, Some(ledger));
    sys.set_verify_writes(prev);
    result
}

/// Runs a fused chain with verification enabled, retrying transient
/// faults and degrading around persistent PE failures per `policy`.
///
/// The retry unit is the **whole chain**: a fault in step *k* restores
/// the chain's merged rollback regions (all steps' touched windows plus
/// hook-written extras), charges one resynchronization setup, and
/// re-runs from step 0 — inter-step hooks re-run too, which is safe by
/// the fusion contract (hooks derive everything they write from host
/// state plus covered regions). With no fault plan attached this is
/// byte- and modeled-bit-identical to [`FusedPlan::execute_with`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_verified_fused(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    fused: &FusedPlan,
    staged: Option<&PreparedScatter>,
    policy: &RecoveryPolicy,
    ledger: Option<&mut HealthLedger>,
    hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
) -> Result<FusedVerifiedExecution> {
    fused.check_staged(staged)?;
    let before = sys.meter();
    let prev = sys.verify_writes();
    sys.set_verify_writes(true);
    let snapshot = sys
        .fault_plan()
        .is_some()
        .then(|| capture_fused(sys, fused));
    let result = drive_fused(
        sys,
        manager,
        fused,
        staged,
        policy,
        &before,
        snapshot.as_ref(),
        ledger,
        hook,
    );
    sys.set_verify_writes(prev);
    result
}

/// Degrades a fused chain up front (the supervisor's path for chains
/// whose members include already-quarantined PEs): every step runs as
/// host-side oracle recompute, hooks run between steps as usual.
pub(crate) fn run_degraded_fused(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    fused: &FusedPlan,
    staged: Option<&PreparedScatter>,
    ledger: &HealthLedger,
    hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
) -> Result<FusedVerifiedExecution> {
    fused.check_staged(staged)?;
    let before = sys.meter();
    let prev = sys.verify_writes();
    sys.set_verify_writes(true);
    let result = degrade_fused(sys, manager, fused, staged, &before, 0, Some(ledger), hook);
    sys.set_verify_writes(prev);
    result
}

#[allow(clippy::too_many_arguments)]
fn drive_fused(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    fused: &FusedPlan,
    staged: Option<&PreparedScatter>,
    policy: &RecoveryPolicy,
    before: &Breakdown,
    snapshot: Option<&Checkpoint>,
    mut ledger: Option<&mut HealthLedger>,
    mut hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
) -> Result<FusedVerifiedExecution> {
    let mut retries = 0u32;
    loop {
        match fused.execute_with(sys, staged, &mut hook) {
            Ok(exec) => {
                return Ok(FusedVerifiedExecution {
                    reports: exec.reports,
                    breakdown: sys.meter().since(before),
                    host_out: exec.host_out,
                    retries,
                    degraded: false,
                });
            }
            Err(err @ (Error::DataCorruption { .. } | Error::PeFailed { .. })) => {
                let persistent = match (&err, sys.fault_plan()) {
                    (Error::PeFailed { pe, .. }, Some(fp)) => fp.pe_failed_persistent(*pe),
                    _ => false,
                };
                if let Some(ledger) = ledger.as_deref_mut() {
                    match &err {
                        Error::DataCorruption { pe, .. } => ledger.record_corruption(*pe),
                        Error::PeFailed { pe, .. } if persistent => ledger.record_failure(*pe),
                        Error::PeFailed { pe, .. } => ledger.record_stuck(*pe),
                        _ => unreachable!("matched above"),
                    }
                }
                if persistent {
                    if policy.degrade {
                        // The failed pass left partial step landings and
                        // possibly permuted sources; the oracle needs the
                        // chain-entry state back.
                        if let Some(img) = snapshot {
                            sys.restore_regions(img);
                        }
                        return degrade_fused(
                            sys,
                            manager,
                            fused,
                            staged,
                            before,
                            retries,
                            ledger.as_deref(),
                            hook,
                        );
                    }
                    return Err(err);
                }
                if retries >= policy.max_retries {
                    return Err(err);
                }
                // Roll the whole chain back — a mid-chain fault leaves
                // earlier steps committed and step k's sources permuted —
                // then re-run from step 0 under fresh fault epochs.
                if let Some(img) = snapshot {
                    sys.restore_regions(img);
                }
                retries += 1;
                if let (
                    Some(ledger),
                    Error::DataCorruption { pe, .. } | Error::PeFailed { pe, .. },
                ) = (ledger.as_deref_mut(), &err)
                {
                    ledger.record_retry(*pe);
                }
                let mut sheet = CostSheet::new(sys.geometry().channels());
                sheet.recovery_retries = 1; // simlint: allow(cost-sheet, reason = "fault-recovery surcharge outside the plan's cost model by design; cost-only execution models the fault-free run")
                sheet.apply(sys);
            }
            Err(err) => return Err(err),
        }
    }
}

/// Graceful degradation of a fused chain: each step recomputes host-side
/// (as [`degrade`]), with the inter-step hooks between them. Step 0 of a
/// rooted-send chain rebuilds its original host buffers from the staged
/// image ([`PreparedScatter::unstage`]).
#[allow(clippy::too_many_arguments)]
fn degrade_fused(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    fused: &FusedPlan,
    staged: Option<&PreparedScatter>,
    before: &Breakdown,
    retries: u32,
    quarantine: Option<&HealthLedger>,
    mut hook: impl FnMut(usize, &mut PimSystem) -> Result<()>,
) -> Result<FusedVerifiedExecution> {
    let mut reports = Vec::with_capacity(fused.steps().len());
    let mut host_out = None;
    for (k, step) in fused.steps().iter().enumerate() {
        let host_in = if k == 0 {
            staged.map(PreparedScatter::unstage)
        } else {
            None
        };
        let step_before = sys.meter();
        let exec = degrade(
            sys,
            manager,
            step,
            host_in.as_deref(),
            &step_before,
            0,
            quarantine,
        )?;
        reports.push(exec.report);
        host_out = exec.host_out;
        if k + 1 < fused.steps().len() {
            hook(k, sys)?;
        }
    }
    Ok(FusedVerifiedExecution {
        reports,
        breakdown: sys.meter().since(before),
        host_out,
        retries,
        degraded: true,
    })
}

#[allow(clippy::too_many_arguments)]
fn drive(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
    policy: &RecoveryPolicy,
    before: &pim_sim::Breakdown,
    snapshot: Option<&Checkpoint>,
    mut ledger: Option<&mut HealthLedger>,
) -> Result<VerifiedExecution> {
    let mut retries = 0u32;
    loop {
        match plan.run(sys, host_in) {
            Ok(exec) => {
                let mut report = exec.report;
                // Span all attempts: a clean first attempt reproduces the
                // unverified breakdown bit-for-bit (nothing else charged
                // between `before` and the run), while a recovered one
                // carries every failed attempt plus the retry setups.
                report.breakdown = sys.meter().since(before);
                return Ok(VerifiedExecution {
                    report,
                    host_out: exec.host_out,
                    retries,
                    degraded: false,
                });
            }
            Err(err @ (Error::DataCorruption { .. } | Error::PeFailed { .. })) => {
                let persistent = match (&err, sys.fault_plan()) {
                    (Error::PeFailed { pe, .. }, Some(fp)) => fp.pe_failed_persistent(*pe),
                    _ => false,
                };
                if let Some(ledger) = ledger.as_deref_mut() {
                    match &err {
                        Error::DataCorruption { pe, .. } => ledger.record_corruption(*pe),
                        Error::PeFailed { pe, .. } if persistent => ledger.record_failure(*pe),
                        Error::PeFailed { pe, .. } => ledger.record_stuck(*pe),
                        _ => unreachable!("matched above"),
                    }
                }
                if persistent {
                    if policy.degrade {
                        // Failed transient attempts (if any) permuted the
                        // sources; the oracle needs them pristine.
                        if retries > 0 {
                            if let Some(img) = snapshot {
                                sys.restore_regions(img);
                            }
                        }
                        return degrade(
                            sys,
                            manager,
                            plan,
                            host_in,
                            before,
                            retries,
                            ledger.as_deref(),
                        );
                    }
                    return Err(err);
                }
                if retries >= policy.max_retries {
                    return Err(err);
                }
                // Roll the failed attempt back — phase A destroyed the
                // sources — then re-run under a fresh fault epoch.
                if let Some(img) = snapshot {
                    sys.restore_regions(img);
                }
                retries += 1;
                if let (
                    Some(ledger),
                    Error::DataCorruption { pe, .. } | Error::PeFailed { pe, .. },
                ) = (ledger.as_deref_mut(), &err)
                {
                    ledger.record_retry(*pe);
                }
                // The failed attempt's work is already on the meter; the
                // retry additionally pays one resynchronization setup,
                // tallied on the dedicated recovery counter.
                let mut sheet = CostSheet::new(sys.geometry().channels());
                sheet.recovery_retries = 1; // simlint: allow(cost-sheet, reason = "fault-recovery surcharge outside the plan's cost model by design; cost-only execution models the fault-free run")
                sheet.apply(sys);
            }
            Err(err) => return Err(err),
        }
    }
}

/// Whether `pe` is stuck under the attached fault plan (if any).
fn is_stuck(fault: Option<&FaultPlan>, pe: pim_sim::PeId) -> bool {
    fault.is_some_and(|fp| fp.pe_stuck(pe.index() as u32))
}

/// Graceful degradation: the host recomputes the collective's semantics
/// directly from the members' MRAM (the oracle reference path), landing
/// results on every non-stuck PE — additionally skipping PEs the given
/// ledger (if any) has quarantined. The moved bytes are charged to the
/// [`CostSheet`] recovery counter at word-granular host-modulation cost.
fn degrade(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    plan: &CollectivePlan,
    host_in: Option<&[Vec<u8>]>,
    before: &pim_sim::Breakdown,
    retries: u32,
    quarantine: Option<&HealthLedger>,
) -> Result<VerifiedExecution> {
    let groups = manager.groups(&plan.mask)?;
    let b = plan.spec.bytes_per_node;
    let n = plan.n;
    let src = plan.spec.src_offset;
    let dst = plan.spec.dst_offset;
    let (op, dtype) = (plan.op, plan.spec.dtype);
    let fault = sys.fault_plan().cloned();
    let fault = fault.as_deref();
    let skip = |pe: pim_sim::PeId| {
        is_stuck(fault, pe)
            || quarantine.is_some_and(|ledger| ledger.is_quarantined(pe.index() as u32))
    };

    let mut moved: u64 = 0;
    let mut host_out: Option<Vec<Vec<u8>>> =
        matches!(plan.primitive, Primitive::Gather | Primitive::Reduce).then(Vec::new);

    for (g, group) in groups.iter().enumerate() {
        // Inputs: the reading primitives peek every member's source
        // region — a dead DPU's bank is still host-readable.
        let ins: Vec<Vec<u8>> =
            if matches!(plan.primitive, Primitive::Scatter | Primitive::Broadcast) {
                Vec::new()
            } else {
                moved += (group.members.len() * b) as u64;
                group
                    .members
                    .iter()
                    .map(|&pe| sys.pe(pe).peek(src, b))
                    .collect()
            };

        // Per-member outputs landing at `dst`, or host-side outputs.
        let outs: Vec<Vec<u8>> = match plan.primitive {
            Primitive::AlltoAll => oracle::alltoall(&ins),
            Primitive::ReduceScatter => oracle::reduce_scatter(&ins, op, dtype),
            Primitive::AllReduce => oracle::all_reduce(&ins, op, dtype),
            Primitive::AllGather => oracle::all_gather(&ins),
            Primitive::Scatter => oracle::scatter(&host_in.unwrap()[g], n),
            Primitive::Broadcast => oracle::broadcast(&host_in.unwrap()[g], n),
            Primitive::Gather => {
                host_out.as_mut().unwrap().push(oracle::gather(&ins));
                Vec::new()
            }
            Primitive::Reduce => {
                host_out
                    .as_mut()
                    .unwrap()
                    .push(oracle::reduce(&ins, op, dtype));
                Vec::new()
            }
        };
        for (&pe, out) in group.members.iter().zip(&outs) {
            // The dead PE receives nothing — its writes would be dropped
            // anyway; skipping keeps verification records clean.
            if skip(pe) {
                continue;
            }
            sys.pe_mut(pe).write(dst, out);
            moved += out.len() as u64;
        }
    }

    // Degraded landings still run verified: a fault plan that also
    // corrupts healthy PEs' writes is detected, not absorbed.
    if let Some(ev) = sys.take_corruption() {
        return Err(Error::DataCorruption {
            pe: ev.pe,
            offset: ev.offset,
            expected: ev.expected,
            found: ev.found,
            epoch: ev.epoch,
        });
    }

    let mut sheet = CostSheet::new(sys.geometry().channels());
    sheet.recovery_bytes = moved; // simlint: allow(cost-sheet, reason = "verified-execution readback tally outside the plan's cost model by design; cost-only execution models the unverified run")
    sheet.apply(sys);

    let (bytes_in, bytes_out) =
        logical_volumes(plan.primitive, b, n, plan.num_nodes, plan.num_groups);
    Ok(VerifiedExecution {
        report: CommReport {
            primitive: plan.primitive,
            opt: plan.opt,
            breakdown: sys.meter().since(before),
            bytes_in,
            bytes_out,
            group_size: n,
            num_groups: plan.num_groups,
        },
        host_out,
        retries,
        degraded: true,
    })
}

//! Per-call execution reports.

use core::fmt;

use pim_sim::Breakdown;

use crate::config::{OptLevel, Primitive};

/// Result of one collective invocation: modeled time (with the paper's
/// breakdown categories) and logical data volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CommReport {
    /// The primitive that ran.
    pub primitive: Primitive,
    /// The optimization level it ran at.
    pub opt: OptLevel,
    /// Modeled execution-time breakdown for this call.
    pub breakdown: Breakdown,
    /// Logical bytes contributed by all senders (before any reduction).
    pub bytes_in: u64,
    /// Logical bytes received by all receivers.
    pub bytes_out: u64,
    /// Communication group size (nodes per group).
    pub group_size: usize,
    /// Number of simultaneous groups (instances).
    pub num_groups: usize,
}

impl CommReport {
    /// Modeled wall-clock time of the call in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.breakdown.total()
    }

    /// Throughput as defined by the paper (§VIII-B): the larger side of the
    /// data size (before reduction) divided by execution time, in GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        let bytes = self.bytes_in.max(self.bytes_out) as f64;
        bytes / self.time_ns()
    }
}

impl fmt::Display for CommReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} groups x {} nodes: {:.1} us, {:.2} GB/s",
            self.primitive,
            self.opt,
            self.num_groups,
            self.group_size,
            self.time_ns() / 1e3,
            self.throughput_gbps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::Category;

    #[test]
    fn throughput_uses_larger_side() {
        let mut breakdown = Breakdown::new();
        breakdown.charge(Category::PeMemAccess, 1000.0);
        let r = CommReport {
            primitive: Primitive::AllGather,
            opt: OptLevel::Full,
            breakdown,
            bytes_in: 1_000,
            bytes_out: 8_000,
            group_size: 8,
            num_groups: 1,
        };
        assert!((r.throughput_gbps() - 8.0).abs() < 1e-9);
        assert_eq!(r.time_ns(), 1000.0);
        assert!(format!("{r}").contains("AllGather"));
    }
}

//! Reusable allocation arena for [`PimSystem`]s and host staging buffers.
//!
//! Every benchmark cell builds a `PimSystem` (up to 1024 PEs, each with
//! paged MRAM segments and a reorder scratch) plus multi-megabyte host
//! staging buffers for its scatters, uses them for one run and drops the
//! lot — so a sweep over dozens of cells spends a measurable slice of its
//! serial wall on the allocator. A [`SystemArena`] closes that gap: each
//! sweep worker owns one arena, returns its system and buffers when a cell
//! finishes, and the next cell on that worker checks them out again,
//! zeroed in place instead of reallocated.
//!
//! # Lifecycle and determinism contract
//!
//! * [`SystemArena::system`] returns a pooled system with *matching
//!   geometry* after [`PimSystem::reset`] — functionally indistinguishable
//!   from `PimSystem::new(geom)` (all reads observe zeros, meter empty) —
//!   or builds a fresh one on a pool miss. Pooled systems keep their
//!   [`crate::TimeModel`]; the arena is meant for homogeneous sweeps where
//!   every cell uses the default calibration, and callers with custom
//!   models should build those systems directly.
//! * [`SystemArena::recycle`] returns a system to the pool. Skipping it
//!   (e.g. on an error path) is safe — the system just drops and the next
//!   checkout pays a fresh allocation.
//! * [`SystemArena::bytes`] / [`SystemArena::recycle_bytes`] do the same
//!   for plain `Vec<u8>` staging buffers: `bytes(len)` is observationally
//!   `vec![0u8; len]`, reusing the largest recycled capacity.
//!
//! Because a checkout is always all-zero with a cleared meter, two
//! consecutive cells on one worker can never observe each other's state —
//! pinned by `app_sweep_determinism`'s arena-reuse test.

use crate::geometry::DimmGeometry;
use crate::system::PimSystem;

/// Per-worker pool of [`PimSystem`]s and host staging buffers. See the
/// module docs for the lifecycle and determinism contract.
#[derive(Debug, Default)]
pub struct SystemArena {
    systems: Vec<PimSystem>,
    buffers: Vec<Vec<u8>>,
}

impl SystemArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out an all-zero system with geometry `geom`: a reset pooled
    /// system when one with matching geometry is available, a fresh
    /// [`PimSystem::new`] otherwise.
    pub fn system(&mut self, geom: DimmGeometry) -> PimSystem {
        match self.systems.iter().position(|s| *s.geometry() == geom) {
            Some(i) => {
                let mut sys = self.systems.swap_remove(i);
                sys.reset();
                sys
            }
            None => PimSystem::new(geom),
        }
    }

    /// Returns a system to the pool for the next checkout.
    pub fn recycle(&mut self, sys: PimSystem) {
        self.systems.push(sys);
    }

    /// Checks out a zero-filled buffer of exactly `len` bytes, reusing the
    /// largest recycled allocation when one exists.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut buf = match self
            .buffers
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
        {
            Some((i, _)) => self.buffers.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a staging buffer to the pool.
    pub fn recycle_bytes(&mut self, buf: Vec<u8>) {
        self.buffers.push(buf);
    }

    /// Number of systems currently parked in the pool (tests/metrics).
    pub fn pooled_systems(&self) -> usize {
        self.systems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PeId;

    #[test]
    fn checkout_after_recycle_is_all_zero_and_reuses_the_allocation() {
        let geom = DimmGeometry::single_rank();
        let mut arena = SystemArena::new();
        let mut sys = arena.system(geom);
        sys.pe_mut(PeId(5)).write(128, &[0xAB; 256]);
        sys.run_kernel(17.0);
        assert!(sys.total_mram_used() > 0);
        arena.recycle(sys);
        assert_eq!(arena.pooled_systems(), 1);

        let sys = arena.system(geom);
        assert_eq!(arena.pooled_systems(), 0, "pool hit consumed the entry");
        assert_eq!(sys.total_mram_used(), 0);
        assert_eq!(sys.meter().total(), 0.0);
        assert_eq!(sys.pe(PeId(5)).peek(128, 256), vec![0u8; 256]);
        // The recycled PE kept its materialized pages (the whole point).
        assert!(sys.pe(PeId(5)).mram_resident() > 0);
    }

    #[test]
    fn geometry_mismatch_builds_fresh() {
        let mut arena = SystemArena::new();
        arena.recycle(PimSystem::new(DimmGeometry::single_rank()));
        let sys = arena.system(DimmGeometry::single_group());
        assert_eq!(*sys.geometry(), DimmGeometry::single_group());
        assert_eq!(arena.pooled_systems(), 1, "mismatch leaves the pool alone");
    }

    #[test]
    fn bytes_are_observationally_fresh_zero_vectors() {
        let mut arena = SystemArena::new();
        let mut b = arena.bytes(1024);
        assert_eq!(b, vec![0u8; 1024]);
        b.fill(0x77);
        let cap = b.capacity();
        arena.recycle_bytes(b);
        let b = arena.bytes(512);
        assert_eq!(b, vec![0u8; 512]);
        assert_eq!(b.capacity(), cap, "recycled capacity is reused");
        arena.recycle_bytes(b);
        let b = arena.bytes(2048);
        assert_eq!(b, vec![0u8; 2048]);
    }
}

//! Prepared & fused execution identity suite.
//!
//! The prepared tier ([`pidcomm::PreparedScatter`], [`pidcomm::FusedPlan`])
//! removes host-side copies and per-call validation — never the charged
//! schedule. Every test here pins that claim bit-for-bit: prepared
//! executes against per-call `execute_with_host`, fused chains against the
//! same plans issued separately, and the verified/chaos tier against the
//! clean result — across all 8 primitives, 3 optimization levels and
//! fresh/recycled arenas.

use pidcomm::{
    BufferSpec, CollectivePlan, Communicator, DimMask, Error, HypercubeManager, HypercubeShape,
    OptLevel, Primitive, RecoveryPolicy, ReduceKind,
};
use pim_sim::{DimmGeometry, FaultKind, FaultPlan, PimSystem, SystemArena};
use std::sync::Arc;

const B: usize = 512;
const N: usize = 8;
const GROUPS: usize = 8;
// Chain buffer layout: step k writes exactly where step k + 1 reads, so a
// fused chain moves data end-to-end with no host staging in between.
const O1: usize = 8192; // first-step destination
const O2: usize = 16384; // second-step destination
const O3: usize = 24576; // third-step destination (AllGather: N * B wide)
const O4: usize = 32768; // last-step destination
const SNAP: usize = O4 + N * B; // snapshot window covers every extent

fn comm(opt: OptLevel, threads: usize) -> Communicator {
    let geom = DimmGeometry::single_rank(); // 64 PEs
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    Communicator::new(manager)
        .with_opt(opt)
        .with_threads(threads)
}

fn fresh_filled(arena: &mut SystemArena) -> PimSystem {
    let geom = DimmGeometry::single_rank();
    let mut sys = arena.system(geom);
    for pe in geom.pes() {
        let fill: Vec<u8> = (0..N * B)
            .map(|i| ((pe.0 as usize * 31 + i * 7) % 251) as u8)
            .collect();
        sys.pe_mut(pe).write(0, &fill);
    }
    sys
}

/// Full MRAM image of every window the chains touch, on every PE.
fn snapshot(sys: &PimSystem) -> Vec<Vec<u8>> {
    sys.geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, SNAP))
        .collect()
}

fn host_in(prim: Primitive) -> Vec<Vec<u8>> {
    match prim {
        Primitive::Scatter => (0..GROUPS)
            .map(|g| (0..N * B).map(|i| ((g * 13 + i) % 241) as u8).collect())
            .collect(),
        Primitive::Broadcast => (0..GROUPS)
            .map(|g| (0..B).map(|i| ((g * 17 + i) % 239) as u8).collect())
            .collect(),
        _ => unreachable!("only rooted sends take host input"),
    }
}

/// The two chains that cover all 8 primitives between them, wired so each
/// step consumes the previous step's destination window. Returns the plan
/// sequence; step 0 is always a rooted send, the last step a rooted
/// receive.
fn chain(c: &Communicator, mask: &DimMask, first: Primitive) -> Vec<Arc<CollectivePlan>> {
    let plan = |prim: Primitive, src: usize, dst: usize, bytes: usize| {
        Arc::new(
            c.plan(
                prim,
                mask,
                &BufferSpec::new(src, dst, bytes),
                ReduceKind::Sum,
            )
            .unwrap(),
        )
    };
    match first {
        // Scatter -> AlltoAll -> ReduceScatter -> Gather.
        Primitive::Scatter => vec![
            plan(Primitive::Scatter, 0, O1, B),
            plan(Primitive::AlltoAll, O1, O2, B),
            plan(Primitive::ReduceScatter, O2, O3, B),
            plan(Primitive::Gather, O3, O4, B / N),
        ],
        // Broadcast -> AllReduce -> AllGather -> Reduce.
        Primitive::Broadcast => vec![
            plan(Primitive::Broadcast, 0, O1, B),
            plan(Primitive::AllReduce, O1, O2, B),
            plan(Primitive::AllGather, O2, O3, B),
            plan(Primitive::Reduce, O3, O4, N * B),
        ],
        other => unreachable!("chains start with a rooted send, not {other}"),
    }
}

/// Executes one plan through the ordinary per-call path.
fn run_step(
    plan: &CollectivePlan,
    sys: &mut PimSystem,
    hin: Option<&[Vec<u8>]>,
) -> (pidcomm::CommReport, Option<Vec<Vec<u8>>>) {
    match plan.primitive() {
        Primitive::Scatter | Primitive::Broadcast => {
            (plan.execute_with_host(sys, hin.unwrap()).unwrap(), None)
        }
        Primitive::Gather | Primitive::Reduce => {
            let (r, out) = plan.execute_to_host(sys).unwrap();
            (r, Some(out))
        }
        _ => (plan.execute(sys).unwrap(), None),
    }
}

/// A prepared scatter/broadcast executes bit-identically to per-call
/// `execute_with_host` — across opt levels, repeat executes, recycled
/// arenas and restaged payloads.
#[test]
fn prepared_execution_matches_per_call_path() {
    let mask: DimMask = "10".parse().unwrap();
    for opt in [OptLevel::Baseline, OptLevel::InRegister, OptLevel::Full] {
        for prim in [Primitive::Scatter, Primitive::Broadcast] {
            let c = comm(opt, 1);
            let hin = host_in(prim);
            let plan = Arc::new(
                c.plan(prim, &mask, &BufferSpec::new(0, O1, B), ReduceKind::Sum)
                    .unwrap(),
            );

            // Cold per-call reference.
            let mut arena = SystemArena::new();
            let mut sys = fresh_filled(&mut arena);
            let ref_report = plan.execute_with_host(&mut sys, &hin).unwrap();
            let ref_mram = snapshot(&sys);
            arena.recycle(sys);

            // Prepared: stage once, execute thrice, across fresh and
            // arena-pooled images.
            let prepared = c.prepare(Arc::clone(&plan), &hin).unwrap();
            let pooled = c.prepare_in(Arc::clone(&plan), &hin, &mut arena).unwrap();
            for p in [&prepared, &pooled] {
                for round in 0..3 {
                    let mut sys = fresh_filled(&mut arena);
                    let report = p.execute(&mut sys).unwrap();
                    assert!(
                        report == ref_report,
                        "{prim} {opt:?}: prepared report diverges (round {round})"
                    );
                    assert!(
                        snapshot(&sys) == ref_mram,
                        "{prim} {opt:?}: prepared MRAM diverges (round {round})"
                    );
                    arena.recycle(sys);
                }
            }
            pooled.retire(&mut arena);

            // Restage with a different payload: matches the per-call path
            // for that payload.
            let hin2: Vec<Vec<u8>> = hin
                .iter()
                .map(|b| b.iter().map(|&x| x.wrapping_add(101)).collect())
                .collect();
            let mut sys = fresh_filled(&mut arena);
            let ref2 = plan.execute_with_host(&mut sys, &hin2).unwrap();
            let ref2_mram = snapshot(&sys);
            arena.recycle(sys);
            let mut prepared = prepared;
            prepared.restage(&hin2).unwrap();
            let mut sys = fresh_filled(&mut arena);
            let report = prepared.execute(&mut sys).unwrap();
            assert!(report == ref2, "{prim} {opt:?}: restaged report diverges");
            assert!(
                snapshot(&sys) == ref2_mram,
                "{prim} {opt:?}: restaged MRAM diverges"
            );
        }
    }
}

/// A fused chain's per-step reports, host output and PE bytes are
/// bit-identical to issuing the same plans separately — for both chains
/// (all 8 primitives), all 3 opt levels, fresh and recycled arenas.
#[test]
fn fused_chain_matches_unfused_plan_sequence() {
    let mask: DimMask = "10".parse().unwrap();
    for opt in [OptLevel::Baseline, OptLevel::InRegister, OptLevel::Full] {
        for first in [Primitive::Scatter, Primitive::Broadcast] {
            let c = comm(opt, 1);
            let steps = chain(&c, &mask, first);
            let hin = host_in(first);

            // Unfused reference: the same plans, issued one at a time.
            let mut arena = SystemArena::new();
            let mut sys = fresh_filled(&mut arena);
            let mut ref_reports = Vec::new();
            let mut ref_host_out = None;
            for step in &steps {
                let (r, out) = run_step(step, &mut sys, Some(&hin));
                ref_reports.push(r);
                ref_host_out = out;
            }
            let ref_mram = snapshot(&sys);
            arena.recycle(sys);

            // Fused: one chain, the prepared payload feeding step 0. Three
            // rounds over arena-recycled systems prove repeatability.
            let prepared = c
                .prepare_in(Arc::clone(&steps[0]), &hin, &mut arena)
                .unwrap();
            let fused = c.fuse(steps.clone(), &[]).unwrap();
            for round in 0..3 {
                let mut sys = fresh_filled(&mut arena);
                let exec = fused
                    .execute_with(&mut sys, Some(&prepared), |_, _| Ok(()))
                    .unwrap();
                assert!(
                    exec.reports == ref_reports,
                    "{first} chain {opt:?}: fused step reports diverge (round {round})"
                );
                assert!(
                    exec.host_out == ref_host_out,
                    "{first} chain {opt:?}: fused host output diverges (round {round})"
                );
                assert!(
                    snapshot(&sys) == ref_mram,
                    "{first} chain {opt:?}: fused MRAM diverges (round {round})"
                );
                arena.recycle(sys);
            }
            prepared.retire(&mut arena);
        }
    }
}

/// The fusion contract rejects malformed chains and mismatched prepared
/// payloads with typed errors.
#[test]
fn fusion_contract_is_enforced() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full, 1);
    let steps = chain(&c, &mask, Primitive::Scatter);

    // Fewer than two steps.
    assert!(matches!(
        c.fuse(vec![Arc::clone(&steps[1])], &[]),
        Err(Error::InvalidHostData(_))
    ));
    // A rooted send anywhere but first.
    assert!(matches!(
        c.fuse(vec![Arc::clone(&steps[1]), Arc::clone(&steps[0])], &[]),
        Err(Error::InvalidHostData(_))
    ));
    // A rooted receive anywhere but last.
    assert!(matches!(
        c.fuse(vec![Arc::clone(&steps[3]), Arc::clone(&steps[1])], &[]),
        Err(Error::InvalidHostData(_))
    ));

    let fused = c.fuse(steps.clone(), &[]).unwrap();
    let mut arena = SystemArena::new();
    let mut sys = fresh_filled(&mut arena);
    // A rooted-send chain demands its prepared payload.
    assert!(fused.execute_with(&mut sys, None, |_, _| Ok(())).is_err());
    // A payload staged for a *different* plan instance (same shape, same
    // bytes) is rejected: identity, not structural equality, is the
    // contract.
    let twin = chain(&c, &mask, Primitive::Scatter);
    let wrong = c
        .prepare(Arc::clone(&twin[0]), &host_in(Primitive::Scatter))
        .unwrap();
    assert!(fused
        .execute_with(&mut sys, Some(&wrong), |_, _| Ok(()))
        .is_err());
    // A non-rooted chain takes no prepared input.
    let tail = c
        .fuse(vec![Arc::clone(&steps[1]), Arc::clone(&steps[2])], &[])
        .unwrap();
    assert!(tail
        .execute_with(&mut sys, Some(&wrong), |_, _| Ok(()))
        .is_err());

    // Merged rollback regions cover every step's extents plus hook extras.
    let hook_region = (SNAP, 128);
    let with_extra = c.fuse(steps, &[hook_region]).unwrap();
    let covers = |off: usize, len: usize| {
        with_extra
            .regions()
            .iter()
            .any(|&(o, l)| o <= off && off + len <= o + l)
    };
    assert!(covers(O1, B), "step-0 destination uncovered");
    assert!(covers(O3, B / N), "mid-chain destination uncovered");
    assert!(covers(SNAP, 128), "hook extra region uncovered");
}

/// With no fault plan attached, the verified fused path is bit-identical
/// to the plain fused execute — the chain-level zero-cost guarantee.
#[test]
fn zero_fault_verified_fused_is_bit_identical() {
    let mask: DimMask = "10".parse().unwrap();
    for first in [Primitive::Scatter, Primitive::Broadcast] {
        let c = comm(OptLevel::Full, 1);
        let steps = chain(&c, &mask, first);
        let hin = host_in(first);
        let prepared = c.prepare(Arc::clone(&steps[0]), &hin).unwrap();
        let fused = c.fuse(steps, &[]).unwrap();

        let mut arena = SystemArena::new();
        let mut sys = fresh_filled(&mut arena);
        let plain = fused
            .execute_with(&mut sys, Some(&prepared), |_, _| Ok(()))
            .unwrap();
        let plain_mram = snapshot(&sys);
        arena.recycle(sys);

        let mut sys = fresh_filled(&mut arena);
        let ver = c
            .execute_verified_fused(
                &mut sys,
                &fused,
                Some(&prepared),
                &RecoveryPolicy::default(),
                |_, _| Ok(()),
            )
            .unwrap();
        assert_eq!(ver.retries, 0, "{first} chain");
        assert!(!ver.degraded, "{first} chain");
        assert!(
            ver.reports == plain.reports,
            "{first} chain: verified step reports diverge"
        );
        assert!(
            ver.host_out == plain.host_out,
            "{first} chain: verified host output diverges"
        );
        assert!(
            snapshot(&sys) == plain_mram,
            "{first} chain: verified MRAM diverges"
        );
    }
}

/// The acceptance chaos scenario: a seeded transient fault landing in the
/// *middle* of a fused chain — after step 0 committed, with a hook having
/// written its own region — rolls the whole chain back (merged step +
/// hook regions) and replays to the exact clean result, hook included.
#[test]
fn mid_fused_step_fault_rolls_back_whole_chain_cleanly() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full, 1);
    let steps = chain(&c, &mask, Primitive::Scatter);
    let hin = host_in(Primitive::Scatter);
    let prepared = c.prepare(Arc::clone(&steps[0]), &hin).unwrap();

    // The hook after step 0 derives bytes from step 0's output and lands
    // them past every plan extent; `extra` tells the chain to cover them.
    let hook_off = SNAP;
    let hook = |k: usize, sys: &mut PimSystem| {
        if k == 0 {
            for pe in sys.geometry().pes() {
                let row: Vec<u8> = sys.pe(pe).peek(O1, 64).iter().map(|&b| b ^ 0xFF).collect();
                sys.pe_mut(pe).write(hook_off, &row);
            }
        }
        Ok(())
    };
    let fused = c.fuse(steps, &[(hook_off, 64)]).unwrap();

    // Clean reference (hook included).
    let mut arena = SystemArena::new();
    let mut sys = fresh_filled(&mut arena);
    let clean = fused.execute_with(&mut sys, Some(&prepared), hook).unwrap();
    let clean_mram: Vec<Vec<u8>> = sys
        .geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, SNAP + 64))
        .collect();
    arena.recycle(sys);

    // A bit flip on PE 2's writes during fault epoch 3 — the chain's
    // *third* step, two steps and one hook after the prepared payload
    // landed. The verified tier must detect it, restore the merged
    // regions (hook bytes included) and re-run the chain from step 0.
    let mut sys = fresh_filled(&mut arena);
    sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
        FaultKind::BitFlip,
        2,
        3,
    )));
    let ver = c
        .execute_verified_fused(
            &mut sys,
            &fused,
            Some(&prepared),
            &RecoveryPolicy::default(),
            hook,
        )
        .unwrap();
    assert!(ver.retries >= 1, "the mid-chain fault must force a retry");
    assert!(!ver.degraded);
    // The committed pass's step reports are meter deltas; after a failed
    // attempt the meter base shifts, so the breakdowns agree only to f64
    // rounding. The *logical* schedule must match exactly, and the retry
    // surcharge must be visible in the spanning breakdown.
    assert_eq!(ver.reports.len(), clean.reports.len());
    for (v, c) in ver.reports.iter().zip(&clean.reports) {
        assert_eq!(v.primitive, c.primitive);
        assert_eq!((v.bytes_in, v.bytes_out), (c.bytes_in, c.bytes_out));
        assert_eq!((v.group_size, v.num_groups), (c.group_size, c.num_groups));
    }
    let clean_total: f64 = clean.reports.iter().map(|r| r.time_ns()).sum();
    assert!(
        ver.breakdown.total() > clean_total,
        "recovery must be visible in modeled time ({} vs clean {clean_total})",
        ver.breakdown.total()
    );
    assert!(ver.host_out == clean.host_out, "host output diverges");
    sys.detach_fault_plan();
    let got: Vec<Vec<u8>> = sys
        .geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, SNAP + 64))
        .collect();
    assert!(
        got == clean_mram,
        "retried chain must land the exact clean bytes, hook region included"
    );
}

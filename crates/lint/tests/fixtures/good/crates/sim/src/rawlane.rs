// L5 good: documented and (in the test) allowlisted unsafe.
pub fn read_lane(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` points into the PE's MRAM slab; the
    // typed view bounds-checked the offset before taking the pointer.
    unsafe { *p }
}

// L4 bad: allocation inside a marked per-PE region.
pub fn kernel(dst: &mut [u8]) {
    // simlint: hot(begin, fixture kernel)
    let scratch = vec![0u8; 64];
    dst.copy_from_slice(&scratch);
    // simlint: hot(end)
}

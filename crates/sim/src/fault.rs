//! Deterministic fault injection: the chaos layer of the PIM substrate.
//!
//! Every number the engine reports assumes perfect hardware; real
//! DIMM-resident PEs are exactly where transient faults live. This module
//! lets tests and harnesses schedule faults *deterministically* — every
//! decision is a pure function of `(seed, pe, epoch, offset)`, so a fault
//! schedule is reproducible bit-for-bit regardless of thread count or
//! scheduling, the same property the rest of the simulator guarantees for
//! fault-free runs.
//!
//! # Fault model
//!
//! Three fault kinds, all striking the host-mediated transport writes
//! (every burst/row landing funnels through [`crate::pe::Pe::write`]):
//!
//! * **Bit flips** ([`FaultKind::BitFlip`]): one bit of a landed write is
//!   inverted — transient MRAM corruption at the moment data lands.
//! * **Row corruption** ([`FaultKind::RowCorrupt`]): one 8-byte lane word
//!   of a landed write is XORed with a pseudo-random mask — an in-flight
//!   row-transfer error.
//! * **Stuck PEs** ([`FaultKind::Stuck`] / [`FaultPlan::with_failed_pe`]):
//!   a dead DPU. Its MRAM stays host-readable (matching UPMEM, where the
//!   host reaches a bank regardless of DPU health) but writes routed to it
//!   are dropped, and it cannot run kernels. Stuck faults are *transient*
//!   (one epoch) when scheduled by event/period, *persistent* when listed
//!   via [`FaultPlan::with_failed_pe`].
//!
//! An **epoch** is one collective execution: the engine calls
//! [`FaultPlan::begin_epoch`] at each execute boundary, so "transient"
//! means "gone on retry".
//!
//! # Detection
//!
//! Detection is read-after-write verification: with verification enabled
//! (see `PimSystem::set_verify_writes`), every transport write computes the
//! FNV-1a digest of the intended bytes, reads the landed bytes back and
//! compares. The first mismatch per PE is recorded as a
//! [`CorruptionEvent`] and surfaced at the execute boundary. Verification
//! never touches the cost meter, so enabling it leaves modeled times
//! bit-identical; with no fault plan attached the digests always match and
//! the data path is byte-identical to the unverified one.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit digest — the fingerprint primitive of the write
/// verification path (and of the benchmark drift guards).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64-style stateless mixer: one well-spread `u64` per key tuple.
/// All fault decisions come from this, which is what makes the schedule
/// independent of write order and thread count.
fn mix(seed: u64, a: u64, b: u64, c: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(c)
        .wrapping_add(salt.wrapping_mul(0xd6e8_feb8_6659_fd93));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const SALT_FLIP: u64 = 1;
const SALT_ROW: u64 = 2;
const SALT_STUCK: u64 = 3;
const SALT_POS: u64 = 4;

/// The kinds of fault a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Invert one bit of a landed transport write.
    BitFlip,
    /// XOR one 8-byte lane word of a landed transport write.
    RowCorrupt,
    /// The PE is dead for the epoch: writes to it are dropped.
    Stuck,
}

/// One explicitly scheduled fault: `kind` strikes PE `pe` during epoch
/// `epoch`. Explicit events make single-fault experiments precise where
/// the period-based schedule is statistical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// The PE it happens to (flat PE index).
    pub pe: u32,
    /// The execution epoch it happens in (first execution = epoch 1).
    pub epoch: u64,
}

/// What a scheduled fault does to one landed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Invert bit `bit` of the written range (bit index within `len * 8`).
    BitFlip {
        /// Bit position within the written bytes.
        bit: usize,
    },
    /// XOR the 8-byte word at `word * 8` with `mask` (never zero).
    RowCorrupt {
        /// Word index within the written bytes.
        word: usize,
        /// Non-zero XOR mask.
        mask: u64,
    },
}

/// First detected write corruption on a PE: the intended vs. landed FNV
/// digests of one transport write. Surfaced at execute boundaries as
/// `pidcomm::Error::DataCorruption`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionEvent {
    /// Flat index of the PE whose write verification failed.
    pub pe: u32,
    /// MRAM offset of the failed write.
    pub offset: usize,
    /// Length of the failed write.
    pub len: usize,
    /// FNV-1a digest of the intended bytes.
    pub expected: u64,
    /// FNV-1a digest of the bytes actually landed.
    pub found: u64,
    /// Fault-plan epoch the write happened in (0 when no plan attached).
    pub epoch: u64,
}

/// A deterministic, seeded schedule of hardware faults.
///
/// A plan combines a *statistical* schedule (per-kind periods: a fault of
/// that kind strikes a write when a hash of `(seed, pe, epoch, offset)`
/// falls on the period) with *explicit* [`FaultEvent`]s and a set of
/// *persistently failed* PEs. All decisions are stateless functions of the
/// key tuple, so the same plan produces the same faults at any thread
/// count; the only mutable state is the epoch counter, advanced once per
/// collective execution at a single-threaded boundary.
///
/// # Examples
///
/// ```
/// use pim_sim::fault::{FaultKind, FaultPlan};
///
/// // PE 3's transport is poisoned during (only) the second execution.
/// let plan = FaultPlan::new(42).with_event(FaultKind::BitFlip, 3, 2);
/// assert_eq!(plan.begin_epoch(), 1);
/// assert!(plan.write_fault(3, 0, 64).is_none());
/// assert_eq!(plan.begin_epoch(), 2);
/// assert!(plan.write_fault(3, 0, 64).is_some());
/// assert!(plan.write_fault(4, 0, 64).is_none());
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    bit_flip_period: u64,
    row_corrupt_period: u64,
    stuck_period: u64,
    events: Vec<FaultEvent>,
    failed_pes: BTreeSet<u32>,
    epoch: AtomicU64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults scheduled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Schedules statistical bit flips: roughly one write in `period`
    /// (per PE, per epoch, keyed by offset) lands with one bit inverted.
    /// `0` disables the kind.
    pub fn with_bit_flip_period(mut self, period: u64) -> Self {
        self.bit_flip_period = period;
        self
    }

    /// Schedules statistical row corruption: roughly one row-sized write
    /// in `period` lands with one lane word XORed. `0` disables the kind.
    pub fn with_row_corrupt_period(mut self, period: u64) -> Self {
        self.row_corrupt_period = period;
        self
    }

    /// Schedules statistical transient PE failures: PE `p` is stuck for
    /// epoch `e` when `hash(seed, p, e)` falls on the period. `0` disables
    /// the kind.
    pub fn with_stuck_period(mut self, period: u64) -> Self {
        self.stuck_period = period;
        self
    }

    /// Adds one explicit fault event (see [`FaultEvent`]).
    pub fn with_event(mut self, kind: FaultKind, pe: u32, epoch: u64) -> Self {
        self.events.push(FaultEvent { kind, pe, epoch });
        self
    }

    /// Marks a PE as persistently failed: stuck in every epoch. This is
    /// the case bounded retry cannot fix and recovery must degrade around.
    pub fn with_failed_pe(mut self, pe: u32) -> Self {
        self.failed_pes.insert(pe);
        self
    }

    /// The seed the statistical schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current execution epoch (0 before the first [`FaultPlan::begin_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Advances to the next execution epoch and returns it. Called by the
    /// engine at each execute boundary (single-threaded), so "epoch" means
    /// "collective execution" and a retry lands in a fresh epoch.
    pub fn begin_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether `pe` is listed as persistently failed.
    pub fn pe_failed_persistent(&self, pe: u32) -> bool {
        self.failed_pes.contains(&pe)
    }

    /// Whether `pe` is stuck (dead) during the current epoch —
    /// persistently failed, explicitly scheduled, or drawn by the stuck
    /// period.
    pub fn pe_stuck(&self, pe: u32) -> bool {
        if self.failed_pes.contains(&pe) {
            return true;
        }
        let e = self.epoch();
        if self
            .events
            .iter()
            .any(|ev| ev.kind == FaultKind::Stuck && ev.pe == pe && ev.epoch == e)
        {
            return true;
        }
        self.stuck_period > 0
            && mix(self.seed, pe as u64, e, 0, SALT_STUCK).is_multiple_of(self.stuck_period)
    }

    /// Decides whether (and how) a transport write of `len` bytes at
    /// `offset` on PE `pe` is corrupted in the current epoch. Pure in
    /// `(seed, pe, epoch, offset, len)`: the same write gets the same
    /// answer no matter when or on which thread it executes.
    pub fn write_fault(&self, pe: u32, offset: usize, len: usize) -> Option<WriteFault> {
        if len == 0 {
            return None;
        }
        let e = self.epoch();
        let pos = mix(self.seed, pe as u64, e, offset as u64, SALT_POS);
        for ev in &self.events {
            if ev.pe != pe || ev.epoch != e {
                continue;
            }
            match ev.kind {
                FaultKind::BitFlip => {
                    return Some(WriteFault::BitFlip {
                        bit: (pos % (len as u64 * 8)) as usize,
                    })
                }
                FaultKind::RowCorrupt if len >= 8 => {
                    return Some(WriteFault::RowCorrupt {
                        word: (pos % (len as u64 / 8)) as usize,
                        mask: pos | 1,
                    })
                }
                _ => {}
            }
        }
        if self.bit_flip_period > 0
            && mix(self.seed, pe as u64, e, offset as u64, SALT_FLIP)
                .is_multiple_of(self.bit_flip_period)
        {
            return Some(WriteFault::BitFlip {
                bit: (pos % (len as u64 * 8)) as usize,
            });
        }
        if self.row_corrupt_period > 0
            && len >= 8
            && mix(self.seed, pe as u64, e, offset as u64, SALT_ROW)
                .is_multiple_of(self.row_corrupt_period)
        {
            return Some(WriteFault::RowCorrupt {
                word: (pos % (len as u64 / 8)) as usize,
                mask: pos | 1,
            });
        }
        None
    }
}

/// A PE's handle on the system's shared fault plan: its own flat index
/// plus the plan. Installed on every PE by `PimSystem::attach_fault_plan`.
#[derive(Debug, Clone)]
pub struct FaultCtx {
    pub(crate) pe: u32,
    pub(crate) plan: Arc<FaultPlan>,
}

impl FaultCtx {
    /// Binds PE `pe` to `plan`.
    pub fn new(pe: u32, plan: Arc<FaultPlan>) -> Self {
        Self { pe, plan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn decisions_are_deterministic_and_epoch_keyed() {
        let plan = FaultPlan::new(7).with_bit_flip_period(4);
        plan.begin_epoch();
        let a: Vec<Option<WriteFault>> = (0..64).map(|o| plan.write_fault(3, o * 64, 64)).collect();
        let b: Vec<Option<WriteFault>> = (0..64).map(|o| plan.write_fault(3, o * 64, 64)).collect();
        assert_eq!(a, b, "same epoch, same answers");
        assert!(a.iter().any(Option::is_some), "period 4 fires somewhere");
        assert!(a.iter().any(Option::is_none), "period 4 spares somewhere");
        plan.begin_epoch();
        let c: Vec<Option<WriteFault>> = (0..64).map(|o| plan.write_fault(3, o * 64, 64)).collect();
        assert_ne!(a, c, "new epoch, new draw");
    }

    #[test]
    fn explicit_events_fire_exactly_on_their_key() {
        let plan = FaultPlan::new(1)
            .with_event(FaultKind::BitFlip, 5, 1)
            .with_event(FaultKind::Stuck, 9, 2);
        plan.begin_epoch();
        assert!(plan.write_fault(5, 0, 8).is_some());
        assert!(plan.write_fault(6, 0, 8).is_none());
        assert!(!plan.pe_stuck(9));
        plan.begin_epoch();
        assert!(plan.write_fault(5, 0, 8).is_none());
        assert!(plan.pe_stuck(9));
        assert!(!plan.pe_stuck(5));
    }

    #[test]
    fn persistent_failures_span_epochs() {
        let plan = FaultPlan::new(0).with_failed_pe(2);
        assert!(plan.pe_failed_persistent(2));
        for _ in 0..4 {
            plan.begin_epoch();
            assert!(plan.pe_stuck(2));
            assert!(!plan.pe_stuck(3));
        }
    }

    #[test]
    fn row_corrupt_needs_a_whole_word() {
        let plan = FaultPlan::new(3).with_event(FaultKind::RowCorrupt, 0, 1);
        plan.begin_epoch();
        assert!(
            plan.write_fault(0, 0, 4).is_none(),
            "sub-word writes spared"
        );
        match plan.write_fault(0, 0, 64) {
            Some(WriteFault::RowCorrupt { word, mask }) => {
                assert!(word < 8);
                assert_ne!(mask, 0);
            }
            other => panic!("expected row corruption, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_writes_never_fault() {
        let plan = FaultPlan::new(3).with_bit_flip_period(1);
        plan.begin_epoch();
        assert!(plan.write_fault(0, 0, 0).is_none());
    }
}

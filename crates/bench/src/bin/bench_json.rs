//! Machine-readable performance trajectory of the simulator hot path.
//!
//! Two modes:
//!
//! * **Primitive sweep** (default): the fig14-style AlltoAll /
//!   ReduceScatter / AllReduce / AllGather sweep at the full optimization
//!   level on the paper's 1024-PE 2-D (32, 32) configuration, written to
//!   `BENCH_streaming.json`. Per primitive it records the *wall-clock*
//!   time of the functional simulation alongside the *modeled* device
//!   time — wall-clock is what the refactors optimize, modeled time is
//!   what must stay bit-identical.
//! * **App sweep** (`--apps`): the fig15 application sweep (every
//!   `AppCase` at baseline and full), written to `BENCH_apps.json`. Each
//!   cell runs once on the serial reference schedule (one worker, serial
//!   engine and host kernels — the pre-sweep-pool path) with per-cell
//!   wall-clock, then the whole sweep re-runs on the work-stealing pool
//!   with per-worker system arenas; the run aborts if any parallel
//!   `AppProfile` differs from its serial reference by a single bit, so
//!   the recorded speedup can never come at the cost of modeled accuracy.
//! * **Kernel sweep** (`--kernels`): every `pim_sim::kernels` entry point
//!   on seeded inputs (ragged lengths, so block bulk *and* scalar tails
//!   run), written to `BENCH_kernels.json`. Each cell times the blocked
//!   kernel against its scalar oracle, aborts on any output mismatch, and
//!   records an FNV-1a checksum of the output bytes — the bit pattern
//!   `--check` pins, so functional drift in any kernel fails CI exactly
//!   like modeled-time drift in the app sweep.
//! * **Design-space sweep** (`--design`): extended fig19/fig20/fig22-style
//!   grids scored with *cost-only* plan execution, written to
//!   `BENCH_design.json`. Every cell also runs the functional engine once
//!   and aborts unless the analytic report matches it bit-for-bit, then
//!   records both wall-clocks — the recorded analytic speedup is what
//!   makes exhaustive design exploration affordable. `--cost-only` skips
//!   the functional cross-run (the committed reference still pins the
//!   bits via `--check`).
//! * **Autotune sweep** (`--autotune`): the analytic plan autotuner
//!   against the five applications' dominant collectives and fig20-style
//!   default shapes, written to `BENCH_autotune.json`. Each cell records
//!   the default shape's modeled time, the tuned winner and the explored
//!   frontier size; the run aborts if the tuner ever loses to a default.
//! * **Chaos soak** (`--chaos`): the five small application cases rerun
//!   through their `run_*_resilient` variants under seeded fault
//!   profiles (clean / flip / storm / dead-PE) with quarantine on and
//!   off, written to `BENCH_chaos.json`. Each cell records the typed run
//!   outcome, retries consumed, backoff epochs, checkpoint restores,
//!   quarantined PEs and the degraded-output delta alongside the modeled
//!   time; fault schedules are pure functions of fixed seeds, so the
//!   whole report is deterministic and `--check` pins it bit-for-bit.
//!   The clean column doubles as the zero-fault bit-identity guard: its
//!   modeled bits must equal the plain runners' (asserted in-process).
//!
//! Usage: `bench_json [--apps | --kernels | --design | --autotune |
//! --chaos] [--small] [--warm-serial] [--threads N] [--cells FILTER]
//! [--min-speedup X] [--cost-only] [OUTPUT] [--reference FILE]
//! [--check FILE]`
//!
//! * `OUTPUT` — path of the JSON report (default `BENCH_streaming.json`,
//!   or `BENCH_apps.json` with `--apps`).
//! * `--small` — reduced-size app sweep (the five `small_cases` on 64
//!   PEs); the CI smoke configuration.
//! * `--warm-serial` — after the cold serial reference, re-run every cell
//!   on one worker sharing a single arena, so cells past the first hit
//!   the plan cache and re-stage into pooled prepared/staging buffers.
//!   The cold-vs-warm delta isolates pure plan+prepared reuse with the
//!   schedule held fixed at one thread; recorded under `"warm_serial"`
//!   in the report metadata.
//! * `--threads N` — machine thread budget (`0` or absent = auto); the
//!   report records the budget that actually ran, not the request.
//! * `--cells FILTER` — comma-separated substrings matched against each
//!   cell's `app/dataset/opt/pes` label; only matching cells run. The CI
//!   bisect tool: a drifting cell from a full `--check` run can be
//!   re-run (and re-checked against the same full reference) alone.
//! * `--reference FILE` — a previous report to embed verbatim under
//!   `"reference"`, so before/after numbers live in one file.
//! * `--min-speedup X` — kernel slow-regression gate: fail (after writing
//!   the report) when any kernel's blocked/scalar-oracle speedup drops
//!   below `X`. The functional `--check` pins *what* the kernels compute;
//!   this gate catches toolchain/codegen regressions in *how fast* — a
//!   kernel falling below a configured multiple of the scalar loop it
//!   replaced is a build problem even when its outputs still match.
//! * `--check FILE` — compare the modeled-time bit patterns against a
//!   previously written report and fail on any drift (the CI guard for
//!   unintended modeled-time changes). With `--cells`, cells are matched
//!   by identity instead of position, so a filtered run checks against
//!   the full reference.
//!
//! App-sweep metadata additionally records the scoped plan-cache
//! hit/miss tallies of the serial and pooled passes (summed over each
//! pass's own `pidcomm::PlanCache` instances — per-cell arenas serially,
//! per-worker arenas pooled), so the trajectory shows how much planning
//! the persistent-plan engine actually skipped.

use pidcomm::{auto_threads, OptLevel, PlanCache, PlanCacheStats, Primitive};
use pidcomm_bench::sweep::SweepBudget;
use pidcomm_bench::{apps, run_primitive, time_primitive, PrimSetup};
use pim_sim::SystemArena;

const PRIMS: [Primitive; 4] = [
    Primitive::AlltoAll,
    Primitive::ReduceScatter,
    Primitive::AllReduce,
    Primitive::AllGather,
];

struct Args {
    output: String,
    reference: Option<String>,
    check: Option<String>,
    apps: bool,
    kernels: bool,
    design: bool,
    autotune: bool,
    chaos: bool,
    cost_only: bool,
    small: bool,
    warm_serial: bool,
    threads: usize,
    cells: Option<String>,
    min_speedup: Option<f64>,
}

/// Reports a usage error and exits with status 2 — flag mistakes get one
/// clear line, not a panic backtrace.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        output: String::new(),
        reference: None,
        check: None,
        apps: false,
        kernels: false,
        design: false,
        autotune: false,
        chaos: false,
        cost_only: false,
        small: false,
        warm_serial: false,
        threads: 0,
        cells: None,
        min_speedup: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reference" => {
                parsed.reference = Some(
                    args.next()
                        .unwrap_or_else(|| die("--reference needs a file path")),
                );
            }
            "--check" => {
                parsed.check = Some(
                    args.next()
                        .unwrap_or_else(|| die("--check needs a file path")),
                )
            }
            "--apps" => parsed.apps = true,
            "--kernels" => parsed.kernels = true,
            "--design" => parsed.design = true,
            "--autotune" => parsed.autotune = true,
            "--chaos" => parsed.chaos = true,
            "--cost-only" => parsed.cost_only = true,
            "--small" => parsed.small = true,
            "--warm-serial" => parsed.warm_serial = true,
            "--threads" => {
                parsed.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--cells" => {
                parsed.cells = Some(args.next().unwrap_or_else(|| die("--cells needs a filter")))
            }
            "--min-speedup" => {
                parsed.min_speedup = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--min-speedup needs a ratio")),
                );
            }
            _ if arg.starts_with("--") => die(format_args!("unknown flag {arg}")),
            _ => parsed.output = arg,
        }
    }
    let modes = [
        parsed.apps,
        parsed.kernels,
        parsed.design,
        parsed.autotune,
        parsed.chaos,
    ];
    if modes.iter().filter(|&&m| m).count() > 1 {
        die("--apps, --kernels, --design, --autotune and --chaos are mutually exclusive");
    }
    if parsed.check.is_some() && !modes.iter().any(|&m| m) {
        die("--check applies to the --apps, --kernels, --design, --autotune and --chaos sweeps");
    }
    if (parsed.small || parsed.cells.is_some() || parsed.warm_serial) && !parsed.apps {
        die("--small, --cells and --warm-serial only apply to the --apps sweep");
    }
    if parsed.min_speedup.is_some() && !parsed.kernels {
        die("--min-speedup only applies to the --kernels sweep");
    }
    if parsed.cost_only && !parsed.design {
        die("--cost-only only applies to the --design sweep");
    }
    if parsed.output.is_empty() {
        parsed.output = if parsed.apps {
            "BENCH_apps.json".into()
        } else if parsed.kernels {
            "BENCH_kernels.json".into()
        } else if parsed.design {
            "BENCH_design.json".into()
        } else if parsed.autotune {
            "BENCH_autotune.json".into()
        } else if parsed.chaos {
            "BENCH_chaos.json".into()
        } else {
            "BENCH_streaming.json".into()
        };
    }
    parsed
}

fn read_reference(reference: Option<&str>) -> String {
    match reference {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(format_args!("cannot read reference {path}: {e}"))),
        None => "null".into(),
    }
}

// ---- tolerant report scanner -----------------------------------------
//
// `--check` must never silently corrupt the drift guard, so instead of
// string-splitting on key names (which broke on key reordering and would
// break on an app name containing the matched substring), the cells are
// extracted with a small depth- and string-aware scanner that fails
// loudly on anything it cannot read.

/// One checked cell of a report: identity key plus the pinned bit
/// pattern. App-sweep cells key on `app/dataset/opt/pes` and pin the
/// modeled-time bits; kernel-sweep cells key on `kernel/case` and pin the
/// output checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CellBits {
    key: String,
    bits: String,
}

/// Returns the index of the closing quote of the string literal whose
/// opening quote sits just before `start`, honoring `\"` escapes.
fn skip_string(b: &[u8], start: usize) -> Result<usize, String> {
    let mut i = start;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err("unterminated string literal".into())
}

/// The contents of the report's own *top-level* `"results": [...]` array.
/// Depth tracking keeps an embedded `--reference` report (whose own
/// `"results"` key sits at depth ≥ 2) and string values that merely
/// contain the word from matching.
fn results_span(s: &str) -> Result<&str, String> {
    let b = s.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let end = skip_string(b, i + 1)?;
                let token = &s[i + 1..end];
                i = end + 1;
                if depth != 1 || token != "results" {
                    continue;
                }
                let mut j = i;
                while j < b.len() && b[j].is_ascii_whitespace() {
                    j += 1;
                }
                if b.get(j) != Some(&b':') {
                    continue; // a string *value* spelled "results", not a key
                }
                j += 1;
                while j < b.len() && b[j].is_ascii_whitespace() {
                    j += 1;
                }
                if b.get(j) != Some(&b'[') {
                    return Err("top-level \"results\" is not an array".into());
                }
                let start = j + 1;
                let mut d = 1usize;
                let mut k = start;
                while k < b.len() {
                    match b[k] {
                        b'"' => k = skip_string(b, k + 1)?,
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                return Ok(&s[start..k]);
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return Err("unterminated \"results\" array".into());
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    Err("no top-level \"results\" array".into())
}

/// Reads one cell object's fields in any key order; string and bare
/// scalar values are both accepted.
fn parse_cell(obj: &str) -> Result<CellBits, String> {
    let b = obj.as_bytes();
    let mut fields: Vec<(&str, String)> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        while i < b.len() && b[i] != b'"' {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        let end = skip_string(b, i + 1)?;
        let key = &obj[i + 1..end];
        i = end + 1;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if b.get(i) != Some(&b':') {
            continue; // a stray string value, not a key
        }
        i += 1;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let value = if b.get(i) == Some(&b'"') {
            let vend = skip_string(b, i + 1)?;
            let v = obj[i + 1..vend].to_string();
            i = vend + 1;
            v
        } else {
            let start = i;
            while i < b.len() && b[i] != b',' && b[i] != b'}' {
                i += 1;
            }
            obj[start..i].trim().to_string()
        };
        fields.push((key, value));
    }
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| *key == k)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("cell is missing \"{k}\" in {{{obj}}}"))
    };
    // Kernel-sweep cells carry a "kernel" field; everything else is an
    // app-sweep cell.
    if fields.iter().any(|(k, _)| *k == "kernel") {
        return Ok(CellBits {
            key: format!("{}/{}", get("kernel")?, get("case")?),
            bits: get("checksum")?,
        });
    }
    Ok(CellBits {
        key: format!(
            "{}/{}/{}/{}",
            get("app")?,
            get("dataset")?,
            get("opt")?,
            get("pes")?
        ),
        bits: get("modeled_bits")?,
    })
}

/// Extracts every cell of the report's own results (never the embedded
/// reference's). Errors are explicit — a malformed report fails the check
/// instead of silently passing with zero cells.
fn extract_cells(report: &str) -> Result<Vec<CellBits>, String> {
    let span = results_span(report)?;
    let b = span.as_bytes();
    let mut cells = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'{' => {
                let start = i + 1;
                let mut d = 1usize;
                let mut k = start;
                while k < b.len() && d > 0 {
                    match b[k] {
                        b'"' => k = skip_string(b, k + 1)?,
                        b'{' => d += 1,
                        b'}' => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                if d > 0 {
                    return Err(format!(
                        "cell {}: unterminated cell object in \"results\"",
                        cells.len()
                    ));
                }
                cells.push(
                    parse_cell(&span[start..k - 1])
                        .map_err(|e| format!("cell {}: {e}", cells.len()))?,
                );
                i = k;
            }
            b'"' => i = skip_string(b, i + 1)? + 1,
            _ => i += 1,
        }
    }
    Ok(cells)
}

/// Compares the report's cells against a previously written report at
/// `path`; exits non-zero on drift or on an unreadable report. With
/// `subset` (a `--cells` run) cells match by identity key against the
/// full reference; otherwise the exact sequence must match.
fn check_modeled_bits(json: &str, path: &str, subset: bool) {
    let parse = |label: &str, text: &str| {
        extract_cells(text).unwrap_or_else(|e| {
            eprintln!("cannot parse {label}: {e}");
            std::process::exit(1);
        })
    };
    let ref_text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read check {path}: {e}");
        std::process::exit(1);
    });
    let expect = parse(&format!("check reference {path}"), &ref_text);
    let got = parse("generated report", json);

    let mut drift = Vec::new();
    if got.is_empty() {
        drift.push("report contains no cells".to_string());
    }
    if subset {
        for cell in &got {
            match expect.iter().find(|c| c.key == cell.key) {
                Some(r) if r.bits == cell.bits => {}
                Some(r) => drift.push(format!(
                    "{}: expected bits {}, got {}",
                    cell.key, r.bits, cell.bits
                )),
                None => drift.push(format!("{}: cell not present in {path}", cell.key)),
            }
        }
    } else if expect != got {
        drift.push(format!(
            "expected {} cells {:?}, got {} cells {:?}",
            expect.len(),
            expect,
            got.len(),
            got
        ));
    }
    if !drift.is_empty() {
        eprintln!("modeled-time drift against {path}:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "modeled times match {path} bit-for-bit ({} cells{})",
        got.len(),
        if subset { ", matched by identity" } else { "" }
    );
}

// ---- kernel sweep ----------------------------------------------------
//
// Every `pim_sim::kernels` entry point on seeded ragged-length inputs:
// the blocked kernel and its scalar oracle both run to completion, the
// outputs must match exactly (abort otherwise), the output fingerprint is
// recorded for `--check`, and both variants are timed so the trajectory
// keeps the before/after visible.

/// FNV-1a 64 over bytes — the deterministic output fingerprint the
/// kernel sweep pins.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Times `f` over enough iterations to fill ~10 ms and returns ns/iter.
fn time_kernel(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    let mut warm = 0u64;
    while t0.elapsed().as_millis() < 2 {
        f();
        warm += 1;
    }
    let iters = (warm * 5).max(10);
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t1.elapsed().as_nanos() as f64 / iters as f64
}

fn run_kernel_sweep(args: &Args) {
    use pim_sim::kernels::{self, reference as oracle};
    use pim_sim::testgen::SplitMix64;
    use pim_sim::DType;
    use std::hint::black_box;

    let mut g = SplitMix64::new(0x004e_51e7);
    let mut rows: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut emit = |kernel: &str, case: &str, fast_ns: f64, ref_ns: f64, out: &[u8]| {
        let checksum = fnv1a(out);
        eprintln!(
            "{:<26} {:<12} {fast_ns:>10.1} ns vs {ref_ns:>10.1} ns scalar ({:>5.2}x)",
            kernel,
            case,
            ref_ns / fast_ns
        );
        speedups.push((format!("{kernel}/{case}"), ref_ns / fast_ns));
        rows.push(format!(
            "    {{ \"kernel\": \"{kernel}\", \"case\": \"{case}\", \"wall_ns\": {fast_ns:.2}, \"scalar_ref_ns\": {ref_ns:.2}, \"speedup\": {:.4}, \"checksum\": \"{checksum:016x}\" }}",
            ref_ns / fast_ns
        ));
    };
    // Independent fingerprint encoding (never the kernel under test).
    fn le32(v: &[i32]) -> Vec<u8> {
        let mut out = vec![0u8; v.len() * 4];
        oracle::encode_i32_scalar_ref(v, &mut out);
        out
    }

    // Ragged element counts: block bulk + scalar tail both execute.
    const N: usize = 16 * 1024 + 7;

    // Codecs.
    let bytes = g.bytes(N * 8);
    {
        let mut fast = vec![0i32; N];
        let mut slow = vec![0i32; N];
        kernels::decode_i32(&bytes[..N * 4], &mut fast);
        oracle::decode_i32_scalar_ref(&bytes[..N * 4], &mut slow);
        assert_eq!(fast, slow, "decode_i32 diverges from its oracle");
        let f =
            time_kernel(|| kernels::decode_i32(black_box(&bytes[..N * 4]), black_box(&mut fast)));
        let r = time_kernel(|| {
            oracle::decode_i32_scalar_ref(black_box(&bytes[..N * 4]), black_box(&mut slow))
        });
        emit("decode_i32", &N.to_string(), f, r, &le32(&fast));

        let vals = fast.clone();
        let mut fast = vec![0u8; N * 4];
        let mut slow = vec![0u8; N * 4];
        kernels::encode_i32(&vals, &mut fast);
        oracle::encode_i32_scalar_ref(&vals, &mut slow);
        assert_eq!(fast, slow, "encode_i32 diverges from its oracle");
        let f = time_kernel(|| kernels::encode_i32(black_box(&vals), black_box(&mut fast)));
        let r =
            time_kernel(|| oracle::encode_i32_scalar_ref(black_box(&vals), black_box(&mut slow)));
        emit("encode_i32", &N.to_string(), f, r, &fast);
    }
    {
        let mut fast = vec![0u32; N];
        let mut slow = vec![0u32; N];
        kernels::decode_u32(&bytes[..N * 4], &mut fast);
        oracle::decode_u32_scalar_ref(&bytes[..N * 4], &mut slow);
        assert_eq!(fast, slow, "decode_u32 diverges from its oracle");
        let f =
            time_kernel(|| kernels::decode_u32(black_box(&bytes[..N * 4]), black_box(&mut fast)));
        let r = time_kernel(|| {
            oracle::decode_u32_scalar_ref(black_box(&bytes[..N * 4]), black_box(&mut slow))
        });
        let mut enc = vec![0u8; N * 4];
        oracle::encode_u32_scalar_ref(&fast, &mut enc);
        emit("decode_u32", &N.to_string(), f, r, &enc);

        let vals = fast.clone();
        let mut fast = vec![0u8; N * 4];
        let mut slow = vec![0u8; N * 4];
        kernels::encode_u32(&vals, &mut fast);
        oracle::encode_u32_scalar_ref(&vals, &mut slow);
        assert_eq!(fast, slow, "encode_u32 diverges from its oracle");
        let f = time_kernel(|| kernels::encode_u32(black_box(&vals), black_box(&mut fast)));
        let r =
            time_kernel(|| oracle::encode_u32_scalar_ref(black_box(&vals), black_box(&mut slow)));
        emit("encode_u32", &N.to_string(), f, r, &fast);
    }
    {
        let mut fast = vec![0u64; N];
        let mut slow = vec![0u64; N];
        kernels::decode_u64(&bytes, &mut fast);
        oracle::decode_u64_scalar_ref(&bytes, &mut slow);
        assert_eq!(fast, slow, "decode_u64 diverges from its oracle");
        let f = time_kernel(|| kernels::decode_u64(black_box(&bytes), black_box(&mut fast)));
        let r =
            time_kernel(|| oracle::decode_u64_scalar_ref(black_box(&bytes), black_box(&mut slow)));
        let mut enc = vec![0u8; N * 8];
        oracle::encode_u64_scalar_ref(&fast, &mut enc);
        emit("decode_u64", &N.to_string(), f, r, &enc);

        let vals = fast.clone();
        let mut fast = vec![0u8; N * 8];
        let mut slow = vec![0u8; N * 8];
        kernels::encode_u64(&vals, &mut fast);
        oracle::encode_u64_scalar_ref(&vals, &mut slow);
        assert_eq!(fast, slow, "encode_u64 diverges from its oracle");
        let f = time_kernel(|| kernels::encode_u64(black_box(&vals), black_box(&mut fast)));
        let r =
            time_kernel(|| oracle::encode_u64_scalar_ref(black_box(&vals), black_box(&mut slow)));
        emit("encode_u64", &N.to_string(), f, r, &fast);
    }
    for dt in [DType::I8, DType::I16] {
        let w = dt.size_bytes();
        let mut fast = vec![0i32; N];
        let mut slow = vec![0i32; N];
        kernels::decode_sext(dt, &bytes[..N * w], &mut fast);
        oracle::decode_sext_scalar_ref(dt, &bytes[..N * w], &mut slow);
        assert_eq!(fast, slow, "decode_sext {dt} diverges from its oracle");
        let f = time_kernel(|| {
            kernels::decode_sext(dt, black_box(&bytes[..N * w]), black_box(&mut fast))
        });
        let r = time_kernel(|| {
            oracle::decode_sext_scalar_ref(dt, black_box(&bytes[..N * w]), black_box(&mut slow))
        });
        emit("decode_sext", &format!("{dt}x{N}"), f, r, &le32(&fast));

        let vals = fast.clone();
        let mut fast = vec![0u8; N * w];
        let mut slow = vec![0u8; N * w];
        kernels::encode_trunc(dt, &vals, &mut fast);
        oracle::encode_trunc_scalar_ref(dt, &vals, &mut slow);
        assert_eq!(fast, slow, "encode_trunc {dt} diverges from its oracle");
        let f = time_kernel(|| kernels::encode_trunc(dt, black_box(&vals), black_box(&mut fast)));
        let r = time_kernel(|| {
            oracle::encode_trunc_scalar_ref(dt, black_box(&vals), black_box(&mut slow))
        });
        emit("encode_trunc", &format!("{dt}x{N}"), f, r, &fast);
    }

    // Accumulates at the MLP partial-vector shape (+ ragged tail).
    let na: i32 = 4096 + 5;
    let acc0: Vec<i32> = (0..na).map(|i| i.wrapping_mul(31) - 7).collect();
    let xs: Vec<i32> = (0..na).map(|i| (i % 97) - 48).collect();
    let xbytes = le32(&xs);
    {
        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::axpy_i32(&mut fast, 3, &xs);
        oracle::axpy_i32_scalar_ref(&mut slow, 3, &xs);
        assert_eq!(fast, slow, "axpy_i32 diverges from its oracle");
        let out = le32(&fast);
        let f = time_kernel(|| kernels::axpy_i32(black_box(&mut fast), black_box(3), &xs));
        let r =
            time_kernel(|| oracle::axpy_i32_scalar_ref(black_box(&mut slow), black_box(3), &xs));
        emit("axpy_i32", &na.to_string(), f, r, &out);
    }
    {
        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::axpy_i32_bytes(&mut fast, 3, &xbytes);
        oracle::axpy_i32_bytes_scalar_ref(&mut slow, 3, &xbytes);
        assert_eq!(fast, slow, "axpy_i32_bytes diverges from its oracle");
        let out = le32(&fast);
        let f =
            time_kernel(|| kernels::axpy_i32_bytes(black_box(&mut fast), black_box(3), &xbytes));
        let r = time_kernel(|| {
            oracle::axpy_i32_bytes_scalar_ref(black_box(&mut slow), black_box(3), &xbytes)
        });
        emit("axpy_i32_bytes", &na.to_string(), f, r, &out);
    }
    for dt in [DType::I8, DType::I32] {
        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::axpy_wrap(dt, &mut fast, -5, &xs);
        oracle::axpy_wrap_scalar_ref(dt, &mut slow, -5, &xs);
        assert_eq!(fast, slow, "axpy_wrap {dt} diverges from its oracle");
        let out = le32(&fast);
        let f = time_kernel(|| kernels::axpy_wrap(dt, black_box(&mut fast), black_box(-5), &xs));
        let r = time_kernel(|| {
            oracle::axpy_wrap_scalar_ref(dt, black_box(&mut slow), black_box(-5), &xs)
        });
        emit("axpy_wrap", &format!("{dt}x{na}"), f, r, &out);

        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::add_wrap(dt, &mut fast, &xs);
        oracle::add_wrap_scalar_ref(dt, &mut slow, &xs);
        assert_eq!(fast, slow, "add_wrap {dt} diverges from its oracle");
        let out = le32(&fast);
        let f = time_kernel(|| kernels::add_wrap(dt, black_box(&mut fast), &xs));
        let r = time_kernel(|| oracle::add_wrap_scalar_ref(dt, black_box(&mut slow), &xs));
        emit("add_wrap", &format!("{dt}x{na}"), f, r, &out);
    }
    {
        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::relu_i32(&mut fast);
        oracle::relu_i32_scalar_ref(&mut slow);
        assert_eq!(fast, slow, "relu_i32 diverges from its oracle");
        let out = le32(&fast);
        let f = time_kernel(|| kernels::relu_i32(black_box(&mut fast)));
        let r = time_kernel(|| oracle::relu_i32_scalar_ref(black_box(&mut slow)));
        emit("relu_i32", &na.to_string(), f, r, &out);
    }
    {
        let mut fast = acc0.clone();
        let mut slow = acc0;
        kernels::max_i32(&mut fast, &xs);
        oracle::max_i32_scalar_ref(&mut slow, &xs);
        assert_eq!(fast, slow, "max_i32 diverges from its oracle");
        let out = le32(&fast);
        let f = time_kernel(|| kernels::max_i32(black_box(&mut fast), &xs));
        let r = time_kernel(|| oracle::max_i32_scalar_ref(black_box(&mut slow), &xs));
        emit("max_i32", &na.to_string(), f, r, &out);
    }

    // Bitmaps (BFS frontier shape, ragged byte length).
    let nb = 4096 + 3;
    let olds = g.bytes(nb);
    let news = {
        let mut b = g.bytes(nb);
        oracle::bitmap_or_scalar_ref(&mut b, &olds);
        b
    };
    {
        let mut fast = olds.clone();
        let mut slow = olds.clone();
        kernels::bitmap_or(&mut fast, &news);
        oracle::bitmap_or_scalar_ref(&mut slow, &news);
        assert_eq!(fast, slow, "bitmap_or diverges from its oracle");
        let out = fast.clone();
        let f = time_kernel(|| kernels::bitmap_or(black_box(&mut fast), &news));
        let r = time_kernel(|| oracle::bitmap_or_scalar_ref(black_box(&mut slow), &news));
        emit("bitmap_or", &nb.to_string(), f, r, &out);
    }
    {
        let mut fast = Vec::new();
        kernels::for_each_new_bit(&news, &olds, |v| fast.push(v as u32));
        let mut slow = Vec::new();
        oracle::for_each_new_bit_scalar_ref(&news, &olds, |v| slow.push(v as u32));
        assert_eq!(fast, slow, "for_each_new_bit diverges from its oracle");
        let mut enc = vec![0u8; fast.len() * 4];
        oracle::encode_u32_scalar_ref(&fast, &mut enc);
        let f = time_kernel(|| {
            let mut sum = 0usize;
            kernels::for_each_new_bit(black_box(&news), black_box(&olds), |v| sum += v);
            black_box(sum);
        });
        let r = time_kernel(|| {
            let mut sum = 0usize;
            oracle::for_each_new_bit_scalar_ref(black_box(&news), black_box(&olds), |v| sum += v);
            black_box(sum);
        });
        emit("for_each_new_bit", &nb.to_string(), f, r, &enc);
    }

    // Row scatter at the GNN transpose shape (32 blocks of 64 rows x 8 B).
    {
        let src = g.bytes(32 * 64 * 8);
        let mut fast = vec![0u8; 32 * 64 * 8];
        let mut slow = vec![0u8; 32 * 64 * 8];
        let run = |dst: &mut [u8], scalar: bool, src: &[u8]| {
            for blk in 0..32usize {
                if scalar {
                    oracle::copy_rows_scalar_ref(dst, blk * 8, 256, src, blk * 64 * 8, 8, 8, 64);
                } else {
                    kernels::copy_rows(dst, blk * 8, 256, src, blk * 64 * 8, 8, 8, 64);
                }
            }
        };
        run(&mut fast, false, &src);
        run(&mut slow, true, &src);
        assert_eq!(fast, slow, "copy_rows diverges from its oracle");
        let out = fast.clone();
        let f = time_kernel(|| run(black_box(&mut fast), false, black_box(&src)));
        let r = time_kernel(|| run(black_box(&mut slow), true, black_box(&src)));
        emit("copy_rows", "gnn_transpose", f, r, &out);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"pim_sim::kernels typed-lane sweep, blocked vs scalar oracle, seeded ragged inputs\",\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check, false);
    }
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);

    // Slow-regression gate: the checksum check above pins *what* the
    // kernels compute, this pins *how fast* relative to the scalar loops
    // they replaced — a kernel falling below the configured multiple of
    // its oracle signals a toolchain/codegen regression even when its
    // outputs still match. Evaluated after the report is written so the
    // numbers behind a failure are always on disk.
    if let Some(threshold) = args.min_speedup {
        let slow: Vec<&(String, f64)> = speedups.iter().filter(|(_, s)| *s < threshold).collect();
        if !slow.is_empty() {
            eprintln!(
                "kernel slow-regression gate: speedup below {threshold:.2}x of the scalar oracle:"
            );
            for (key, s) in &slow {
                eprintln!("  {key}: {s:.2}x");
            }
            std::process::exit(1);
        }
        eprintln!(
            "kernel slow-regression gate: all {} kernels at or above {threshold:.2}x of their scalar oracles",
            speedups.len()
        );
    }
}

fn run_primitive_sweep(args: &Args) {
    let bytes_per_node = 32 * 1024;
    let mut setup = PrimSetup::default_2d(bytes_per_node);
    setup.threads = args.threads;

    // Warm up allocator and page cache so the first primitive is not
    // charged for process start-up.
    let _ = run_primitive(&setup, Primitive::AlltoAll, OptLevel::Full);

    let mut rows = Vec::new();
    for prim in PRIMS {
        let (report, wall_ms) = time_primitive(&setup, prim, OptLevel::Full, 3);
        let modeled_us = report.time_ns() / 1e3;
        eprintln!(
            "{:<4} wall {wall_ms:>10.1} ms   modeled {modeled_us:>10.1} us   {:>8.2} GB/s modeled",
            prim.abbrev(),
            report.throughput_gbps()
        );
        rows.push(format!(
            "    {{ \"primitive\": \"{}\", \"wall_ms\": {wall_ms:.3}, \"modeled_us\": {modeled_us:.3}, \"modeled_gbps\": {:.4} }}",
            prim.abbrev(),
            report.throughput_gbps()
        ));
    }

    // The resolved engine budget that actually ran — not the requested
    // flag or environment string.
    let resolved = if args.threads == 0 {
        auto_threads()
    } else {
        args.threads
    };
    let json = format!(
        "{{\n  \"benchmark\": \"fig14 primitive sweep, 1024 PEs, (32,32), {} B/node, OptLevel::Full\",\n  \"threads\": {},\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        bytes_per_node,
        resolved,
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);
}

fn run_app_sweep(args: &Args) {
    let (cases, pes, label) = if args.small {
        (apps::small_cases(), 64, "small (CI smoke)")
    } else {
        (apps::all_cases(), 1024, "fig15")
    };
    let mut cells = apps::base_vs_full_cells(cases.len(), pes);
    if let Some(filter) = &args.cells {
        let pats: Vec<&str> = filter.split(',').filter(|p| !p.is_empty()).collect();
        let label_of = |c: &apps::AppCell| {
            format!(
                "{}/{}/{:?}/{}",
                cases[c.case].app, cases[c.case].dataset, c.opt, c.pes
            )
        };
        let all: Vec<String> = cells.iter().map(label_of).collect();
        cells.retain(|c| {
            let l = label_of(c);
            pats.iter().any(|p| l.contains(p))
        });
        assert!(
            !cells.is_empty(),
            "--cells {filter} matched no cell; available: {all:?}"
        );
        eprintln!(
            "--cells {filter}: running {} of {} cells",
            cells.len(),
            all.len()
        );
    }
    let budget = SweepBudget::split(args.threads, cells.len());

    // Untimed warm-up pass: builds the shared datasets, warms the page
    // cache and allocator arenas, so the serial-vs-parallel comparison
    // below measures scheduling, not first-touch effects.
    let _ = apps::run_app_sweep(&cases, &cells, budget);

    // Serial reference: every cell on one worker with the serial engine
    // and host-kernel schedule — the pre-sweep-pool wall-clock path —
    // timed per cell. Each cell builds a fresh arena (fresh plan cache),
    // so the serial pass's plan-cache hits come only from within-run
    // iteration loops; its stats are read from each cell's own cache,
    // scoped to this pass by construction.
    let mut serial_stats = PlanCacheStats::default();
    let mut serial_runs = Vec::new();
    let mut serial_cell_ms = Vec::new();
    let t0 = std::time::Instant::now();
    for cell in &cells {
        let c0 = std::time::Instant::now();
        let mut arena = SystemArena::new();
        serial_runs.push(cases[cell.case].run_in(cell.pes, cell.opt, 1, &mut arena));
        serial_cell_ms.push(c0.elapsed().as_secs_f64() * 1e3);
        serial_stats = serial_stats.merge(&arena.take_extension::<PlanCache>().snapshot());
    }
    let wall_serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Warm serial pass (--warm-serial): the same cells on one worker
    // again, but sharing ONE arena across all cells — every cell past
    // the first hits the plan cache and re-stages into pooled
    // prepared-row/staging buffers. Against the cold pass above (fresh
    // arena per cell) this isolates pure plan+prepared reuse with the
    // schedule held fixed at one thread.
    let warm = if args.warm_serial {
        let mut arena = SystemArena::new();
        let t0 = std::time::Instant::now();
        let mut warm_runs = Vec::with_capacity(cells.len());
        for cell in &cells {
            warm_runs.push(cases[cell.case].run_in(cell.pes, cell.opt, 1, &mut arena));
        }
        let wall_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = arena.take_extension::<PlanCache>().snapshot();
        for ((cell, cold), warm_run) in cells.iter().zip(&serial_runs).zip(&warm_runs) {
            assert!(
                cold == warm_run,
                "warm serial pass diverges from cold reference for {} {} {:?}",
                cases[cell.case].app,
                cases[cell.case].dataset,
                cell.opt
            );
        }
        Some((wall_warm_ms, stats))
    } else {
        None
    };

    // Parallel sweep: same cells on the work-stealing pool, with parallel
    // host kernels and per-worker system arenas — whose pooled plan
    // caches additionally reuse plans *across* consecutive cells. The
    // pooled stats sum those per-worker caches.
    let t0 = std::time::Instant::now();
    let (parallel_runs, pool_stats) = apps::run_app_sweep_with_stats(&cases, &cells, budget);
    let wall_parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (serial_hits, serial_misses) = (serial_stats.hits, serial_stats.misses);
    let (pool_hits, pool_misses) = (pool_stats.hits, pool_stats.misses);

    // The sweep pool is purely an execution knob: any modeled divergence
    // from the serial reference is a correctness bug, not a trade-off.
    for ((cell, serial), parallel) in cells.iter().zip(&serial_runs).zip(&parallel_runs) {
        assert!(
            serial == parallel,
            "parallel sweep diverges from serial reference for {} {} {:?}",
            cases[cell.case].app,
            cases[cell.case].dataset,
            cell.opt
        );
    }

    let mut rows = Vec::new();
    for ((cell, run), cell_ms) in cells.iter().zip(&serial_runs).zip(&serial_cell_ms) {
        let case = &cases[cell.case];
        let modeled_ns = run.profile.total_ns();
        eprintln!(
            "{:<10} {:<4} {:<9}: wall {cell_ms:>9.1} ms   modeled {:>9.2} ms",
            case.app,
            case.dataset,
            format!("{:?}", cell.opt),
            modeled_ns / 1e6,
        );
        rows.push(format!(
            "    {{ \"app\": \"{}\", \"dataset\": \"{}\", \"opt\": \"{:?}\", \"pes\": {}, \"wall_serial_ms\": {cell_ms:.3}, \"modeled_ms\": {:.6}, \"modeled_bits\": \"{:016x}\", \"validated\": {} }}",
            case.app,
            case.dataset,
            cell.opt,
            cell.pes,
            modeled_ns / 1e6,
            modeled_ns.to_bits(),
            run.validated
        ));
    }

    let speedup = wall_serial_ms / wall_parallel_ms;
    eprintln!(
        "sweep wall-clock: serial {wall_serial_ms:.0} ms, parallel {wall_parallel_ms:.0} ms \
         ({speedup:.2}x, {} workers x {} engine threads); modeled times bit-identical",
        budget.workers, budget.engine_threads
    );
    eprintln!(
        "plan cache: serial pass {serial_hits} hits / {serial_misses} misses, \
         pooled pass {pool_hits} hits / {pool_misses} misses (per-worker arena caches)"
    );
    // Metadata records the budget that actually ran: the resolved total
    // and the `SweepBudget` split — never the raw environment string.
    let resolved = if args.threads == 0 {
        auto_threads()
    } else {
        args.threads
    };
    let warm_json = match &warm {
        Some((wall_warm_ms, stats)) => {
            eprintln!(
                "warm serial pass: {wall_warm_ms:.0} ms ({:.2}x vs cold serial), \
                 plan cache {} hits / {} misses; modeled times bit-identical",
                wall_serial_ms / wall_warm_ms,
                stats.hits,
                stats.misses
            );
            format!(
                "  \"warm_serial\": {{ \"wall_ms\": {wall_warm_ms:.3}, \"speedup_vs_cold\": {:.4}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {} }},\n",
                wall_serial_ms / wall_warm_ms,
                stats.hits,
                stats.misses
            )
        }
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"{label} app sweep, {pes} PEs, Baseline+Full per case\",\n  \"threads\": {},\n  \"workers\": {},\n  \"engine_threads\": {},\n  \"wall_serial_ms\": {wall_serial_ms:.3},\n  \"wall_parallel_ms\": {wall_parallel_ms:.3},\n  \"parallel_speedup\": {speedup:.4},\n  \"plan_cache\": {{ \"serial_hits\": {serial_hits}, \"serial_misses\": {serial_misses}, \"pooled_hits\": {pool_hits}, \"pooled_misses\": {pool_misses} }},\n{warm_json}  \"modeled_bit_identical\": true,\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        resolved,
        budget.workers,
        budget.engine_threads,
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check, args.cells.is_some());
    }
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);
}

// ---- design-space sweep ----------------------------------------------
//
// Extended fig19/fig20/fig22-style grids, scored with cost-only plan
// execution. Cells reuse the app-sweep key schema (`app/dataset/opt/pes`
// + `modeled_bits`) so the tolerant scanner and `--check` work unchanged.

/// One pre-planned cell of the design-space sweep.
struct DesignCell {
    sweep: &'static str,
    label: String,
    pes: usize,
    geom: pim_sim::DimmGeometry,
    plan: pidcomm::CollectivePlan,
}

fn design_plan(
    geom: pim_sim::DimmGeometry,
    dims: Vec<usize>,
    mask: &str,
    bytes: usize,
    dtype: pidcomm::DType,
    prim: Primitive,
) -> pidcomm::CollectivePlan {
    use pidcomm::{BufferSpec, Communicator, HypercubeManager, HypercubeShape, ReduceKind};
    let manager = HypercubeManager::new(HypercubeShape::new(dims).unwrap(), geom).unwrap();
    // Destination window clear of every primitive's source extent here
    // (AR/RS/AA/Reduce read [0, b)).
    let dst = 2 * bytes.next_multiple_of(64) + 64;
    let spec = BufferSpec::new(0, dst, bytes).with_dtype(dtype);
    Communicator::new(manager)
        .with_opt(OptLevel::Full)
        .with_threads(1)
        .plan(prim, &mask.parse().unwrap(), &spec, ReduceKind::Sum)
        .unwrap()
}

fn design_cells() -> Vec<DesignCell> {
    use pidcomm::DType;
    use pim_sim::DimmGeometry;

    let mut cells = Vec::new();

    // fig19-extended: PE-count scaling, 1-D and 2-D, AllReduce.
    for &pes in &[64usize, 128, 256, 512, 1024] {
        cells.push(DesignCell {
            sweep: "fig19x-1D",
            label: "AR".into(),
            pes,
            geom: DimmGeometry::with_pes(pes),
            plan: design_plan(
                DimmGeometry::with_pes(pes),
                vec![pes],
                "1",
                64 * 1024,
                DType::U64,
                Primitive::AllReduce,
            ),
        });
        let x = 1usize << (pes.trailing_zeros() / 2);
        cells.push(DesignCell {
            sweep: "fig19x-2D",
            label: "AR".into(),
            pes,
            geom: DimmGeometry::with_pes(pes),
            plan: design_plan(
                DimmGeometry::with_pes(pes),
                vec![x, pes / x],
                "10",
                8 * 1024,
                DType::U64,
                Primitive::AllReduce,
            ),
        });
    }

    // fig20-extended: every ordered 3-D power-of-two shape over 1024 PEs
    // (the paper's figure plots ten of these 36), AllReduce along x.
    for ax in 1u32..=8 {
        for ay in 1u32..=(9 - ax) {
            let az = 10 - ax - ay;
            let dims = vec![1usize << ax, 1usize << ay, 1usize << az];
            let bytes = (8 * dims[0] * 32).max(4096);
            cells.push(DesignCell {
                sweep: "fig20x",
                label: format!("{}x{}x{}", dims[0], dims[1], dims[2]),
                pes: 1024,
                geom: DimmGeometry::upmem_1024(),
                plan: design_plan(
                    DimmGeometry::upmem_1024(),
                    dims,
                    "100",
                    bytes,
                    DType::U64,
                    Primitive::AllReduce,
                ),
            });
        }
    }

    // fig22-extended: word-width sensitivity on the reducing primitives.
    for prim in [
        Primitive::ReduceScatter,
        Primitive::AllReduce,
        Primitive::Reduce,
    ] {
        for dtype in [DType::U8, DType::U16, DType::U32, DType::U64] {
            cells.push(DesignCell {
                sweep: "fig22x",
                label: format!("{}/{dtype}", prim.abbrev()),
                pes: 1024,
                geom: DimmGeometry::upmem_1024(),
                plan: design_plan(
                    DimmGeometry::upmem_1024(),
                    vec![32, 32],
                    "10",
                    8 * 1024,
                    dtype,
                    prim,
                ),
            });
        }
    }
    cells
}

/// ns per cost-only evaluation, amortized over enough iterations to fill
/// ~2 ms (one evaluation is microseconds).
fn time_cost_only(plan: &pidcomm::CollectivePlan, model: &pim_sim::TimeModel) -> f64 {
    use std::hint::black_box;
    let t0 = std::time::Instant::now();
    let mut iters = 0u64;
    while t0.elapsed().as_micros() < 2_000 {
        black_box(black_box(plan).cost_only_report(model));
        iters += 1;
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn run_design_sweep(args: &Args) {
    use pim_sim::{PimSystem, TimeModel};

    let model = TimeModel::upmem();
    let cells = design_cells();
    let mut rows = Vec::new();
    let mut cost_total_ns = 0.0;
    let mut functional_total_ns = 0.0;

    for cell in &cells {
        let report = cell.plan.cost_only_report(&model);
        let cost_ns = time_cost_only(&cell.plan, &model);
        cost_total_ns += cost_ns;

        let functional_field = if args.cost_only {
            "null".to_string()
        } else {
            // One functional run: cross-check the analytic bits, time the
            // wall-clock the analytic path replaces.
            let mut sys = PimSystem::with_model(cell.geom, model.clone());
            let b = cell.plan.spec().bytes_per_node;
            for pe in cell.geom.pes() {
                let fill: Vec<u8> = (0..b)
                    .map(|i| ((pe.0 as usize + i * 13) % 251) as u8)
                    .collect();
                sys.pe_mut(pe).write(0, &fill);
            }
            let t0 = std::time::Instant::now();
            let functional = match cell.plan.primitive() {
                Primitive::Reduce => cell.plan.execute_to_host(&mut sys).unwrap().0,
                _ => cell.plan.execute(&mut sys).unwrap(),
            };
            let wall_ns = t0.elapsed().as_nanos() as f64;
            assert!(
                functional == report,
                "{}/{}: cost-only report diverges from the functional engine",
                cell.sweep,
                cell.label
            );
            functional_total_ns += wall_ns;
            format!("{wall_ns:.1}")
        };

        let modeled_ns = report.time_ns();
        eprintln!(
            "{:<9} {:<10} {:>5} PEs: modeled {:>10.1} us, analytic {cost_ns:>8.1} ns/eval{}",
            cell.sweep,
            cell.label,
            cell.pes,
            modeled_ns / 1e3,
            if args.cost_only { "" } else { " (checked)" }
        );
        rows.push(format!(
            "    {{ \"app\": \"{}\", \"dataset\": \"{}\", \"opt\": \"{:?}\", \"pes\": {}, \"modeled_ms\": {:.6}, \"modeled_bits\": \"{:016x}\", \"cost_only_wall_ns\": {cost_ns:.1}, \"functional_wall_ns\": {functional_field} }}",
            cell.sweep,
            cell.label,
            cell.plan.opt(),
            cell.pes,
            modeled_ns / 1e6,
            modeled_ns.to_bits(),
        ));
    }

    let speedup_field = if args.cost_only {
        "null".to_string()
    } else {
        let speedup = functional_total_ns / cost_total_ns;
        eprintln!(
            "analytic speedup: functional {:.1} ms vs cost-only {:.3} ms across {} cells ({speedup:.0}x)",
            functional_total_ns / 1e6,
            cost_total_ns / 1e6,
            cells.len()
        );
        format!("{speedup:.1}")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"design-space sweep (fig19x/fig20x/fig22x), cost-only plan execution\",\n  \"mode\": \"{}\",\n  \"cost_only\": {{ \"cost_only_wall_ms\": {:.4}, \"functional_wall_ms\": {}, \"analytic_speedup\": {speedup_field} }},\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        if args.cost_only { "cost_only" } else { "full" },
        cost_total_ns / 1e6,
        if args.cost_only {
            "null".to_string()
        } else {
            format!("{:.4}", functional_total_ns / 1e6)
        },
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check, false);
    }
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);
}

// ---- autotune sweep --------------------------------------------------
//
// The analytic autotuner against each application's dominant collective
// (at its actual default shape) and fig20-style defaults: how much
// modeled time does exhaustive shape search buy, and how long does the
// search itself take.

fn run_autotune_sweep(args: &Args) {
    use pidcomm::{
        autotune, BufferSpec, Communicator, DType, HypercubeManager, HypercubeShape, ReduceKind,
        TuneRequest,
    };
    use pim_sim::{DimmGeometry, TimeModel};

    struct TuneCase {
        app: &'static str,
        dataset: &'static str,
        prim: Primitive,
        bytes: usize,
        dtype: DType,
        default_dims: Vec<usize>,
        default_mask: &'static str,
    }

    // The five applications' dominant collectives at their 1024-PE
    // default shapes (see crates/apps), plus fig20 defaults.
    let mut tune_cases = vec![
        TuneCase {
            app: "MLP",
            dataset: "ReduceScatter",
            prim: Primitive::ReduceScatter,
            bytes: 16 * 1024,
            dtype: DType::I32,
            default_dims: vec![1024],
            default_mask: "1",
        },
        TuneCase {
            app: "DLRM",
            dataset: "AlltoAll",
            prim: Primitive::AlltoAll,
            bytes: 4096,
            dtype: DType::I32,
            default_dims: vec![8, 16, 8],
            default_mask: "010",
        },
        TuneCase {
            app: "GNN RS&AR",
            dataset: "ReduceScatter",
            prim: Primitive::ReduceScatter,
            bytes: 8192,
            dtype: DType::I32,
            default_dims: vec![32, 32],
            default_mask: "10",
        },
        TuneCase {
            app: "BFS",
            dataset: "AllReduce",
            prim: Primitive::AllReduce,
            bytes: 8192,
            dtype: DType::U8,
            default_dims: vec![1024],
            default_mask: "1",
        },
        TuneCase {
            app: "CC",
            dataset: "AllReduce",
            prim: Primitive::AllReduce,
            bytes: 8192,
            dtype: DType::U32,
            default_dims: vec![1024],
            default_mask: "1",
        },
    ];
    for dims in [vec![8, 64, 2], vec![128, 4, 2], vec![64, 4, 4]] {
        tune_cases.push(TuneCase {
            app: "fig20",
            dataset: ["8x64x2", "128x4x2", "64x4x4"][tune_cases.len() - 5],
            prim: Primitive::AllReduce,
            bytes: (8 * dims[0] * 32).max(4096),
            dtype: DType::U64,
            default_dims: dims,
            default_mask: "100",
        });
    }

    let geom = DimmGeometry::upmem_1024();
    let model = TimeModel::upmem();
    let mut rows = Vec::new();
    for case in &tune_cases {
        let dst = case.bytes.next_multiple_of(64).max(64 * 1024);
        let spec = BufferSpec::new(0, dst, case.bytes).with_dtype(case.dtype);
        let manager = HypercubeManager::new(
            HypercubeShape::new(case.default_dims.clone()).unwrap(),
            geom,
        )
        .unwrap();
        let default_plan = Communicator::new(manager)
            .with_threads(1)
            .plan(
                case.prim,
                &case.default_mask.parse().unwrap(),
                &spec,
                ReduceKind::Sum,
            )
            .unwrap();
        let default_ns = default_plan.cost_only_report(&model).time_ns();

        let t0 = std::time::Instant::now();
        let (_, report) = autotune(&TuneRequest::new(case.prim, spec, geom), &model).unwrap();
        let tune_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let best = report.best();
        let tuned_ns = best.modeled_ns;
        assert!(
            tuned_ns <= default_ns,
            "{}/{}: tuned plan ({tuned_ns} ns) lost to the default shape ({default_ns} ns)",
            case.app,
            case.dataset
        );
        let dims_label = best
            .dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        eprintln!(
            "{:<10} {:<13}: default {:>10.1} us -> tuned {:>10.1} us ({:>5.2}x) [{} @ {}], {} explored / {} skipped in {tune_wall_ms:.0} ms",
            case.app,
            case.dataset,
            default_ns / 1e3,
            tuned_ns / 1e3,
            default_ns / tuned_ns,
            dims_label,
            best.mask,
            report.explored.len(),
            report.skipped
        );
        rows.push(format!(
            "    {{ \"app\": \"{}\", \"dataset\": \"{}\", \"opt\": \"{:?}\", \"pes\": 1024, \"default_ns\": {default_ns:.3}, \"tuned_ns\": {tuned_ns:.3}, \"modeled_bits\": \"{:016x}\", \"improvement\": {:.4}, \"tuned_dims\": \"{dims_label}\", \"tuned_mask\": \"{}\", \"explored\": {}, \"skipped\": {}, \"tune_wall_ms\": {tune_wall_ms:.2} }}",
            case.app,
            case.dataset,
            best.opt,
            tuned_ns.to_bits(),
            default_ns / tuned_ns,
            best.mask,
            report.explored.len(),
            report.skipped
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"analytic plan autotuner vs application default shapes, 1024 PEs\",\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check, false);
    }
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);
}

// ---- chaos soak ------------------------------------------------------
//
// The five small application cases under seeded fault profiles and
// recovery policies (see `pidcomm_bench::chaos`). Cells reuse the
// app-sweep key schema (`app/dataset/opt/pes` + `modeled_bits`, with the
// fault profile and policy column folded into the dataset label), so the
// tolerant scanner and `--check` work unchanged.

fn run_chaos_sweep(args: &Args) {
    use pidcomm_bench::chaos;

    let pes = 64;
    let cases = chaos::cases();
    let plain = apps::small_cases();
    let cells = chaos::soak_cells(cases.len());
    let mut arena = SystemArena::new();
    let mut rows = Vec::new();
    for cell in &cells {
        let case = &cases[cell.case];
        let t0 = std::time::Instant::now();
        let run = case.run_in(pes, cell.profile.plan(cell.seed), cell.policy(), &mut arena);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if cell.profile == chaos::FaultProfile::Clean {
            // The zero-fault bit-identity guard: with no fault plan the
            // resilient wrapper must be invisible — profile, CPU
            // reference and validation all equal to the plain runner's.
            let reference = plain[cell.case].run_in(pes, OptLevel::Full, 1, &mut arena);
            assert!(
                run.run == reference,
                "{}: clean resilient run diverges from the plain runner",
                case.app
            );
        }
        let quarantined = run.quarantined.len();
        eprintln!(
            "{:<10} {:<14}: {:<17} retries {:>2}, quarantined {quarantined:>2}, mismatched {:>6}, modeled {:>9.2} ms (wall {wall_ms:>7.1} ms)",
            case.app,
            cell.dataset(),
            run.outcome.label(),
            run.retries,
            run.mismatched,
            run.modeled_ns / 1e6,
        );
        rows.push(format!(
            "    {{ \"app\": \"{}\", \"dataset\": \"{}\", \"opt\": \"Full\", \"pes\": {pes}, \"wall_ms\": {wall_ms:.3}, \"modeled_ms\": {:.6}, \"modeled_bits\": \"{:016x}\", \"outcome\": \"{}\", \"retries\": {}, \"backoff_epochs\": {}, \"checkpoint_restores\": {}, \"quarantined\": {quarantined}, \"mismatched\": {}, \"validated\": {} }}",
            case.app,
            cell.dataset(),
            run.modeled_ns / 1e6,
            run.modeled_ns.to_bits(),
            run.outcome.label(),
            run.retries,
            run.backoff_epochs,
            run.checkpoint_restores,
            run.mismatched,
            run.run.validated,
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"chaos soak, {} small cases x seeded fault profiles x quarantine policies, {pes} PEs, OptLevel::Full\",\n  \"results\": [\n{}\n  ],\n  \"reference\": {}\n}}\n",
        cases.len(),
        rows.join(",\n"),
        read_reference(args.reference.as_deref()).trim_end()
    );
    if let Some(check) = &args.check {
        check_modeled_bits(&json, check, false);
    }
    std::fs::write(&args.output, json)
        .unwrap_or_else(|e| die(format_args!("cannot write {}: {e}", args.output)));
    eprintln!("wrote {}", args.output);
}

fn main() {
    let args = parse_args();
    if args.apps {
        run_app_sweep(&args);
    } else if args.kernels {
        run_kernel_sweep(&args);
    } else if args.design {
        run_design_sweep(&args);
    } else if args.autotune {
        run_autotune_sweep(&args);
    } else if args.chaos {
        run_chaos_sweep(&args);
    } else {
        run_primitive_sweep(&args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(key: &str, bits: &str) -> CellBits {
        CellBits {
            key: key.into(),
            bits: bits.into(),
        }
    }

    #[test]
    fn extracts_cells_regardless_of_key_order() {
        let report = r#"{
  "benchmark": "x",
  "results": [
    { "app": "MLP", "dataset": "sm", "opt": "Full", "pes": 64, "modeled_bits": "00ab" },
    { "modeled_bits": "00cd", "pes": 64, "opt": "Baseline", "app": "CC", "dataset": "sm" }
  ],
  "reference": null
}"#;
        assert_eq!(
            extract_cells(report).unwrap(),
            vec![
                cell("MLP/sm/Full/64", "00ab"),
                cell("CC/sm/Baseline/64", "00cd")
            ]
        );
    }

    #[test]
    fn kernel_cells_key_on_kernel_and_case() {
        let report = r#"{
  "benchmark": "kernels",
  "results": [
    { "kernel": "axpy_i32", "case": "4101", "wall_ns": 120.5, "scalar_ref_ns": 600.1, "speedup": 4.98, "checksum": "00000000deadbeef" },
    { "checksum": "0000000000000042", "case": "i8x16391", "kernel": "decode_sext", "wall_ns": 1.0, "scalar_ref_ns": 2.0, "speedup": 2.0 }
  ],
  "reference": null
}"#;
        assert_eq!(
            extract_cells(report).unwrap(),
            vec![
                cell("axpy_i32/4101", "00000000deadbeef"),
                cell("decode_sext/i8x16391", "0000000000000042")
            ]
        );
    }

    #[test]
    fn embedded_reference_report_is_excluded() {
        let outer = r#"{
  "results": [ { "app": "BFS", "dataset": "LJ", "opt": "Full", "pes": 1024, "modeled_bits": "0001" } ],
  "reference": {
    "results": [ { "app": "BFS", "dataset": "LJ", "opt": "Full", "pes": 1024, "modeled_bits": "ffff" } ],
    "reference": null
  }
}"#;
        assert_eq!(
            extract_cells(outer).unwrap(),
            vec![cell("BFS/LJ/Full/1024", "0001")]
        );
    }

    #[test]
    fn hostile_names_do_not_corrupt_extraction() {
        // An app literally named after the keys the old string-splitting
        // extractor matched on, plus a "results" string value before the
        // real array.
        let report = r#"{
  "benchmark": "results",
  "note": "the string \"reference\": appears here, and modeled_bits too",
  "results": [
    { "app": "reference", "dataset": "modeled_bits", "opt": "Full", "pes": 8, "modeled_bits": "0042" }
  ],
  "reference": null
}"#;
        assert_eq!(
            extract_cells(report).unwrap(),
            vec![cell("reference/modeled_bits/Full/8", "0042")]
        );
    }

    #[test]
    fn malformed_reports_error_instead_of_passing_empty() {
        assert!(extract_cells("{}").is_err(), "no results array");
        assert!(
            extract_cells(r#"{ "results": 7 }"#).is_err(),
            "results not an array"
        );
        assert!(
            extract_cells(r#"{ "results": [ { "app": "MLP" } ] }"#)
                .unwrap_err()
                .contains("dataset"),
            "missing field names the first absent field"
        );
        assert!(
            extract_cells(
                r#"{ "results": [ { "app": "MLP", "dataset": "sm", "opt": "Full", "pes": 64 } ] }"#
            )
            .unwrap_err()
            .contains("modeled_bits"),
            "missing bits names the field"
        );
        assert!(
            extract_cells(r#"{ "results": [ { "app": "MLP }"#).is_err(),
            "unterminated string/object"
        );
    }

    #[test]
    fn real_report_shape_roundtrips() {
        // The exact row format run_app_sweep writes.
        let row = format!(
            "{{\n  \"benchmark\": \"b\",\n  \"threads\": 4,\n  \"results\": [\n    {{ \"app\": \"GNN RS&AR\", \"dataset\": \"PM\", \"opt\": \"Full\", \"pes\": 1024, \"wall_serial_ms\": 12.5, \"modeled_ms\": 1.25, \"modeled_bits\": \"{:016x}\", \"validated\": true }}\n  ],\n  \"reference\": null\n}}\n",
            1.25e6f64.to_bits()
        );
        let cells = extract_cells(&row).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key, "GNN RS&AR/PM/Full/1024");
        assert_eq!(cells[0].bits, format!("{:016x}", 1.25e6f64.to_bits()));
    }
}

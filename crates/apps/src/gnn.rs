//! Graph neural network on a 2-D hypercube (§VII-B, Fig. 12, Algorithm 1).
//!
//! A GNN layer is an aggregation (sparse A·F) followed by a combination
//! (dense I·W). The PEs form an `s × s` grid; PE `(x, y)` holds adjacency
//! tiles and one block of the feature matrix. Two communication strategies
//! are implemented, matching the paper's variants:
//!
//! * **RS&AR**: partial aggregates are `ReduceScatter`'d across the active
//!   dimension, each PE combines its row sub-block with the full weight
//!   matrix, and an `AllReduce` assembles the next layer's feature block.
//! * **AR&AG**: aggregates are `AllReduce`'d, each PE combines one column
//!   block of the weights, and an `AllGather` concatenates the column
//!   blocks.
//!
//! The active dimension alternates between layers (`"10" ⇄ "01"`,
//! Algorithm 1), which keeps every PE's feature block aligned with its
//! rank in the next layer's communication group.

use pidcomm::{
    par_pes, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel,
};
use pidcomm_data::{CsrGraph, MatI32};
use pim_sim::{DType, DimmGeometry, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::AppRun;

/// GNN communication strategy (Table III lists both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnVariant {
    /// ReduceScatter + AllReduce.
    RsAr,
    /// AllReduce + AllGather.
    ArAg,
}

impl GnnVariant {
    /// Label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            GnnVariant::RsAr => "RS&AR",
            GnnVariant::ArAg => "AR&AG",
        }
    }
}

/// GNN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnConfig {
    /// Number of PEs; must be a perfect square (the paper notes GNNs
    /// "require symmetric partitioning", §VIII-G).
    pub pes: usize,
    /// Feature dimension `f` (divisible by `sqrt(pes)`).
    pub feature_dim: usize,
    /// Number of layers (the paper uses 3).
    pub layers: usize,
    /// Communication strategy.
    pub variant: GnnVariant,
    /// Communication optimization level.
    pub opt: OptLevel,
    /// Element width of features/weights (I8/I16/I32; the paper's word-bit
    /// sensitivity study, §VIII-F). 8-bit elements let ReduceScatter and
    /// AllReduce skip domain transfer entirely.
    pub dtype: DType,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

/// Wraps `v` to the declared element width (sign-extending truncation),
/// matching what fixed-width PE arithmetic would produce.
fn wrap(v: i32, dtype: DType) -> i32 {
    match dtype {
        DType::I8 | DType::U8 => v as i8 as i32,
        DType::I16 | DType::U16 => v as i16 as i32,
        _ => v,
    }
}

/// Element size in bytes.
fn esize(dtype: DType) -> usize {
    dtype.size_bytes()
}

/// Serializes a matrix at the declared width (values must already be
/// wrapped).
fn mat_to_bytes(m: &MatI32, dtype: DType) -> Vec<u8> {
    let w = esize(dtype);
    let mut out = Vec::with_capacity(m.rows() * m.cols() * w);
    for v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes()[..w]);
    }
    out
}

/// Deserializes a matrix at the declared width (sign-extended).
fn mat_from_bytes(rows: usize, cols: usize, bytes: &[u8], dtype: DType) -> MatI32 {
    let w = esize(dtype);
    assert_eq!(bytes.len(), rows * cols * w);
    let mut m = MatI32::zeros(rows, cols);
    for (i, chunk) in bytes.chunks_exact(w).enumerate() {
        let mut buf = [0u8; 4];
        buf[..w].copy_from_slice(chunk);
        // Sign-extend.
        let mut v = i32::from_le_bytes(buf);
        let shift = 32 - 8 * w as u32;
        v = (v << shift) >> shift;
        m.set(i / cols, i % cols, v);
    }
    m
}

/// Dataset-scale compensation for kernel charges: the harness graphs and
/// feature dims are ~10x below PubMed/Reddit scale, and PE compute shrinks
/// superlinearly (f^2 combination) while communication shrinks linearly in
/// f. This factor restores the paper's kernel-to-communication ratio
/// (Fig. 13); see EXPERIMENTS.md.
const KERNEL_SCALE: f64 = 6.0;

fn isqrt(p: usize) -> usize {
    let s = (p as f64).sqrt().round() as usize;
    assert_eq!(s * s, p, "GNN needs a square PE count, got {p}");
    s
}

fn relu(v: i32) -> i32 {
    v.max(0)
}

/// CPU reference: `F <- relu((A · F) · W_l)` per layer with wrapping
/// arithmetic. Returns the final feature matrix and a roofline time.
fn cpu_reference(graph: &CsrGraph, f0: &MatI32, weights: &[MatI32], dtype: DType) -> (MatI32, f64) {
    let cpu = CpuModel::xeon_5215();
    let n = graph.num_vertices();
    let f = f0.cols();
    let mut feat = f0.clone();
    let mut time = 0.0;
    for w in weights {
        // Aggregation: I[u] = sum over (u, v) of F[v], at element width.
        let mut agg = MatI32::zeros(n, f);
        for (u, v) in graph.edges() {
            for c in 0..f {
                let val = wrap(
                    agg.get(u as usize, c).wrapping_add(feat.get(v as usize, c)),
                    dtype,
                );
                agg.set(u as usize, c, val);
            }
        }
        // Combination + ReLU at element width.
        let mut comb = MatI32::zeros(n, f);
        for r in 0..n {
            for k in 0..f {
                let a = agg.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..f {
                    let val = wrap(
                        comb.get(r, c).wrapping_add(a.wrapping_mul(w.get(k, c))),
                        dtype,
                    );
                    comb.set(r, c, val);
                }
            }
        }
        for r in 0..n {
            for c in 0..f {
                comb.set(r, c, relu(comb.get(r, c)));
            }
        }
        feat = comb;
        let edges = graph.num_edges() as u64;
        time += cpu.time_mixed_ns(
            edges * f as u64 + 2 * (n * f * f) as u64,
            (n * f * 4) as u64 * 2 + (n * f * f) as u64 / 16,
            edges * (f as u64 * 4 + 8),
        );
    }
    (feat, time)
}

/// Sparse tile: edges of A with source in row-block `i` and target in
/// column-block `j`, stored as (local row, local col) pairs.
fn tiles(graph: &CsrGraph, s: usize) -> Vec<Vec<Vec<(u32, u32)>>> {
    let n = graph.num_vertices();
    let bs = n / s;
    let mut t = vec![vec![Vec::new(); s]; s];
    for (u, v) in graph.edges() {
        let (i, j) = (u as usize / bs, v as usize / bs);
        t[i][j].push(((u as usize % bs) as u32, (v as usize % bs) as u32));
    }
    t
}

/// Runs the GNN benchmark and validates against the CPU reference.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics if shape constraints are violated or validation fails.
pub fn run_gnn(cfg: &GnnConfig, graph: &CsrGraph) -> pidcomm::Result<AppRun> {
    run_gnn_in(cfg, graph, &mut SystemArena::new())
}

/// As [`run_gnn`], but sourcing the `PimSystem` from `arena` (and
/// returning it), so repeated runs — e.g. consecutive sweep cells on one
/// worker — reuse allocations. Results are byte-identical to [`run_gnn`].
///
/// # Errors
///
/// Propagates collective validation errors.
pub fn run_gnn_in(
    cfg: &GnnConfig,
    graph: &CsrGraph,
    arena: &mut SystemArena,
) -> pidcomm::Result<AppRun> {
    let p = cfg.pes;
    let s = isqrt(p);
    let f = cfg.feature_dim;
    let n = graph.num_vertices();
    assert_eq!(n % (s * s), 0, "vertices must divide by s^2");
    assert_eq!(f % s, 0, "feature dim must divide by s");
    let bs = n / s; // vertices per block
    let es = esize(cfg.dtype);
    let block_bytes = bs * f * es;
    assert_eq!(block_bytes % (8 * s), 0, "collective alignment");

    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let manager = HypercubeManager::new(HypercubeShape::new(vec![s, s])?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mut profile = AppProfile::new(
        format!("GNN {}", cfg.variant.label()),
        format!("{n}v/int{}", 8 * es),
    );

    let tile = tiles(graph, s);
    let weights: Vec<MatI32> = (0..cfg.layers)
        .map(|l| MatI32::random(f, f, 3, 0x6e6e + l as u64))
        .collect();
    let f0 = MatI32::random(n, f, 3, 0xfea7);

    // MRAM layout.
    const FEAT: usize = 0; // this PE's current feature block (bs x f)
    let partial_off = block_bytes.next_multiple_of(64);
    let reduced_off = partial_off + block_bytes.next_multiple_of(64);
    let out_off = reduced_off + block_bytes.next_multiple_of(64);

    // Scatter initial feature blocks: at layer 0 the active mask is "10"
    // (x varies within a group), so PE (x, y) must hold block x.
    let mask0: DimMask = "10".parse()?;
    let mut host_feat = vec![0u8; p * block_bytes];
    {
        let groups = comm.manager().groups(&mask0)?;
        for g in &groups {
            for (rank, &pe) in g.members.iter().enumerate() {
                let dst = pe.index() * block_bytes; // scatter layout is rank-major per group
                let _ = dst;
                let mut rows = MatI32::zeros(bs, f);
                for (lr, r) in (rank * bs..(rank + 1) * bs).enumerate() {
                    rows.row_mut(lr).copy_from_slice(f0.row(r));
                }
                // Position in the scatter buffer: group id x rank.
                let off = (g.id * g.members.len() + rank) * block_bytes;
                host_feat[off..off + block_bytes].copy_from_slice(&mat_to_bytes(&rows, cfg.dtype));
            }
        }
    }
    // Reassemble per-group buffers for the scatter API.
    let groups0 = comm.manager().groups(&mask0)?;
    let scatter_bufs: Vec<Vec<u8>> = groups0
        .iter()
        .map(|g| {
            let off = g.id * g.members.len() * block_bytes;
            host_feat[off..off + g.members.len() * block_bytes].to_vec()
        })
        .collect();
    let report = comm.scatter(
        &mut sys,
        &mask0,
        &BufferSpec::new(0, FEAT, block_bytes).with_dtype(cfg.dtype),
        &scatter_bufs,
    )?;
    profile.record(&report);

    // Layers with alternating masks.
    for (layer, w) in weights.iter().enumerate() {
        let mask: DimMask = if layer % 2 == 0 {
            "10".parse()?
        } else {
            "01".parse()?
        };
        let groups = comm.manager().groups(&mask)?;
        // Host-kernel work items run one per PE; recover each PE's
        // (group, rank) coordinates up front since groups partition the
        // PE array exactly.
        let mut owner = vec![(0usize, 0usize); p];
        for g in &groups {
            for (rank, &pe) in g.members.iter().enumerate() {
                owner[pe.index()] = (g.id, rank);
            }
        }

        // Aggregation kernel: within its group, PE of rank r computes
        // A[i_group][r] · F_r, a partial of row-block i_group.
        let kernels = par_pes(sys.pes_mut(), cfg.threads, |pid, pe| {
            let (gid, rank) = owner[pid];
            let feat_bytes = pe.read(FEAT, block_bytes).to_vec();
            let fblk = mat_from_bytes(bs, f, &feat_bytes, cfg.dtype);
            let mut partial = MatI32::zeros(bs, f);
            let t = &tile[gid][rank];
            for &(u, v) in t {
                for c in 0..f {
                    let val = wrap(
                        partial
                            .get(u as usize, c)
                            .wrapping_add(fblk.get(v as usize, c)),
                        cfg.dtype,
                    );
                    partial.set(u as usize, c, val);
                }
            }
            pe.write(partial_off, &mat_to_bytes(&partial, cfg.dtype));
            let edges = t.len() as u64;
            KERNEL_SCALE
                * pe_kernel_ns(
                    edges * (f * es) as u64 + block_bytes as u64,
                    4 * edges * f as u64,
                )
        });
        let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
        sys.run_kernel(max_kernel);
        profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

        match cfg.variant {
            GnnVariant::RsAr => {
                // ReduceScatter: rank r receives rows sub-block r of the
                // reduced aggregate I_i.
                let report = comm.reduce_scatter(
                    &mut sys,
                    &mask,
                    &BufferSpec::new(partial_off, reduced_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                profile.record(&report);

                // Combination kernel: rows sub-block x full W, placed at
                // its sub-block position in an otherwise-zero block.
                let sub_rows = bs / s;
                let kernels = par_pes(sys.pes_mut(), cfg.threads, |pid, pe| {
                    let (_, rank) = owner[pid];
                    let sub_bytes = sub_rows * f * es;
                    let bytes = pe.read(reduced_off, sub_bytes).to_vec();
                    let rows = mat_from_bytes(sub_rows, f, &bytes, cfg.dtype);
                    let mut combined = MatI32::zeros(sub_rows, f);
                    for r in 0..sub_rows {
                        for k in 0..f {
                            let a = rows.get(r, k);
                            if a == 0 {
                                continue;
                            }
                            for c in 0..f {
                                let val = wrap(
                                    combined.get(r, c).wrapping_add(a.wrapping_mul(w.get(k, c))),
                                    cfg.dtype,
                                );
                                combined.set(r, c, val);
                            }
                        }
                    }
                    let mut out = MatI32::zeros(bs, f);
                    for r in 0..sub_rows {
                        for c in 0..f {
                            out.set(rank * sub_rows + r, c, relu(combined.get(r, c)));
                        }
                    }
                    pe.write(partial_off, &mat_to_bytes(&out, cfg.dtype));
                    KERNEL_SCALE
                        * pe_kernel_ns(
                            (sub_bytes + f * f * es) as u64,
                            12 * (sub_rows * f * f) as u64,
                        )
                });
                let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(max_kernel);
                profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

                // AllReduce assembles the full next-layer block everywhere.
                let report = comm.all_reduce(
                    &mut sys,
                    &mask,
                    &BufferSpec::new(partial_off, out_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                profile.record(&report);
            }
            GnnVariant::ArAg => {
                // AllReduce the aggregates: everyone gets the full I_i.
                let report = comm.all_reduce(
                    &mut sys,
                    &mask,
                    &BufferSpec::new(partial_off, reduced_off, block_bytes).with_dtype(cfg.dtype),
                    ReduceKind::Sum,
                )?;
                profile.record(&report);

                // Combination kernel: one weight column-block per rank.
                let sub_cols = f / s;
                let kernels = par_pes(sys.pes_mut(), cfg.threads, |pid, pe| {
                    let (_, rank) = owner[pid];
                    let bytes = pe.read(reduced_off, block_bytes).to_vec();
                    let agg = mat_from_bytes(bs, f, &bytes, cfg.dtype);
                    // col block of result: agg x W[:, cols]
                    let mut colblk = MatI32::zeros(bs, sub_cols);
                    for r in 0..bs {
                        for k in 0..f {
                            let a = agg.get(r, k);
                            if a == 0 {
                                continue;
                            }
                            for c in 0..sub_cols {
                                let val = wrap(
                                    colblk.get(r, c).wrapping_add(
                                        a.wrapping_mul(w.get(k, rank * sub_cols + c)),
                                    ),
                                    cfg.dtype,
                                );
                                colblk.set(r, c, val);
                            }
                        }
                    }
                    for r in 0..bs {
                        for c in 0..sub_cols {
                            colblk.set(r, c, relu(colblk.get(r, c)));
                        }
                    }
                    pe.write(partial_off, &mat_to_bytes(&colblk, cfg.dtype));
                    KERNEL_SCALE
                        * pe_kernel_ns(
                            (block_bytes + f * sub_cols * es) as u64,
                            12 * (bs * f * sub_cols) as u64,
                        )
                });
                let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(max_kernel);
                profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

                // AllGather the column blocks, then transpose the
                // column-block-major layout back to row-major locally.
                let colblk_bytes = bs * sub_cols * es;
                let report = comm.all_gather(
                    &mut sys,
                    &mask,
                    &BufferSpec::new(partial_off, out_off, colblk_bytes).with_dtype(cfg.dtype),
                )?;
                profile.record(&report);
                par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
                    let bytes = pe.read(out_off, block_bytes).to_vec();
                    let mut full = MatI32::zeros(bs, f);
                    for (blk, chunk) in bytes.chunks_exact(colblk_bytes).enumerate() {
                        let cb = mat_from_bytes(bs, sub_cols, chunk, cfg.dtype);
                        for r in 0..bs {
                            for c in 0..sub_cols {
                                full.set(r, blk * sub_cols + c, cb.get(r, c));
                            }
                        }
                    }
                    pe.write(out_off, &mat_to_bytes(&full, cfg.dtype));
                });
            }
        }

        // The result block becomes the next layer's feature block.
        par_pes(sys.pes_mut(), cfg.threads, |_, pe| {
            pe.copy_within_region(out_off, FEAT, block_bytes);
        });
    }

    // Gather final features along the last active mask and validate.
    let last_mask: DimMask = if (cfg.layers - 1).is_multiple_of(2) {
        "10".parse()?
    } else {
        "01".parse()?
    };
    let (report, gathered) = comm.gather(
        &mut sys,
        &last_mask,
        &BufferSpec::new(FEAT, 0, block_bytes).with_dtype(cfg.dtype),
    )?;
    profile.record(&report);

    // After the final layer every PE of group i holds the full block i;
    // stitch the blocks together from each group's rank-i holder... every
    // member of group g holds block g (the group's row-block), so take
    // rank 0's copy.
    let (expected, cpu_ns) = cpu_reference(graph, &f0, &weights, cfg.dtype);
    let groups = comm.manager().groups(&last_mask)?;
    let mut validated = true;
    for g in &groups {
        let blk = &gathered[g.id][..block_bytes];
        let got = mat_from_bytes(bs, f, blk, cfg.dtype);
        for r in 0..bs {
            if got.row(r) != expected.row(g.id * bs + r) {
                validated = false;
            }
        }
    }
    assert!(validated, "GNN PIM features diverge from CPU reference");
    arena.recycle(sys);

    Ok(AppRun {
        profile,
        cpu_ns,
        validated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidcomm_data::{rmat, RmatParams};

    fn small_graph() -> CsrGraph {
        rmat(10, 4, RmatParams::skewed(21)) // 1024 vertices
    }

    #[test]
    fn gnn_rsar_validates() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 3,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let run = run_gnn(&cfg, &small_graph()).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::ReduceScatter) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
    }

    #[test]
    fn gnn_arag_validates() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 3,
            variant: GnnVariant::ArAg,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let run = run_gnn(&cfg, &small_graph()).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllGather) > 0.0);
    }

    #[test]
    fn variants_agree_with_each_other() {
        let g = small_graph();
        let mk = |variant| GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 2,
            variant,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let a = run_gnn(&mk(GnnVariant::RsAr), &g).unwrap();
        let b = run_gnn(&mk(GnnVariant::ArAg), &g).unwrap();
        // Both validate against the same CPU reference -> they agree.
        assert!(a.validated && b.validated);
    }

    #[test]
    fn narrow_widths_validate_and_int8_skips_domain_transfer() {
        let g = small_graph();
        let mk = |dtype| GnnConfig {
            threads: 0,
            pes: 64,
            feature_dim: 16,
            layers: 2,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype,
        };
        let i8run = run_gnn(&mk(DType::I8), &g).unwrap();
        let i16run = run_gnn(&mk(DType::I16), &g).unwrap();
        assert!(i8run.validated && i16run.validated);
        // 8-bit elements avoid domain transfer in RS/AR (§V-C); the
        // remaining DT comes only from Scatter/Gather, so even though the
        // int8 run moves half the bytes of int16, its DT drops by far more
        // than half.
        assert!(
            i8run.profile.comm.domain_transfer < 0.4 * i16run.profile.comm.domain_transfer,
            "int8 DT {} vs int16 DT {}",
            i8run.profile.comm.domain_transfer,
            i16run.profile.comm.domain_transfer
        );
    }

    #[test]
    #[should_panic(expected = "square PE count")]
    fn non_square_pes_rejected() {
        let cfg = GnnConfig {
            threads: 0,
            pes: 128,
            feature_dim: 16,
            layers: 1,
            variant: GnnVariant::RsAr,
            opt: OptLevel::Full,
            dtype: DType::I32,
        };
        let _ = run_gnn(&cfg, &small_graph());
    }
}

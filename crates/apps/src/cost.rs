//! Kernel and CPU-reference cost models for the benchmark applications.

/// Raw per-DPU MRAM streaming bandwidth in bytes/ns (≈700 MB/s on UPMEM).
/// PE compute kernels are charged against this (unlike the calibrated
/// *reorder* bandwidth of the communication engine, which benefits from
/// tasklet pipelining over tiny blocks).
pub const PE_STREAM_BW: f64 = 0.7;

/// DPU clock in GHz.
pub const PE_CLOCK_GHZ: f64 = 0.35;

/// Effective DPU instructions per cycle for integer kernels (the in-order
/// 14-stage pipeline sustains well below 1 IPC per tasklet but overlaps
/// tasklets; ~0.7 effective).
///
/// Note for callers estimating op counts: DPUs have no 32-bit hardware
/// multiplier — an integer multiply is a ~10-cycle shift-add sequence —
/// and irregular accesses cost several address-generation instructions, so
/// MAC-heavy kernels charge ~12 ops per multiply-accumulate and graph
/// kernels ~8 ops per edge.
pub const PE_IPC: f64 = 0.7;

/// Models the execution time of one PE kernel in nanoseconds given the
/// MRAM bytes it streams and the integer operations it executes.
///
/// The caller passes per-PE values and takes the max across PEs (all PEs
/// run in parallel, the host waits for the slowest).
pub fn pe_kernel_ns(mram_bytes: u64, ops: u64) -> f64 {
    let mem = mram_bytes as f64 / PE_STREAM_BW;
    let compute = ops as f64 / (PE_CLOCK_GHZ * PE_IPC);
    // In-order DPUs overlap DMA and compute poorly; charge the dominant
    // term plus half the other.
    let (hi, lo) = if mem > compute {
        (mem, compute)
    } else {
        (compute, mem)
    };
    hi + 0.5 * lo
}

/// Roofline model of the CPU-only reference system (Intel Xeon Gold 5215:
/// 10 cores / 20 threads at 2.5 GHz, 6-channel DDR4-2666).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Sustained integer op throughput in ops/ns across all cores.
    pub ops_per_ns: f64,
    /// Sustained memory bandwidth in bytes/ns for streaming access.
    pub mem_bw: f64,
    /// Effective bandwidth for cache-missing random access (one line per
    /// touch, bounded by memory-level parallelism).
    pub random_bw: f64,
}

impl CpuModel {
    /// The paper's host CPU.
    pub fn xeon_5215() -> Self {
        Self {
            // 10 cores x 2.5 GHz x ~2 scalar int ops/cycle sustained on
            // irregular kernels.
            ops_per_ns: 50.0,
            // ~60% of the 128 GB/s peak on streaming patterns.
            mem_bw: 75.0,
            // Random 64 B touches: ~80 ns latency, ~12 outstanding misses.
            random_bw: 9.0,
        }
    }

    /// Roofline time for a kernel with the given op count and streaming
    /// memory traffic: the slower of the compute and memory ceilings.
    pub fn time_ns(&self, ops: u64, bytes: u64) -> f64 {
        (ops as f64 / self.ops_per_ns).max(bytes as f64 / self.mem_bw)
    }

    /// Roofline time for a kernel mixing streaming and random traffic
    /// (graph traversal, embedding gathers).
    pub fn time_mixed_ns(&self, ops: u64, stream_bytes: u64, random_bytes: u64) -> f64 {
        let mem = stream_bytes as f64 / self.mem_bw + random_bytes as f64 / self.random_bw;
        (ops as f64 / self.ops_per_ns).max(mem)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::xeon_5215()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_kernel_blends_memory_and_compute() {
        let mem_bound = pe_kernel_ns(1 << 20, 10);
        assert!(mem_bound >= (1 << 20) as f64 / PE_STREAM_BW);
        let compute_bound = pe_kernel_ns(10, 1 << 20);
        assert!(compute_bound >= (1 << 20) as f64 / (PE_CLOCK_GHZ * PE_IPC));
        assert!(pe_kernel_ns(0, 0) == 0.0);
    }

    #[test]
    fn cpu_roofline_takes_max() {
        let cpu = CpuModel::xeon_5215();
        // Memory-bound: 1 GB at 75 B/ns ≈ 14.3 ms.
        let t = cpu.time_ns(1000, 1 << 30);
        assert!((t - (1u64 << 30) as f64 / 75.0).abs() < 1.0);
        // Compute-bound.
        let t = cpu.time_ns(1 << 30, 8);
        assert!((t - (1u64 << 30) as f64 / 50.0).abs() < 1.0);
    }

    #[test]
    fn aggregate_pe_compute_exceeds_cpu() {
        // The premise of PIM: 1024 DPUs beat the host on aggregate
        // bandwidth (1024 x 0.7 = 716 B/ns vs 75 B/ns).
        assert!(1024.0 * PE_STREAM_BW > 5.0 * CpuModel::xeon_5215().mem_bw);
    }
}

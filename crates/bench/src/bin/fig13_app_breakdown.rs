//! Fig. 13: per-application time split into the eight primitives plus the
//! compute kernel, baseline vs PID-Comm.
//!
//! Cells run concurrently on the work-stealing sweep pool (`--threads N`,
//! default auto); the printed profiles are byte-identical at every
//! setting.

use pidcomm::OptLevel;
use pidcomm_bench::sweep::{threads_flag, SweepBudget};
use pidcomm_bench::{apps, header};

fn main() {
    let cases = apps::all_cases();
    let cells = apps::base_vs_full_cells(cases.len(), 1024);
    let budget = SweepBudget::split(threads_flag(), cells.len());
    header(
        "Fig. 13",
        "application breakdown by primitive, Base vs Ours (harness-scale datasets)",
        "communication latency largely reduced for all applications; kernel unchanged",
    );
    let runs = apps::run_app_sweep(&cases, &cells, budget);
    for (cell, run) in cells.iter().zip(&runs) {
        let case = &cases[cell.case];
        let label = match cell.opt {
            OptLevel::Baseline => "Base",
            _ => "Ours",
        };
        println!(
            "{:<9} {:<4} {label}: {}",
            case.app,
            case.dataset,
            run.profile.table_row()
        );
    }
}

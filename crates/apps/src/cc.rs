//! Connected components on the PID-Comm framework (§VII-D).
//!
//! Min-label propagation: every vertex starts with its own id as label;
//! each iteration, every PE lowers the labels of its owned vertices' from
//! their neighborhoods, and an `AllReduce(Min)` merges the label arrays
//! globally. Iteration stops when the labels reach a fixed point. Directed
//! inputs are preprocessed to undirected, as in the paper.
//!
//! The per-iteration `AllReduce(Min)` plan is built once (pooled in the
//! worker's arena plan cache) and re-executed every level, and the
//! expansion is *frontier-sparse*: a vertex's neighborhood minimum can
//! only change when the vertex or one of its neighbors changed label in
//! the previous merge, so each iteration recomputes only the dirty
//! vertices — provably bit-identical to the full scan (see
//! [`run_cc_in`]), while the modeled kernel charge stays the full-scan
//! edge count the device would pay.

use std::sync::Arc;

use pidcomm::{
    par_pes, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape, Iteration,
    OptLevel, PlanCache, Primitive, RunPolicy, Supervisor,
};
use pidcomm_data::CsrGraph;
use pim_sim::{kernels, DType, DimmGeometry, FaultPlan, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::{AppRun, ResilientRun};

/// CC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcConfig {
    /// Number of PEs (1-D hypercube).
    pub pes: usize,
    /// Communication optimization level.
    pub opt: OptLevel,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

/// CPU reference: min-label propagation to a fixed point. Returns final
/// labels (the minimum vertex id of each component) and a roofline time.
///
/// Runs frontier-sparse like the PIM kernel (see [`run_cc_in`] for the
/// proof that skipping clean vertices is bit-identical), but the roofline
/// charges the full per-pass edge scan the dense reference performed —
/// the label sequence, pass count and modeled time are unchanged.
fn cpu_reference(graph: &CsrGraph) -> (Vec<u32>, f64) {
    let cpu = CpuModel::xeon_5215();
    let n = graph.num_vertices();
    let total_edges: u64 = (0..n as u32).map(|v| graph.degree(v) as u64).sum();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut dirty = vec![true; n];
    let mut edges_scanned = 0u64;
    loop {
        let mut changed = false;
        let prev = labels.clone();
        for v in 0..n {
            if !dirty[v] {
                continue;
            }
            let mut m = prev[v];
            for &t in graph.neighbors(v as u32) {
                m = m.min(prev[t as usize]);
            }
            if m < labels[v] {
                labels[v] = m;
            }
        }
        edges_scanned += total_edges;
        // Next pass: only vertices whose own or neighboring label moved
        // can produce a new minimum.
        let mut next = vec![false; n];
        for v in 0..n {
            if labels[v] != prev[v] {
                changed = true;
                next[v] = true;
                for &t in graph.neighbors(v as u32) {
                    next[t as usize] = true;
                }
            }
        }
        dirty = next;
        if !changed {
            break;
        }
    }
    let time = cpu.time_mixed_ns(2 * edges_scanned, 0, 64 * edges_scanned);
    (labels, time)
}

/// Dataset-scale compensation for kernel charges (see EXPERIMENTS.md),
/// analogous to BFS but smaller: CC is the paper's most
/// communication-dominated benchmark.
const KERNEL_SCALE: f64 = 1.5;

/// Number of distinct components in a label array.
pub fn component_count(labels: &[u32]) -> usize {
    let mut roots: Vec<u32> = labels.to_vec();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Runs connected components and validates labels against the CPU
/// reference.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics if validation fails.
pub fn run_cc(cfg: &CcConfig, graph: &CsrGraph) -> pidcomm::Result<AppRun> {
    run_cc_in(cfg, graph, &mut SystemArena::new())
}

/// As [`run_cc`], but sourcing the `PimSystem`, staging buffers and
/// collective plans from `arena` (and returning them to it), so repeated
/// runs — e.g. consecutive sweep cells on one worker — reuse allocations
/// *and* plans. Results are byte-identical to [`run_cc`].
///
/// # Frontier-sparse expansion
///
/// After a merge, `labels[v] = min(prev[v], min over neighbors prev[t])`.
/// For a vertex whose own label and all of whose neighbors' labels are
/// unchanged since that merge, recomputing the neighborhood minimum
/// provably returns `labels[v]` again: every unchanged neighbor `t` has
/// `labels[t] = prev[t] ≥ labels[v]` (it participated in the minimum that
/// produced `labels[v]`). So each iteration only recomputes the *dirty*
/// vertices — those that changed or have a changed neighbor — writing
/// `labels[v]` (already in the prototype) for the rest, bit-identical to
/// the full scan. The modeled kernel charge stays the full owned-edge
/// count: the device kernel would still stream every owned adjacency
/// list, and that count is constant per PE across iterations.
///
/// # Errors
///
/// Propagates collective validation errors.
pub fn run_cc_in(
    cfg: &CcConfig,
    graph: &CsrGraph,
    arena: &mut SystemArena,
) -> pidcomm::Result<AppRun> {
    let graph = graph.to_undirected();
    let p = cfg.pes;
    let n = graph.num_vertices();
    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("CC", format!("{n}v"));

    let per_pe = n.div_ceil(p);
    // Label array (u32 per vertex) padded to AllReduce alignment; the pad
    // is filled with u32::MAX, the Min identity.
    let label_bytes = (n * 4).next_multiple_of(8 * p);

    // Scatter adjacency (same layout as BFS).
    let slice_bytes = {
        let max_bytes = (0..p)
            .map(|pe| {
                let lo = pe * per_pe;
                let hi = ((pe + 1) * per_pe).min(n);
                (lo..hi)
                    .map(|v| 4 + 4 * graph.degree(v as u32))
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        max_bytes.next_multiple_of(8).max(8)
    };
    let adj_host = arena.bytes(p * slice_bytes);
    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, 0, slice_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;
    // One-shot send: direct execution beats staging a prepared image
    // that would run only once (the prepared tier pays off on repeat
    // executes; CC's per-iteration win is the label staging elimination
    // below).
    let report = scatter_plan.execute_with_host(&mut sys, core::slice::from_ref(&adj_host))?;
    profile.record(&report);
    arena.recycle_bytes(adj_host);

    let src_off = slice_bytes.next_multiple_of(64);
    let dst_off = src_off + label_bytes.next_multiple_of(64);

    // The per-iteration merge plan, built once for the whole fixed-point
    // loop (and pooled across runs): CC issues the identical AllReduce
    // every level, so planning per call was pure per-iteration overhead.
    let merge_plan = comm.plan_cached(
        &mut plans,
        Primitive::AllReduce,
        &mask,
        &BufferSpec::new(src_off, dst_off, label_bytes).with_dtype(DType::U32),
        ReduceKind::Min,
    )?;

    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut merged = vec![0u32; n];
    // The label array every PE's local copy starts from, encoded once per
    // iteration (pad = u32::MAX, the Min identity) instead of re-encoded
    // per PE.
    let mut proto = vec![0u8; label_bytes];
    // The modeled per-PE expansion charge streams every owned adjacency
    // list — a constant across iterations, precomputed once.
    let owned_edges: Vec<u64> = (0..p)
        .map(|pid| {
            let lo = pid * per_pe;
            let hi = ((pid + 1) * per_pe).min(n);
            (lo..hi).map(|v| graph.degree(v as u32) as u64).sum()
        })
        .collect();
    // Dirty set for the frontier-sparse expansion (see the doc comment);
    // iteration 1 recomputes everything.
    let mut dirty = vec![true; n];
    let mut iterations = 0usize;

    loop {
        iterations += 1;

        proto.fill(0xFF);
        kernels::encode_u32(&labels, &mut proto[..n * 4]);

        // PE kernel: the shared prototype lands in MRAM directly from the
        // host mirror, then each PE lowers only its owned *dirty*
        // vertices' labels in place — the per-worker staging copy of the
        // whole array is gone (clean vertices keep their prototype value,
        // which the full scan would reproduce). One host-kernel work item
        // per PE; labels and the dirty set are shared read-only.
        let kernels = par_pes(sys.pes_mut(), cfg.threads, |pid, pe| {
            // simlint: hot(begin, cc label lowering)
            let lo = pid * per_pe;
            let hi = ((pid + 1) * per_pe).min(n);
            pe.write(src_off, &proto);
            for v in lo..hi {
                if !dirty[v] {
                    continue;
                }
                let mut m = labels[v];
                for &t in graph.neighbors(v as u32) {
                    m = m.min(labels[t as usize]);
                }
                pe.write(src_off + v * 4, &m.to_le_bytes());
            }
            // Random per-edge accesses pay small-DMA granularity
            // (~64 B); the device streams all owned adjacency lists.
            let edges = owned_edges[pid];
            KERNEL_SCALE * pe_kernel_ns(48 * edges + label_bytes as u64, 10 * edges)
            // simlint: hot(end)
        });
        let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
        sys.run_kernel(max_kernel);
        profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

        // Merge with AllReduce(Min) — the warm per-iteration plan.
        let report = merge_plan.execute(&mut sys)?;
        profile.record(&report);

        sys.pe_mut(geom.pes().next().unwrap())
            .read_u32s(dst_off, &mut merged);

        // Changed vertices and their neighborhoods form the next dirty
        // set; a fixed point leaves it empty and ends the loop.
        let mut changed = false;
        dirty.fill(false);
        for v in 0..n {
            if merged[v] != labels[v] {
                changed = true;
                dirty[v] = true;
                for &t in graph.neighbors(v as u32) {
                    dirty[t as usize] = true;
                }
            }
        }
        labels.copy_from_slice(&merged);
        if !changed {
            break;
        }
    }

    // Retrieve final labels with a Reduce(Min) — every PE holds the global
    // array, the host takes the reduction (a no-op numerically).
    let reduce_plan = comm.plan_cached(
        &mut plans,
        Primitive::Reduce,
        &mask,
        &BufferSpec::new(dst_off, 0, label_bytes).with_dtype(DType::U32),
        ReduceKind::Min,
    )?;
    let (report, reduced) = reduce_plan.execute_to_host(&mut sys)?;
    profile.record(&report);
    let mut final_labels = vec![0u32; n];
    kernels::decode_u32(&reduced[0][..n * 4], &mut final_labels);

    let (expected, cpu_ns) = cpu_reference(&graph);
    let validated = final_labels == expected;
    assert!(validated, "CC PIM labels diverge from CPU reference");
    profile.dataset = format!("{n}v/{}it", iterations);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(AppRun {
        profile,
        cpu_ns,
        validated,
    })
}

/// As [`run_cc`], but under run-level supervision (see
/// [`Supervisor`]): collectives run verified with quarantine-aware
/// recovery, each label-propagation pass commits through an iteration
/// boundary, and unrecoverable faults end the run with a typed outcome
/// instead of a panic. With `fault = None` the profile and outputs are
/// bit-identical to [`run_cc`].
///
/// Like BFS, CC carries no live MRAM state across passes — every pass
/// re-encodes the label array from the committed host mirror — so
/// iteration checkpoints are empty and a re-run replays the pass from
/// committed host state.
///
/// # Errors
///
/// Propagates collective validation errors (never typed fault errors —
/// those are consumed by the supervisor).
pub fn run_cc_resilient(
    cfg: &CcConfig,
    graph: &CsrGraph,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
) -> pidcomm::Result<ResilientRun> {
    run_cc_resilient_in(cfg, graph, fault, policy, &mut SystemArena::new())
}

/// As [`run_cc_resilient`], sourcing allocations from `arena`.
///
/// # Errors
///
/// As [`run_cc_resilient`].
pub fn run_cc_resilient_in(
    cfg: &CcConfig,
    graph: &CsrGraph,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
    arena: &mut SystemArena,
) -> pidcomm::Result<ResilientRun> {
    let graph = graph.to_undirected();
    let p = cfg.pes;
    let n = graph.num_vertices();
    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    if let Some(fp) = &fault {
        sys.attach_fault_plan(fp.clone());
        sys.set_verify_writes(true);
    }
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("CC", format!("{n}v"));
    let mut sup = Supervisor::new(p, policy);

    let per_pe = n.div_ceil(p);
    let label_bytes = (n * 4).next_multiple_of(8 * p);

    let slice_bytes = {
        let max_bytes = (0..p)
            .map(|pe| {
                let lo = pe * per_pe;
                let hi = ((pe + 1) * per_pe).min(n);
                (lo..hi)
                    .map(|v| 4 + 4 * graph.degree(v as u32))
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        max_bytes.next_multiple_of(8).max(8)
    };
    let adj_host = [arena.bytes(p * slice_bytes)];

    let src_off = slice_bytes.next_multiple_of(64);
    let dst_off = src_off + label_bytes.next_multiple_of(64);

    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, 0, slice_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;
    let merge_plan = comm.plan_cached(
        &mut plans,
        Primitive::AllReduce,
        &mask,
        &BufferSpec::new(src_off, dst_off, label_bytes).with_dtype(DType::U32),
        ReduceKind::Min,
    )?;
    let reduce_plan = comm.plan_cached(
        &mut plans,
        Primitive::Reduce,
        &mask,
        &BufferSpec::new(dst_off, 0, label_bytes).with_dtype(DType::U32),
        ReduceKind::Min,
    )?;

    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut merged = vec![0u32; n];
    let mut proto = vec![0u8; label_bytes];
    let owned_edges: Vec<u64> = (0..p)
        .map(|pid| {
            let lo = pid * per_pe;
            let hi = ((pid + 1) * per_pe).min(n);
            (lo..hi).map(|v| graph.degree(v as u32) as u64).sum()
        })
        .collect();
    let mut dirty = vec![true; n];
    let mut iterations = 0usize;

    let mut result: Option<Vec<u32>> = None;
    'run: {
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            Ok(at
                .collective(&comm, sys, &scatter_plan, Some(&adj_host))?
                .report)
        })? {
            Iteration::Done(report) => profile.record(&report),
            Iteration::Abort(_) => break 'run,
        }

        // The pass cap guards termination under heavily degraded
        // execution (corrupted merges are not guaranteed monotone); a
        // clean propagation converges in at most `n` passes regardless.
        loop {
            iterations += 1;

            proto.fill(0xFF);
            kernels::encode_u32(&labels, &mut proto[..n * 4]);

            // Each pass rewrites the label regions wholesale from the
            // committed host mirrors, so the checkpoint is empty; a
            // re-run replays the pass exactly.
            match sup.iteration(&mut sys, arena, &[], |sys, at| {
                let kernels = par_pes(sys.pes_mut(), cfg.threads, |pid, pe| {
                    // simlint: hot(begin, cc label lowering)
                    let lo = pid * per_pe;
                    let hi = ((pid + 1) * per_pe).min(n);
                    pe.write(src_off, &proto);
                    for v in lo..hi {
                        if !dirty[v] {
                            continue;
                        }
                        let mut m = labels[v];
                        for &t in graph.neighbors(v as u32) {
                            m = m.min(labels[t as usize]);
                        }
                        pe.write(src_off + v * 4, &m.to_le_bytes());
                    }
                    let edges = owned_edges[pid];
                    KERNEL_SCALE * pe_kernel_ns(48 * edges + label_bytes as u64, 10 * edges)
                    // simlint: hot(end)
                });
                let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(max_kernel);
                let report = at.collective(&comm, sys, &merge_plan, None)?.report;
                // Read the merged labels back from the first healthy PE
                // (identical on every PE; a degraded execution skips
                // landing output on quarantined PEs, whose copy is stale).
                let read_pe = geom
                    .pes()
                    .find(|pe| !at.ledger().is_quarantined(pe.index() as u32))
                    .or_else(|| geom.pes().next())
                    .expect("system has at least one PE");
                sys.pe_mut(read_pe).read_u32s(dst_off, &mut merged);
                Ok((max_kernel, report))
            })? {
                Iteration::Done((max_kernel, report)) => {
                    profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);
                    profile.record(&report);
                }
                Iteration::Abort(_) => break 'run,
            }

            // Commit: fold the merged labels into the host mirrors.
            let mut changed = false;
            dirty.fill(false);
            for v in 0..n {
                if merged[v] != labels[v] {
                    changed = true;
                    dirty[v] = true;
                    for &t in graph.neighbors(v as u32) {
                        dirty[t as usize] = true;
                    }
                }
            }
            labels.copy_from_slice(&merged);
            if !changed || iterations > n {
                break;
            }
        }

        // Final Reduce(Min): reads the merged array left by the last pass
        // (reads cannot be corrupted, and the body writes nothing to the
        // checkpointed regions), so the checkpoint stays empty.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            let exec = at.collective(&comm, sys, &reduce_plan, None)?;
            Ok((
                exec.report,
                exec.host_out.expect("reduce produces host output"),
            ))
        })? {
            Iteration::Done((report, reduced)) => {
                profile.record(&report);
                let mut final_labels = vec![0u32; n];
                kernels::decode_u32(&reduced[0][..n * 4], &mut final_labels);
                result = Some(final_labels);
            }
            Iteration::Abort(_) => {}
        }
    }
    let [adj_host] = adj_host;
    arena.recycle_bytes(adj_host);

    let (expected, cpu_ns) = cpu_reference(&graph);
    let (mismatched, validated) = match &result {
        Some(r) => {
            let mm = r.iter().zip(&expected).filter(|(a, b)| a != b).count()
                + r.len().abs_diff(expected.len());
            (mm as u64, mm == 0)
        }
        None => (expected.len() as u64, false),
    };
    profile.dataset = format!("{n}v/{}it", iterations);
    let modeled_ns = sys.meter().total();
    sys.detach_fault_plan();
    sys.set_verify_writes(false);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(ResilientRun {
        run: AppRun {
            profile,
            cpu_ns,
            validated,
        },
        outcome: sup.outcome(),
        retries: sup.retries(),
        quarantined: sup.ledger().quarantined(),
        mismatched,
        modeled_ns,
        backoff_epochs: sup.backoff_epochs(),
        checkpoint_restores: sup.checkpoint_restores(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidcomm_data::{rmat, RmatParams};

    #[test]
    fn cc_validates_on_small_graph() {
        let graph = rmat(10, 4, RmatParams::skewed(9));
        let run = run_cc(
            &CcConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Full,
            },
            &graph,
        )
        .unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::Reduce) > 0.0);
    }

    #[test]
    fn component_count_matches_union_find() {
        let graph = CsrGraph::from_edges(10, vec![(0, 1), (1, 2), (4, 5), (7, 8)]);
        let run = run_cc(
            &CcConfig {
                threads: 0,
                pes: 8,
                opt: OptLevel::Full,
            },
            &graph,
        )
        .unwrap();
        assert!(run.validated);
        // Components: {0,1,2}, {3}, {4,5}, {6}, {7,8}, {9} = 6.
        let (labels, _) = cpu_reference(&graph.to_undirected());
        assert_eq!(component_count(&labels), 6);
    }

    #[test]
    fn long_chain_converges_through_the_sparse_frontier() {
        // A path graph needs many label-propagation iterations with an
        // ever-shrinking dirty set — the shape the frontier-sparse
        // expansion exists for. Validation against the dense CPU fixed
        // point pins bit-identical labels; a second run on the same arena
        // reuses the warm plans.
        let edges: Vec<(u32, u32)> = (0..63).map(|v| (v, v + 1)).collect();
        let graph = CsrGraph::from_edges(64, edges);
        let cfg = CcConfig {
            threads: 0,
            pes: 8,
            opt: OptLevel::Full,
        };
        let mut arena = pim_sim::SystemArena::new();
        let first = run_cc_in(&cfg, &graph, &mut arena).unwrap();
        assert!(first.validated);
        assert!(first.profile.dataset.contains("it"));
        let second = run_cc_in(&cfg, &graph, &mut arena).unwrap();
        assert!(first == second, "warm-plan rerun diverges");
    }

    #[test]
    fn baseline_matches_and_is_slower() {
        let graph = rmat(9, 4, RmatParams::skewed(13));
        let full = run_cc(
            &CcConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Full,
            },
            &graph,
        )
        .unwrap();
        let base = run_cc(
            &CcConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Baseline,
            },
            &graph,
        )
        .unwrap();
        assert!(base.profile.comm_ns() > full.profile.comm_ns());
        assert!((base.profile.kernel_ns - full.profile.kernel_ns).abs() < 1e-6);
    }
}

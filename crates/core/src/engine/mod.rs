//! Execution engine: validation, dispatch and cost application.

pub(crate) mod baseline;
pub mod hostkernel;
pub(crate) mod parallel;
pub mod sheet;
pub(crate) mod streaming;

use pim_sim::dtype::{DType, ReduceKind};
use pim_sim::PimSystem;

use crate::config::{OptLevel, Primitive};
use crate::error::{Error, Result};
use crate::hypercube::{build_clusters, DimMask, HypercubeManager};
use crate::report::CommReport;
use sheet::CostSheet;

/// Buffer description shared by all collective calls: the same MRAM offsets
/// apply to every participating PE (the SPMD convention of the paper's
/// API, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSpec {
    /// Source MRAM offset on every PE (ignored by Scatter/Broadcast).
    pub src_offset: usize,
    /// Destination MRAM offset on every PE (ignored by Gather/Reduce).
    pub dst_offset: usize,
    /// Payload bytes per node; see each primitive for the exact meaning
    /// (total send size for AlltoAll/ReduceScatter/AllReduce/Reduce/Gather,
    /// per-node contribution for AllGather, per-node receive size for
    /// Scatter/Broadcast).
    pub bytes_per_node: usize,
    /// Element type of the payload.
    pub dtype: DType,
}

impl BufferSpec {
    /// Convenience constructor with `u64` elements.
    pub fn new(src_offset: usize, dst_offset: usize, bytes_per_node: usize) -> Self {
        Self {
            src_offset,
            dst_offset,
            bytes_per_node,
            dtype: DType::U64,
        }
    }

    /// Sets the element type.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }
}

/// Outcome of one engine invocation.
pub(crate) struct Execution {
    pub report: CommReport,
    pub host_out: Option<Vec<Vec<u8>>>,
}

/// MRAM byte ranges `(src_len, dst_len)` a primitive touches per PE.
fn buffer_extents(primitive: Primitive, b: usize, n: usize) -> (usize, usize) {
    match primitive {
        Primitive::AlltoAll | Primitive::AllReduce => (b, b),
        Primitive::ReduceScatter => (b, b / n),
        Primitive::AllGather => (b, b * n),
        Primitive::Scatter => (0, b),
        Primitive::Gather | Primitive::Reduce => (b, 0),
        Primitive::Broadcast => (0, b),
    }
}

/// Logical data volumes `(bytes_in, bytes_out)` for throughput reporting.
fn logical_volumes(primitive: Primitive, b: usize, n: usize, p: usize, g: usize) -> (u64, u64) {
    let (b, n, p, g) = (b as u64, n as u64, p as u64, g as u64);
    match primitive {
        Primitive::AlltoAll | Primitive::AllReduce => (p * b, p * b),
        Primitive::ReduceScatter => (p * b, p * b / n),
        Primitive::AllGather => (p * b, p * b * n),
        Primitive::Scatter => (g * n * b, p * b),
        Primitive::Gather => (p * b, g * n * b),
        Primitive::Reduce => (p * b, g * b),
        Primitive::Broadcast => (g * b, p * b),
    }
}

fn validate(
    sys: &PimSystem,
    manager: &HypercubeManager,
    primitive: Primitive,
    spec: &BufferSpec,
    n: usize,
    num_groups: usize,
    host_in: Option<&[Vec<u8>]>,
) -> Result<()> {
    if manager.geometry() != sys.geometry() {
        return Err(Error::ShapeSystemMismatch {
            nodes: manager.num_nodes(),
            pes: sys.geometry().num_pes(),
        });
    }
    let b = spec.bytes_per_node;
    if b == 0 {
        return Err(Error::InvalidBuffer("bytes_per_node is zero".into()));
    }
    if !b.is_multiple_of(spec.dtype.size_bytes()) {
        return Err(Error::InvalidBuffer(format!(
            "bytes_per_node {b} is not a multiple of element size {}",
            spec.dtype.size_bytes()
        )));
    }
    let chunked = matches!(
        primitive,
        Primitive::AlltoAll | Primitive::ReduceScatter | Primitive::AllReduce | Primitive::Reduce
    );
    if chunked && !b.is_multiple_of(8 * n) {
        return Err(Error::InvalidBuffer(format!(
            "{primitive} needs bytes_per_node divisible by 8 x group size ({}); got {b}",
            8 * n
        )));
    }
    if !chunked && !b.is_multiple_of(8) {
        return Err(Error::InvalidBuffer(format!(
            "{primitive} needs bytes_per_node divisible by 8; got {b}"
        )));
    }

    let (src_len, dst_len) = buffer_extents(primitive, b, n);
    if src_len > 0 && dst_len > 0 {
        let (s0, s1) = (spec.src_offset, spec.src_offset + src_len);
        let (d0, d1) = (spec.dst_offset, spec.dst_offset + dst_len);
        if s0 < d1 && d0 < s1 {
            return Err(Error::InvalidBuffer(format!(
                "source [{s0}, {s1}) and destination [{d0}, {d1}) regions overlap"
            )));
        }
    }

    match primitive {
        Primitive::Scatter | Primitive::Broadcast => {
            let host_in = host_in.ok_or_else(|| {
                Error::InvalidHostData(format!("{primitive} requires host input buffers"))
            })?;
            if host_in.len() != num_groups {
                return Err(Error::InvalidHostData(format!(
                    "expected {num_groups} host buffers (one per group), got {}",
                    host_in.len()
                )));
            }
            let expect = if primitive == Primitive::Scatter {
                n * b
            } else {
                b
            };
            for (i, buf) in host_in.iter().enumerate() {
                if buf.len() != expect {
                    return Err(Error::InvalidHostData(format!(
                        "host buffer {i} has {} bytes, expected {expect}",
                        buf.len()
                    )));
                }
            }
        }
        _ => {
            if host_in.is_some() {
                return Err(Error::InvalidHostData(format!(
                    "{primitive} takes no host input buffers"
                )));
            }
        }
    }
    Ok(())
}

/// Validates and executes one collective call, returning the report and
/// (for rooted receive primitives) host-side outputs.
///
/// `threads` bounds the engine's cluster-level fan-out; `0` means auto and
/// `1` forces the serial reference schedule (both produce byte-identical
/// buffers and reports).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    sys: &mut PimSystem,
    manager: &HypercubeManager,
    opt: OptLevel,
    primitive: Primitive,
    mask: &DimMask,
    spec: &BufferSpec,
    op: ReduceKind,
    host_in: Option<&[Vec<u8>]>,
    threads: usize,
) -> Result<Execution> {
    let n = mask.group_size(manager.shape())?;
    let num_groups = manager.num_nodes() / n;
    validate(sys, manager, primitive, spec, n, num_groups, host_in)?;

    let clusters = build_clusters(manager, mask)?;
    let mut sheet = CostSheet::new(sys.geometry().channels());
    let before = sys.meter();
    let b = spec.bytes_per_node;
    let (src, dst) = (spec.src_offset, spec.dst_offset);

    // Reserve backing capacity for the full buffer extent on every PE up
    // front (functionally a no-op; nothing is materialized) so the
    // streaming loops never pay incremental MRAM reallocation copies.
    let (src_len, dst_len) = buffer_extents(primitive, b, n);
    let src_end = if src_len > 0 { src + src_len } else { 0 };
    let dst_end = if dst_len > 0 { dst + dst_len } else { 0 };
    sys.reserve_extent_all(src_end.max(dst_end));

    let host_out: Option<Vec<Vec<u8>>> = match primitive {
        Primitive::Broadcast => {
            streaming::broadcast(
                sys,
                &mut sheet,
                &clusters,
                dst,
                b,
                host_in.unwrap(),
                threads,
            );
            None
        }
        Primitive::Scatter => {
            streaming::scatter(
                sys,
                &mut sheet,
                &clusters,
                dst,
                b,
                host_in.unwrap(),
                opt,
                threads,
            );
            None
        }
        Primitive::Gather => Some(streaming::gather(
            sys, &mut sheet, &clusters, num_groups, src, b, opt, threads,
        )),
        _ if opt == OptLevel::Baseline => {
            let groups = manager.groups(mask)?;
            baseline::run(
                sys, &mut sheet, &groups, primitive, src, dst, b, spec.dtype, op, threads,
            )
        }
        Primitive::AlltoAll => {
            streaming::alltoall(sys, &mut sheet, &clusters, src, dst, b, opt, threads);
            None
        }
        Primitive::ReduceScatter => {
            streaming::reduce_scatter(
                sys, &mut sheet, &clusters, src, dst, b, spec.dtype, op, opt, threads,
            );
            None
        }
        Primitive::AllReduce => {
            streaming::all_reduce(
                sys, &mut sheet, &clusters, src, dst, b, spec.dtype, op, opt, threads,
            );
            None
        }
        Primitive::AllGather => {
            streaming::all_gather(sys, &mut sheet, &clusters, src, dst, b, opt, threads);
            None
        }
        Primitive::Reduce => Some(streaming::reduce(
            sys, &mut sheet, &clusters, num_groups, src, b, spec.dtype, op, opt, threads,
        )),
    };

    sheet.apply(sys);
    let breakdown = sys.meter().since(&before);
    let (bytes_in, bytes_out) = logical_volumes(primitive, b, n, manager.num_nodes(), num_groups);

    Ok(Execution {
        report: CommReport {
            primitive,
            opt,
            breakdown,
            bytes_in,
            bytes_out,
            group_size: n,
            num_groups,
        },
        host_out,
    })
}

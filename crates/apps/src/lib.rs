//! # pidcomm-apps — benchmark applications on the PID-Comm framework
//!
//! The paper's five benchmark applications (§VII), each implemented on the
//! simulated PIM system with real data flowing through the collective
//! library, validated bit-exactly against plain CPU reference
//! implementations, and profiled with the paper's per-primitive + kernel
//! decomposition:
//!
//! * [`mlp`] — 5-layer perceptron, column-partitioned, ReduceScatter
//!   between layers.
//! * [`bfs`] — frontier BFS with AllReduce(Or) on visited bitmaps.
//! * [`cc`] — connected components via min-label AllReduce.
//! * [`gnn`] — 2-D partitioned GNN in both RS&AR and AR&AG variants.
//! * [`dlrm`] — 3-D partitioned recommendation model (AlltoAll /
//!   ReduceScatter / AlltoAll).

// The modeled engine takes no unsafe shortcuts; any future unsafe
// fast path belongs in pim_sim, under simlint's unsafe-audit lint.
#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc;
pub mod cost;
pub mod dlrm;
pub mod gnn;
pub mod mlp;
pub mod profile;

pub use profile::AppProfile;

/// Result of one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Modeled PIM execution profile.
    pub profile: AppProfile,
    /// Modeled CPU-only reference time (roofline, §VIII-G comparisons).
    pub cpu_ns: f64,
    /// Whether the PIM result matched the CPU reference bit-exactly.
    pub validated: bool,
}

/// Result of one resilient application run (the `run_*_resilient`
/// variants): the ordinary [`AppRun`] plus the run-level recovery record.
///
/// Unlike the plain runners, a resilient run never panics on output
/// divergence — degraded execution is the point — and instead reports the
/// divergence as [`ResilientRun::mismatched`]. With no fault plan the
/// profile and outputs are bit-identical to the plain runner's.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// Profile, CPU reference time and validation flag. The profile
    /// records *committed* attempts; [`ResilientRun::modeled_ns`] is the
    /// full modeled time including failed attempts and recovery charges.
    pub run: AppRun,
    /// Typed outcome of the run.
    pub outcome: pidcomm::RunOutcome,
    /// Total retries consumed (plan-level and iteration-level).
    pub retries: u32,
    /// PEs quarantined by the health ledger, ascending.
    pub quarantined: Vec<u32>,
    /// Output elements that differ from the CPU reference (the
    /// degraded-output delta). On an aborted run, the full output length.
    pub mismatched: u64,
    /// Full modeled time from the system meter: every attempt, retry
    /// setup, rollback and degraded recompute charge.
    pub modeled_ns: f64,
    /// Fault epochs skipped by exponential backoff.
    pub backoff_epochs: u64,
    /// Iteration rollbacks performed.
    pub checkpoint_restores: u64,
}

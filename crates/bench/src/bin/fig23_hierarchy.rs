//! Fig. 23: (a) hypercube vs ring vs tree AllReduce; (b) multi-host
//! AllReduce and AlltoAll with 1/2/4 hosts.
//!
//! The three topology runs and the three host-count ensembles are
//! independent simulations, so they run as cells on the work-stealing
//! sweep pool (`--threads N`, default auto); each cell's engine fan-out
//! is bounded by the remaining budget so the two layers compose.

use pidcomm::{
    topology_all_reduce, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape,
    LinkModel, MultiHost, MultiHostReport, Topology,
};
use pidcomm_bench::header;
use pidcomm_bench::sweep::{self, threads_flag, SweepBudget};
use pim_sim::{DimmGeometry, PimSystem, ReduceKind};

fn topology_cell(topo: Topology) -> pidcomm::CommReport {
    let geom = DimmGeometry::upmem_1024();
    let shape = HypercubeShape::new(vec![32, 32]).unwrap();
    let mask: DimMask = "10".parse().unwrap();
    let b = 32 * 512;
    let manager = HypercubeManager::new(shape, geom).unwrap();
    let mut sys = PimSystem::new(geom);
    for pe in geom.pes() {
        sys.pe_mut(pe).write(0, &vec![3u8; b]);
    }
    topology_all_reduce(
        &mut sys,
        &manager,
        topo,
        &mask,
        &BufferSpec::new(0, 2 * b + 64, b),
        ReduceKind::Sum,
    )
    .unwrap()
}

fn multihost_cell(hosts: usize, engine_threads: usize) -> (MultiHostReport, MultiHostReport) {
    let per_host = DimmGeometry::upmem_256();
    // An explicit per-host bound caps both the host-level fan-out and each
    // host's inner cluster fan-out (see `par_hosts`), so the cell can use
    // up to bound x bound threads: stay within the sweep budget by taking
    // the integer square root.
    let bound = engine_threads.isqrt().max(1);
    let mk = || {
        let m =
            HypercubeManager::new(HypercubeShape::new(vec![16, 16]).unwrap(), per_host).unwrap();
        Communicator::new(m).with_threads(bound)
    };
    let mh = MultiHost::new(
        (0..hosts).map(|_| mk()).collect(),
        LinkModel::ethernet_10g(),
    )
    .unwrap();
    let mask: DimMask = "10".parse().unwrap();

    // AllReduce: 8 KiB per PE.
    let b_ar = 16 * 512;
    let mut systems: Vec<PimSystem> = (0..hosts).map(|_| PimSystem::new(per_host)).collect();
    for sys in systems.iter_mut() {
        for pe in per_host.pes() {
            sys.pe_mut(pe).write(0, &vec![1u8; b_ar]);
        }
    }
    let ar = mh
        .all_reduce(
            &mut systems,
            &mask,
            &BufferSpec::new(0, 2 * b_ar + 64, b_ar),
            ReduceKind::Sum,
        )
        .unwrap();

    // AlltoAll: chunked across hosts x group.
    let b_aa = 8 * 16 * hosts * 8;
    let mut systems: Vec<PimSystem> = (0..hosts).map(|_| PimSystem::new(per_host)).collect();
    for sys in systems.iter_mut() {
        for pe in per_host.pes() {
            sys.pe_mut(pe).write(0, &vec![2u8; b_aa]);
        }
    }
    let aa = mh
        .all_to_all(
            &mut systems,
            &mask,
            &BufferSpec::new(0, 2 * b_aa + 64, b_aa),
        )
        .unwrap();
    (ar, aa)
}

fn main() {
    const TOPOLOGIES: [Topology; 3] = [Topology::Hypercube, Topology::Ring, Topology::Tree];
    const HOSTS: [usize; 3] = [1, 2, 4];

    // Build the actual cell vector first and derive every count — the
    // budget split and the queue size — from it, so the workers /
    // engine_threads schedule can never drift from the cells actually
    // enqueued if an axis is added or filtered later.
    enum Spec {
        Topo(Topology),
        Hosts(usize),
    }
    let specs: Vec<Spec> = TOPOLOGIES
        .iter()
        .map(|&t| Spec::Topo(t))
        .chain(HOSTS.iter().map(|&h| Spec::Hosts(h)))
        .collect();
    // The real guard is structural: specs.len() is the only count the
    // budget split and the queue ever see. The assert just documents the
    // expected sweep size so a reshaped cell list is caught loudly.
    assert_eq!(specs.len(), TOPOLOGIES.len() + HOSTS.len());
    let budget = SweepBudget::split(threads_flag(), specs.len());

    // All six cells drain through one shared queue; the reports come back
    // in cell order for deterministic printing.
    enum Cell {
        Topo(pidcomm::CommReport),
        Hosts(MultiHostReport, MultiHostReport),
    }
    let results = sweep::run_cells(specs.len(), budget.workers, |i| match specs[i] {
        Spec::Topo(topo) => Cell::Topo(topology_cell(topo)),
        Spec::Hosts(hosts) => {
            let (ar, aa) = multihost_cell(hosts, budget.engine_threads);
            Cell::Hosts(ar, aa)
        }
    });

    header(
        "Fig. 23a",
        "AllReduce with hypercube / ring / tree topologies, 2-D (32,32)",
        "tree up to 7.89x and ring up to 2.05x slower than the hypercube",
    );
    let mut hyper_t = 0.0;
    for (topo, cell) in TOPOLOGIES.iter().zip(&results) {
        let Cell::Topo(report) = cell else {
            unreachable!()
        };
        if *topo == Topology::Hypercube {
            hyper_t = report.time_ns();
        }
        println!(
            "{:<10} {:>9.2} ms  ({:.2}x vs hypercube, {:>6.2} GB/s)",
            format!("{topo}"),
            report.time_ns() / 1e6,
            report.time_ns() / hyper_t,
            report.throughput_gbps()
        );
    }

    println!();
    header(
        "Fig. 23b",
        "multi-host AllReduce / AlltoAll, 256 PEs per host, 10 Gbps MPI",
        "AR overhead small (reduced data crosses MPI); AA overhead grows with hosts",
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "hosts", "AR local ms", "AR mpi ms", "AA local ms", "AA mpi ms"
    );
    for (hosts, cell) in HOSTS.iter().zip(&results[TOPOLOGIES.len()..]) {
        let Cell::Hosts(ar, aa) = cell else {
            unreachable!()
        };
        println!(
            "{hosts:<6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            ar.local.total() / 1e6,
            ar.mpi_ns / 1e6,
            aa.local.total() / 1e6,
            aa.mpi_ns / 1e6
        );
    }
}

//! Property-based tests of the domain-transfer algebra and byte-level
//! reduction arithmetic — the foundations every collective builds on.

use pim_sim::domain::{
    compose, invert, is_permutation, permute_lanes_raw, permute_words_host, rotation_within,
    transpose8x8, LanePerm, IDENTITY_PERM,
};
use pim_sim::dtype::{fill_identity, identity_bytes, reduce_bytes, DType, ReduceKind};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 64)
}

fn arb_perm() -> impl Strategy<Value = LanePerm> {
    Just([0usize, 1, 2, 3, 4, 5, 6, 7])
        .prop_shuffle()
        .prop_map(|v| {
            let mut p = [0usize; 8];
            p.copy_from_slice(&v);
            p
        })
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    prop::sample::select(DType::ALL.to_vec())
}

fn arb_op() -> impl Strategy<Value = ReduceKind> {
    prop::sample::select(ReduceKind::ALL.to_vec())
}

proptest! {
    #[test]
    fn transpose_is_involution(mut block in arb_block()) {
        let orig = block.clone();
        transpose8x8(&mut block);
        transpose8x8(&mut block);
        prop_assert_eq!(block, orig);
    }

    #[test]
    fn fusion_identity_for_arbitrary_permutations(block in arb_block(), perm in arb_perm()) {
        // The cross-domain modulation identity holds for *any* lane
        // permutation, not just rotations.
        let mut via_raw = block.clone();
        permute_lanes_raw(&mut via_raw, &perm);

        let mut via_host = block.clone();
        transpose8x8(&mut via_host);
        permute_words_host(&mut via_host, &perm);
        transpose8x8(&mut via_host);

        prop_assert_eq!(via_raw, via_host);
    }

    #[test]
    fn permutation_inverse_roundtrips(block in arb_block(), perm in arb_perm()) {
        let mut b = block.clone();
        permute_words_host(&mut b, &perm);
        permute_words_host(&mut b, &invert(&perm));
        prop_assert_eq!(b, block);
    }

    #[test]
    fn compose_matches_sequential_application(block in arb_block(), a in arb_perm(), b in arb_perm()) {
        let mut seq = block.clone();
        permute_lanes_raw(&mut seq, &a);
        permute_lanes_raw(&mut seq, &b);
        let mut fused = block.clone();
        permute_lanes_raw(&mut fused, &compose(&a, &b));
        prop_assert_eq!(seq, fused);
    }

    #[test]
    fn rotations_compose_and_invert(lanes in prop::sample::subsequence(vec![0usize,1,2,3,4,5,6,7], 1..8), r in 0usize..8) {
        let l = lanes.len();
        let fwd = rotation_within(&lanes, r % l);
        prop_assert!(is_permutation(&fwd));
        let back = rotation_within(&lanes, (l - r % l) % l);
        prop_assert_eq!(compose(&fwd, &back), IDENTITY_PERM);
    }

    #[test]
    fn reduction_is_commutative(a in arb_block(), b in arb_block(), op in arb_op(), dt in arb_dtype()) {
        let mut ab = a.clone();
        reduce_bytes(op, dt, &mut ab, &b);
        let mut ba = b.clone();
        reduce_bytes(op, dt, &mut ba, &a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn reduction_is_associative(
        a in arb_block(), b in arb_block(), c in arb_block(),
        op in arb_op(), dt in arb_dtype()
    ) {
        // (a . b) . c == a . (b . c)
        let mut left = a.clone();
        reduce_bytes(op, dt, &mut left, &b);
        reduce_bytes(op, dt, &mut left, &c);

        let mut bc = b.clone();
        reduce_bytes(op, dt, &mut bc, &c);
        let mut right = a.clone();
        reduce_bytes(op, dt, &mut right, &bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn identity_is_left_neutral(a in arb_block(), op in arb_op(), dt in arb_dtype()) {
        let mut acc = vec![0u8; 64];
        fill_identity(op, dt, &mut acc);
        reduce_bytes(op, dt, &mut acc, &a);
        prop_assert_eq!(acc, a);
        prop_assert_eq!(identity_bytes(op, dt).len(), dt.size_bytes());
    }

    #[test]
    fn reduction_order_of_many_operands_is_irrelevant(
        blocks in proptest::collection::vec(arb_block(), 2..6),
        op in arb_op(),
        dt in arb_dtype(),
        seed in any::<u64>()
    ) {
        // Fold in natural order vs a shuffled order — collectives are free
        // to accumulate group members in any schedule.
        let mut fwd = vec![0u8; 64];
        fill_identity(op, dt, &mut fwd);
        for b in &blocks {
            reduce_bytes(op, dt, &mut fwd, b);
        }

        let mut order: Vec<usize> = (0..blocks.len()).collect();
        // Cheap deterministic shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, (seed as usize).wrapping_mul(i + 7) % (i + 1));
        }
        let mut shuf = vec![0u8; 64];
        fill_identity(op, dt, &mut shuf);
        for &i in &order {
            reduce_bytes(op, dt, &mut shuf, &blocks[i]);
        }
        prop_assert_eq!(fwd, shuf);
    }
}

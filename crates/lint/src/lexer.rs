//! A small hand-rolled Rust lexer: just enough tokenization for the
//! invariant lints, with exact `line:col` spans.
//!
//! The full grammar is deliberately out of scope (no `syn`, honoring the
//! workspace's no-external-deps rule) — but *lexical* correctness is not
//! optional: a linter that mistakes the contents of a string literal or a
//! doc comment for code produces false positives the first time someone
//! documents the very pattern a lint forbids. So this lexer handles the
//! complete Rust literal surface — line and nested block comments, string
//! escapes, raw strings with arbitrary `#` guards, byte strings and byte
//! chars, char literals vs lifetimes — and degrades every remaining
//! subtlety (numeric suffixes, float forms) into a single opaque token.
//!
//! Comments are lexed into a side table rather than discarded: the
//! `// simlint:` directive parser and the `// SAFETY:` audit both read
//! them.

/// One code token. Columns and lines are 1-based, counted in characters,
/// which is what editors and rustc diagnostics use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
}

/// The token classes the lints distinguish. Everything that is not an
/// identifier, literal, lifetime or comment is a single-character punct;
/// multi-character operators (`+=`, `::`, `..`) appear as adjacent puncts
/// and are matched by the pattern engine, which can check adjacency via
/// line/col when it matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not separate keywords).
    Ident(String),
    /// Any numeric literal, suffix included.
    Num,
    /// String, raw string, byte string or raw byte string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Life,
    /// Single punctuation character.
    Punct(char),
}

/// One comment, with its text (delimiters stripped) and start position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// `true` for `// ...`, `false` for `/* ... */`.
    pub is_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks two characters ahead without consuming. `Peekable` only looks
    /// one ahead, so this clones the (cheap) char iterator.
    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and a comment side table. Never fails: any
/// character the grammar above does not claim becomes a punct, and an
/// unterminated literal or comment simply ends at EOF — a linter must
/// keep going on files rustc would reject.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' => match cur.peek2() {
                Some('/') => {
                    cur.bump();
                    cur.bump();
                    let mut text = String::new();
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.comments.push(Comment {
                        text,
                        line,
                        col,
                        is_line: true,
                    });
                }
                Some('*') => {
                    cur.bump();
                    cur.bump();
                    let mut depth = 1usize;
                    let mut text = String::new();
                    while depth > 0 {
                        match (cur.peek(), cur.peek2()) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                text.push_str("/*");
                                cur.bump();
                                cur.bump();
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                                cur.bump();
                                cur.bump();
                            }
                            (Some(ch), _) => {
                                text.push(ch);
                                cur.bump();
                            }
                            (None, _) => break, // unterminated: stop at EOF
                        }
                    }
                    out.comments.push(Comment {
                        text,
                        line,
                        col,
                        is_line: false,
                    });
                }
                _ => {
                    cur.bump();
                    out.toks.push(Tok {
                        kind: TokKind::Punct('/'),
                        line,
                        col,
                    });
                }
            },
            '"' => {
                lex_string(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    line,
                    col,
                });
            }
            '\'' => {
                let kind = lex_quote(&mut cur);
                out.toks.push(Tok { kind, line, col });
            }
            c if is_ident_start(c) => {
                // `r"`/`r#"` raw strings, `b"` byte strings, `br#"` raw
                // byte strings and `b'x'` byte chars all start like an
                // identifier; disambiguate before consuming.
                if (c == 'r' || c == 'b') && starts_string_prefix(&mut cur) {
                    let kind = lex_prefixed_literal(&mut cur);
                    out.toks.push(Tok { kind, line, col });
                    continue;
                }
                let mut name = String::new();
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        name.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(name),
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                    col,
                });
            }
            c => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Whether the cursor (sitting on `r` or `b`) begins a string-like
/// literal rather than an ordinary identifier.
fn starts_string_prefix(cur: &mut Cursor) -> bool {
    let mut it = cur.chars.clone();
    let first = it.next();
    match (first, it.next()) {
        // r" r#  b" b'
        (Some('r'), Some('"')) | (Some('r'), Some('#')) => true,
        (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
        // br" br#
        (Some('b'), Some('r')) => matches!(it.next(), Some('"') | Some('#')),
        _ => false,
    }
}

/// Consumes a literal beginning with `r`, `b` or `br` (the cursor sits on
/// the prefix's first character).
fn lex_prefixed_literal(cur: &mut Cursor) -> TokKind {
    let first = cur.bump().expect("caller saw a prefix");
    let raw = if first == 'r' {
        true
    } else {
        // `b`: byte char, byte string, or raw byte string.
        match cur.peek() {
            Some('\'') => {
                lex_char_body(cur);
                return TokKind::Char;
            }
            Some('"') => {
                lex_string(cur);
                return TokKind::Str;
            }
            Some('r') => {
                cur.bump();
                true
            }
            _ => unreachable!("starts_string_prefix guaranteed a literal"),
        }
    };
    debug_assert!(raw);
    // Raw string: zero or more `#`, then `"`, ending at `"` + same `#`s.
    let mut guards = 0usize;
    while cur.peek() == Some('#') {
        guards += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                let mut it = cur.chars.clone();
                if (0..guards).all(|_| it.next() == Some('#')) {
                    for _ in 0..guards {
                        cur.bump();
                    }
                    return TokKind::Str;
                }
            }
            Some(_) => {}
            None => return TokKind::Str, // unterminated
        }
    }
}

/// Consumes a normal (escaped) string body; the cursor sits on the
/// opening quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // whatever is escaped, including `"` and `\`
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
}

/// Consumes what follows a `'`: either a char literal or a lifetime. The
/// cursor sits on the quote.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    cur.bump(); // the quote
    match cur.peek() {
        // Escape: definitely a char literal.
        Some('\\') => {
            lex_char_tail(cur);
            TokKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'x'` is a char, `'xyz` is a lifetime: decided by whether a
            // closing quote follows the single character.
            if cur.peek2() == Some('\'') {
                cur.bump();
                cur.bump();
                TokKind::Char
            } else {
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokKind::Life
            }
        }
        // `'3'`, `' '`, `'%'` — single non-ident char literal.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
        None => TokKind::Life,
    }
}

/// Consumes a char-literal body whose opening quote is already consumed
/// and whose first char is a backslash.
fn lex_char_tail(cur: &mut Cursor) {
    cur.bump(); // backslash
    cur.bump(); // escaped char (enough for \n \' \\ \0; \u{..} continues below)
    while let Some(ch) = cur.peek() {
        cur.bump();
        if ch == '\'' {
            break;
        }
    }
}

/// Consumes `'...'` where the cursor sits on the quote (byte chars).
fn lex_char_body(cur: &mut Cursor) {
    cur.bump(); // quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('\'') | None => break,
            Some(_) => {}
        }
    }
}

/// Consumes a numeric literal (integer or float, suffix included). `..`
/// after an integer is left alone so ranges lex as two puncts.
fn lex_number(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            cur.bump();
        } else if c == '.' {
            // Consume the dot only for a genuine fraction: `1.5` yes,
            // `0..n` and `1.method()` no.
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "Instant::now() inside a string";
            // Instant::now() inside a comment
            /* nested /* Instant::now() */ still comment */
            let b = r#"raw "quoted" Instant::now()"#;
            let c = b"bytes Instant";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].is_line);
        assert!(!lx.comments[1].is_line);
        assert!(lx.comments[1].text.contains("nested /* Instant::now() */"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let d = '\\n'; x }";
        let lx = lex(src);
        let lives = lx.toks.iter().filter(|t| t.kind == TokKind::Life).count();
        let chars = lx.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lives, 3, "'a, 'a, 'static");
        assert_eq!(chars, 2, "'x' and '\\n'");
    }

    #[test]
    fn raw_strings_with_guards_terminate_correctly() {
        let src = r####"let s = r##"has "# inside"##; let after = 1;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "after"]);
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let src = "ab\n  cd.ef";
        let lx = lex(src);
        let find = |name: &str| {
            lx.toks
                .iter()
                .find(|t| t.kind == TokKind::Ident(name.into()))
                .unwrap()
        };
        assert_eq!((find("ab").line, find("ab").col), (1, 1));
        assert_eq!((find("cd").line, find("cd").col), (2, 3));
        assert_eq!((find("ef").line, find("ef").col), (2, 6));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let src = "for i in 0..16 { x = 1.5; y = 2.max(3); }";
        let lx = lex(src);
        let nums = lx.toks.iter().filter(|t| t.kind == TokKind::Num).count();
        // 0, 16, 1.5, 2, 3 — and `max` survives as an ident.
        assert_eq!(nums, 5);
        assert!(idents(src).contains(&"max".to_string()));
    }

    #[test]
    fn directive_in_string_is_not_a_comment() {
        let src = r#"let s = "// simlint: allow(cost-sheet)";"#;
        assert!(lex(src).comments.is_empty());
    }
}

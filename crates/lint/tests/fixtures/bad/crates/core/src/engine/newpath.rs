// L1 bad: a new engine path that bumps a tally directly instead of
// going through a charge helper in sheet.rs/streaming.rs/baseline.rs.
pub fn charge_direct(sheet: &mut CostSheet) {
    sheet.dt_blocks += 1;
}

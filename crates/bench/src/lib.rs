//! # pidcomm-bench — figure/table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§VIII); see
//! DESIGN.md §3 for the experiment index and EXPERIMENTS.md for measured
//! vs published shapes. This library holds the shared runners.

use pidcomm::{
    BufferSpec, CommReport, Communicator, DimMask, HypercubeManager, HypercubeShape, OptLevel,
    Primitive,
};
use pim_sim::{DType, DimmGeometry, PimSystem, ReduceKind, TimeModel};

/// A primitive invocation setup shared by the sweeps.
#[derive(Debug, Clone)]
pub struct PrimSetup {
    /// System geometry.
    pub geom: DimmGeometry,
    /// Hypercube dimensions.
    pub dims: Vec<usize>,
    /// Communication mask.
    pub mask: String,
    /// `bytes_per_node` for chunked primitives (AA/RS/AR); AllGather &
    /// rooted primitives derive per-node sizes from it.
    pub bytes_per_node: usize,
    /// Element type.
    pub dtype: DType,
    /// Timing model (defaults to the UPMEM calibration; extensions swap in
    /// projected hardware).
    pub model: TimeModel,
}

impl PrimSetup {
    /// The paper's default 2-D (32, 32) setup on 1024 PEs.
    pub fn default_2d(bytes_per_node: usize) -> Self {
        Self {
            geom: DimmGeometry::upmem_1024(),
            dims: vec![32, 32],
            mask: "10".into(),
            bytes_per_node,
            dtype: DType::U64,
            model: TimeModel::upmem(),
        }
    }

    /// A 1-D setup over all 1024 PEs.
    pub fn default_1d(bytes_per_node: usize) -> Self {
        Self {
            geom: DimmGeometry::upmem_1024(),
            dims: vec![1024],
            mask: "1".into(),
            bytes_per_node,
            dtype: DType::U64,
            model: TimeModel::upmem(),
        }
    }

    fn group_size(&self) -> usize {
        let shape = HypercubeShape::new(self.dims.clone()).unwrap();
        let mask: DimMask = self.mask.parse().unwrap();
        mask.group_size(&shape).unwrap()
    }
}

/// Runs one primitive at one optimization level and returns its report.
///
/// Buffers are filled deterministically; `bytes_per_node` is interpreted
/// per primitive so total volume stays comparable across primitives (the
/// paper's "larger side" normalization).
///
/// # Panics
///
/// Panics on configuration errors (this is a harness, not a library API).
pub fn run_primitive(setup: &PrimSetup, prim: Primitive, opt: OptLevel) -> CommReport {
    time_primitive(setup, prim, opt, 1).0
}

/// Runs one primitive like [`run_primitive`], but times *only* the
/// collective invocation (system construction and buffer fills stay
/// outside the clock) and returns the minimum wall-clock milliseconds over
/// `reps` fresh runs alongside the last report. This is the measurement
/// the simulator-performance trajectory (`bench_json`) records: the
/// engine hot path, undiluted by harness setup.
///
/// # Panics
///
/// Panics on configuration errors (this is a harness, not a library API).
pub fn time_primitive(
    setup: &PrimSetup,
    prim: Primitive,
    opt: OptLevel,
    reps: usize,
) -> (CommReport, f64) {
    let shape = HypercubeShape::new(setup.dims.clone()).unwrap();
    let mask: DimMask = setup.mask.parse().unwrap();
    let n = setup.group_size();
    let b = setup.bytes_per_node;
    let manager = HypercubeManager::new(shape, setup.geom).unwrap();
    let comm = Communicator::new(manager).with_opt(opt);
    let groups = comm.manager().groups(&mask).unwrap().len();
    let small = (b / n).max(8).next_multiple_of(8);
    let dst = 2 * b.next_multiple_of(64) + 64;
    let spec = BufferSpec::new(0, dst, b).with_dtype(setup.dtype);
    let small_spec = BufferSpec::new(0, dst, small).with_dtype(setup.dtype);

    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let mut sys = PimSystem::with_model(setup.geom, setup.model.clone());
        for pe in setup.geom.pes() {
            let fill: Vec<u8> = (0..b)
                .map(|i| ((pe.0 as usize + i * 13) % 251) as u8)
                .collect();
            sys.pe_mut(pe).write(0, &fill);
        }
        let t0 = std::time::Instant::now();
        let r = match prim {
            Primitive::AlltoAll => comm.all_to_all(&mut sys, &mask, &spec).unwrap(),
            Primitive::ReduceScatter => comm
                .reduce_scatter(&mut sys, &mask, &spec, ReduceKind::Sum)
                .unwrap(),
            Primitive::AllReduce => comm
                .all_reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                .unwrap(),
            Primitive::AllGather => comm.all_gather(&mut sys, &mask, &small_spec).unwrap(),
            Primitive::Scatter => {
                let host: Vec<Vec<u8>> = vec![vec![0x5Au8; n * small]; groups];
                comm.scatter(&mut sys, &mask, &small_spec, &host).unwrap()
            }
            Primitive::Gather => comm.gather(&mut sys, &mask, &small_spec).unwrap().0,
            Primitive::Reduce => {
                comm.reduce(&mut sys, &mask, &spec, ReduceKind::Sum)
                    .unwrap()
                    .0
            }
            Primitive::Broadcast => {
                let host: Vec<Vec<u8>> = vec![vec![0xA5u8; small]; groups];
                comm.broadcast(&mut sys, &mask, &small_spec, &host).unwrap()
            }
        };
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (report.unwrap(), best)
}

/// Geometric mean of a slice.
pub fn geomean(values: &[f64]) -> f64 {
    let ln: f64 = values.iter().map(|v| v.ln()).sum();
    (ln / values.len() as f64).exp()
}

/// Formats a GB/s value.
pub fn gbps(report: &CommReport) -> f64 {
    report.throughput_gbps()
}

/// Prints a standard figure header.
pub fn header(fig: &str, what: &str, paper_shape: &str) {
    println!("==================================================================");
    println!("{fig}: {what}");
    println!("paper shape: {paper_shape}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn run_primitive_works_for_all_eight() {
        let setup = PrimSetup {
            geom: DimmGeometry::single_rank(),
            dims: vec![8, 8],
            mask: "10".into(),
            bytes_per_node: 8 * 8 * 8,
            dtype: DType::U64,
            model: TimeModel::upmem(),
        };
        for prim in Primitive::ALL {
            let report = run_primitive(&setup, prim, OptLevel::Full);
            assert!(report.time_ns() > 0.0, "{prim}");
            assert!(report.throughput_gbps() > 0.0, "{prim}");
        }
    }
}

/// Standard scaled application configurations (Table III), used by the
/// Fig. 4 / 13 / 15 / 21 regenerators. Returns `(label, dataset, run)`
/// closures so binaries can pick subsets.
pub mod apps {
    use pidcomm::OptLevel;
    use pidcomm_apps::bfs::{default_source, run_bfs, BfsConfig};
    use pidcomm_apps::cc::{run_cc, CcConfig};
    use pidcomm_apps::dlrm::{run_dlrm, DlrmRunConfig};
    use pidcomm_apps::gnn::{run_gnn, GnnConfig, GnnVariant};
    use pidcomm_apps::mlp::{run_mlp, MlpConfig};
    use pidcomm_apps::AppRun;
    use pidcomm_data::dlrm::DlrmConfig;
    use pidcomm_data::{rmat, CsrGraph, RmatParams};
    use pim_sim::DType;

    /// LiveJournal-like graph, scaled for the harness.
    pub fn lj() -> CsrGraph {
        rmat(15, 16, RmatParams::skewed(0x117e)).to_undirected()
    }

    /// Gowalla-like graph, scaled for the harness.
    pub fn lg() -> CsrGraph {
        rmat(13, 10, RmatParams::skewed(0x6a11a)).to_undirected()
    }

    /// PubMed-like GNN graph (2048 vertices, sparse).
    pub fn pm() -> CsrGraph {
        rmat(11, 4, RmatParams::uniform(0x9d))
    }

    /// Reddit-like GNN graph (2048 vertices, dense).
    pub fn rd() -> CsrGraph {
        rmat(11, 25, RmatParams::skewed(0x4edd17))
    }

    /// One benchmark configuration of Table III.
    pub struct AppCase {
        /// Application name (paper naming).
        pub app: &'static str,
        /// Dataset label (paper naming).
        pub dataset: &'static str,
        runner: Box<dyn Fn(usize, OptLevel) -> AppRun>,
    }

    impl AppCase {
        /// Runs the case on `pes` PEs at `opt`.
        pub fn run(&self, pes: usize, opt: OptLevel) -> AppRun {
            (self.runner)(pes, opt)
        }
    }

    /// The paper's twelve benchmark configurations (Table III / Fig. 15),
    /// at harness scale.
    pub fn all_cases() -> Vec<AppCase> {
        vec![
            AppCase {
                app: "DLRM",
                dataset: "16",
                runner: Box::new(|pes, opt| {
                    let mut w = DlrmConfig::criteo_like(16);
                    w.batch_size = 2048;
                    run_dlrm(&DlrmRunConfig {
                        workload: w,
                        pes,
                        opt,
                    })
                    .unwrap()
                }),
            },
            AppCase {
                app: "DLRM",
                dataset: "32",
                runner: Box::new(|pes, opt| {
                    let mut w = DlrmConfig::criteo_like(32);
                    w.batch_size = 2048;
                    run_dlrm(&DlrmRunConfig {
                        workload: w,
                        pes,
                        opt,
                    })
                    .unwrap()
                }),
            },
            AppCase {
                app: "GNN RS&AR",
                dataset: "PM",
                runner: Box::new(|pes, opt| gnn_case(pes, opt, GnnVariant::RsAr, pm())),
            },
            AppCase {
                app: "GNN RS&AR",
                dataset: "RD",
                runner: Box::new(|pes, opt| gnn_case(pes, opt, GnnVariant::RsAr, rd())),
            },
            AppCase {
                app: "GNN AR&AG",
                dataset: "PM",
                runner: Box::new(|pes, opt| gnn_case(pes, opt, GnnVariant::ArAg, pm())),
            },
            AppCase {
                app: "GNN AR&AG",
                dataset: "RD",
                runner: Box::new(|pes, opt| gnn_case(pes, opt, GnnVariant::ArAg, rd())),
            },
            AppCase {
                app: "BFS",
                dataset: "LJ",
                runner: Box::new(|pes, opt| {
                    let g = lj();
                    run_bfs(&BfsConfig { pes, opt }, &g, default_source(&g)).unwrap()
                }),
            },
            AppCase {
                app: "BFS",
                dataset: "LG",
                runner: Box::new(|pes, opt| {
                    let g = lg();
                    run_bfs(&BfsConfig { pes, opt }, &g, default_source(&g)).unwrap()
                }),
            },
            AppCase {
                app: "CC",
                dataset: "LJ",
                runner: Box::new(|pes, opt| run_cc(&CcConfig { pes, opt }, &lj()).unwrap()),
            },
            AppCase {
                app: "CC",
                dataset: "LG",
                runner: Box::new(|pes, opt| run_cc(&CcConfig { pes, opt }, &lg()).unwrap()),
            },
            AppCase {
                app: "MLP",
                dataset: "16k",
                runner: Box::new(|pes, opt| {
                    run_mlp(&MlpConfig {
                        features: 2048,
                        layers: 5,
                        pes,
                        opt,
                    })
                    .unwrap()
                }),
            },
            AppCase {
                app: "MLP",
                dataset: "32k",
                runner: Box::new(|pes, opt| {
                    run_mlp(&MlpConfig {
                        features: 4096,
                        layers: 5,
                        pes,
                        opt,
                    })
                    .unwrap()
                }),
            },
        ]
    }

    fn gnn_case(pes: usize, opt: OptLevel, variant: GnnVariant, graph: CsrGraph) -> AppRun {
        run_gnn(
            &GnnConfig {
                pes,
                feature_dim: 64,
                layers: 3,
                variant,
                opt,
                dtype: DType::I32,
            },
            &graph,
        )
        .unwrap()
    }
}

//! Fig. 15: application speedup of PID-Comm over the baseline stack.
//!
//! The 24 `AppCase` × `OptLevel` cells are independent simulations, so
//! they run on the work-stealing sweep pool (`--threads N`, default auto;
//! results are byte-identical at every setting).

use pidcomm_bench::sweep::{threads_flag, SweepBudget};
use pidcomm_bench::{apps, geomean, header};

fn main() {
    let cases = apps::all_cases();
    let cells = apps::base_vs_full_cells(cases.len(), 1024);
    let budget = SweepBudget::split(threads_flag(), cells.len());
    header(
        "Fig. 15",
        "application speedup, PID-Comm over baseline, 1024 PEs",
        "1.20x - 3.99x per app, geomean 1.99x",
    );
    println!(
        "{:<12} {:<4} {:>10} {:>10} {:>8}",
        "app", "ds", "base ms", "ours ms", "speedup"
    );
    let runs = apps::run_app_sweep(&cases, &cells, budget);
    let mut speedups = Vec::new();
    for (case, pair) in cases.iter().zip(runs.chunks_exact(2)) {
        let (base, ours) = (&pair[0], &pair[1]);
        let s = base.profile.total_ns() / ours.profile.total_ns();
        speedups.push(s);
        println!(
            "{:<12} {:<4} {:>10.2} {:>10.2} {:>7.2}x",
            case.app,
            case.dataset,
            base.profile.total_ns() / 1e6,
            ours.profile.total_ns() / 1e6,
            s
        );
    }
    println!("geomean speedup: {:.2}x (paper: 1.99x)", geomean(&speedups));
}

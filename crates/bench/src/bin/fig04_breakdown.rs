//! Fig. 4: execution-time breakdown of the applications on PIM-enabled
//! DIMMs with the conventional (baseline) communication stack.

use pidcomm::OptLevel;
use pidcomm_bench::{apps, header};

fn main() {
    header(
        "Fig. 4",
        "baseline app breakdown: communication dominates; inside it, modulation/host-mem/DT",
        "all five apps spend a large share in communication on the conventional stack",
    );
    println!(
        "{:<12} {:<4} {:>9} {:>7} || {:>6} {:>6} {:>6} {:>6} {:>6}",
        "app", "ds", "total ms", "comm%", "DT%", "mod%", "hmem%", "pemem%", "other%"
    );
    for case in apps::all_cases() {
        if !matches!(
            (case.app, case.dataset),
            ("DLRM", "16") | ("GNN RS&AR", "PM") | ("BFS", "LJ") | ("CC", "LJ") | ("MLP", "16k")
        ) {
            continue;
        }
        let run = case.run(1024, OptLevel::Baseline);
        let p = &run.profile;
        let comm = &p.comm;
        let ct = comm.comm_total();
        println!(
            "{:<12} {:<4} {:>9.2} {:>6.1}% || {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
            case.app,
            case.dataset,
            p.total_ns() / 1e6,
            100.0 * p.comm_ns() / p.total_ns(),
            100.0 * comm.domain_transfer / ct,
            100.0 * comm.host_modulation / ct,
            100.0 * comm.host_mem_access / ct,
            100.0 * comm.pe_mem_access / ct,
            100.0 * (comm.other + comm.pe_modulation) / ct,
        );
    }
}

// L2 bad: writes PE memory through the raw window instead of Pe::write,
// invisible to fault injection and read-after-write verification.
pub fn stage(pe: &mut Pe) {
    pe.slice_mut(0, 64).fill(0);
}

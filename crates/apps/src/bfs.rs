//! Breadth-first search on the PID-Comm framework (§VII-C).
//!
//! Vertices are range-partitioned across the PEs (1-D hypercube). Each
//! level, every PE expands its owned frontier vertices into a local
//! visited bitmap; an `AllReduce(Or)` over the bitmaps merges the frontier
//! globally, exactly as the reference PrIM implementation does. The run
//! starts with a Scatter of the adjacency partitions and ends with a
//! Gather of the per-vertex distances.
//!
//! The per-level `AllReduce(Or)` plan is built once for the whole
//! traversal (pooled in the worker's arena plan cache) and re-executed
//! every level, and the expansion is frontier-sparse: the sorted frontier
//! is sliced per PE by binary search instead of filtered per PE, and PEs
//! with no owned frontier vertices write the shared visited bitmap
//! directly — bit-identical results and modeled times.

use std::sync::Arc;

use pidcomm::{
    par_chunks, par_pes_with, BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape,
    Iteration, OptLevel, PlanCache, Primitive, RunPolicy, Supervisor,
};
use pidcomm_data::CsrGraph;
use pim_sim::{kernels, DType, DimmGeometry, FaultPlan, ReduceKind, SystemArena};

use crate::cost::{pe_kernel_ns, CpuModel};
use crate::profile::AppProfile;
use crate::{AppRun, ResilientRun};

/// BFS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Number of PEs (1-D hypercube).
    pub pes: usize,
    /// Communication optimization level.
    pub opt: OptLevel,
    /// Engine thread budget for the app's collectives: `0` = auto,
    /// `1` = the serial reference schedule. Purely an execution knob —
    /// profiles and results are byte-identical at every setting — and the
    /// sweep harness uses it to split a machine budget between concurrent
    /// app runs and per-run cluster fan-out.
    pub threads: usize,
}

/// CPU reference BFS returning distances (`u32::MAX` = unreachable) and a
/// roofline time estimate.
fn cpu_reference(graph: &CsrGraph, source: u32) -> (Vec<u32>, f64) {
    let cpu = CpuModel::xeon_5215();
    let n = graph.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    let mut edges_scanned = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in graph.neighbors(v) {
                edges_scanned += 1;
                if dist[t as usize] == u32::MAX {
                    dist[t as usize] = level;
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    // Irregular traversal: ~one random cache line per edge.
    let time = cpu.time_mixed_ns(4 * edges_scanned, (n as u64) * 8, 64 * edges_scanned);
    (dist, time)
}

/// Dataset-scale compensation for kernel charges (see EXPERIMENTS.md):
/// the harness graphs are far below LiveJournal scale, and per-level
/// expansion work shrinks faster than the visited-bitmap traffic.
const KERNEL_SCALE: f64 = 4.0;

/// Picks a well-connected source (the max-out-degree vertex).
pub fn default_source(graph: &CsrGraph) -> u32 {
    (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap_or(0)
}

/// Runs BFS over `graph` from `source` and validates distances against the
/// CPU reference.
///
/// # Errors
///
/// Propagates collective validation errors.
///
/// # Panics
///
/// Panics if validation fails.
#[allow(clippy::needless_range_loop)] // vertex ids drive bit positions
pub fn run_bfs(cfg: &BfsConfig, graph: &CsrGraph, source: u32) -> pidcomm::Result<AppRun> {
    run_bfs_in(cfg, graph, source, &mut SystemArena::new())
}

/// As [`run_bfs`], but sourcing the `PimSystem` and staging buffers from
/// `arena` (and returning them to it), so repeated runs — e.g. consecutive
/// sweep cells on one worker — reuse allocations. Results are
/// byte-identical to [`run_bfs`].
///
/// # Errors
///
/// Propagates collective validation errors.
#[allow(clippy::needless_range_loop)] // vertex ids drive bit positions
pub fn run_bfs_in(
    cfg: &BfsConfig,
    graph: &CsrGraph,
    source: u32,
    arena: &mut SystemArena,
) -> pidcomm::Result<AppRun> {
    let p = cfg.pes;
    let n = graph.num_vertices();
    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("BFS", format!("{n}v"));

    let per_pe = n.div_ceil(p);
    // Visited bitmap, padded to the AllReduce alignment (8 x P bytes).
    let bitmap_bytes = n.div_ceil(8).next_multiple_of(8 * p);

    // Scatter adjacency partitions: PE p gets the CSR rows of its owned
    // vertex range, padded to a uniform size.
    let slice_bytes = {
        let max_bytes = (0..p)
            .map(|pe| {
                let lo = pe * per_pe;
                let hi = ((pe + 1) * per_pe).min(n);
                (lo..hi)
                    .map(|v| 4 + 4 * graph.degree(v as u32))
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        max_bytes.next_multiple_of(8).max(8)
    };
    let mut adj_host = arena.bytes(p * slice_bytes);
    par_chunks(&mut adj_host, slice_bytes, cfg.threads, |pe, chunk| {
        let mut off = 0;
        let lo = pe * per_pe;
        let hi = ((pe + 1) * per_pe).min(n);
        for v in lo..hi {
            let nbrs = graph.neighbors(v as u32);
            chunk[off..off + 4].copy_from_slice(&(nbrs.len() as u32).to_le_bytes());
            off += 4;
            for &t in nbrs {
                chunk[off..off + 4].copy_from_slice(&t.to_le_bytes());
                off += 4;
            }
        }
    });
    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, 0, slice_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;
    // One-shot send: the direct path assembles rows through a cache-hot
    // per-cluster scratch as it writes, which beats materializing a
    // prepared image that would execute only once (the prepared tier
    // pays off on repeat executes — see the resilient runner's retries).
    let report = scatter_plan.execute_with_host(&mut sys, core::slice::from_ref(&adj_host))?;
    profile.record(&report);
    arena.recycle_bytes(adj_host);

    let bitmap_src = slice_bytes.next_multiple_of(64);
    let bitmap_dst = bitmap_src + bitmap_bytes.next_multiple_of(64);

    // The per-level merge plan, built once for the whole traversal (and
    // pooled across runs): BFS issues the identical AllReduce(Or) every
    // level, so planning per call was pure per-level overhead.
    let merge_plan = comm.plan_cached(
        &mut plans,
        Primitive::AllReduce,
        &mask,
        &BufferSpec::new(bitmap_src, bitmap_dst, bitmap_bytes).with_dtype(DType::U8),
        ReduceKind::Or,
    )?;

    // Host-side mirrors of the distributed state (each PE holds the same
    // global bitmap after every AllReduce).
    let set_bit = |bm: &mut [u8], v: usize| bm[v / 8] |= 1 << (v % 8);
    let mut visited = vec![0u8; bitmap_bytes];
    set_bit(&mut visited, source as usize);
    let mut merged = vec![0u8; bitmap_bytes];

    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier: Vec<u32> = vec![source];
    let mut level = 0u32;

    while !frontier.is_empty() {
        level += 1;

        // PE kernel: each PE expands its owned frontier vertices into a
        // local copy of the bitmap — a per-*worker* scratch buffer each
        // item overwrites wholesale, so high PE counts stop paying one
        // bitmap allocation per PE. The frontier is sorted (it comes out
        // of the word-ordered new-bit scan), so each PE's owned vertices
        // are one contiguous slice found by binary search instead of a
        // full-frontier filter per PE; PEs whose slice is empty
        // contribute the shared visited bitmap verbatim, skipping the
        // scratch copy entirely.
        let kernels = par_pes_with(
            sys.pes_mut(),
            cfg.threads,
            || vec![0u8; bitmap_bytes],
            |local, pid, pe| {
                // simlint: hot(begin, bfs expand)
                let lo = (pid * per_pe) as u32;
                let hi = (((pid + 1) * per_pe).min(n)) as u32;
                let begin = frontier.partition_point(|&v| v < lo);
                let end = frontier.partition_point(|&v| v < hi);
                if begin == end {
                    pe.write(bitmap_src, &visited);
                    return KERNEL_SCALE * pe_kernel_ns(bitmap_bytes as u64, 0);
                }
                local.copy_from_slice(&visited);
                let mut edges = 0u64;
                for &v in &frontier[begin..end] {
                    for &t in graph.neighbors(v) {
                        set_bit(local, t as usize);
                        edges += 1;
                    }
                }
                pe.write(bitmap_src, local);
                // Random per-edge accesses pay small-DMA granularity (~64 B).
                KERNEL_SCALE * pe_kernel_ns(48 * edges + bitmap_bytes as u64, 10 * edges)
                // simlint: hot(end)
            },
        );
        let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
        sys.run_kernel(max_kernel);
        profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);

        // Merge bitmaps globally: AllReduce with bitwise OR (u8 elements,
        // which skips domain transfer entirely, §V-C) — the warm
        // per-level plan.
        let report = merge_plan.execute(&mut sys)?;
        profile.record(&report);

        // Read the merged bitmap back (identical on every PE).
        sys.pe_mut(geom.pes().next().unwrap())
            .read_into(bitmap_dst, &mut merged);

        // New frontier = newly set bits, scanned 64 at a time (the padding
        // beyond `n` is never set, so whole words are safe).
        let mut next = Vec::new();
        kernels::for_each_new_bit(&merged, &visited, |v| {
            if v < n {
                dist[v] = level;
                next.push(v as u32);
            }
        });
        core::mem::swap(&mut visited, &mut merged);
        frontier = next;
    }

    // Gather distances of owned ranges (u32 lanes encoded straight from
    // the contiguous dist sub-range, staged in per-worker scratch).
    let dist_bytes = (per_pe * 4).next_multiple_of(8);
    let dist_off = bitmap_dst + bitmap_bytes.next_multiple_of(64);
    par_pes_with(
        sys.pes_mut(),
        cfg.threads,
        || vec![0u8; dist_bytes],
        |bytes, pid, pe| {
            // simlint: hot(begin, bfs distance encode)
            // A trailing PE's range can be empty (lo clamps to n).
            let lo = (pid * per_pe).min(n);
            let hi = ((pid + 1) * per_pe).min(n);
            bytes.fill(0xFF);
            kernels::encode_u32(&dist[lo..hi], &mut bytes[..(hi - lo) * 4]);
            pe.write(dist_off, bytes);
            // simlint: hot(end)
        },
    );
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask,
        &BufferSpec::new(dist_off, 0, dist_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;
    let (report, gathered) = gather_plan.execute_to_host(&mut sys)?;
    profile.record(&report);

    // Reassemble and validate against the CPU reference.
    let mut got = vec![u32::MAX; n];
    for pe in 0..p {
        let lo = (pe * per_pe).min(n);
        let hi = ((pe + 1) * per_pe).min(n);
        let chunk = &gathered[0][pe * dist_bytes..(pe + 1) * dist_bytes];
        kernels::decode_u32(&chunk[..(hi - lo) * 4], &mut got[lo..hi]);
    }
    let (expected, cpu_ns) = cpu_reference(graph, source);
    let validated = got == expected;
    assert!(validated, "BFS PIM distances diverge from CPU reference");
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(AppRun {
        profile,
        cpu_ns,
        validated,
    })
}

/// As [`run_bfs`], but under run-level supervision (see
/// [`Supervisor`]): collectives run verified with quarantine-aware
/// recovery, each frontier level commits through an iteration boundary,
/// and unrecoverable faults end the run with a typed outcome instead of a
/// panic. With `fault = None` the profile and outputs are bit-identical
/// to [`run_bfs`].
///
/// BFS carries no live MRAM state across levels — every level restages
/// the visited bitmap from the host mirror and the adjacency partitions
/// are written once and never touched again — so iteration checkpoints
/// are empty and a re-run simply replays the level from committed host
/// state.
///
/// # Errors
///
/// Propagates collective validation errors (never typed fault errors —
/// those are consumed by the supervisor).
#[allow(clippy::needless_range_loop)] // vertex ids drive bit positions
pub fn run_bfs_resilient(
    cfg: &BfsConfig,
    graph: &CsrGraph,
    source: u32,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
) -> pidcomm::Result<ResilientRun> {
    run_bfs_resilient_in(cfg, graph, source, fault, policy, &mut SystemArena::new())
}

/// As [`run_bfs_resilient`], sourcing allocations from `arena`.
///
/// # Errors
///
/// As [`run_bfs_resilient`].
#[allow(clippy::needless_range_loop)] // vertex ids drive bit positions
pub fn run_bfs_resilient_in(
    cfg: &BfsConfig,
    graph: &CsrGraph,
    source: u32,
    fault: Option<Arc<FaultPlan>>,
    policy: RunPolicy,
    arena: &mut SystemArena,
) -> pidcomm::Result<ResilientRun> {
    let p = cfg.pes;
    let n = graph.num_vertices();
    let geom = DimmGeometry::with_pes(p);
    let mut sys = arena.system(geom);
    if let Some(fp) = &fault {
        sys.attach_fault_plan(fp.clone());
        sys.set_verify_writes(true);
    }
    let mut plans = arena.take_extension::<PlanCache>();
    let manager = HypercubeManager::new(HypercubeShape::linear(p)?, geom)?;
    let comm = Communicator::new(manager)
        .with_opt(cfg.opt)
        .with_threads(cfg.threads);
    let mask = DimMask::all(comm.manager().shape());
    let mut profile = AppProfile::new("BFS", format!("{n}v"));
    let mut sup = Supervisor::new(p, policy);

    let per_pe = n.div_ceil(p);
    let bitmap_bytes = n.div_ceil(8).next_multiple_of(8 * p);

    let slice_bytes = {
        let max_bytes = (0..p)
            .map(|pe| {
                let lo = pe * per_pe;
                let hi = ((pe + 1) * per_pe).min(n);
                (lo..hi)
                    .map(|v| 4 + 4 * graph.degree(v as u32))
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        max_bytes.next_multiple_of(8).max(8)
    };
    let mut adj_host = arena.bytes(p * slice_bytes);
    par_chunks(&mut adj_host, slice_bytes, cfg.threads, |pe, chunk| {
        let mut off = 0;
        let lo = pe * per_pe;
        let hi = ((pe + 1) * per_pe).min(n);
        for v in lo..hi {
            let nbrs = graph.neighbors(v as u32);
            chunk[off..off + 4].copy_from_slice(&(nbrs.len() as u32).to_le_bytes());
            off += 4;
            for &t in nbrs {
                chunk[off..off + 4].copy_from_slice(&t.to_le_bytes());
                off += 4;
            }
        }
    });
    let adj_host_in = [adj_host];

    let bitmap_src = slice_bytes.next_multiple_of(64);
    let bitmap_dst = bitmap_src + bitmap_bytes.next_multiple_of(64);
    let dist_bytes = (per_pe * 4).next_multiple_of(8);
    let dist_off = bitmap_dst + bitmap_bytes.next_multiple_of(64);

    let scatter_plan = comm.plan_cached(
        &mut plans,
        Primitive::Scatter,
        &mask,
        &BufferSpec::new(0, 0, slice_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;
    let merge_plan = comm.plan_cached(
        &mut plans,
        Primitive::AllReduce,
        &mask,
        &BufferSpec::new(bitmap_src, bitmap_dst, bitmap_bytes).with_dtype(DType::U8),
        ReduceKind::Or,
    )?;
    let gather_plan = comm.plan_cached(
        &mut plans,
        Primitive::Gather,
        &mask,
        &BufferSpec::new(dist_off, 0, dist_bytes).with_dtype(DType::U32),
        ReduceKind::Sum,
    )?;

    // Host-side mirrors of the distributed state, committed only at
    // iteration boundaries.
    let set_bit = |bm: &mut [u8], v: usize| bm[v / 8] |= 1 << (v % 8);
    let mut visited = vec![0u8; bitmap_bytes];
    set_bit(&mut visited, source as usize);
    let mut merged = vec![0u8; bitmap_bytes];
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier: Vec<u32> = vec![source];
    let mut level = 0u32;

    let mut result: Option<Vec<u32>> = None;
    'run: {
        // Setup: the adjacency scatter restages everything from the host
        // buffer, so a re-run needs no checkpointed MRAM state.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            Ok(at
                .collective(&comm, sys, &scatter_plan, Some(&adj_host_in))?
                .report)
        })? {
            Iteration::Done(report) => profile.record(&report),
            Iteration::Abort(_) => break 'run,
        }

        // The level cap guards termination under heavily degraded
        // execution (corrupted merges are not guaranteed monotone); a
        // clean traversal finishes in at most `n` levels regardless.
        while !frontier.is_empty() && (level as usize) < n {
            // Each level rewrites the bitmap regions wholesale from the
            // committed host mirrors, so the checkpoint is empty; a re-run
            // replays the level exactly.
            match sup.iteration(&mut sys, arena, &[], |sys, at| {
                let kernels = par_pes_with(
                    sys.pes_mut(),
                    cfg.threads,
                    || vec![0u8; bitmap_bytes],
                    |local, pid, pe| {
                        // simlint: hot(begin, bfs expand)
                        let lo = (pid * per_pe) as u32;
                        let hi = (((pid + 1) * per_pe).min(n)) as u32;
                        let begin = frontier.partition_point(|&v| v < lo);
                        let end = frontier.partition_point(|&v| v < hi);
                        if begin == end {
                            pe.write(bitmap_src, &visited);
                            return KERNEL_SCALE * pe_kernel_ns(bitmap_bytes as u64, 0);
                        }
                        local.copy_from_slice(&visited);
                        let mut edges = 0u64;
                        for &v in &frontier[begin..end] {
                            for &t in graph.neighbors(v) {
                                set_bit(local, t as usize);
                                edges += 1;
                            }
                        }
                        pe.write(bitmap_src, local);
                        KERNEL_SCALE * pe_kernel_ns(48 * edges + bitmap_bytes as u64, 10 * edges)
                        // simlint: hot(end)
                    },
                );
                let max_kernel = kernels.into_iter().fold(0.0f64, f64::max);
                sys.run_kernel(max_kernel);
                let report = at.collective(&comm, sys, &merge_plan, None)?.report;
                // Read the merged bitmap back from the first healthy PE
                // (identical on every PE; a degraded execution skips
                // landing output on quarantined PEs, whose copy is stale).
                let read_pe = geom
                    .pes()
                    .find(|pe| !at.ledger().is_quarantined(pe.index() as u32))
                    .or_else(|| geom.pes().next())
                    .expect("system has at least one PE");
                sys.pe_mut(read_pe).read_into(bitmap_dst, &mut merged);
                Ok((max_kernel, report))
            })? {
                Iteration::Done((max_kernel, report)) => {
                    profile.record_kernel(max_kernel + sys.model().kernel_launch_ns);
                    profile.record(&report);
                }
                Iteration::Abort(_) => break 'run,
            }

            // Commit: fold the merged bitmap into the host mirrors.
            level += 1;
            let mut next = Vec::new();
            kernels::for_each_new_bit(&merged, &visited, |v| {
                if v < n {
                    dist[v] = level;
                    next.push(v as u32);
                }
            });
            core::mem::swap(&mut visited, &mut merged);
            frontier = next;
        }

        // Final gather: the distance encode restages from the committed
        // host `dist`, so the checkpoint is empty here too.
        match sup.iteration(&mut sys, arena, &[], |sys, at| {
            par_pes_with(
                sys.pes_mut(),
                cfg.threads,
                || vec![0u8; dist_bytes],
                |bytes, pid, pe| {
                    // simlint: hot(begin, bfs distance encode)
                    let lo = (pid * per_pe).min(n);
                    let hi = ((pid + 1) * per_pe).min(n);
                    bytes.fill(0xFF);
                    kernels::encode_u32(&dist[lo..hi], &mut bytes[..(hi - lo) * 4]);
                    pe.write(dist_off, bytes);
                    // simlint: hot(end)
                },
            );
            let exec = at.collective(&comm, sys, &gather_plan, None)?;
            Ok((
                exec.report,
                exec.host_out.expect("gather produces host output"),
            ))
        })? {
            Iteration::Done((report, gathered)) => {
                profile.record(&report);
                let mut got = vec![u32::MAX; n];
                for pe in 0..p {
                    let lo = (pe * per_pe).min(n);
                    let hi = ((pe + 1) * per_pe).min(n);
                    let chunk = &gathered[0][pe * dist_bytes..(pe + 1) * dist_bytes];
                    kernels::decode_u32(&chunk[..(hi - lo) * 4], &mut got[lo..hi]);
                }
                result = Some(got);
            }
            Iteration::Abort(_) => {}
        }
    }
    let [adj_host] = adj_host_in;
    arena.recycle_bytes(adj_host);

    let (expected, cpu_ns) = cpu_reference(graph, source);
    let (mismatched, validated) = match &result {
        Some(r) => {
            let mm = r.iter().zip(&expected).filter(|(a, b)| a != b).count()
                + r.len().abs_diff(expected.len());
            (mm as u64, mm == 0)
        }
        None => (expected.len() as u64, false),
    };
    let modeled_ns = sys.meter().total();
    sys.detach_fault_plan();
    sys.set_verify_writes(false);
    arena.recycle(sys);
    arena.put_extension(plans);

    Ok(ResilientRun {
        run: AppRun {
            profile,
            cpu_ns,
            validated,
        },
        outcome: sup.outcome(),
        retries: sup.retries(),
        quarantined: sup.ledger().quarantined(),
        mismatched,
        modeled_ns,
        backoff_epochs: sup.backoff_epochs(),
        checkpoint_restores: sup.checkpoint_restores(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidcomm_data::{rmat, RmatParams};

    #[test]
    fn bfs_validates_on_small_graph() {
        let graph = rmat(10, 8, RmatParams::skewed(5)).to_undirected();
        let cfg = BfsConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        };
        let run = run_bfs(&cfg, &graph, default_source(&graph)).unwrap();
        assert!(run.validated);
        assert!(run.profile.primitive_ns(pidcomm::Primitive::AllReduce) > 0.0);
    }

    #[test]
    fn bfs_baseline_pays_host_memory_where_pidcomm_does_not() {
        // At toy sizes fixed launch overheads can mask the speedup, so
        // assert the structural claim instead: the baseline stages data in
        // host memory on every AllReduce, PID-Comm's in-register modulation
        // never does.
        let graph = rmat(9, 6, RmatParams::skewed(2)).to_undirected();
        let src = default_source(&graph);
        let full = run_bfs(
            &BfsConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Full,
            },
            &graph,
            src,
        )
        .unwrap();
        let base = run_bfs(
            &BfsConfig {
                threads: 0,
                pes: 64,
                opt: OptLevel::Baseline,
            },
            &graph,
            src,
        )
        .unwrap();
        assert!(base.validated && full.validated);
        assert!(base.profile.comm.host_mem_access > 2.0 * full.profile.comm.host_mem_access);
        // ...and its in-host-memory modulation pass dwarfs PID-Comm's
        // register shuffles.
        assert!(base.profile.comm.host_modulation > 10.0 * full.profile.comm.host_modulation);
    }

    #[test]
    fn ragged_partition_leaves_trailing_pes_empty() {
        // 100 vertices over 64 PEs: per_pe = 2, so PEs 50.. own empty
        // ranges (lo clamps past n) — they must stage pure padding, not
        // panic.
        let edges: Vec<(u32, u32)> = (0..99).map(|v| (v, v + 1)).collect();
        let graph = CsrGraph::from_edges(100, edges).to_undirected();
        let cfg = BfsConfig {
            threads: 0,
            pes: 64,
            opt: OptLevel::Full,
        };
        let run = run_bfs(&cfg, &graph, 0).unwrap();
        assert!(run.validated);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // A graph with two separate components; BFS from 0 must leave the
        // other component at u32::MAX on both CPU and PIM.
        let graph = CsrGraph::from_edges(32, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
        let cfg = BfsConfig {
            threads: 0,
            pes: 8,
            opt: OptLevel::Full,
        };
        let run = run_bfs(&cfg, &graph, 0).unwrap();
        assert!(run.validated);
    }
}

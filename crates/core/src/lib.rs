//! # pidcomm — PID-Comm collective communication for PIM-enabled DIMMs
//!
//! A Rust reproduction of *PID-Comm: A Fast and Flexible Collective
//! Communication Framework for Commodity Processing-in-DIMM Devices*
//! (ISCA 2024), running on the byte-accurate [`pim_sim`] substrate.
//!
//! ## The model
//!
//! PEs are abstracted as a user-defined multi-dimensional virtual
//! [`HypercubeShape`] mapped onto the DRAM hierarchy in chip → bank → rank
//! → channel order. Each collective call selects communication dimensions
//! with a [`DimMask`]; every slice of the hypercube along those dimensions
//! becomes one communication group, and all groups run simultaneously
//! (multi-instance invocation).
//!
//! ## The library
//!
//! [`Communicator`] provides the paper's eight primitives — AlltoAll,
//! ReduceScatter, AllReduce, AllGather, Scatter, Gather, Reduce and
//! Broadcast — with the full optimization stack (PE-assisted reordering,
//! in-register modulation and cross-domain modulation) as well as the
//! conventional baseline and intermediate levels for ablation
//! ([`OptLevel`]).
//!
//! ## Quick start
//!
//! ```
//! use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeManager, HypercubeShape};
//! use pim_sim::{DimmGeometry, PimSystem};
//!
//! // 64 PEs as an 8x8 hypercube.
//! let geom = DimmGeometry::single_rank();
//! let mut sys = PimSystem::new(geom);
//! let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8])?, geom)?;
//! let comm = Communicator::new(manager);
//!
//! // Every PE sends 8 bytes to each of the 8 nodes in its x-row.
//! for pe in geom.pes() {
//!     sys.pe_mut(pe).write(0, &[pe.0 as u8; 64]);
//! }
//! let report = comm.all_to_all(&mut sys, &DimMask::parse("10")?, &BufferSpec::new(0, 64, 64))?;
//! println!("AlltoAll took {:.1} us", report.time_ns() / 1e3);
//! # Ok::<(), pidcomm::Error>(())
//! ```

pub mod comm;
pub mod config;
pub mod engine;
pub mod error;
pub mod hypercube;
pub mod multihost;
pub mod oracle;
pub mod report;
pub mod topology;

pub use comm::Communicator;
pub use config::{technique_applies, OptLevel, Primitive, Technique};
pub use engine::BufferSpec;
pub use error::{Error, Result};
pub use hypercube::{DimMask, HypercubeManager, HypercubeShape};
pub use multihost::{LinkModel, MultiHost, MultiHostReport};
pub use report::CommReport;
pub use topology::{topology_all_reduce, Topology};

// Re-export the substrate types that appear in this crate's public API.
pub use pim_sim::{DType, ReduceKind};

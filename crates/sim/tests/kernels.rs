//! Seeded property suite for `pim_sim::kernels`: every blocked typed-lane
//! kernel is pinned byte-for-byte to its per-element scalar oracle
//! (`kernels::reference`) over deterministic splitmix64 inputs, across
//! lengths that cover full 64-byte blocks, ragged tails, sub-block sizes
//! and both combined — plus the `Pe` typed-view entry points over
//! page-straddling MRAM regions.
//!
//! The oracles are the loop shapes the applications ran before the
//! kernel library existed, so agreement here is what lets the apps swap
//! their inner loops without a bit of modeled or functional drift.

use pim_sim::kernels::{self, reference as oracle};
use pim_sim::pe::{Pe, PAGE_BYTES};
use pim_sim::testgen::SplitMix64;
use pim_sim::DType;

/// Element counts covering: empty, single, sub-block, one block exactly
/// (16 i32 / 8 u64 / 64 i8 lanes), block ± 1 and several blocks + tail.
const LENS: [usize; 10] = [0, 1, 3, 8, 15, 16, 17, 64, 100, 257];

fn i32s(g: &mut SplitMix64, n: usize) -> Vec<i32> {
    (0..n).map(|_| g.next_u64() as i32).collect()
}

fn u32s(g: &mut SplitMix64, n: usize) -> Vec<u32> {
    (0..n).map(|_| g.next_u64() as u32).collect()
}

fn u64s(g: &mut SplitMix64, n: usize) -> Vec<u64> {
    (0..n).map(|_| g.next_u64()).collect()
}

const NARROW: [DType; 3] = [DType::I8, DType::I16, DType::I32];

#[test]
fn codecs_match_scalar_oracles_at_every_length() {
    let mut g = SplitMix64::new(0x1a7e5);
    for n in LENS {
        let bytes = g.bytes(n * 4);
        let mut fast = vec![0i32; n];
        let mut slow = vec![0i32; n];
        kernels::decode_i32(&bytes, &mut fast);
        oracle::decode_i32_scalar_ref(&bytes, &mut slow);
        assert_eq!(fast, slow, "decode_i32 x{n}");

        let vals = i32s(&mut g, n);
        let mut fast = vec![0u8; n * 4];
        let mut slow = vec![0u8; n * 4];
        kernels::encode_i32(&vals, &mut fast);
        oracle::encode_i32_scalar_ref(&vals, &mut slow);
        assert_eq!(fast, slow, "encode_i32 x{n}");

        let mut fast = vec![0u32; n];
        let mut slow = vec![0u32; n];
        kernels::decode_u32(&bytes, &mut fast);
        oracle::decode_u32_scalar_ref(&bytes, &mut slow);
        assert_eq!(fast, slow, "decode_u32 x{n}");

        let uvals = u32s(&mut g, n);
        let mut fast = vec![0u8; n * 4];
        let mut slow = vec![0u8; n * 4];
        kernels::encode_u32(&uvals, &mut fast);
        oracle::encode_u32_scalar_ref(&uvals, &mut slow);
        assert_eq!(fast, slow, "encode_u32 x{n}");

        let wide = g.bytes(n * 8);
        let mut fast = vec![0u64; n];
        let mut slow = vec![0u64; n];
        kernels::decode_u64(&wide, &mut fast);
        oracle::decode_u64_scalar_ref(&wide, &mut slow);
        assert_eq!(fast, slow, "decode_u64 x{n}");

        let wvals = u64s(&mut g, n);
        let mut fast = vec![0u8; n * 8];
        let mut slow = vec![0u8; n * 8];
        kernels::encode_u64(&wvals, &mut fast);
        oracle::encode_u64_scalar_ref(&wvals, &mut slow);
        assert_eq!(fast, slow, "encode_u64 x{n}");
    }
}

#[test]
fn narrow_codecs_match_scalar_oracles() {
    let mut g = SplitMix64::new(0x5ed7);
    for dt in NARROW {
        let w = dt.size_bytes();
        for n in LENS {
            let bytes = g.bytes(n * w);
            let mut fast = vec![0i32; n];
            let mut slow = vec![0i32; n];
            kernels::decode_sext(dt, &bytes, &mut fast);
            oracle::decode_sext_scalar_ref(dt, &bytes, &mut slow);
            assert_eq!(fast, slow, "decode_sext {dt} x{n}");

            // Truncating encode accepts arbitrary i32s (only the low
            // bytes survive), so feed it unwrapped values too.
            let vals = i32s(&mut g, n);
            let mut fast = vec![0u8; n * w];
            let mut slow = vec![0u8; n * w];
            kernels::encode_trunc(dt, &vals, &mut fast);
            oracle::encode_trunc_scalar_ref(dt, &vals, &mut slow);
            assert_eq!(fast, slow, "encode_trunc {dt} x{n}");

            // decode(encode(wrapped)) is the identity on wrapped values,
            // and encode(decode(bytes)) is the identity on bytes — the
            // property the GNN transpose's pure-byte `copy_rows` rewrite
            // rests on.
            let mut round = vec![0i32; n];
            kernels::decode_sext(dt, &fast, &mut round);
            let mut back = vec![0u8; n * w];
            kernels::encode_trunc(dt, &round, &mut back);
            assert_eq!(back, fast, "byte roundtrip {dt} x{n}");
        }
    }
}

#[test]
fn accumulate_kernels_match_scalar_oracles() {
    let mut g = SplitMix64::new(0xacc);
    for n in LENS {
        for x in [0i32, 1, -3, 0x7335_1234, i32::MIN] {
            let acc0 = i32s(&mut g, n);
            let xs = i32s(&mut g, n);

            let mut fast = acc0.clone();
            let mut slow = acc0.clone();
            kernels::axpy_i32(&mut fast, x, &xs);
            oracle::axpy_i32_scalar_ref(&mut slow, x, &xs);
            assert_eq!(fast, slow, "axpy_i32 x{n} a={x}");

            let mut bytes = vec![0u8; n * 4];
            kernels::encode_i32(&xs, &mut bytes);
            let mut fast = acc0.clone();
            let mut slow = acc0.clone();
            kernels::axpy_i32_bytes(&mut fast, x, &bytes);
            oracle::axpy_i32_bytes_scalar_ref(&mut slow, x, &bytes);
            assert_eq!(fast, slow, "axpy_i32_bytes x{n} a={x}");
            // The fused form must equal decode-then-axpy.
            let mut unfused = acc0.clone();
            kernels::axpy_i32(&mut unfused, x, &xs);
            assert_eq!(fast, unfused, "fused axpy x{n} a={x}");

            for dt in NARROW {
                let mut fast = acc0.clone();
                let mut slow = acc0.clone();
                kernels::axpy_wrap(dt, &mut fast, x, &xs);
                oracle::axpy_wrap_scalar_ref(dt, &mut slow, x, &xs);
                assert_eq!(fast, slow, "axpy_wrap {dt} x{n} a={x}");

                let mut fast = acc0.clone();
                let mut slow = acc0.clone();
                kernels::add_wrap(dt, &mut fast, &xs);
                oracle::add_wrap_scalar_ref(dt, &mut slow, &xs);
                assert_eq!(fast, slow, "add_wrap {dt} x{n}");
            }
        }
    }
}

#[test]
fn map_kernels_match_scalar_oracles() {
    let mut g = SplitMix64::new(0xf1a9);
    for n in LENS {
        let vals = i32s(&mut g, n);
        let mut fast = vals.clone();
        let mut slow = vals.clone();
        kernels::relu_i32(&mut fast);
        oracle::relu_i32_scalar_ref(&mut slow);
        assert_eq!(fast, slow, "relu x{n}");

        let src = i32s(&mut g, n);
        let mut fast = vals.clone();
        let mut slow = vals;
        kernels::max_i32(&mut fast, &src);
        oracle::max_i32_scalar_ref(&mut slow, &src);
        assert_eq!(fast, slow, "max x{n}");
    }
}

#[test]
fn bitmap_kernels_match_scalar_oracles() {
    let mut g = SplitMix64::new(0xb17);
    // Byte lengths: ragged tails exercise both the 64-byte OR blocks and
    // the u64 word scan's remainder path.
    for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 200, 1024] {
        let acc0 = g.bytes(n);
        let src = g.bytes(n);
        let mut fast = acc0.clone();
        let mut slow = acc0.clone();
        kernels::bitmap_or(&mut fast, &src);
        oracle::bitmap_or_scalar_ref(&mut slow, &src);
        assert_eq!(fast, slow, "bitmap_or x{n}");

        // New-bit scan: `fast` (the OR) vs the old bitmap must visit the
        // same positions in the same ascending order as the per-bit scan.
        let mut got = Vec::new();
        let mut want = Vec::new();
        kernels::for_each_new_bit(&fast, &acc0, |v| got.push(v));
        oracle::for_each_new_bit_scalar_ref(&fast, &acc0, |v| want.push(v));
        assert_eq!(got, want, "for_each_new_bit x{n}");
        assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending order x{n}");
    }
}

#[test]
fn copy_rows_matches_scalar_oracle() {
    let mut g = SplitMix64::new(0xc0b);
    for (rows, row_bytes, src_pitch, dst_pitch, src_off, dst_off) in [
        (0usize, 8usize, 8usize, 8usize, 0usize, 0usize),
        (4, 0, 3, 5, 1, 2),
        (1, 5, 5, 5, 0, 3),
        (7, 12, 20, 12, 4, 0),   // gather: strided -> packed
        (7, 12, 12, 40, 0, 16),  // scatter: packed -> strided
        (16, 64, 96, 64, 32, 0), // block-sized rows
        (5, 17, 17, 33, 2, 1),   // ragged everything
    ] {
        let src = g.bytes(src_off + rows.saturating_sub(1) * src_pitch + row_bytes + 8);
        let dst0 = g.bytes(dst_off + rows.saturating_sub(1) * dst_pitch + row_bytes + 8);
        let mut fast = dst0.clone();
        let mut slow = dst0;
        kernels::copy_rows(
            &mut fast, dst_off, dst_pitch, &src, src_off, src_pitch, row_bytes, rows,
        );
        oracle::copy_rows_scalar_ref(
            &mut slow, dst_off, dst_pitch, &src, src_off, src_pitch, row_bytes, rows,
        );
        assert_eq!(fast, slow, "copy_rows {rows}x{row_bytes}");
    }
}

#[test]
fn pe_typed_views_roundtrip_across_page_boundaries() {
    let mut g = SplitMix64::new(0x9e9e);
    // Offsets placed so the typed runs straddle page boundaries, start
    // unaligned, and span previously-untouched MRAM.
    for offset in [
        0usize,
        4,
        60,
        PAGE_BYTES - 4,
        PAGE_BYTES - 100,
        3 * PAGE_BYTES - 8,
    ] {
        for n in [1usize, 16, 17, (PAGE_BYTES / 4) + 9] {
            let vals = i32s(&mut g, n);
            let mut pe = Pe::new();
            pe.write_i32s(offset, &vals);
            let mut back = vec![0i32; n];
            pe.read_i32s(offset, &mut back);
            assert_eq!(back, vals, "i32 roundtrip at {offset} x{n}");
            // The bytes in MRAM are the scalar encoding.
            let mut expect = vec![0u8; n * 4];
            oracle::encode_i32_scalar_ref(&vals, &mut expect);
            assert_eq!(pe.peek(offset, n * 4), expect, "bytes at {offset} x{n}");

            let uvals = u32s(&mut g, n);
            let mut pe = Pe::new();
            pe.write_u32s(offset, &uvals);
            let mut back = vec![0u32; n];
            pe.read_u32s(offset, &mut back);
            assert_eq!(back, uvals, "u32 roundtrip at {offset} x{n}");

            for dt in NARROW {
                let raw = i32s(&mut g, n);
                let mut pe = Pe::new();
                pe.write_trunc(offset, dt, &raw);
                let mut got = vec![0i32; n];
                pe.read_sext(offset, dt, &mut got);
                let mut bytes = vec![0u8; n * dt.size_bytes()];
                oracle::encode_trunc_scalar_ref(dt, &raw, &mut bytes);
                let mut want = vec![0i32; n];
                oracle::decode_sext_scalar_ref(dt, &bytes, &mut want);
                assert_eq!(got, want, "{dt} view at {offset} x{n}");
            }
        }
    }
}

#[test]
fn pe_typed_reads_of_untouched_mram_are_zero() {
    let mut pe = Pe::new();
    // A read that spans one materialized island and the gaps around it.
    pe.write_i32s(PAGE_BYTES, &[7, -7]);
    let mut out = vec![1i32; 16];
    pe.read_i32s(PAGE_BYTES - 16, &mut out);
    let mut want = vec![0i32; 16];
    want[4] = 7;
    want[5] = -7;
    assert_eq!(out, want);
}

//! Typed-lane kernel library for the single-PE hot loops of the benchmark
//! applications.
//!
//! After the host-kernel executor parallelized the apps' per-PE loops
//! *across* PEs, the remaining serial wall is what happens *inside* one
//! work item: per-element `i32::from_le_bytes` decode loops, scalar
//! accumulate / pool / ReLU passes and per-cell `Vec` churn. This module
//! gives those loops the same treatment the PR 2 `reduce_bytes` rewrite
//! gave the collective engine's reductions — safe, allocation-free kernels
//! over contiguous typed lanes, shaped so LLVM autovectorizes them.
//!
//! # The autovectorization contract
//!
//! Every kernel processes its bulk in **64-byte blocks** (one cache line,
//! and one PIM burst — the natural granule of everything in this
//! simulator) decoded into fixed-width native-typed lane arrays:
//!
//! * the per-lane loops have **compile-time trip counts** (`for i in 0..L`
//!   with `L` a constant), so LLVM fully unrolls them and lowers the lane
//!   array to vector registers — no runtime bound checks survive;
//! * lane arrays live on the stack and never escape, so nothing aliases
//!   and the loads/stores batch into wide moves;
//! * a scalar tail handles the ragged remainder, which keeps every kernel
//!   correct at **any** length and alignment (the property suite pins
//!   this against the scalar oracles below).
//!
//! **Why not `std::simd`?** Portable SIMD is still nightly-only and this
//! repository pins a stable toolchain in an offline container; more
//! importantly, the chunked-lane shape already gets the same codegen —
//! the PR 2 `reduce_bytes` rewrite measured 2–7x from exactly this
//! pattern, with zero `unsafe` and zero feature gates. The contract is
//! *shape*, not intrinsics.
//!
//! # Scalar oracles
//!
//! [`reference`] holds a per-element scalar twin of every kernel — the
//! loop shape the applications used before this module existed. They are
//! the semantic source of truth: `crates/sim/tests/kernels.rs` pins every
//! kernel to its oracle byte-for-byte over seeded inputs at many lengths
//! and alignments, and `benches/primitives.rs` times each pair so the
//! speedup stays visible in the trajectory. All arithmetic is wrapping
//! (like the PEs' fixed-width ALUs), so lane-blocked accumulation orders
//! are *bit-identical* to the sequential oracles, not merely close.
//!
//! Zero-copy entry points over PE memory live on [`crate::pe::Pe`]
//! (`read_i32s` / `write_i32s` / `read_sext` / `write_trunc`): decodes
//! borrow the materialized segment directly and encodes write straight
//! into MRAM, so staging `Vec`s disappear from the apps' inner loops.

use crate::dtype::DType;

/// Lane count for 4-byte elements: one 64-byte block.
const L32: usize = 16;

/// Lane count for 8-byte elements: one 64-byte block.
const L64: usize = 8;

// Everything from here to the `reference` module runs once per PE per
// app iteration; simlint's hot-alloc lint keeps the region allocation-free
// (the PR 4 contract). Scratch belongs in callers' par_pes_with init.
// simlint: hot(begin, typed-lane kernels)
macro_rules! codec {
    ($decode:ident, $encode:ident, $ty:ty, $lanes:expr, $w:expr) => {
        /// Decodes little-endian elements from `src` into `dst`, one
        /// 64-byte block (a full lane array) at a time.
        ///
        /// # Panics
        ///
        /// Panics if `src.len() != dst.len() * size_of::<element>()`.
        pub fn $decode(src: &[u8], dst: &mut [$ty]) {
            const W: usize = $w;
            const L: usize = $lanes;
            assert_eq!(src.len(), dst.len() * W, "decode length mismatch");
            let mut sb = src.chunks_exact(W * L);
            let mut db = dst.chunks_exact_mut(L);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..L {
                    d[i] = <$ty>::from_le_bytes(s[i * W..(i + 1) * W].try_into().unwrap());
                }
            }
            for (s, d) in sb
                .remainder()
                .chunks_exact(W)
                .zip(db.into_remainder().iter_mut())
            {
                *d = <$ty>::from_le_bytes(s.try_into().unwrap());
            }
        }

        /// Encodes `src` into little-endian bytes in `dst`, one 64-byte
        /// block at a time.
        ///
        /// # Panics
        ///
        /// Panics if `dst.len() != src.len() * size_of::<element>()`.
        pub fn $encode(src: &[$ty], dst: &mut [u8]) {
            const W: usize = $w;
            const L: usize = $lanes;
            assert_eq!(dst.len(), src.len() * W, "encode length mismatch");
            let mut sb = src.chunks_exact(L);
            let mut db = dst.chunks_exact_mut(W * L);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..L {
                    d[i * W..(i + 1) * W].copy_from_slice(&s[i].to_le_bytes());
                }
            }
            for (s, d) in sb
                .remainder()
                .iter()
                .zip(db.into_remainder().chunks_exact_mut(W))
            {
                d.copy_from_slice(&s.to_le_bytes());
            }
        }
    };
}

codec!(decode_i32, encode_i32, i32, L32, 4);
codec!(decode_u32, encode_u32, u32, L32, 4);
codec!(decode_u64, encode_u64, u64, L64, 8);

/// Sign-extending decode of 1/2/4-byte little-endian elements into `i32`
/// — the typed view the GNN uses for its word-bit sensitivity study
/// (narrow elements behave like fixed-width PE registers).
///
/// # Panics
///
/// Panics if `dtype` is wider than 4 bytes or if
/// `src.len() != dst.len() * dtype.size_bytes()`.
pub fn decode_sext(dtype: DType, src: &[u8], dst: &mut [i32]) {
    match dtype.size_bytes() {
        1 => {
            assert_eq!(src.len(), dst.len(), "decode length mismatch");
            let mut sb = src.chunks_exact(64);
            let mut db = dst.chunks_exact_mut(64);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..64 {
                    d[i] = s[i] as i8 as i32;
                }
            }
            for (s, d) in sb.remainder().iter().zip(db.into_remainder()) {
                *d = *s as i8 as i32;
            }
        }
        2 => {
            assert_eq!(src.len(), dst.len() * 2, "decode length mismatch");
            let mut sb = src.chunks_exact(64);
            let mut db = dst.chunks_exact_mut(32);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..32 {
                    d[i] = i16::from_le_bytes(s[i * 2..(i + 1) * 2].try_into().unwrap()) as i32;
                }
            }
            for (s, d) in sb
                .remainder()
                .chunks_exact(2)
                .zip(db.into_remainder().iter_mut())
            {
                *d = i16::from_le_bytes(s.try_into().unwrap()) as i32;
            }
        }
        4 => decode_i32(src, dst),
        w => panic!("decode_sext supports 1/2/4-byte elements, got {w}"),
    }
}

/// Truncating encode of `i32` values to 1/2/4-byte little-endian elements
/// (the low bytes, exactly what storing through a narrow PE register
/// would keep). Inverse of [`decode_sext`] for values that fit the width.
///
/// # Panics
///
/// Panics if `dtype` is wider than 4 bytes or if
/// `dst.len() != src.len() * dtype.size_bytes()`.
pub fn encode_trunc(dtype: DType, src: &[i32], dst: &mut [u8]) {
    match dtype.size_bytes() {
        1 => {
            assert_eq!(dst.len(), src.len(), "encode length mismatch");
            let mut sb = src.chunks_exact(64);
            let mut db = dst.chunks_exact_mut(64);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..64 {
                    d[i] = s[i] as u8;
                }
            }
            for (s, d) in sb.remainder().iter().zip(db.into_remainder()) {
                *d = *s as u8;
            }
        }
        2 => {
            assert_eq!(dst.len(), src.len() * 2, "encode length mismatch");
            let mut sb = src.chunks_exact(32);
            let mut db = dst.chunks_exact_mut(64);
            for (s, d) in sb.by_ref().zip(db.by_ref()) {
                for i in 0..32 {
                    d[i * 2..(i + 1) * 2].copy_from_slice(&(s[i] as i16).to_le_bytes());
                }
            }
            for (s, d) in sb
                .remainder()
                .iter()
                .zip(db.into_remainder().chunks_exact_mut(2))
            {
                d.copy_from_slice(&(*s as i16).to_le_bytes());
            }
        }
        4 => encode_i32(src, dst),
        w => panic!("encode_trunc supports 1/2/4-byte elements, got {w}"),
    }
}

/// Wrapping partial-vector accumulate `acc[i] += x * xs[i]` — one column
/// step of a blocked gemv (the MLP layer kernel runs one call per owned
/// nonzero activation, over the full `f`-length partial vector).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy_i32(acc: &mut [i32], x: i32, xs: &[i32]) {
    assert_eq!(acc.len(), xs.len(), "axpy length mismatch");
    let mut ab = acc.chunks_exact_mut(L32);
    let mut sb = xs.chunks_exact(L32);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        for i in 0..L32 {
            a[i] = a[i].wrapping_add(x.wrapping_mul(s[i]));
        }
    }
    for (a, s) in ab.into_remainder().iter_mut().zip(sb.remainder()) {
        *a = a.wrapping_add(x.wrapping_mul(*s));
    }
}

/// As [`axpy_i32`], fused with the little-endian decode of the column:
/// `acc[i] += x * le_i32(src[4i..])`. This is the MLP inner loop run
/// directly over the weight column bytes staged in PE MRAM — no
/// intermediate decode buffer.
///
/// # Panics
///
/// Panics if `src.len() != acc.len() * 4`.
pub fn axpy_i32_bytes(acc: &mut [i32], x: i32, src: &[u8]) {
    assert_eq!(src.len(), acc.len() * 4, "axpy length mismatch");
    let mut ab = acc.chunks_exact_mut(L32);
    let mut sb = src.chunks_exact(64);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        let mut sv = [0i32; L32];
        for i in 0..L32 {
            sv[i] = i32::from_le_bytes(s[i * 4..(i + 1) * 4].try_into().unwrap());
        }
        for i in 0..L32 {
            a[i] = a[i].wrapping_add(x.wrapping_mul(sv[i]));
        }
    }
    for (a, s) in ab
        .into_remainder()
        .iter_mut()
        .zip(sb.remainder().chunks_exact(4))
    {
        *a = a.wrapping_add(x.wrapping_mul(i32::from_le_bytes(s.try_into().unwrap())));
    }
}

/// Wraps `v` to the low `dtype` bytes, sign-extended — the fixed-width PE
/// register semantics of the GNN's narrow-element arithmetic. `SHIFT` is
/// `32 - 8 * width`, so width 4 is the identity.
#[inline(always)]
fn wrap32<const SHIFT: u32>(v: i32) -> i32 {
    (v << SHIFT) >> SHIFT
}

macro_rules! width_dispatch {
    ($dtype:expr, $call:ident ( $($arg:expr),* )) => {
        match $dtype.size_bytes() {
            1 => $call::<24>($($arg),*),
            2 => $call::<16>($($arg),*),
            4 => $call::<0>($($arg),*),
            w => panic!("typed-lane kernels support 1/2/4-byte elements, got {w}"),
        }
    };
}

fn add_wrap_impl<const SHIFT: u32>(acc: &mut [i32], src: &[i32]) {
    let mut ab = acc.chunks_exact_mut(L32);
    let mut sb = src.chunks_exact(L32);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        for i in 0..L32 {
            a[i] = wrap32::<SHIFT>(a[i].wrapping_add(s[i]));
        }
    }
    for (a, s) in ab.into_remainder().iter_mut().zip(sb.remainder()) {
        *a = wrap32::<SHIFT>(a.wrapping_add(*s));
    }
}

/// Element-wise wrapping accumulate at the declared element width:
/// `acc[i] = wrap(acc[i] + src[i])` — the segment-sum step of the GNN
/// aggregation (`partial.row(u) += F.row(v)`) and of any row-pooling
/// loop.
///
/// # Panics
///
/// Panics if the lengths differ or `dtype` is wider than 4 bytes.
pub fn add_wrap(dtype: DType, acc: &mut [i32], src: &[i32]) {
    assert_eq!(acc.len(), src.len(), "add_wrap length mismatch");
    width_dispatch!(dtype, add_wrap_impl(acc, src))
}

fn axpy_wrap_impl<const SHIFT: u32>(acc: &mut [i32], x: i32, xs: &[i32]) {
    let mut ab = acc.chunks_exact_mut(L32);
    let mut sb = xs.chunks_exact(L32);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        for i in 0..L32 {
            a[i] = wrap32::<SHIFT>(a[i].wrapping_add(x.wrapping_mul(s[i])));
        }
    }
    for (a, s) in ab.into_remainder().iter_mut().zip(sb.remainder()) {
        *a = wrap32::<SHIFT>(a.wrapping_add(x.wrapping_mul(*s)));
    }
}

/// [`axpy_i32`] at the declared element width, wrapping every
/// multiply-accumulate to it: `acc[i] = wrap(acc[i] + x * xs[i])` — one
/// row step of the GNN combination gemm.
///
/// # Panics
///
/// Panics if the lengths differ or `dtype` is wider than 4 bytes.
pub fn axpy_wrap(dtype: DType, acc: &mut [i32], x: i32, xs: &[i32]) {
    assert_eq!(acc.len(), xs.len(), "axpy_wrap length mismatch");
    width_dispatch!(dtype, axpy_wrap_impl(acc, x, xs))
}

/// Element-wise ReLU in place: `xs[i] = max(xs[i], 0)`.
pub fn relu_i32(xs: &mut [i32]) {
    let mut xb = xs.chunks_exact_mut(L32);
    for x in xb.by_ref() {
        for v in x.iter_mut() {
            *v = (*v).max(0);
        }
    }
    for x in xb.into_remainder() {
        *x = (*x).max(0);
    }
}

/// Element-wise max pooling step: `acc[i] = max(acc[i], src[i])`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn max_i32(acc: &mut [i32], src: &[i32]) {
    assert_eq!(acc.len(), src.len(), "max length mismatch");
    let mut ab = acc.chunks_exact_mut(L32);
    let mut sb = src.chunks_exact(L32);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        for i in 0..L32 {
            a[i] = a[i].max(s[i]);
        }
    }
    for (a, s) in ab.into_remainder().iter_mut().zip(sb.remainder()) {
        *a = (*a).max(*s);
    }
}

/// Bitwise OR of two bitmaps: `acc[i] |= src[i]` — the frontier-merge
/// step of BFS/CC-style bitmap algorithms.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn bitmap_or(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "bitmap length mismatch");
    let mut ab = acc.chunks_exact_mut(64);
    let mut sb = src.chunks_exact(64);
    for (a, s) in ab.by_ref().zip(sb.by_ref()) {
        for i in 0..64 {
            a[i] |= s[i];
        }
    }
    for (a, s) in ab.into_remainder().iter_mut().zip(sb.remainder()) {
        *a |= *s;
    }
}

/// Visits, in ascending order, every bit position set in `news` but not
/// in `olds` — the frontier-expansion scan of BFS (newly visited
/// vertices). Bit `v` lives at `bitmap[v / 8] & (1 << (v % 8))`, matching
/// the apps' layout. The bulk runs 64 bits at a time on `u64` words with
/// `trailing_zeros`, so a mostly-unchanged bitmap costs one compare per
/// word instead of one per bit.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn for_each_new_bit(news: &[u8], olds: &[u8], mut f: impl FnMut(usize)) {
    assert_eq!(news.len(), olds.len(), "bitmap length mismatch");
    let mut nb = news.chunks_exact(8);
    let mut ob = olds.chunks_exact(8);
    let mut base = 0usize;
    for (n, o) in nb.by_ref().zip(ob.by_ref()) {
        let mut diff =
            u64::from_le_bytes(n.try_into().unwrap()) & !u64::from_le_bytes(o.try_into().unwrap());
        while diff != 0 {
            f(base + diff.trailing_zeros() as usize);
            diff &= diff - 1;
        }
        base += 64;
    }
    for (i, (n, o)) in nb.remainder().iter().zip(ob.remainder()).enumerate() {
        let mut diff = n & !o;
        while diff != 0 {
            f(base + i * 8 + diff.trailing_zeros() as usize);
            diff &= diff.wrapping_sub(1);
        }
    }
}

/// Copies `rows` rows of `row_bytes` bytes from a strided layout in `src`
/// (consecutive rows `src_pitch` bytes apart, starting at `src_off`) to a
/// strided layout in `dst` — the typed scatter/gather between staged
/// row-major blocks and column-block-major collective payloads (the GNN
/// AllGather transpose). Each row is one `copy_from_slice`.
///
/// # Panics
///
/// Panics if a pitch is smaller than the row or either layout overruns
/// its slice.
#[allow(clippy::too_many_arguments)] // two (slice, offset, pitch) views + a row shape
pub fn copy_rows(
    dst: &mut [u8],
    dst_off: usize,
    dst_pitch: usize,
    src: &[u8],
    src_off: usize,
    src_pitch: usize,
    row_bytes: usize,
    rows: usize,
) {
    if rows == 0 || row_bytes == 0 {
        return;
    }
    assert!(
        dst_pitch >= row_bytes && src_pitch >= row_bytes,
        "row pitch smaller than the row"
    );
    assert!(
        src_off + (rows - 1) * src_pitch + row_bytes <= src.len(),
        "source rows overrun the slice"
    );
    assert!(
        dst_off + (rows - 1) * dst_pitch + row_bytes <= dst.len(),
        "destination rows overrun the slice"
    );
    for r in 0..rows {
        let s = src_off + r * src_pitch;
        let d = dst_off + r * dst_pitch;
        dst[d..d + row_bytes].copy_from_slice(&src[s..s + row_bytes]);
    }
}

// simlint: hot(end)

/// Per-element scalar twins of every kernel — the loop shapes the
/// applications ran before this module existed. They are the oracles the
/// property suite (`crates/sim/tests/kernels.rs`) pins the blocked
/// kernels against and the baselines the microbenches
/// (`benches/primitives.rs`) measure them over; they are not meant to be
/// called from production paths.
pub mod reference {
    use crate::dtype::DType;

    /// Scalar twin of [`super::decode_i32`].
    pub fn decode_i32_scalar_ref(src: &[u8], dst: &mut [i32]) {
        assert_eq!(src.len(), dst.len() * 4, "decode length mismatch");
        for (s, d) in src.chunks_exact(4).zip(dst) {
            *d = i32::from_le_bytes(s.try_into().unwrap());
        }
    }

    /// Scalar twin of [`super::encode_i32`] (the apps'
    /// `flat_map(to_le_bytes).collect` shape, without the allocation).
    pub fn encode_i32_scalar_ref(src: &[i32], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len() * 4, "encode length mismatch");
        for (s, d) in src.iter().zip(dst.chunks_exact_mut(4)) {
            d.copy_from_slice(&s.to_le_bytes());
        }
    }

    /// Scalar twin of [`super::decode_u32`].
    pub fn decode_u32_scalar_ref(src: &[u8], dst: &mut [u32]) {
        assert_eq!(src.len(), dst.len() * 4, "decode length mismatch");
        for (s, d) in src.chunks_exact(4).zip(dst) {
            *d = u32::from_le_bytes(s.try_into().unwrap());
        }
    }

    /// Scalar twin of [`super::encode_u32`].
    pub fn encode_u32_scalar_ref(src: &[u32], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len() * 4, "encode length mismatch");
        for (s, d) in src.iter().zip(dst.chunks_exact_mut(4)) {
            d.copy_from_slice(&s.to_le_bytes());
        }
    }

    /// Scalar twin of [`super::decode_u64`].
    pub fn decode_u64_scalar_ref(src: &[u8], dst: &mut [u64]) {
        assert_eq!(src.len(), dst.len() * 8, "decode length mismatch");
        for (s, d) in src.chunks_exact(8).zip(dst) {
            *d = u64::from_le_bytes(s.try_into().unwrap());
        }
    }

    /// Scalar twin of [`super::encode_u64`].
    pub fn encode_u64_scalar_ref(src: &[u64], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len() * 8, "encode length mismatch");
        for (s, d) in src.iter().zip(dst.chunks_exact_mut(8)) {
            d.copy_from_slice(&s.to_le_bytes());
        }
    }

    /// Scalar twin of [`super::decode_sext`] (the GNN's
    /// `mat_from_bytes` per-element sign-extension).
    pub fn decode_sext_scalar_ref(dtype: DType, src: &[u8], dst: &mut [i32]) {
        let w = dtype.size_bytes();
        assert!(w <= 4, "decode_sext supports 1/2/4-byte elements");
        assert_eq!(src.len(), dst.len() * w, "decode length mismatch");
        for (s, d) in src.chunks_exact(w).zip(dst) {
            let mut buf = [0u8; 4];
            buf[..w].copy_from_slice(s);
            let shift = 32 - 8 * w as u32;
            *d = (i32::from_le_bytes(buf) << shift) >> shift;
        }
    }

    /// Scalar twin of [`super::encode_trunc`] (the GNN's `mat_to_bytes`
    /// per-element truncation).
    pub fn encode_trunc_scalar_ref(dtype: DType, src: &[i32], dst: &mut [u8]) {
        let w = dtype.size_bytes();
        assert!(w <= 4, "encode_trunc supports 1/2/4-byte elements");
        assert_eq!(dst.len(), src.len() * w, "encode length mismatch");
        for (s, d) in src.iter().zip(dst.chunks_exact_mut(w)) {
            d.copy_from_slice(&s.to_le_bytes()[..w]);
        }
    }

    /// Scalar twin of [`super::axpy_i32`] (the MLP partial-vector inner
    /// loop).
    pub fn axpy_i32_scalar_ref(acc: &mut [i32], x: i32, xs: &[i32]) {
        assert_eq!(acc.len(), xs.len(), "axpy length mismatch");
        for (a, s) in acc.iter_mut().zip(xs) {
            *a = a.wrapping_add(x.wrapping_mul(*s));
        }
    }

    /// Scalar twin of [`super::axpy_i32_bytes`] (decode-per-element, the
    /// seed MLP shape).
    pub fn axpy_i32_bytes_scalar_ref(acc: &mut [i32], x: i32, src: &[u8]) {
        assert_eq!(src.len(), acc.len() * 4, "axpy length mismatch");
        for (a, s) in acc.iter_mut().zip(src.chunks_exact(4)) {
            let v = i32::from_le_bytes(s.try_into().unwrap());
            *a = a.wrapping_add(x.wrapping_mul(v));
        }
    }

    fn wrap(v: i32, dtype: DType) -> i32 {
        match dtype.size_bytes() {
            1 => v as i8 as i32,
            2 => v as i16 as i32,
            _ => v,
        }
    }

    /// Scalar twin of [`super::add_wrap`] (the GNN aggregation
    /// element loop).
    pub fn add_wrap_scalar_ref(dtype: DType, acc: &mut [i32], src: &[i32]) {
        assert_eq!(acc.len(), src.len(), "add_wrap length mismatch");
        for (a, s) in acc.iter_mut().zip(src) {
            *a = wrap(a.wrapping_add(*s), dtype);
        }
    }

    /// Scalar twin of [`super::axpy_wrap`] (the GNN combination element
    /// loop).
    pub fn axpy_wrap_scalar_ref(dtype: DType, acc: &mut [i32], x: i32, xs: &[i32]) {
        assert_eq!(acc.len(), xs.len(), "axpy_wrap length mismatch");
        for (a, s) in acc.iter_mut().zip(xs) {
            *a = wrap(a.wrapping_add(x.wrapping_mul(*s)), dtype);
        }
    }

    /// Scalar twin of [`super::relu_i32`].
    pub fn relu_i32_scalar_ref(xs: &mut [i32]) {
        for x in xs {
            *x = (*x).max(0);
        }
    }

    /// Scalar twin of [`super::max_i32`].
    pub fn max_i32_scalar_ref(acc: &mut [i32], src: &[i32]) {
        assert_eq!(acc.len(), src.len(), "max length mismatch");
        for (a, s) in acc.iter_mut().zip(src) {
            *a = (*a).max(*s);
        }
    }

    /// Scalar twin of [`super::bitmap_or`].
    pub fn bitmap_or_scalar_ref(acc: &mut [u8], src: &[u8]) {
        assert_eq!(acc.len(), src.len(), "bitmap length mismatch");
        for (a, s) in acc.iter_mut().zip(src) {
            *a |= *s;
        }
    }

    /// Scalar twin of [`super::for_each_new_bit`] (the apps'
    /// bit-at-a-time frontier scan).
    pub fn for_each_new_bit_scalar_ref(news: &[u8], olds: &[u8], mut f: impl FnMut(usize)) {
        assert_eq!(news.len(), olds.len(), "bitmap length mismatch");
        let get = |bm: &[u8], v: usize| bm[v / 8] & (1 << (v % 8)) != 0;
        for v in 0..news.len() * 8 {
            if get(news, v) && !get(olds, v) {
                f(v);
            }
        }
    }

    /// Scalar twin of [`super::copy_rows`] (byte-at-a-time row
    /// scatter/gather).
    #[allow(clippy::too_many_arguments)] // mirrors the kernel signature
    pub fn copy_rows_scalar_ref(
        dst: &mut [u8],
        dst_off: usize,
        dst_pitch: usize,
        src: &[u8],
        src_off: usize,
        src_pitch: usize,
        row_bytes: usize,
        rows: usize,
    ) {
        for r in 0..rows {
            for b in 0..row_bytes {
                dst[dst_off + r * dst_pitch + b] = src[src_off + r * src_pitch + b];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The exhaustive seeded property suite lives in
    // `crates/sim/tests/kernels.rs`; these are smoke checks of the basic
    // mappings.

    #[test]
    fn codec_roundtrip() {
        let vals: Vec<i32> = (0..37).map(|i| i * -3 + 5).collect();
        let mut bytes = vec![0u8; vals.len() * 4];
        encode_i32(&vals, &mut bytes);
        let mut back = vec![0i32; vals.len()];
        decode_i32(&bytes, &mut back);
        assert_eq!(back, vals);
    }

    #[test]
    fn sext_matches_fixed_width_semantics() {
        let bytes = [0xFFu8, 0x7F, 0x80, 0x01];
        let mut out = vec![0i32; 4];
        decode_sext(DType::I8, &bytes, &mut out);
        assert_eq!(out, vec![-1, 127, -128, 1]);
        let mut out = vec![0i32; 2];
        decode_sext(DType::I16, &bytes, &mut out);
        assert_eq!(out, vec![0x7FFF, 0x0180]);
    }

    #[test]
    fn axpy_accumulates_wrapping() {
        let mut acc = vec![i32::MAX, 1, 2];
        axpy_i32(&mut acc, 2, &[1, 10, 100]);
        assert_eq!(acc, vec![i32::MAX.wrapping_add(2), 21, 202]);
    }

    #[test]
    fn new_bit_scan_matches_layout() {
        let news = [0b1010_0001u8, 0x00, 0x80];
        let olds = [0b0010_0000u8, 0x00, 0x00];
        let mut seen = Vec::new();
        for_each_new_bit(&news, &olds, |v| seen.push(v));
        assert_eq!(seen, vec![0, 7, 23]);
    }

    #[test]
    fn copy_rows_transposes_blocks() {
        // Two 2-byte rows interleaved into a 4-byte-pitch destination.
        let src = [1u8, 2, 3, 4];
        let mut dst = [0u8; 8];
        copy_rows(&mut dst, 2, 4, &src, 0, 2, 2, 2);
        assert_eq!(dst, [0, 0, 1, 2, 0, 0, 3, 4]);
    }
}

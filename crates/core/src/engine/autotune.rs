//! Analytic plan autotuning, FFTW-`MEASURE` style.
//!
//! Cost-only execution ([`CollectivePlan::execute_cost_only`]) makes a
//! modeled time orders of magnitude cheaper than a functional run, which
//! turns plan selection into a search problem: for a given (primitive,
//! payload, PE budget), enumerate every legal hypercube shape ×
//! entangled-group mask × optimization level, score each candidate
//! analytically, and hand back the best [`CollectivePlan`].
//!
//! The search is **exhaustive and deterministic**: shapes are enumerated
//! in a fixed lexicographic order (ordered factorizations with
//! power-of-two non-final dimensions, as [`HypercubeShape`] requires),
//! masks in ascending bit-pattern order, opt levels in the caller's order,
//! and ties break toward the earliest candidate (strictly-smaller time
//! wins). Scores come from [`CollectivePlan::cost_only_report`], which
//! never reads the thread budget, so the same request produces the same
//! winning plan at any thread count — pinned by `tests/cost_only.rs`.
//!
//! Candidates whose plan fails validation (payload not divisible by the
//! candidate group size, mismatched shape, …) are skipped and counted, so
//! a [`TuneReport`] always accounts for the full frontier.

use pim_sim::dtype::ReduceKind;
use pim_sim::geometry::DimmGeometry;
use pim_sim::TimeModel;

use crate::config::{OptLevel, Primitive};
use crate::engine::plan::CollectivePlan;
use crate::engine::BufferSpec;
use crate::error::{Error, Result};
use crate::hypercube::{DimMask, HypercubeManager, HypercubeShape};

/// What to tune for: one collective over one payload geometry and PE
/// budget. Construct with [`TuneRequest::new`], then narrow the search
/// with the builder methods.
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// The collective to plan.
    pub primitive: Primitive,
    /// Payload layout (offsets, bytes per node, element type).
    pub spec: BufferSpec,
    /// Reduction operator (ignored by non-reducing primitives).
    pub op: ReduceKind,
    /// The physical PE budget candidates are mapped onto.
    pub geometry: DimmGeometry,
    /// Optimization levels to explore, in order.
    pub opts: Vec<OptLevel>,
    /// When set, only candidates whose communication-group size equals
    /// this value are explored — tuning the *layout* of a fixed logical
    /// collective rather than changing its semantics.
    pub group_size: Option<usize>,
    /// Maximum hypercube rank to enumerate (the paper's design space uses
    /// up to 3-D shapes; higher ranks grow the frontier combinatorially).
    pub max_dims: usize,
    /// Thread budget recorded into the winning plan (`0` = auto). Never
    /// affects scoring: cost-only execution ignores it.
    pub threads: usize,
}

impl TuneRequest {
    /// A request with the default search space: `Full` optimization only,
    /// `Sum`, any group size, shapes up to 3-D, auto threads.
    pub fn new(primitive: Primitive, spec: BufferSpec, geometry: DimmGeometry) -> Self {
        Self {
            primitive,
            spec,
            op: ReduceKind::Sum,
            geometry,
            opts: vec![OptLevel::Full],
            group_size: None,
            max_dims: 3,
            threads: 0,
        }
    }

    /// Sets the reduction operator.
    #[must_use]
    pub fn with_op(mut self, op: ReduceKind) -> Self {
        self.op = op;
        self
    }

    /// Sets the optimization levels to explore (explored in this order).
    #[must_use]
    pub fn with_opts(mut self, opts: Vec<OptLevel>) -> Self {
        self.opts = opts;
        self
    }

    /// Restricts the search to candidates with this communication-group
    /// size.
    #[must_use]
    pub fn with_group_size(mut self, n: usize) -> Self {
        self.group_size = Some(n);
        self
    }

    /// Sets the maximum hypercube rank to enumerate.
    #[must_use]
    pub fn with_max_dims(mut self, max_dims: usize) -> Self {
        self.max_dims = max_dims.max(1);
        self
    }

    /// Sets the thread budget recorded into the winning plan.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One scored point of the explored frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneCandidate {
    /// Hypercube dimensions, innermost first (as [`HypercubeShape::new`]).
    pub dims: Vec<usize>,
    /// The dimension mask as a `'0'`/`'1'` string (char `i` = dim `i`).
    pub mask: String,
    /// Optimization level.
    pub opt: OptLevel,
    /// Communication-group size of this candidate.
    pub group_size: usize,
    /// Analytically modeled execution time (bit-identical to what a
    /// functional run of this candidate would report).
    pub modeled_ns: f64,
}

/// The explored frontier of one [`autotune`] call — reusable: the same
/// report can rank alternatives, feed a bench table, or seed a narrower
/// follow-up search.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Every legally planned candidate, in deterministic search order.
    pub explored: Vec<TuneCandidate>,
    /// Candidates whose plan failed validation and were skipped.
    pub skipped: usize,
    /// Index of the winner in `explored`.
    pub best: usize,
}

impl TuneReport {
    /// The winning candidate.
    pub fn best(&self) -> &TuneCandidate {
        &self.explored[self.best]
    }
}

/// Enumerates every legal hypercube shape over `num_pes` nodes with at
/// most `max_dims` dimensions, in lexicographic order: each non-final
/// dimension is a power-of-two factor ≥ 2 (the [`HypercubeShape`]
/// constraint), the final dimension is whatever remains.
fn enumerate_shapes(num_pes: usize, max_dims: usize) -> Vec<Vec<usize>> {
    fn rec(rem: usize, slots_left: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        // Close the shape here: `rem` becomes the final dimension.
        prefix.push(rem);
        out.push(prefix.clone());
        prefix.pop();
        if slots_left <= 1 {
            return;
        }
        // Or peel a power-of-two factor as a non-final dimension.
        let mut f = 2;
        while f < rem {
            if rem.is_multiple_of(f) {
                prefix.push(f);
                rec(rem / f, slots_left - 1, prefix, out);
                prefix.pop();
            }
            f *= 2;
        }
    }
    let mut out = Vec::new();
    if num_pes > 0 {
        rec(num_pes, max_dims.max(1), &mut Vec::new(), &mut out);
    }
    out
}

/// Exhaustively searches hypercube shapes × entangled-group masks × opt
/// levels for `req`, scoring every candidate with cost-only execution
/// under `model`, and returns the best plan together with the explored
/// frontier.
///
/// Deterministic at any `req.threads` (see the module docs); the winner's
/// modeled time is ≤ every explored candidate's, including whatever
/// default shape the caller uses today.
///
/// # Errors
///
/// Returns [`Error::InvalidBuffer`] when no candidate in the search space
/// plans successfully (e.g. the payload is not divisible by any legal
/// group size).
pub fn autotune(req: &TuneRequest, model: &TimeModel) -> Result<(CollectivePlan, TuneReport)> {
    let num_pes = req.geometry.num_pes();
    let mut explored = Vec::new();
    let mut skipped = 0usize;
    let mut best: Option<(usize, CollectivePlan, f64)> = None;

    for dims in enumerate_shapes(num_pes, req.max_dims) {
        let rank = dims.len();
        let Ok(shape) = HypercubeShape::new(dims.clone()) else {
            skipped += 1;
            continue;
        };
        let Ok(manager) = HypercubeManager::new(shape, req.geometry) else {
            skipped += 1;
            continue;
        };
        for pattern in 1u32..(1u32 << rank) {
            let bits: Vec<bool> = (0..rank).map(|i| pattern >> i & 1 == 1).collect();
            let group_size: usize = dims
                .iter()
                .zip(&bits)
                .filter(|(_, &sel)| sel)
                .map(|(&d, _)| d)
                .product();
            if let Some(want) = req.group_size {
                if group_size != want {
                    continue;
                }
            }
            let Ok(mask) = DimMask::new(bits.clone()) else {
                skipped += 1;
                continue;
            };
            for &opt in &req.opts {
                let plan = CollectivePlan::build(
                    &manager,
                    opt,
                    req.primitive,
                    &mask,
                    &req.spec,
                    req.op,
                    req.threads,
                );
                let Ok(plan) = plan else {
                    skipped += 1;
                    continue;
                };
                let modeled_ns = plan.cost_only_report(model).time_ns();
                let idx = explored.len();
                explored.push(TuneCandidate {
                    dims: dims.clone(),
                    mask: bits.iter().map(|&b| if b { '1' } else { '0' }).collect(),
                    opt,
                    group_size,
                    modeled_ns,
                });
                // Strictly-smaller wins: ties keep the earliest candidate,
                // so the result is independent of everything but the fixed
                // enumeration order.
                if best.as_ref().is_none_or(|(_, _, t)| modeled_ns < *t) {
                    best = Some((idx, plan, modeled_ns));
                }
            }
        }
    }

    match best {
        Some((idx, plan, _)) => Ok((
            plan,
            TuneReport {
                explored,
                skipped,
                best: idx,
            },
        )),
        None => Err(Error::InvalidBuffer(format!(
            "autotune: no legal (shape, mask, opt) configuration for {} over {num_pes} PEs \
             with bytes_per_node {}",
            req.primitive, req.spec.bytes_per_node
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_enumeration_is_exhaustive_and_legal() {
        let shapes = enumerate_shapes(64, 3);
        // Every shape multiplies back to 64 and non-final dims are
        // powers of two >= 2.
        for dims in &shapes {
            assert_eq!(dims.iter().product::<usize>(), 64, "{dims:?}");
            assert!(dims.len() <= 3);
            for &d in &dims[..dims.len() - 1] {
                assert!(d.is_power_of_two() && d >= 2, "{dims:?}");
            }
            assert!(HypercubeShape::new(dims.clone()).is_ok(), "{dims:?}");
        }
        // No duplicates, deterministic order.
        let again = enumerate_shapes(64, 3);
        assert_eq!(shapes, again);
        let mut dedup = shapes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), shapes.len());
        // 64 = 2^6: compositions of 6 into at most 3 parts = 1 + 5 + 10.
        assert_eq!(shapes.len(), 16);
    }

    #[test]
    fn shape_enumeration_handles_non_power_of_two_tail() {
        // 48 = 16 x 3: the final dimension may be any remainder.
        for dims in enumerate_shapes(48, 3) {
            assert_eq!(dims.iter().product::<usize>(), 48);
            for &d in &dims[..dims.len() - 1] {
                assert!(d.is_power_of_two());
            }
        }
    }
}

//! Deterministic, dependency-free input generators for tests.
//!
//! The container is offline (no proptest / rand), so the integration tests
//! across the workspace draw their inputs from a seeded splitmix64 stream:
//! every run exercises the same fixed sample of the input space and
//! failures reproduce exactly. This module is the single shared home of
//! the generator that used to be copied into each test file; it is not
//! part of the simulator's modeling surface.

/// splitmix64: a deterministic stream of `u64`s from a seed.
///
/// # Examples
///
/// ```
/// use pim_sim::testgen::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next value of the stream.
    #[allow(clippy::should_implement_trait)] // free-standing stream, not an Iterator
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<T: Clone>(&mut self, items: &[T]) -> T {
        items[(self.next_u64() % items.len() as u64) as usize].clone()
    }

    /// `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len.div_ceil(8))
            .flat_map(|_| self.next_u64().to_le_bytes())
            .take(len)
            .collect()
    }
}

/// The deterministic per-PE fill byte used by the engine determinism and
/// oracle-comparison tests: a cheap hash of `(seed, pe, index)` so distinct
/// PEs and offsets get distinct, reproducible payloads.
pub fn fill_byte(seed: u64, pe: u64, i: usize) -> u8 {
    let x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(pe << 32)
        .wrapping_add(i as u64);
    (x ^ (x >> 29)).wrapping_mul(0xbf58476d1ce4e5b9) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_spread() {
        let mut g = SplitMix64::new(7);
        let a: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let mut g = SplitMix64::new(7);
        let b: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bytes_has_exact_length() {
        let mut g = SplitMix64::new(1);
        assert_eq!(g.bytes(0).len(), 0);
        assert_eq!(g.bytes(13).len(), 13);
    }

    #[test]
    fn pick_stays_in_range() {
        let mut g = SplitMix64::new(9);
        for _ in 0..64 {
            let v = g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&v));
        }
    }
}

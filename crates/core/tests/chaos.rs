//! Chaos suite for the fault-injection / verified-execution layer.
//!
//! Three guarantees, in order of importance:
//!
//! 1. **Zero-cost when disabled**: with no fault plan attached,
//!    `execute_verified` is byte- and modeled-bit-identical to the plain
//!    execute path, for every primitive at every optimization level.
//! 2. **Transient faults recover**: an injected single fault is retried
//!    under a fresh epoch and produces the exact clean result, with the
//!    recovery visible in modeled time.
//! 3. **No silent corruption**: under seeded random fault storms
//!    (`PIDCOMM_CHAOS_SEED` overrides the base seed), every run either
//!    returns the bit-exact clean result or a typed error — never a wrong
//!    answer, never a panic.

use pidcomm::{
    BufferSpec, Communicator, DimMask, Error, HypercubeManager, HypercubeShape, OptLevel,
    Primitive, RecoveryPolicy, ReduceKind,
};
use pim_sim::{DimmGeometry, FaultKind, FaultPlan, PimSystem};
use std::sync::Arc;

const B: usize = 256;
const DST: usize = 8192;
const N: usize = 8;
const GROUPS: usize = 8;

fn comm(opt: OptLevel) -> Communicator {
    let geom = DimmGeometry::single_rank(); // 64 PEs
    let manager = HypercubeManager::new(HypercubeShape::new(vec![8, 8]).unwrap(), geom).unwrap();
    Communicator::new(manager).with_opt(opt).with_threads(1)
}

fn fresh_filled() -> PimSystem {
    let geom = DimmGeometry::single_rank();
    let mut sys = PimSystem::new(geom);
    for pe in geom.pes() {
        let fill: Vec<u8> = (0..N * B)
            .map(|i| ((pe.0 as usize * 31 + i * 7) % 251) as u8)
            .collect();
        sys.pe_mut(pe).write(0, &fill);
    }
    sys
}

/// Full MRAM image of the src+dst windows on every PE.
fn snapshot(sys: &PimSystem) -> Vec<Vec<u8>> {
    sys.geometry()
        .pes()
        .map(|pe| sys.pe(pe).peek(0, DST + N * B))
        .collect()
}

fn spec() -> BufferSpec {
    BufferSpec::new(0, DST, B)
}

fn host_in(prim: Primitive) -> Option<Vec<Vec<u8>>> {
    match prim {
        Primitive::Scatter => Some(
            (0..GROUPS)
                .map(|g| (0..N * B).map(|i| ((g * 13 + i) % 241) as u8).collect())
                .collect(),
        ),
        Primitive::Broadcast => Some(
            (0..GROUPS)
                .map(|g| (0..B).map(|i| ((g * 17 + i) % 239) as u8).collect())
                .collect(),
        ),
        _ => None,
    }
}

/// Clean reference execution through the ordinary plan-execute methods.
fn run_clean(
    c: &Communicator,
    sys: &mut PimSystem,
    prim: Primitive,
    mask: &DimMask,
) -> (pidcomm::CommReport, Option<Vec<Vec<u8>>>) {
    let plan = c.plan(prim, mask, &spec(), ReduceKind::Sum).unwrap();
    let hin = host_in(prim);
    match prim {
        Primitive::Scatter | Primitive::Broadcast => (
            plan.execute_with_host(sys, hin.as_ref().unwrap()).unwrap(),
            None,
        ),
        Primitive::Gather | Primitive::Reduce => {
            let (r, out) = plan.execute_to_host(sys).unwrap();
            (r, Some(out))
        }
        _ => (plan.execute(sys).unwrap(), None),
    }
}

#[test]
fn zero_fault_verified_execution_is_bit_identical() {
    let mask: DimMask = "10".parse().unwrap();
    for opt in [OptLevel::Baseline, OptLevel::InRegister, OptLevel::Full] {
        for prim in Primitive::ALL {
            let c = comm(opt);

            let mut clean_sys = fresh_filled();
            let (clean_report, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

            let mut ver_sys = fresh_filled();
            let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
            let hin = host_in(prim);
            let ver = c
                .execute_verified(
                    &mut ver_sys,
                    &plan,
                    hin.as_deref(),
                    &RecoveryPolicy::default(),
                )
                .unwrap();

            assert_eq!(ver.retries, 0, "{prim} {opt:?}");
            assert!(!ver.degraded, "{prim} {opt:?}");
            assert_eq!(ver.report, clean_report, "{prim} {opt:?}: modeled bits");
            assert_eq!(ver.host_out, clean_host, "{prim} {opt:?}: host output");
            assert_eq!(
                snapshot(&ver_sys),
                snapshot(&clean_sys),
                "{prim} {opt:?}: PE bytes"
            );
        }
    }
}

#[test]
fn transient_fault_is_retried_to_the_exact_clean_result() {
    let mask: DimMask = "10".parse().unwrap();
    for prim in Primitive::ALL {
        let c = comm(OptLevel::Full);

        let mut clean_sys = fresh_filled();
        let (clean_report, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

        // A bit flip on PE 2's transport writes during epoch 1 (the first
        // attempt); epoch 2 (the retry) is fault-free.
        let mut ver_sys = fresh_filled();
        ver_sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
            FaultKind::BitFlip,
            2,
            1,
        )));
        let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
        let hin = host_in(prim);
        let ver = c
            .execute_verified(
                &mut ver_sys,
                &plan,
                hin.as_deref(),
                &RecoveryPolicy::default(),
            )
            .unwrap();

        // Host-rooted receives (Gather, Reduce) move data PE→host only:
        // the collective never writes PE MRAM, so a transport write fault
        // is *provably harmless* — no retry, clean result. Every other
        // primitive lands bytes on PE 2 and must detect-and-retry.
        let writes_pes = !matches!(prim, Primitive::Gather | Primitive::Reduce);
        let want_retries = u32::from(writes_pes);
        assert_eq!(
            ver.retries, want_retries,
            "{prim}: detected-or-harmless retry count"
        );
        assert!(!ver.degraded, "{prim}");
        assert_eq!(ver.host_out, clean_host, "{prim}: host output");
        ver_sys.detach_fault_plan();
        assert_eq!(snapshot(&ver_sys), snapshot(&clean_sys), "{prim}: PE bytes");
        if writes_pes {
            // The failed attempt plus the retry resync are on the meter.
            assert!(
                ver.report.time_ns() > clean_report.time_ns(),
                "{prim}: recovery must be visible in modeled time \
                 ({} vs clean {})",
                ver.report.time_ns(),
                clean_report.time_ns()
            );
        } else {
            assert_eq!(
                ver.report, clean_report,
                "{prim}: harmless fault leaves modeled time untouched"
            );
        }
    }
}

#[test]
fn transient_fault_with_no_retry_budget_surfaces_typed_error() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(7).with_event(
        FaultKind::BitFlip,
        2,
        1,
    )));
    let plan = c
        .plan(Primitive::AlltoAll, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let policy = RecoveryPolicy {
        max_retries: 0,
        degrade: true,
    };
    match c.execute_verified(&mut sys, &plan, None, &policy) {
        Err(Error::DataCorruption { pe, epoch, .. }) => {
            assert_eq!(pe, 2);
            assert_eq!(epoch, 1);
        }
        other => panic!("expected DataCorruption, got {other:?}"),
    }
}

#[test]
fn persistent_pe_failure_degrades_to_correct_surviving_results() {
    let mask: DimMask = "10".parse().unwrap();
    let dead: u32 = 12;
    for prim in Primitive::ALL {
        let c = comm(OptLevel::Full);

        let mut clean_sys = fresh_filled();
        let (_, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);

        let mut ver_sys = fresh_filled();
        ver_sys.attach_fault_plan(Arc::new(FaultPlan::new(11).with_failed_pe(dead)));
        let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
        let hin = host_in(prim);
        let ver = c
            .execute_verified(
                &mut ver_sys,
                &plan,
                hin.as_deref(),
                &RecoveryPolicy::default(),
            )
            .unwrap();

        assert!(ver.degraded, "{prim}: must degrade around the dead PE");
        assert_eq!(ver.retries, 0, "{prim}: persistent failure never retries");
        // Host-rooted receive outputs are computed from still-readable
        // banks, so they match the clean run exactly.
        assert_eq!(ver.host_out, clean_host, "{prim}: host output");
        // Every surviving PE's *destination* region holds the exact clean
        // result (the source region legitimately differs: the clean run's
        // phase A pre-rotated it in place, the degraded run never
        // dispatched). The dead PE's destination stays untouched.
        ver_sys.detach_fault_plan();
        for pe in ver_sys.geometry().pes() {
            if pe.0 == dead {
                continue;
            }
            assert_eq!(
                ver_sys.pe(pe).peek(DST, N * B),
                clean_sys.pe(pe).peek(DST, N * B),
                "{prim}: surviving PE {pe:?} destination"
            );
        }
        // Degraded recompute is visible in modeled time via the recovery
        // byte counter (host-modulation charge).
        assert!(
            ver.report.breakdown.host_modulation > 0.0,
            "{prim}: degraded recompute must be charged"
        );
    }
}

#[test]
fn persistent_failure_with_degradation_disabled_surfaces_pe_failed() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(3).with_failed_pe(5)));
    let plan = c
        .plan(Primitive::AllReduce, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let policy = RecoveryPolicy {
        max_retries: 2,
        degrade: false,
    };
    match c.execute_verified(&mut sys, &plan, None, &policy) {
        Err(Error::PeFailed { pe, .. }) => assert_eq!(pe, 5),
        other => panic!("expected PeFailed, got {other:?}"),
    }
}

/// Seeded fault storms: across seeds and fault densities, a verified
/// execution must end in exactly one of two states — the bit-exact clean
/// result, or a typed detection error. A wrong answer (silent corruption)
/// or a panic fails the suite.
#[test]
fn seeded_chaos_never_corrupts_silently() {
    let base: u64 = std::env::var("PIDCOMM_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let mask: DimMask = "10".parse().unwrap();
    let policy = RecoveryPolicy {
        max_retries: 3,
        degrade: true,
    };

    let mut recovered = 0u32;
    let mut detected = 0u32;
    let mut clean = 0u32;

    for round in 0..3u64 {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E3779B97F4A7C15));
        // Sparse-to-dense storms: small periods fault nearly every epoch,
        // large ones only occasionally.
        for (flip_p, row_p) in [(1 << 14, 0), (0, 1 << 15), (1 << 10, 1 << 11)] {
            for prim in Primitive::ALL {
                let c = comm(OptLevel::Full);

                let mut clean_sys = fresh_filled();
                let (_, clean_host) = run_clean(&c, &mut clean_sys, prim, &mask);
                let want = snapshot(&clean_sys);

                let mut fp = FaultPlan::new(seed ^ (flip_p << 1) ^ row_p);
                if flip_p > 0 {
                    fp = fp.with_bit_flip_period(flip_p);
                }
                if row_p > 0 {
                    fp = fp.with_row_corrupt_period(row_p);
                }
                let mut sys = fresh_filled();
                sys.attach_fault_plan(Arc::new(fp));
                let plan = c.plan(prim, &mask, &spec(), ReduceKind::Sum).unwrap();
                let hin = host_in(prim);
                match c.execute_verified(&mut sys, &plan, hin.as_deref(), &policy) {
                    Ok(ver) => {
                        assert!(!ver.degraded, "{prim} seed {seed}: no PE ever dies here");
                        assert_eq!(ver.host_out, clean_host, "{prim} seed {seed}");
                        sys.detach_fault_plan();
                        assert_eq!(snapshot(&sys), want, "{prim} seed {seed}: PE bytes");
                        if ver.retries > 0 {
                            recovered += 1;
                        } else {
                            clean += 1;
                        }
                    }
                    Err(Error::DataCorruption { .. }) | Err(Error::PeFailed { .. }) => {
                        detected += 1;
                    }
                    Err(other) => panic!("{prim} seed {seed}: unexpected error {other:?}"),
                }
            }
        }
    }

    eprintln!("chaos: {recovered} recovered, {detected} detected, {clean} clean");
    // Under the default seeds the storm must actually exercise the fault
    // paths; a custom seed only has to satisfy the per-run property.
    if std::env::var("PIDCOMM_CHAOS_SEED").is_err() {
        assert!(
            recovered + detected > 0,
            "fault storm triggered nothing: periods too sparse"
        );
    }
}

/// A stuck-period fault plan can stall a PE for one epoch; the pre-dispatch
/// scan must catch it (typed error or clean retry), never hang or corrupt.
#[test]
fn transiently_stuck_pe_is_caught_before_dispatch() {
    let mask: DimMask = "10".parse().unwrap();
    let c = comm(OptLevel::Full);
    let mut clean_sys = fresh_filled();
    let (_, _) = run_clean(&c, &mut clean_sys, Primitive::AlltoAll, &mask);
    let want = snapshot(&clean_sys);

    // An explicit one-epoch stall on PE 9: attempt 1 fails pre-dispatch,
    // the retry's fresh epoch clears it.
    let mut sys = fresh_filled();
    sys.attach_fault_plan(Arc::new(FaultPlan::new(5).with_event(
        FaultKind::Stuck,
        9,
        1,
    )));
    let plan = c
        .plan(Primitive::AlltoAll, &mask, &spec(), ReduceKind::Sum)
        .unwrap();
    let ver = c
        .execute_verified(&mut sys, &plan, None, &RecoveryPolicy::default())
        .unwrap();
    assert_eq!(ver.retries, 1);
    assert!(!ver.degraded);
    sys.detach_fault_plan();
    assert_eq!(snapshot(&sys), want);
}

//! DLRM embedding-stage inference on a 3-D hypercube (table x row x column
//! division), following the paper's Fig. 11 communication structure:
//! AlltoAll("111") -> lookup -> ReduceScatter("010") -> AlltoAll("101").
//!
//! Run with `cargo run --release --example dlrm_inference`.

use pidcomm::OptLevel;
use pidcomm_apps::dlrm::{run_dlrm, DlrmRunConfig};
use pidcomm_data::dlrm::DlrmConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for dim in [16, 32] {
        let mut workload = DlrmConfig::criteo_like(dim);
        workload.batch_size = 1024;
        println!(
            "DLRM: {} tables x {} rows, embedding dim {dim}, batch {}",
            workload.num_tables, workload.rows_per_table, workload.batch_size
        );

        let full = run_dlrm(&DlrmRunConfig {
            threads: 0,
            workload,
            pes: 256,
            opt: OptLevel::Full,
        })?;
        let base = run_dlrm(&DlrmRunConfig {
            threads: 0,
            workload,
            pes: 256,
            opt: OptLevel::Baseline,
        })?;

        println!(
            "  PID-Comm:     total {:.2} ms (AA {:.2} ms, RS {:.2} ms, kernel {:.2} ms)",
            full.profile.total_ns() / 1e6,
            full.profile.primitive_ns(pidcomm::Primitive::AlltoAll) / 1e6,
            full.profile.primitive_ns(pidcomm::Primitive::ReduceScatter) / 1e6,
            full.profile.kernel_ns / 1e6,
        );
        println!(
            "  conventional: total {:.2} ms -> speedup {:.2}x, embeddings validated={}",
            base.profile.total_ns() / 1e6,
            base.profile.total_ns() / full.profile.total_ns(),
            full.validated
        );
    }
    Ok(())
}

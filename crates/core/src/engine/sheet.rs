//! Cost accounting for one collective call.

use pim_sim::{Breakdown, Category, PimSystem, TimeModel};

/// Tallies the raw operation counts of a collective call and converts them
/// into time charges at the end.
///
/// Bus traffic is tracked per channel because channels operate in parallel
/// (the slowest channel defines the transfer time), while all host-side
/// work (domain transfers, register shuffles, reductions, host-memory
/// passes) serializes on the host CPU — the paper's central bottleneck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostSheet {
    bulk_bytes: Vec<u64>,
    streamed_bytes: Vec<u64>,
    /// 64-byte blocks domain-transferred on the host.
    pub dt_blocks: u64,
    /// 64-byte blocks shuffled/permuted in registers.
    pub shuffle_blocks: u64,
    /// 64-byte blocks vertically reduced in registers.
    pub reduce_blocks: u64,
    /// Bytes of streaming host-memory traffic (sequential, cache-friendly).
    pub stream_bytes: u64,
    /// Bytes of word-granular host-memory modulation traffic (the
    /// baseline's global rearrangement pass).
    pub scatter_bytes: u64,
    /// Bytes of in-memory reduction traffic (the baseline's host-side
    /// arithmetic pass).
    pub reduce_mem_bytes: u64,
    /// Number of host↔PIM transfer phases (each pays a fixed setup cost).
    pub transfer_phases: u64,
    /// Recovery retries of the verified execution path: each failed
    /// attempt's work is already on the meter, and each retry additionally
    /// pays a fixed resynchronization setup. Zero on the fault-free path,
    /// so recovery accounting never perturbs normal modeled time.
    pub recovery_retries: u64,
    /// Bytes moved by host-side recompute during graceful degradation
    /// (reading survivors' inputs, computing on the host, landing the
    /// results). Charged at word-granular host-memory modulation cost —
    /// degraded execution is visibly slower, never hidden.
    pub recovery_bytes: u64,
    /// Bytes restored from an iteration checkpoint when run-level
    /// recovery rolls a failed iteration back. Capturing a checkpoint uses
    /// the free peek path; only an actual rollback moves bytes, charged as
    /// a sequential host-memory pass. Zero on the fault-free path.
    pub recovery_checkpoint_bytes: u64,
    /// Fault epochs skipped by run-level exponential backoff between
    /// iteration retries. Each pays one resynchronization setup, like a
    /// retry — backing off is visible in modeled time, never hidden. Zero
    /// on the fault-free path.
    pub recovery_backoff: u64,
}

impl CostSheet {
    /// Creates a sheet for a system with `channels` memory channels.
    pub fn new(channels: usize) -> Self {
        Self {
            bulk_bytes: vec![0; channels],
            streamed_bytes: vec![0; channels],
            dt_blocks: 0,
            shuffle_blocks: 0,
            reduce_blocks: 0,
            stream_bytes: 0,
            scatter_bytes: 0,
            reduce_mem_bytes: 0,
            transfer_phases: 0,
            recovery_retries: 0,
            recovery_bytes: 0,
            recovery_checkpoint_bytes: 0,
            recovery_backoff: 0,
        }
    }

    /// Records `bytes` moved in bulk mode (driver rank-wide copies) over
    /// `channel`. Reads and writes share the channel, so one counter.
    pub fn bulk(&mut self, channel: usize, bytes: u64) {
        self.bulk_bytes[channel] += bytes;
    }

    /// Records `bytes` moved in burst-granular streaming mode over
    /// `channel`.
    pub fn streamed(&mut self, channel: usize, bytes: u64) {
        self.streamed_bytes[channel] += bytes;
    }

    /// Adds another sheet's tallies into this one. All counters are exact
    /// integers, so merging per-cluster sheets in a fixed order yields the
    /// same totals as serial accounting no matter how the clusters were
    /// scheduled across threads.
    pub fn merge(&mut self, other: &CostSheet) {
        for (a, b) in self.bulk_bytes.iter_mut().zip(&other.bulk_bytes) {
            *a += b;
        }
        for (a, b) in self.streamed_bytes.iter_mut().zip(&other.streamed_bytes) {
            *a += b;
        }
        self.dt_blocks += other.dt_blocks;
        self.shuffle_blocks += other.shuffle_blocks;
        self.reduce_blocks += other.reduce_blocks;
        self.stream_bytes += other.stream_bytes;
        self.scatter_bytes += other.scatter_bytes;
        self.reduce_mem_bytes += other.reduce_mem_bytes;
        self.transfer_phases += other.transfer_phases;
        self.recovery_retries += other.recovery_retries;
        self.recovery_bytes += other.recovery_bytes;
        self.recovery_checkpoint_bytes += other.recovery_checkpoint_bytes;
        self.recovery_backoff += other.recovery_backoff;
    }

    /// Total bus bytes across channels and modes.
    pub fn bus_bytes(&self) -> u64 {
        self.bulk_bytes.iter().sum::<u64>() + self.streamed_bytes.iter().sum::<u64>()
    }

    /// Emits the sheet's time charges in the engine's canonical order.
    ///
    /// This is the single source of truth for converting tallies into
    /// modeled time: both the functional path (`apply`, charging a
    /// `PimSystem`'s meter) and the cost-only path (`apply_to`, charging a
    /// bare `Breakdown`) route through it, so they produce bit-identical
    /// floating-point charges by construction.
    fn charges(&self, model: &TimeModel, mut emit: impl FnMut(Category, f64)) {
        emit(
            Category::PeMemAccess,
            model.bus_time(&self.bulk_bytes) + model.streamed_bus_time(&self.streamed_bytes),
        );
        emit(Category::DomainTransfer, model.dt_time(self.dt_blocks));
        // The baseline's word-granular rearrangement pass is *modulation*
        // work in the paper's taxonomy (Fig. 17), even though it is bound
        // by host-memory behaviour; staging copies and in-memory reduction
        // traffic are host-memory access.
        emit(
            Category::HostModulation,
            model.shuffle_time(self.shuffle_blocks)
                + model.reduce_time(self.reduce_blocks)
                + model.host_scatter_time(self.scatter_bytes),
        );
        emit(
            Category::HostMemAccess,
            model.host_stream_time(self.stream_bytes, 1.0)
                + model.host_reduce_mem_time(self.reduce_mem_bytes),
        );
        emit(
            Category::Other,
            (self.transfer_phases + self.recovery_retries + self.recovery_backoff) as f64
                * model.transfer_setup_ns,
        );
        if self.recovery_bytes > 0 {
            // Degraded host-side recompute rearranges at word granularity,
            // like the baseline's global modulation pass.
            emit(
                Category::HostModulation,
                model.host_scatter_time(self.recovery_bytes),
            );
        }
        if self.recovery_checkpoint_bytes > 0 {
            // Checkpoint rollback is a sequential host-memory pass back
            // into MRAM; guarded so the fault-free charge sequence is
            // bit-identical to a sheet without the counter.
            emit(
                Category::HostMemAccess,
                model.host_stream_time(self.recovery_checkpoint_bytes, 1.0),
            );
        }
    }

    /// Converts the tallies into time charges on `sys`'s meter.
    pub fn apply(self, sys: &mut PimSystem) {
        let model = sys.model().clone();
        self.charges(&model, |cat, ns| sys.charge(cat, ns));
    }

    /// Converts the tallies into time charges on a bare meter, without a
    /// `PimSystem`. Used by cost-only execution; emits the exact charge
    /// sequence `apply` would, so accumulated times are bit-identical.
    pub fn apply_to(&self, meter: &mut Breakdown, model: &TimeModel) {
        self.charges(model, |cat, ns| meter.charge(cat, ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DimmGeometry, PimSystem};

    #[test]
    fn apply_charges_expected_categories() {
        let mut sys = PimSystem::new(DimmGeometry::upmem_1024());
        let mut sheet = CostSheet::new(4);
        sheet.bulk(0, 64 * 1000);
        sheet.streamed(1, 64 * 1000);
        sheet.dt_blocks = 1000;
        sheet.shuffle_blocks = 1000;
        sheet.stream_bytes = 64_000;
        sheet.scatter_bytes = 64_000;
        sheet.transfer_phases = 2;
        assert_eq!(sheet.bus_bytes(), 128_000);
        sheet.apply(&mut sys);
        let m = sys.meter();
        assert!(m.pe_mem_access > 0.0);
        assert!(m.domain_transfer > 0.0);
        assert!(m.host_modulation > 0.0);
        assert!(m.host_mem_access > 0.0);
        assert!(m.other > 0.0);
        assert_eq!(m.kernel, 0.0);
    }

    #[test]
    fn channel_parallelism_in_bus_charge() {
        let geom = DimmGeometry::upmem_1024();
        let mut sys_spread = PimSystem::new(geom);
        let mut sheet = CostSheet::new(4);
        for c in 0..4 {
            sheet.bulk(c, 1_000_000);
        }
        sheet.apply(&mut sys_spread);

        let mut sys_single = PimSystem::new(geom);
        let mut sheet = CostSheet::new(4);
        sheet.bulk(0, 4_000_000);
        sheet.apply(&mut sys_single);

        let spread = sys_spread.meter().pe_mem_access;
        let single = sys_single.meter().pe_mem_access;
        assert!((single / spread - 4.0).abs() < 1e-9, "4 channels overlap");
    }
}

//! Error type of the PID-Comm library.

use core::fmt;

/// Errors returned by PID-Comm operations.
///
/// Non-exhaustive: the fault-tolerant execution layer grows new variants
/// (detected corruption, failed PEs) without breaking downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A hypercube shape was invalid (empty, zero-length dimension, or a
    /// non-power-of-two length in a dimension other than the last).
    InvalidShape(String),
    /// A dimension mask string was malformed or did not match the shape.
    InvalidMask(String),
    /// The hypercube does not match the PE count of the target system.
    ShapeSystemMismatch {
        /// Nodes in the hypercube.
        nodes: usize,
        /// PEs in the system.
        pes: usize,
    },
    /// A buffer size or offset failed a primitive's alignment requirements.
    InvalidBuffer(String),
    /// Host-side buffers passed to a rooted primitive did not match the
    /// number of communication groups or their sizes.
    InvalidHostData(String),
    /// Write verification detected corrupted data landing on a PE during
    /// a collective execution: the FNV digest of the bytes read back did
    /// not match the digest of the bytes the transport intended to land.
    DataCorruption {
        /// Flat index of the PE whose landed data was corrupted.
        pe: u32,
        /// MRAM offset of the corrupted write.
        offset: usize,
        /// FNV-1a digest of the intended bytes.
        expected: u64,
        /// FNV-1a digest of the bytes found in MRAM.
        found: u64,
        /// Fault-plan epoch (execution index) the corruption occurred in.
        epoch: u64,
    },
    /// A PE required by the collective is stuck (dead DPU) in the current
    /// execution epoch, detected before dispatch.
    PeFailed {
        /// Flat index of the failed PE.
        pe: u32,
        /// Fault-plan epoch (execution index) the failure was observed in.
        epoch: u64,
    },
    /// A worker thread panicked inside a parallel section; the panic was
    /// contained and converted into this error instead of aborting the
    /// whole run.
    WorkerPanicked(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidShape(msg) => write!(f, "invalid hypercube shape: {msg}"),
            Error::InvalidMask(msg) => write!(f, "invalid dimension mask: {msg}"),
            Error::ShapeSystemMismatch { nodes, pes } => write!(
                f,
                "hypercube has {nodes} nodes but the system has {pes} PEs"
            ),
            Error::InvalidBuffer(msg) => write!(f, "invalid buffer: {msg}"),
            Error::InvalidHostData(msg) => write!(f, "invalid host data: {msg}"),
            Error::DataCorruption {
                pe,
                offset,
                expected,
                found,
                epoch,
            } => write!(
                f,
                "data corruption detected on PE {pe} at offset {offset} in epoch {epoch}: \
                 expected digest {expected:#018x}, found {found:#018x}"
            ),
            Error::PeFailed { pe, epoch } => {
                write!(f, "PE {pe} failed (stuck) in epoch {epoch}")
            }
            Error::WorkerPanicked(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ShapeSystemMismatch { nodes: 32, pes: 64 };
        assert_eq!(
            format!("{e}"),
            "hypercube has 32 nodes but the system has 64 PEs"
        );
        assert!(format!("{}", Error::InvalidShape("x".into())).contains("invalid hypercube shape"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}

//! A literal walkthrough of the paper's Figures 7 and 8: one entangled
//! group of 8 PEs, one 64-bit word per source/destination pair, with the
//! expected results written out by hand exactly as the figures draw them
//! (the figures use 4 PEs; we use the real 8-lane entangled group the
//! text says the diagrams "naturally extend" to).

use pidcomm::hypercube::HypercubeManager;
use pidcomm::{BufferSpec, Communicator, DimMask, HypercubeShape, OptLevel};
use pim_sim::{DimmGeometry, PeId, PimSystem, ReduceKind};

const N: usize = 8;

/// The figures label source PE `s`'s word for destination `d` as "S_d"
/// (A0, B1, ...). We encode it as the u64 `0xSS_000000DD`.
fn word(s: usize, d: usize) -> u64 {
    ((s as u64) << 32) | d as u64
}

fn setup() -> (PimSystem, Communicator, DimMask) {
    let geom = DimmGeometry::single_group();
    let manager = HypercubeManager::new(HypercubeShape::linear(N).unwrap(), geom).unwrap();
    (
        PimSystem::new(geom),
        Communicator::new(manager),
        "1".parse().unwrap(),
    )
}

fn read_words(sys: &mut PimSystem, pe: usize, off: usize, n: usize) -> Vec<u64> {
    sys.pe_mut(PeId(pe as u32))
        .read(off, n * 8)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn figure7_alltoall() {
    // Fig. 7: source PE s holds [s->0, s->1, ..., s->7]; after AlltoAll,
    // destination PE d holds [0->d, 1->d, ..., 7->d].
    for opt in OptLevel::ALL {
        let (mut sys, comm, mask) = setup();
        for s in 0..N {
            let bytes: Vec<u8> = (0..N).flat_map(|d| word(s, d).to_le_bytes()).collect();
            sys.pe_mut(PeId(s as u32)).write(0, &bytes);
        }
        comm.with_opt(opt)
            .all_to_all(&mut sys, &mask, &BufferSpec::new(0, 512, N * 8))
            .unwrap();
        for d in 0..N {
            let got = read_words(&mut sys, d, 512, N);
            let want: Vec<u64> = (0..N).map(|s| word(s, d)).collect();
            assert_eq!(got, want, "{opt}: PE{d}");
        }
    }
}

#[test]
fn figure8a_allgather() {
    // Fig. 8(a): PE s holds one word A_s; afterwards every PE holds
    // [A_0..A_7] in order.
    let (mut sys, comm, mask) = setup();
    for s in 0..N {
        sys.pe_mut(PeId(s as u32))
            .write(0, &word(s, s).to_le_bytes());
    }
    comm.all_gather(&mut sys, &mask, &BufferSpec::new(0, 512, 8))
        .unwrap();
    let want: Vec<u64> = (0..N).map(|s| word(s, s)).collect();
    for d in 0..N {
        assert_eq!(read_words(&mut sys, d, 512, N), want, "PE{d}");
    }
}

#[test]
fn figure8b_reduce_scatter() {
    // Fig. 8(b): PE s holds [x_{s,0} .. x_{s,7}]; PE d ends with
    // sum_s x_{s,d}. Use values small enough to track by hand:
    // x_{s,d} = 10*s + d, so column d sums to 10*(0+..+7) + 8d = 280 + 8d.
    let (mut sys, comm, mask) = setup();
    for s in 0..N {
        let bytes: Vec<u8> = (0..N)
            .flat_map(|d| ((10 * s + d) as u64).to_le_bytes())
            .collect();
        sys.pe_mut(PeId(s as u32)).write(0, &bytes);
    }
    comm.reduce_scatter(
        &mut sys,
        &mask,
        &BufferSpec::new(0, 512, N * 8),
        ReduceKind::Sum,
    )
    .unwrap();
    for d in 0..N {
        let got = read_words(&mut sys, d, 512, 1)[0];
        assert_eq!(got, (280 + 8 * d) as u64, "PE{d}");
    }
}

#[test]
fn figure8c_allreduce() {
    // Fig. 8(c): every PE ends with the full reduced vector.
    let (mut sys, comm, mask) = setup();
    for s in 0..N {
        let bytes: Vec<u8> = (0..N)
            .flat_map(|d| ((10 * s + d) as u64).to_le_bytes())
            .collect();
        sys.pe_mut(PeId(s as u32)).write(0, &bytes);
    }
    comm.all_reduce(
        &mut sys,
        &mask,
        &BufferSpec::new(0, 512, N * 8),
        ReduceKind::Sum,
    )
    .unwrap();
    let want: Vec<u64> = (0..N).map(|d| (280 + 8 * d) as u64).collect();
    for d in 0..N {
        assert_eq!(read_words(&mut sys, d, 512, N), want, "PE{d}");
    }
}

#[test]
fn figure2_rooted_primitives() {
    // Fig. 2's bottom row on the same group: Scatter distributes X0..X7,
    // Gather collects them back, Reduce sums to the host, Broadcast copies
    // X0 to everyone.
    let (mut sys, comm, mask) = setup();
    let host: Vec<u8> = (0..N).flat_map(|d| word(9, d).to_le_bytes()).collect();
    comm.scatter(
        &mut sys,
        &mask,
        &BufferSpec::new(0, 0, 8),
        std::slice::from_ref(&host),
    )
    .unwrap();
    for d in 0..N {
        assert_eq!(read_words(&mut sys, d, 0, 1)[0], word(9, d));
    }

    let (_, gathered) = comm
        .gather(&mut sys, &mask, &BufferSpec::new(0, 0, 8))
        .unwrap();
    assert_eq!(gathered[0], host);

    // Reduce requires the internally-chunked alignment (8 x group size
    // bytes per node), so contribute 8 words per PE: all equal to the PE id.
    for s in 0..N {
        let bytes: Vec<u8> = (0..N).flat_map(|_| (s as u64).to_le_bytes()).collect();
        sys.pe_mut(PeId(s as u32)).write(2048, &bytes);
    }
    let (_, reduced) = comm
        .reduce(
            &mut sys,
            &mask,
            &BufferSpec::new(2048, 0, N * 8),
            ReduceKind::Max,
        )
        .unwrap();
    for (slot, chunk) in reduced[0].chunks_exact(8).enumerate() {
        let max = u64::from_le_bytes(chunk.try_into().unwrap());
        assert_eq!(max, (N - 1) as u64, "slot {slot}: max of PE ids is 7");
    }

    comm.broadcast(
        &mut sys,
        &mask,
        &BufferSpec::new(0, 1024, 8),
        &[word(9, 0).to_le_bytes().to_vec()],
    )
    .unwrap();
    for d in 0..N {
        assert_eq!(read_words(&mut sys, d, 1024, 1)[0], word(9, 0), "PE{d}");
    }
}

#[test]
fn baseline_and_optimized_leave_identical_memory() {
    // The techniques are pure performance: the full MRAM images after a
    // baseline run and a Full run must be byte-identical.
    let mk = || {
        let (mut sys, comm, mask) = setup();
        for s in 0..N {
            let bytes: Vec<u8> = (0..2 * N).flat_map(|d| word(s, d).to_le_bytes()).collect();
            sys.pe_mut(PeId(s as u32)).write(0, &bytes);
        }
        (sys, comm, mask)
    };
    let (mut a, comm_a, mask) = mk();
    comm_a
        .with_opt(OptLevel::Baseline)
        .all_to_all(&mut a, &mask, &BufferSpec::new(0, 512, 2 * N * 8))
        .unwrap();
    let (mut b, comm_b, _) = mk();
    comm_b
        .all_to_all(&mut b, &mask, &BufferSpec::new(0, 512, 2 * N * 8))
        .unwrap();
    for pe in 0..N {
        // Compare only the destination region: the optimized path's
        // PE-assisted reordering legitimately permutes the *source*
        // scratch region in place.
        assert_eq!(
            read_words(&mut a, pe, 512, 2 * N),
            read_words(&mut b, pe, 512, 2 * N),
            "PE{pe} destination"
        );
    }
}
